"""End-to-end byte-level integration: the full RCStor data path on real data.

This is the credibility test tying the whole stack together *without* the
simulator: objects are geometrically partitioned into per-role buckets,
buckets are Clay-encoded stripe-row by stripe-row (fronts RS-encoded in
small-size-buckets), a disk is killed, every lost chunk is repaired using
only the bytes its repair plan names, and degraded reads reassemble the
original objects bit-for-bit.
"""

import numpy as np
import pytest

from repro.codes import ClayCode, RSCode, extract_reads
from repro.core import GeometricPartitioner
from repro.cluster.metadata import ChunkPosition, IndexRecord

KB = 1 << 10

K, R = 10, 4
N = K + R
S0 = 64 * KB  # multiple of Clay(10,4)'s alpha = 256
Q = 2


class MiniRCStor:
    """An in-memory, byte-exact RCStor stripe group (one PG)."""

    def __init__(self, rng):
        self.rng = rng
        self.clay = ClayCode(K, R)
        self.rs = RSCode(K, R)
        self.partitioner = GeometricPartitioner(S0, Q)
        #: buckets[level][role] -> bytearray of chunk slots
        self.buckets: dict[int, list[bytearray]] = {}
        self.small: list[bytearray] = [bytearray() for _ in range(K)]
        self.records: list[IndexRecord] = []
        self.objects: list[np.ndarray] = []
        self._next_role = 0

    # -- ingest --------------------------------------------------------
    def put(self, data: np.ndarray) -> int:
        object_id = len(self.objects)
        self.objects.append(data)
        role = self._next_role
        self._next_role = (self._next_role + 1) % K
        part = self.partitioner.partition(data.size)
        positions = []
        front_offset = len(self.small[role])
        if part.front:
            self.small[role].extend(data[:part.front].tobytes())
        for spec in part.chunks():
            level_buckets = self.buckets.setdefault(
                spec.level, [bytearray() for _ in range(K)])
            slot = len(level_buckets[role]) // spec.size
            positions.append(ChunkPosition(spec.level, slot))
            level_buckets[role].extend(
                data[spec.offset:spec.offset + spec.size].tobytes())
        self.records.append(IndexRecord(
            object_id, data.size, disk_id=role, checksum=0,
            chunk_positions=tuple(positions),
            front_length=part.front, front_offset=front_offset if part.front else 0))
        return object_id

    # -- encode --------------------------------------------------------
    def encode(self):
        """Pad data buckets to equal rows and compute parity buckets.

        The *chunk* is the encoding unit (§3.1), so each stripe row of a
        bucket is an independent Clay codeword.
        """
        self.parity: dict[int, list[np.ndarray]] = {}
        for level, buckets in self.buckets.items():
            chunk = S0 * Q ** (level - 1)
            rows = max(-(-len(b) // chunk) for b in buckets)
            data = [np.zeros(rows * chunk, dtype=np.uint8) for _ in range(K)]
            for role, bucket in enumerate(buckets):
                arr = np.frombuffer(bytes(bucket), dtype=np.uint8)
                data[role][:arr.size] = arr
            parity = [np.zeros(rows * chunk, dtype=np.uint8) for _ in range(R)]
            for row in range(rows):
                sl = slice(row * chunk, (row + 1) * chunk)
                row_parity = self.clay.encode([d[sl] for d in data])
                for j in range(R):
                    parity[j][sl] = row_parity[j]
            self.parity[level] = parity
            self.buckets[level] = [bytearray(d.tobytes()) for d in data]
        small_len = max(len(b) for b in self.small)
        small_data = []
        for bucket in self.small:
            arr = np.zeros(small_len, dtype=np.uint8)
            src = np.frombuffer(bytes(bucket), dtype=np.uint8)
            arr[:src.size] = src
            small_data.append(arr)
        self.small_parity = self.rs.encode(small_data)
        self.small = [bytearray(d.tobytes()) for d in small_data]

    # -- chunk access --------------------------------------------------
    def stored_chunk(self, level: int, node: int, row: int) -> np.ndarray:
        chunk = S0 * Q ** (level - 1)
        if node < K:
            raw = bytes(self.buckets[level][node][row * chunk:(row + 1) * chunk])
            return np.frombuffer(raw, dtype=np.uint8)
        return self.parity[level][node - K][row * chunk:(row + 1) * chunk]

    def repair_chunk(self, level: int, failed_node: int, row: int) -> np.ndarray:
        """Repair one chunk reading only its plan's byte ranges."""
        chunk = S0 * Q ** (level - 1)
        plan = self.clay.repair_plan(failed_node, chunk)
        chunks = {node: self.stored_chunk(level, node, row)
                  for node in range(N) if node != failed_node}
        reads = extract_reads(plan, chunks)
        return self.clay.repair(failed_node, reads, chunk)

    def degraded_read(self, object_id: int, failed_node: int) -> np.ndarray:
        """Reassemble an object whose disk has failed."""
        record = self.records[object_id]
        assert record.disk_id == failed_node
        out = np.zeros(record.size, dtype=np.uint8)
        offset = 0
        if record.front_length:
            small_len = len(self.small[0])
            available = {i: np.frombuffer(bytes(self.small[i]), dtype=np.uint8)
                         for i in range(K) if i != failed_node}
            for j, parity in enumerate(self.small_parity):
                available[K + j] = parity
            decoded = self.rs.decode(available, [failed_node], small_len)
            front = decoded[failed_node][record.front_offset:
                                         record.front_offset + record.front_length]
            out[:record.front_length] = front
            offset = record.front_length
        for pos in record.chunk_positions:
            chunk = S0 * Q ** (pos.level - 1)
            repaired = self.repair_chunk(pos.level, failed_node, pos.slot)
            out[offset:offset + chunk] = repaired
            offset += chunk
        return out


@pytest.fixture(scope="module")
def store():
    rng = np.random.default_rng(2024)
    s = MiniRCStor(rng)
    # Objects spanning sub-s0 to several levels (up to 8 * s0).
    for size in (3 * KB, 65 * KB, 130 * KB, 200 * KB, 333 * KB, 512 * KB,
                 17 * KB, 450 * KB, 129 * KB, 64 * KB, 100 * KB, 280 * KB):
        s.put(rng.integers(0, 256, size, dtype=np.uint8))
    s.encode()
    return s


def test_bucket_alignment(store):
    for level, buckets in store.buckets.items():
        chunk = S0 * Q ** (level - 1)
        for bucket in buckets:
            assert len(bucket) % chunk == 0


@pytest.mark.slow
def test_repair_every_lost_chunk_from_planned_bytes_only(store):
    """Kill node 3; every chunk on it must repair byte-exactly via plans."""
    failed = 3
    for level in store.buckets:
        chunk = S0 * Q ** (level - 1)
        rows = len(store.buckets[level][failed]) // chunk
        for row in range(rows):
            expected = store.stored_chunk(level, failed, row)
            got = store.repair_chunk(level, failed, row)
            assert np.array_equal(got, expected), (level, row)


@pytest.mark.slow
def test_parity_chunk_repair(store):
    """Parity-node chunks repair too (Figure 2 cases 3/4)."""
    level = min(store.buckets)
    chunk = S0 * Q ** (level - 1)
    for failed in (10, 13):
        expected = store.stored_chunk(level, failed, 0)
        got = store.repair_chunk(level, failed, 0)
        assert np.array_equal(got, expected)


@pytest.mark.slow
def test_degraded_reads_reassemble_objects(store):
    """Degraded reads return the original bytes for every object shape."""
    tested = 0
    for record in store.records:
        failed = record.disk_id
        got = store.degraded_read(record.object_id, failed)
        assert np.array_equal(got, store.objects[record.object_id]), \
            f"object {record.object_id}"
        tested += 1
        if tested >= 6:  # covers fronts, multi-level chunks, tiny objects
            break


def test_small_bucket_front_decoding(store):
    """An object smaller than s0 lives entirely in the small-size-bucket."""
    tiny = next(r for r in store.records if r.size < S0)
    assert not tiny.chunk_positions
    got = store.degraded_read(tiny.object_id, tiny.disk_id)
    assert np.array_equal(got, store.objects[tiny.object_id])

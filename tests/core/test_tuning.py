"""Tests for (s0, q) grid search (§4.4)."""

import pytest

from repro.core.tuning import TuningPoint, evaluate_candidate, grid_search, pareto_front

MB = 1 << 20


SIZES = [3 * MB, 8 * MB, 20 * MB, 64 * MB, 100 * MB, 500 * MB]


def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        evaluate_candidate([], 4 * MB, 2)


def test_structural_metrics():
    point = evaluate_candidate(SIZES, 4 * MB, 2)
    assert point.s0 == 4 * MB and point.q == 2
    assert point.average_chunk_size > 4 * MB
    assert 0 < point.small_bucket_share < 1
    assert point.average_chunk_count > 1
    assert point.mean_degraded_read_time is None


def test_larger_s0_grows_small_bucket_share():
    """§4.4: larger s0 raises average chunk size and RS-coded share."""
    p1 = evaluate_candidate(SIZES, 1 * MB, 2)
    p4 = evaluate_candidate(SIZES, 4 * MB, 2)
    p16 = evaluate_candidate(SIZES, 16 * MB, 2)
    assert p1.small_bucket_share < p4.small_bucket_share < p16.small_bucket_share
    assert p1.average_chunk_size < p4.average_chunk_size < p16.average_chunk_size


def test_grid_search_covers_grid():
    points = grid_search(SIZES, [1 * MB, 4 * MB], [2, 3])
    assert len(points) == 4
    assert {(p.s0, p.q) for p in points} == {(1 * MB, 2), (1 * MB, 3),
                                             (4 * MB, 2), (4 * MB, 3)}


def test_evaluator_invoked():
    calls = []

    def fake_eval(layout, size):
        calls.append((layout.name, size))
        return float(size)

    point = evaluate_candidate(SIZES, 4 * MB, 2, evaluator=fake_eval)
    assert len(calls) == len(SIZES)
    assert point.mean_degraded_read_time == pytest.approx(sum(SIZES) / len(SIZES))


def test_pareto_front_removes_dominated():
    a = TuningPoint(1, 2, average_chunk_size=10.0, small_bucket_share=0.1,
                    average_chunk_count=3, mean_degraded_read_time=1.0)
    b = TuningPoint(2, 2, average_chunk_size=20.0, small_bucket_share=0.2,
                    average_chunk_count=3, mean_degraded_read_time=0.5)
    c = TuningPoint(3, 2, average_chunk_size=5.0, small_bucket_share=0.3,
                    average_chunk_count=3, mean_degraded_read_time=2.0)  # dominated by a
    front = pareto_front([a, b, c])
    assert b in front
    assert c not in front

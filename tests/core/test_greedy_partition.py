"""Tests for the greedy partitioning foil and the front-cut ablation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import GeometricLayout, REGENERATING_KIND, RS_KIND
from repro.core.partitioning import GeometricPartitioner, greedy_partition

MB = 1 << 20


def test_greedy_produces_unbounded_adjacent_ratio():
    """§4.3's motivating failure: 20 MB -> 16 + 4 under greedy."""
    part = greedy_partition(20 * MB, 4 * MB, 2)
    assert part.counts == (1, 0, 1)
    assert [c.size for c in part.chunks()] == [4 * MB, 16 * MB]
    assert part.max_adjacent_ratio == 4.0
    two_pass = GeometricPartitioner(4 * MB, 2).partition(20 * MB)
    assert two_pass.max_adjacent_ratio <= 2.0


def test_greedy_covers_object():
    part = greedy_partition(int(73.5 * MB), 4 * MB, 2)
    assert part.front + sum(c.size for c in part.chunks()) == int(73.5 * MB)


def test_greedy_fewer_chunks_than_two_pass():
    """Greedy maximises chunk sizes (fewer chunks) — its only advantage."""
    two_pass = GeometricPartitioner(4 * MB, 2).partition(300 * MB)
    greedy = greedy_partition(300 * MB, 4 * MB, 2)
    assert greedy.n_chunks <= two_pass.n_chunks


def test_greedy_respects_cap():
    part = greedy_partition(1000 * MB, 4 * MB, 2, max_chunk_size=64 * MB)
    assert max(c.size for c in part.chunks()) <= 64 * MB


def test_greedy_q1():
    part = greedy_partition(20 * MB, 4 * MB, 1)
    assert all(c.size == 4 * MB for c in part.chunks())


def test_greedy_validation():
    with pytest.raises(ValueError):
        greedy_partition(-1, 4 * MB)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=int(4e9)))
def test_property_greedy_covers_and_bounds_front(size):
    part = greedy_partition(size, 4 * MB, 2, max_chunk_size=256 * MB)
    assert part.front + sum(c.size for c in part.chunks()) == size
    assert part.front < 4 * MB or size < 4 * MB


# ----------------------------------------------------------------------
# Front-cut ablation layout
# ----------------------------------------------------------------------
def test_no_front_cut_pads_into_regenerating_chunk():
    layout = GeometricLayout(4 * MB, 2, front_cut=False)
    placement = layout.place(int(5.5 * MB))
    kinds = [c.code_kind for c in placement.chunks]
    assert RS_KIND not in kinds
    front = placement.chunks[0]
    assert front.data_bytes == int(1.5 * MB)
    assert front.stored_bytes == 4 * MB  # padded: read amplification
    assert placement.read_amplification > 1.0
    assert layout.name.endswith("-nocut")


def test_front_cut_default_has_no_amplification():
    layout = GeometricLayout(4 * MB, 2)
    assert layout.place(int(5.5 * MB)).read_amplification == pytest.approx(1.0)

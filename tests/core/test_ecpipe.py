"""Tests for the ECPipe repair-pipelining model."""

import pytest

from repro.core.ecpipe import (
    ecpipe_repair_time,
    optimal_packet_size,
    speedup,
    star_repair_time,
)

MB = 1 << 20
BW = 125 * MB  # 1 Gbps


def test_star_time():
    assert star_repair_time(10 * MB, 10, BW) == pytest.approx(100 * MB / BW)


def test_validation():
    with pytest.raises(ValueError):
        star_repair_time(0, 10, BW)
    with pytest.raises(ValueError):
        ecpipe_repair_time(MB, 10, BW, 0)
    with pytest.raises(ValueError):
        ecpipe_repair_time(-1, 10, BW, 1024)


def test_ecpipe_approaches_single_strip_time():
    """With small packets, repair time -> one strip transfer (the claim)."""
    t = ecpipe_repair_time(64 * MB, 10, BW, 64 * 1024)
    assert t == pytest.approx(64 * MB / BW, rel=0.02)


def test_packet_equal_to_strip_degenerates_to_star():
    t = ecpipe_repair_time(8 * MB, 10, BW, 8 * MB)
    assert t == pytest.approx(star_repair_time(8 * MB, 10, BW))


def test_packet_larger_than_strip_clamped():
    t = ecpipe_repair_time(8 * MB, 10, BW, 64 * MB)
    assert t == pytest.approx(star_repair_time(8 * MB, 10, BW))


def test_speedup_approaches_k():
    assert speedup(64 * MB, 10, BW, 4 * 1024) == pytest.approx(10, rel=0.01)
    assert speedup(64 * MB, 6, BW, 4 * 1024) == pytest.approx(6, rel=0.01)


def test_per_packet_overhead_penalises_tiny_packets():
    small = ecpipe_repair_time(8 * MB, 10, BW, 1024, per_packet_overhead=1e-5)
    medium = ecpipe_repair_time(8 * MB, 10, BW, 64 * 1024,
                                per_packet_overhead=1e-5)
    assert small > medium


def test_optimal_packet_balances_tradeoff():
    strip, k, c = 8 * MB, 10, 1e-5
    p_opt = optimal_packet_size(strip, k, BW, c)
    t_opt = ecpipe_repair_time(strip, k, BW, p_opt, per_packet_overhead=c)
    for p in (p_opt // 4, p_opt * 4):
        if 0 < p <= strip:
            assert t_opt <= ecpipe_repair_time(strip, k, BW, p,
                                               per_packet_overhead=c) + 1e-9


def test_optimal_packet_zero_overhead():
    assert optimal_packet_size(8 * MB, 10, BW, 0) == 1


def test_k_one_is_trivial():
    assert ecpipe_repair_time(MB, 1, BW, 1024) == pytest.approx(MB / BW)

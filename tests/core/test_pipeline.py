"""Tests for the repair/transfer pipelining model (Figures 3 and 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PipelineStep, degraded_read_time, pipeline_timeline
from repro.core.pipeline import (
    pipeline_efficiency,
    repair_time,
    transfer_time,
    unpipelined_read_time,
)


def test_step_validation():
    with pytest.raises(ValueError):
        PipelineStep(-1, 0)
    with pytest.raises(ValueError):
        PipelineStep(0, -1)


def test_single_step_is_sum():
    assert degraded_read_time([PipelineStep(2.0, 3.0)]) == pytest.approx(5.0)


def test_transfer_bound_when_repair_fast():
    """Figure 3 (RS side): with instant repairs, time = first repair + total
    transfer — pipelining hides everything but the transfer."""
    steps = [PipelineStep(0.01, 1.0) for _ in range(10)]
    assert degraded_read_time(steps) == pytest.approx(0.01 + 10.0)


def test_repair_bound_when_transfer_fast():
    steps = [PipelineStep(1.0, 0.01) for _ in range(10)]
    assert degraded_read_time(steps) == pytest.approx(10.0 + 0.01)


def test_geometric_steps_pipeline_perfectly():
    """Figure 8, case 1: when each repair finishes before the previous
    transfer, total = first repair + total transfer."""
    # sizes 4, 4, 8, 16; repair at 1 unit/MB, transfer at 2 units/MB.
    sizes = [4, 4, 8, 16]
    steps = [PipelineStep(s * 1.0, s * 2.0) for s in sizes]
    assert degraded_read_time(steps) == pytest.approx(4 * 1.0 + sum(sizes) * 2.0)


def test_blocking_case_still_beats_serial():
    """Figure 8, case 2: transfer blocked by repair is still faster than
    repair-everything-then-transfer."""
    sizes = [4, 4, 8, 16]
    steps = [PipelineStep(s * 2.0, s * 1.0) for s in sizes]
    t = degraded_read_time(steps)
    assert t < unpipelined_read_time(steps)
    assert t == pytest.approx(sum(sizes) * 2.0 + 16 * 1.0)


def test_no_repair_steps_flow_through():
    steps = [PipelineStep(0.0, 1.0), PipelineStep(5.0, 1.0), PipelineStep(0.0, 1.0)]
    assert degraded_read_time(steps) == pytest.approx(5.0 + 2.0)


def test_timeline_consistency():
    steps = [PipelineStep(2, 4, "a"), PipelineStep(3, 4, "b"), PipelineStep(8, 4, "c")]
    tl = pipeline_timeline(steps)
    assert [t.label for t in tl] == ["a", "b", "c"]
    # Repairs are back to back.
    assert tl[0].repair_end == tl[1].repair_start
    # Transfer never starts before its repair finishes or the previous
    # transfer completes.
    for prev, cur in zip(tl, tl[1:]):
        assert cur.transfer_start >= cur.repair_end
        assert cur.transfer_start >= prev.transfer_end
    assert tl[-1].transfer_end == degraded_read_time(steps)


def test_empty_pipeline():
    assert degraded_read_time([]) == 0.0
    assert pipeline_timeline([]) == []
    assert pipeline_efficiency([]) == 0.0


def test_aggregate_helpers():
    steps = [PipelineStep(1, 2), PipelineStep(3, 4)]
    assert repair_time(steps) == 4
    assert transfer_time(steps) == 6
    assert unpipelined_read_time(steps) == 10


def test_efficiency_bounds():
    steps = [PipelineStep(1, 1) for _ in range(8)]
    eff = pipeline_efficiency(steps)
    assert 0.0 < eff < 1.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.floats(min_value=0, max_value=100)),
                min_size=1, max_size=20))
def test_property_pipeline_bounds(pairs):
    """Pipelined time is bounded below by both totals and above by serial."""
    steps = [PipelineStep(r, t) for r, t in pairs]
    t = degraded_read_time(steps)
    assert t >= repair_time(steps) - 1e-9 or t >= transfer_time(steps) - 1e-9
    assert t >= max(repair_time(steps), transfer_time(steps)) - 1e-9
    assert t <= unpipelined_read_time(steps) + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.floats(min_value=0, max_value=100)),
                min_size=1, max_size=12))
def test_property_timeline_matches_total(pairs):
    steps = [PipelineStep(r, t) for r, t in pairs]
    tl = pipeline_timeline(steps)
    assert tl[-1].transfer_end == pytest.approx(degraded_read_time(steps))

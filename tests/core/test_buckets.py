"""Bucket bookkeeping tests."""

import pytest

from repro.core import Bucket, SmallSizeBucket

MB = 1 << 20


def test_bucket_validation():
    with pytest.raises(ValueError):
        Bucket(level=0, chunk_size=4 * MB)
    with pytest.raises(ValueError):
        Bucket(level=1, chunk_size=0)


def test_bucket_append_aligns_slots():
    b = Bucket(level=1, chunk_size=4 * MB)
    s1 = b.append(object_id=7, chunk_index=0)
    s2 = b.append(object_id=8, chunk_index=2)
    assert s1.offset == 0 and s1.length == 4 * MB
    assert s2.offset == 4 * MB
    assert b.size_bytes == 8 * MB
    assert b.n_chunks == 2


def test_bucket_locate():
    b = Bucket(level=2, chunk_size=8 * MB)
    b.append(1, 0)
    slot = b.append(2, 3)
    assert b.locate(2, 3) == slot
    with pytest.raises(KeyError):
        b.locate(2, 4)


def test_small_bucket_variable_sizes():
    s = SmallSizeBucket()
    a = s.append(1, 100)
    b = s.append(2, 4096)
    assert a.offset == 0 and b.offset == 100
    assert s.size_bytes == 4196
    assert s.n_items == 2


def test_small_bucket_rejects_empty_item():
    with pytest.raises(ValueError):
        SmallSizeBucket().append(1, 0)


def test_small_bucket_locate():
    s = SmallSizeBucket()
    s.append(1, 10)
    slot = s.append(9, 20)
    assert s.locate(9) == slot
    with pytest.raises(KeyError):
        s.locate(3)

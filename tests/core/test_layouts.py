"""Layout placement tests (Geometric / Contiguous / Stripe / Stripe-Max)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContiguousLayout,
    GeometricLayout,
    StripeLayout,
    StripeMaxLayout,
)
from repro.core.layouts import REGENERATING_KIND, RS_KIND, PlacedChunk

MB = 1 << 20
KB = 1 << 10


# ----------------------------------------------------------------------
# PlacedChunk / ObjectPlacement invariants
# ----------------------------------------------------------------------
def test_placed_chunk_validation():
    with pytest.raises(ValueError):
        PlacedChunk(0, 4)
    with pytest.raises(ValueError):
        PlacedChunk(8, 4)  # stored < data
    with pytest.raises(ValueError):
        PlacedChunk(4, 4, code_kind="bogus")


def test_placement_byte_coverage_enforced():
    from repro.core import ObjectPlacement

    with pytest.raises(ValueError):
        ObjectPlacement("x", 10, [PlacedChunk(4, 4)])


# ----------------------------------------------------------------------
# Geometric layout
# ----------------------------------------------------------------------
def test_geometric_front_is_rs_coded():
    layout = GeometricLayout(4 * MB, 2)
    placement = layout.place(int(73.5 * MB))
    assert placement.chunks[0].code_kind == RS_KIND
    assert placement.chunks[0].data_bytes == int(1.5 * MB)
    assert all(c.code_kind == REGENERATING_KIND for c in placement.chunks[1:])


def test_geometric_no_read_amplification():
    layout = GeometricLayout(4 * MB, 2)
    for size in (5 * MB, 32 * MB, int(73.5 * MB), 999 * MB):
        assert layout.place(size).read_amplification == pytest.approx(1.0)


def test_geometric_single_disk():
    layout = GeometricLayout(4 * MB, 2)
    placement = layout.place(32 * MB)
    assert not placement.spans_disks
    assert placement.chunks_on_disk(0) == placement.chunks


def test_geometric_name_labels():
    assert GeometricLayout(4 * MB, 2).name == "Geo-4M"
    assert GeometricLayout(128 * KB, 2).name == "Geo-128K"
    assert GeometricLayout(1 * MB, 3).name == "Geo-1M-q3"


def test_geometric_chunk_sizes_ascend():
    layout = GeometricLayout(1 * MB, 2)
    sizes = [c.stored_bytes for c in layout.place(100 * MB).chunks[1:]]
    assert sizes == sorted(sizes)


# ----------------------------------------------------------------------
# Contiguous layout
# ----------------------------------------------------------------------
def test_contiguous_aligned_object_exact():
    layout = ContiguousLayout(16 * MB)
    placement = layout.place(64 * MB, start_offset=0)
    assert placement.n_chunks == 4
    assert placement.read_amplification == pytest.approx(1.0)


def test_contiguous_small_object_amplifies():
    """A 1 MB object inside a 16 MB chunk repairs the whole chunk (§3.2)."""
    layout = ContiguousLayout(16 * MB)
    placement = layout.place(1 * MB, start_offset=3 * MB)
    assert placement.n_chunks == 1
    assert placement.repaired_bytes == 16 * MB
    assert placement.read_amplification == pytest.approx(16.0)


def test_contiguous_unaligned_object_spans_extra_chunk():
    layout = ContiguousLayout(16 * MB)
    placement = layout.place(16 * MB, start_offset=8 * MB)
    assert placement.n_chunks == 2
    assert placement.repaired_bytes == 32 * MB


def test_contiguous_chunk_data_bytes_sum():
    layout = ContiguousLayout(4 * MB)
    placement = layout.place(10 * MB, start_offset=1 * MB)
    assert sum(c.data_bytes for c in placement.chunks) == 10 * MB
    assert placement.chunks[0].data_bytes == 3 * MB


def test_contiguous_validation():
    with pytest.raises(ValueError):
        ContiguousLayout(0)
    with pytest.raises(ValueError):
        ContiguousLayout(4 * MB).place(0)


# ----------------------------------------------------------------------
# Stripe layouts
# ----------------------------------------------------------------------
def test_stripe_round_robin():
    layout = StripeLayout(256 * KB, k=10)
    placement = layout.place(5 * MB)
    assert placement.spans_disks
    assert placement.n_chunks == 20
    disks = [c.disk_index for c in placement.chunks]
    assert disks[:10] == list(range(10))


def test_stripe_only_failed_disk_strips_need_repair():
    layout = StripeLayout(256 * KB, k=10)
    placement = layout.place(5 * MB, failed_disk=3)
    needing = [c for c in placement.chunks if c.needs_repair]
    assert all(c.disk_index == 3 for c in needing)
    assert len(needing) == 2


def test_stripe_partial_last_strip():
    layout = StripeLayout(1 * MB, k=4)
    placement = layout.place(int(2.5 * MB))
    assert placement.chunks[-1].data_bytes == int(0.5 * MB)
    assert placement.read_amplification == pytest.approx(1.0)


def test_stripe_max_one_strip_per_disk():
    layout = StripeMaxLayout(k=10)
    placement = layout.place(100 * MB)
    assert placement.n_chunks == 10
    assert all(c.data_bytes == 10 * MB for c in placement.chunks)
    assert sum(c.needs_repair for c in placement.chunks) == 1


def test_stripe_max_uneven_size():
    layout = StripeMaxLayout(k=4)
    placement = layout.place(10)
    assert [c.data_bytes for c in placement.chunks] == [3, 3, 2, 2]


def test_stripe_max_tiny_object_skips_empty_strips():
    layout = StripeMaxLayout(k=10)
    placement = layout.place(3)
    assert placement.n_chunks == 3


def test_stripe_validation():
    with pytest.raises(ValueError):
        StripeLayout(0, 10)
    with pytest.raises(ValueError):
        StripeMaxLayout(0)
    with pytest.raises(ValueError):
        StripeMaxLayout(4).place(0)


# ----------------------------------------------------------------------
# Cross-layout properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=int(4e9)))
def test_property_all_layouts_cover_object(size):
    layouts = [
        GeometricLayout(4 * MB, 2),
        ContiguousLayout(16 * MB),
        StripeLayout(256 * KB, k=10),
        StripeMaxLayout(k=10),
    ]
    for layout in layouts:
        placement = layout.place(size)
        assert sum(c.data_bytes for c in placement.chunks) == size
        assert placement.read_amplification >= 1.0


def test_average_stored_chunk_metric():
    layout = GeometricLayout(4 * MB, 2)
    placement = layout.place(32 * MB)
    assert placement.average_stored_chunk == pytest.approx(8 * MB)

"""Tests for Algorithm 1 (the two-pass geometric scan)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeometricPartitioner

MB = 1 << 20


def test_parameter_validation():
    with pytest.raises(ValueError):
        GeometricPartitioner(0)
    with pytest.raises(ValueError):
        GeometricPartitioner(4 * MB, q=0)
    with pytest.raises(ValueError):
        GeometricPartitioner(4 * MB, max_chunk_size=MB)


def test_q_of_one_is_constant_sequence():
    """q=1 (Figure 14's leftmost point) degenerates to fixed-size chunks."""
    p = GeometricPartitioner(4 * MB, q=1)
    part = p.partition(21 * MB)
    assert part.front == MB
    assert all(c.size == 4 * MB for c in part.chunks())
    assert part.n_chunks == 5
    capped = GeometricPartitioner(4 * MB, q=1, max_chunk_size=256 * MB)
    assert capped.max_level == 1
    assert capped.partition(21 * MB).n_chunks == 5


def test_paper_worked_example():
    """§4.3: 73.5 MB = 1.5 MB + 2x4 MB + 2x8 MB + 16 MB + 32 MB."""
    p = GeometricPartitioner(4 * MB, 2)
    part = p.partition(int(73.5 * MB))
    assert part.front == int(1.5 * MB)
    assert part.counts == (2, 2, 1, 1)


def test_paper_32mb_example():
    """§4.2: a 32 MB object becomes 4+4+8+16 MB."""
    p = GeometricPartitioner(4 * MB, 2)
    part = p.partition(32 * MB)
    assert part.front == 0
    assert part.counts == (2, 1, 1)
    assert [c.size for c in part.chunks()] == [4 * MB, 4 * MB, 8 * MB, 16 * MB]


def test_small_object_goes_entirely_to_front():
    p = GeometricPartitioner(4 * MB, 2)
    part = p.partition(3 * MB)
    assert part.front == 3 * MB
    assert part.counts == ()
    assert part.n_chunks == 0
    assert part.chunks() == []


def test_zero_size_object():
    part = GeometricPartitioner(4 * MB).partition(0)
    assert part.front == 0 and part.counts == ()


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        GeometricPartitioner(4 * MB).partition(-1)


def test_front_is_size_mod_s0():
    """§4: R = S mod s0 whenever the object reaches level 1."""
    p = GeometricPartitioner(4 * MB, 2)
    for size in (5 * MB, 17 * MB, 100 * MB + 12345, 4 * MB):
        assert p.partition(size).front == size % (4 * MB)


def test_all_coefficients_nonzero():
    """The 2-pass scan guarantees a_i >= 1 for every used level (§4.3)."""
    p = GeometricPartitioner(4 * MB, 2)
    for size in (20 * MB, 73 * MB, 999 * MB, 4096 * MB):
        part = p.partition(size)
        assert all(a >= 1 for a in part.counts)


def test_20mb_avoids_4_plus_16_split():
    """§4.3's motivating case: 20 MB must not become 4+16 (bad pipelining);
    the two-pass scan yields 4+8+8 with adjacent ratio <= q."""
    part = GeometricPartitioner(4 * MB, 2).partition(20 * MB)
    assert part.counts == (1, 2)
    assert part.max_adjacent_ratio <= 2


def test_chunk_count_logarithmic():
    """Chunks grow like log(size), not linearly (§4.2)."""
    p = GeometricPartitioner(4 * MB, 2)
    small = p.partition(64 * MB).n_chunks
    large = p.partition(4096 * MB).n_chunks
    assert large <= small + 7  # 64x the size, ~6 doublings


def test_chunks_ascending_and_contiguous():
    part = GeometricPartitioner(4 * MB, 2).partition(int(73.5 * MB))
    chunks = part.chunks()
    offsets = [c.offset for c in chunks]
    assert offsets[0] == part.front
    for a, b in zip(chunks, chunks[1:]):
        assert b.offset == a.offset + a.size
        assert b.size >= a.size
    assert chunks[-1].offset + chunks[-1].size == part.object_size


def test_adjacent_ratio_bounded_by_q():
    for q in (2, 3, 4):
        p = GeometricPartitioner(MB, q)
        for size in (10 * MB, 100 * MB, 1000 * MB):
            part = p.partition(size)
            assert part.max_adjacent_ratio <= q


def test_max_chunk_size_cap():
    """RCStor never allocates chunks above 256 MB (§5.2)."""
    p = GeometricPartitioner(4 * MB, 2, max_chunk_size=256 * MB)
    part = p.partition(4096 * MB)
    sizes = {c.size for c in part.chunks()}
    assert max(sizes) == 256 * MB
    assert part.counts[-1] > 1  # top level absorbs the overflow


def test_max_level_property():
    p = GeometricPartitioner(4 * MB, 2, max_chunk_size=256 * MB)
    assert p.max_level == 7  # 4,8,16,32,64,128,256
    assert GeometricPartitioner(4 * MB, 2).max_level is None


def test_level_size():
    p = GeometricPartitioner(4 * MB, 2)
    assert p.level_size(1) == 4 * MB
    assert p.level_size(4) == 32 * MB


def test_average_chunk_size():
    part = GeometricPartitioner(4 * MB, 2).partition(32 * MB)
    assert part.average_chunk_size == pytest.approx(8 * MB)
    empty = GeometricPartitioner(4 * MB, 2).partition(MB)
    assert empty.average_chunk_size == 0.0


def test_partition_integrity_validated():
    from repro.core import Partition

    with pytest.raises(ValueError):
        Partition(object_size=10, s0=4, q=2, front=1, counts=(1,))


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=int(8e9)),
       st.sampled_from([1 * MB, 4 * MB, 16 * MB, 128 * 1024]),
       st.integers(min_value=2, max_value=4))
def test_property_partition_invariants(size, s0, q):
    """Coverage, front bound, non-zero coefficients, geometric sizes."""
    part = GeometricPartitioner(s0, q).partition(size)
    assert part.front + sum(a * s0 * q ** i for i, a in enumerate(part.counts)) == size
    assert 0 <= part.front < s0 or (size < s0 and part.front == size)
    assert all(a >= 1 for a in part.counts)
    for i, chunk in enumerate(part.chunks()):
        assert chunk.size == s0 * q ** (chunk.level - 1)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=int(8e9)))
def test_property_capped_partition_covers(size):
    MB_ = 1 << 20
    part = GeometricPartitioner(4 * MB_, 2, max_chunk_size=64 * MB_).partition(size)
    total = part.front + sum(c.size for c in part.chunks())
    assert total == size
    assert all(c.size <= 64 * MB_ for c in part.chunks())

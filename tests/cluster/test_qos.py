"""Open-loop serving: lanes, hedged degraded reads, recovery coupling."""

import numpy as np
import pytest

from repro.cluster.qos import serve_open_loop
from repro.experiments.common import (
    build_system,
    cluster_config,
    sample_workload,
    setting_by_name,
)
from repro.obs import Observer, merge_snapshots, snapshot
from repro.traffic import TenantSpec, build_schedule

N_OBJECTS = 80
DURATION = 2.0

TENANTS = (
    TenantSpec("fast", share=0.6, lane=0, slo_ms=2000.0, hedge=True),
    TenantSpec("slow", share=0.4, lane=1, slo_ms=8000.0, hedge=False),
)


def make_run(scheme, seed=0, obs=None):
    ws = setting_by_name("W1")
    system = build_system(scheme, ws,
                          cluster_config(ws, N_OBJECTS, client_gbps=10.0))
    if obs is not None:
        system._obs = obs
    objects = system.ingest(sample_workload(ws, N_OBJECTS, seed))
    schedule = build_schedule(TENANTS, rate=30.0, duration=DURATION,
                              n_objects=len(objects), seed=seed)
    return system, objects, schedule


def serve(system, objects, schedule, **kw):
    return serve_open_loop(
        system, objects, schedule.times, schedule.tenant_ids,
        schedule.object_ids, tuple((t.name, t.lane, t.hedge) for t in TENANTS),
        **kw)


def busiest(system):
    return max(range(system.config.n_disks),
               key=lambda d: (len(system.degraded_read_candidates(d)), -d))


def test_serving_is_deterministic():
    runs = []
    for _ in range(2):
        system, objects, schedule = make_run("RS")
        report = serve(system, objects, schedule,
                       failed_disk=busiest(system), weight_limit=8,
                       hedge_s=0.05, seed=1)
        runs.append((report.latencies, report.degraded, report.hedges_fired,
                     report.hedge_wins, report.drain_time,
                     report.recovery.makespan))
    assert runs[0] == runs[1]


def test_open_loop_without_failure_serves_everything():
    system, objects, schedule = make_run("Geo-4M")
    report = serve(system, objects, schedule)
    assert report.n_requests == schedule.n_requests
    assert report.n_degraded == 0
    assert report.recovery is None
    assert report.drain_time >= float(schedule.times[-1])
    total = sum(len(v) for v in report.latencies.values())
    assert total == schedule.n_requests
    assert all(t > 0 for v in report.latencies.values() for t in v)


def test_degraded_requests_recorded_and_recovery_reported():
    system, objects, schedule = make_run("RS")
    report = serve(system, objects, schedule, failed_disk=busiest(system),
                   weight_limit=8)
    assert report.n_degraded > 0
    assert sum(len(v) for v in report.degraded.values()) == report.n_degraded
    assert report.recovery is not None
    assert report.recovery.makespan > 0


def test_hedging_fires_and_wins_under_load():
    system, objects, schedule = make_run("RS")
    report = serve(system, objects, schedule, failed_disk=busiest(system),
                   weight_limit=512, hedge_s=0.01, seed=2)
    # With a 10ms trigger every degraded read of the hedging tenant arms
    # its backup legs, and the spare-role fan-out must win at least once.
    assert report.hedges_fired > 0
    assert 0 < report.hedge_wins <= report.hedges_fired


def test_hedge_respects_tenant_opt_out():
    # hedge_s=None never arms a hedge...
    system, objects, schedule = make_run("RS")
    unhedged = serve(system, objects, schedule,
                     failed_disk=busiest(system), weight_limit=8,
                     hedge_s=None)
    assert unhedged.hedges_fired == 0 and unhedged.hedge_wins == 0
    # ...and neither does a mix whose tenants all opted out.
    system, objects, schedule = make_run("RS")
    opted_out = serve_open_loop(
        system, objects, schedule.times, schedule.tenant_ids,
        schedule.object_ids, tuple((t.name, t.lane, False) for t in TENANTS),
        failed_disk=busiest(system), weight_limit=8, hedge_s=0.01)
    assert opted_out.hedges_fired == 0


def test_batch_lane_queues_behind_recovery_io():
    # Paired comparison: the identical request stream served entirely in
    # the foreground lane vs entirely in the background lane, both under
    # flooding recovery I/O.  The background copy shares its queue with
    # the recovery reads, so it can only be slower in aggregate.
    totals = {}
    for lane in (0, 1):
        system, objects, schedule = make_run("RS", seed=3)
        report = serve_open_loop(
            system, objects, schedule.times, schedule.tenant_ids,
            schedule.object_ids,
            tuple((t.name, lane, False) for t in TENANTS),
            failed_disk=busiest(system), weight_limit=512, seed=3)
        totals[lane] = sum(t for v in report.latencies.values() for t in v)
    assert totals[1] > totals[0]


def test_lane_validation():
    system, objects, schedule = make_run("RS")
    with pytest.raises(ValueError):
        serve_open_loop(system, objects, schedule.times,
                        schedule.tenant_ids, schedule.object_ids,
                        (("fast", 0, True), ("slow", 7, False)))
    with pytest.raises(ValueError):
        serve_open_loop(system, objects, schedule.times[:-1],
                        schedule.tenant_ids, schedule.object_ids,
                        (("fast", 0, True), ("slow", 1, False)))


def test_per_tenant_histograms_snapshot_and_merge():
    obs_a, obs_b = Observer(), Observer()
    for seed, obs in ((4, obs_a), (5, obs_b)):
        system, objects, schedule = make_run("RS", seed=seed, obs=obs)
        serve(system, objects, schedule, failed_disk=busiest(system),
              weight_limit=8, seed=seed)
    snap_a, snap_b = snapshot(obs_a), snapshot(obs_b)
    for snap in (snap_a, snap_b):
        for tenant in ("fast", "slow"):
            assert f"traffic.latency{{tenant={tenant}}}" in snap["histograms"]
            assert f"traffic.requests{{tenant={tenant}}}" in snap["counters"]
    merged = merge_snapshots([snap_a, snap_b])
    for tenant in ("fast", "slow"):
        key = f"traffic.latency{{tenant={tenant}}}"
        assert (merged["histograms"][key]["count"]
                == snap_a["histograms"][key]["count"]
                + snap_b["histograms"][key]["count"])
        ckey = f"traffic.requests{{tenant={tenant}}}"
        assert (merged["counters"][ckey]
                == snap_a["counters"][ckey] + snap_b["counters"][ckey])

"""Tests for the codec throughput model and foreground load generator."""

import numpy as np
import pytest

from repro.cluster import DEFAULT_CODEC, CodecModel, Disk
from repro.cluster.disk import DiskModel, FOREGROUND
from repro.cluster.foreground import start_foreground_load
from repro.sim import Environment

MB = 1 << 20
GB = 1 << 30


def test_codec_rates_match_paper():
    """§5.2: 22.3 / 18.5 / 5.0 GB/s for encode / decode / regenerate."""
    assert DEFAULT_CODEC.encode_time(22.3 * GB) == pytest.approx(1.0)
    assert DEFAULT_CODEC.decode_time(18.5 * GB) == pytest.approx(1.0)
    assert DEFAULT_CODEC.regenerate_time(5.0 * GB) == pytest.approx(1.0)


def test_codec_regeneration_slowest():
    nbytes = 100 * MB
    assert (DEFAULT_CODEC.regenerate_time(nbytes)
            > DEFAULT_CODEC.decode_time(nbytes)
            > DEFAULT_CODEC.encode_time(nbytes))


def test_custom_codec():
    codec = CodecModel(encode_bandwidth=1 * GB, decode_bandwidth=1 * GB,
                       regenerate_bandwidth=0.5 * GB)
    assert codec.regenerate_time(GB) == pytest.approx(2.0)


def _make_disks(env, n=4):
    model = DiskModel("t", 0.001, 100 * MB, 100 * MB)
    return [Disk(env, model, i) for i in range(n)]


def test_foreground_load_validation():
    env = Environment()
    with pytest.raises(ValueError):
        start_foreground_load(env, _make_disks(env), np.random.default_rng(0),
                              utilization=1.5)


def test_foreground_load_hits_target_utilization():
    env = Environment()
    disks = _make_disks(env)
    start_foreground_load(env, disks, np.random.default_rng(0),
                          utilization=0.5, mean_read_bytes=8 * MB)
    env.run(until=120.0)
    utils = [d.queue.utilization() for d in disks]
    assert all(0.3 < u < 0.75 for u in utils), utils


def test_foreground_load_generates_reads_on_every_disk():
    env = Environment()
    disks = _make_disks(env)
    start_foreground_load(env, disks, np.random.default_rng(1),
                          utilization=0.4, mean_read_bytes=4 * MB)
    env.run(until=30.0)
    for disk in disks:
        assert disk.bytes_read > 0
        assert disk.n_read_ios > 0


def test_foreground_reads_are_foreground_priority():
    """The generator must not starve behind background work."""
    env = Environment()
    [disk] = _make_disks(env, n=1)
    # Saturate with background first.
    from repro.cluster.disk import BACKGROUND

    def bg():
        while True:
            yield env.process(disk.read(1, 50 * MB, BACKGROUND))

    env.process(bg())
    start_foreground_load(env, [disk], np.random.default_rng(2),
                          utilization=0.3, mean_read_bytes=4 * MB)
    env.run(until=30.0)
    assert disk.bytes_read > 0


def test_higher_utilization_more_traffic():
    def traffic(util):
        env = Environment()
        disks = _make_disks(env, 2)
        start_foreground_load(env, disks, np.random.default_rng(3),
                              utilization=util, mean_read_bytes=8 * MB)
        env.run(until=60.0)
        return sum(d.bytes_read for d in disks)

    assert traffic(0.7) > 1.5 * traffic(0.2)

"""Tests for the staged put path and batch export (§5.1)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, RCStor
from repro.cluster.ingestion import (
    REPLICATION,
    measure_puts,
    parity_update_cost,
    run_batch_export,
    _staging_disks,
)
from repro.codes import ClayCode
from repro.core import GeometricLayout

MB = 1 << 20


@pytest.fixture(scope="module")
def system():
    config = ClusterConfig(n_pgs=32)
    return RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                  ClayCode(10, 4))


def test_staging_disks_on_distinct_nodes(system):
    config = system.config
    for object_id in range(40):
        disks = _staging_disks(system, object_id)
        assert len(disks) == REPLICATION
        nodes = {config.node_of(d) for d in disks}
        assert len(nodes) == REPLICATION


def test_put_latency_transfer_bound(system):
    """Puts are acked after upload + slowest replica write; at 1 Gbps the
    client upload dominates."""
    report = measure_puts(system, [64 * MB])
    upload = 64 * MB / (125 * MB)
    assert report.mean_latency >= upload
    assert report.mean_latency < 1.3 * upload
    assert report.write_amplification == 3.0


def test_put_latency_scales_with_size(system):
    small = measure_puts(system, [8 * MB] * 5)
    large = measure_puts(system, [64 * MB] * 5)
    assert large.mean_latency > 4 * small.mean_latency


def test_put_p95_at_least_mean(system):
    report = measure_puts(system, [16 * MB, 32 * MB, 64 * MB, 128 * MB])
    assert report.p95_latency >= report.mean_latency


def test_busy_puts_slower(system):
    idle = measure_puts(system, [32 * MB] * 6)
    busy = measure_puts(system, [32 * MB] * 6, busy=True, seed=3)
    assert busy.mean_latency >= idle.mean_latency


def test_batch_export_accounting(system):
    rng = np.random.default_rng(0)
    sizes = rng.integers(4 * MB, 64 * MB, size=50)
    report = run_batch_export(system, sizes)
    assert report.exported_bytes == sizes.sum()
    assert report.read_bytes == sizes.sum()
    # Writes = data + amortised parity share (r/k = 0.4).
    assert report.written_bytes == pytest.approx(1.4 * sizes.sum(), rel=0.01)
    assert report.io_amplification == pytest.approx(2.4, rel=0.01)
    assert report.export_rate > 0
    assert report.makespan > 0


def test_batch_export_concurrency_speeds_up(system):
    rng = np.random.default_rng(1)
    sizes = rng.integers(4 * MB, 32 * MB, size=60)
    serial = run_batch_export(system, sizes, concurrency=1)
    parallel = run_batch_export(system, sizes, concurrency=32)
    assert parallel.makespan < 0.5 * serial.makespan


def test_parity_update_cost_saving():
    """Batch export avoids reading old parities on every object write."""
    cost = parity_update_cost(100 * MB)
    assert cost["update_in_place"]["read"] == pytest.approx(40 * MB)
    assert cost["batch_export"]["read"] == 0.0
    assert cost["saving_bytes"] == pytest.approx(40 * MB)
    assert (cost["update_in_place"]["write"]
            == cost["batch_export"]["write"])

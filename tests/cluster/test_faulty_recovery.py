"""Failure-aware repair paths: hedged reads, fallback ladder, requeue,
second-failure escalation, and the task-conservation invariant."""

import numpy as np
import pytest

from repro.analysis import attach_invariant_checker
from repro.cluster import ClusterConfig, RCStor
from repro.codes import ClayCode, RSCode
from repro.core import ContiguousLayout, GeometricLayout, StripeLayout
from repro.faults import FaultEvent, FaultPlan
from repro.obs import Observer

MB = 1 << 20


@pytest.fixture(scope="module")
def config():
    return ClusterConfig(n_pgs=48)


@pytest.fixture(scope="module")
def sizes():
    rng = np.random.default_rng(3)
    return rng.integers(4 * MB, 64 * MB, size=400)


def _geo_clay(config, sizes, obs=None):
    system = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                    ClayCode(10, 4), obs=obs)
    system.ingest(sizes)
    return system


def _pg_buddy(system, disk):
    """A disk sharing a placement group with ``disk``."""
    return next(d for pg in system.cluster.pgs if disk in pg
                for d in pg.disk_ids if d != disk)


class TestEmptyPlanIdentity:
    def test_recovery_bit_identical_with_empty_plan(self, config, sizes):
        base = _geo_clay(config, sizes).run_recovery(0, seed=3)
        faulted = _geo_clay(config, sizes).run_recovery(
            0, seed=3, faults=FaultPlan())
        assert faulted.makespan == base.makespan
        assert faulted.repaired_bytes == base.repaired_bytes
        assert faulted.tasks_requeued == 0
        assert faulted.tasks_abandoned == 0

    def test_degraded_reads_bit_identical_with_empty_plan(self, config, sizes):
        system = _geo_clay(config, sizes)
        objs = system.degraded_read_candidates(0)
        base = system.measure_degraded_reads(objs, 0, seed=5)
        faulted = system.measure_degraded_reads(objs, 0, seed=5,
                                                faults=FaultPlan())
        assert [r.total_time for r in base] \
            == [r.total_time for r in faulted]


class TestStragglerHedging:
    def test_straggler_triggers_hedged_retries(self, config, sizes):
        plan = FaultPlan.stragglers([5], factor=8.0).with_timeout(0.05)
        report = _geo_clay(config, sizes).run_recovery(0, seed=3, faults=plan)
        assert report.hedged_retries > 0
        assert report.tasks_abandoned == 0

    def test_faulted_run_is_deterministic(self, config, sizes):
        plan = FaultPlan.stragglers([5], factor=8.0).with_timeout(0.05)
        a = _geo_clay(config, sizes).run_recovery(0, seed=3, faults=plan)
        b = _geo_clay(config, sizes).run_recovery(0, seed=3, faults=plan)
        assert (a.makespan, a.hedged_retries, a.tasks_requeued) \
            == (b.makespan, b.hedged_retries, b.tasks_requeued)

    def test_degraded_read_hedges_around_straggler(self, config, sizes):
        system = RCStor(config, StripeLayout(256 * 1024, 10), RSCode(10, 4))
        system.ingest(np.random.default_rng(3).integers(
            4 * MB, 64 * MB, size=60))
        objs = system.degraded_read_candidates(0)[:4]
        assert objs
        slow = system.measure_degraded_reads(
            objs, 0, seed=5,
            faults=FaultPlan.stragglers([1], factor=50.0))
        hedged = system.measure_degraded_reads(
            objs, 0, seed=5,
            faults=FaultPlan.stragglers([1], factor=50.0).with_timeout(0.02))
        assert len(slow) == len(hedged) == len(objs)


class TestCrashFallbacks:
    def test_second_failure_escalates_and_conserves_tasks(self, config, sizes):
        obs = Observer()
        inv = attach_invariant_checker(obs)
        system = _geo_clay(config, sizes, obs=obs)
        buddy = _pg_buddy(system, 0)
        plan = FaultPlan.second_failure(buddy, at_progress=0.5)
        report = system.run_recovery(0, seed=3, faults=plan)
        base = _geo_clay(config, sizes).run_recovery(0, seed=3)
        assert report.tasks_escalated > 0
        assert report.makespan > base.makespan
        assert inv.stats["task_conservation_checks"] == 1
        assert "0 lost tasks" in inv.report()

    def test_timed_helper_crash_falls_back_to_decode(self, config, sizes):
        system = _geo_clay(config, sizes)
        buddy = _pg_buddy(system, 0)
        plan = FaultPlan(events=(
            FaultEvent("disk_crash", at=0.001, disk=buddy),))
        report = system.run_recovery(0, seed=3, faults=plan)
        assert report.tasks_escalated > 0
        assert report.tasks_abandoned == 0

    def test_replacement_write_crash_requeues(self, config, sizes):
        # Crash many non-PG disks mid-run: some in-flight replacement
        # writes land on freshly dead disks and must requeue, not vanish.
        obs = Observer()
        attach_invariant_checker(obs)
        system = _geo_clay(config, sizes, obs=obs)
        pg_disks = {d for pg in system.cluster.pgs if 0 in pg
                    for d in pg.disk_ids}
        outsiders = [d for d in range(config.n_disks)
                     if d not in pg_disks][:3]
        if not outsiders:
            pytest.skip("every disk shares a PG with disk 0")
        plan = FaultPlan(events=tuple(
            FaultEvent("disk_crash", at=0.01 * (i + 1), disk=d)
            for i, d in enumerate(outsiders)))
        report = system.run_recovery(0, seed=3, faults=plan)
        # Conservation held (checker did not raise); requeues are possible
        # but not guaranteed — the books must balance either way.
        assert report.n_tasks > 0

    def test_multi_failure_recovery_absorbs_extra_crash(self, config, sizes):
        obs = Observer()
        inv = attach_invariant_checker(obs)
        system = _geo_clay(config, sizes, obs=obs)
        plan = FaultPlan(events=(
            FaultEvent("disk_crash", at=0.001, disk=_pg_buddy(system, 0)),))
        report = system.run_multi_failure_recovery([0, 20], seed=9,
                                                   faults=plan)
        assert report.n_tasks > 0
        assert inv.stats["task_conservation_checks"] == 1

    def test_scalar_code_repicks_helpers(self, config, sizes):
        system = RCStor(config, ContiguousLayout(64 * MB), RSCode(10, 4))
        system.ingest(sizes)
        buddy = _pg_buddy(system, 0)
        plan = FaultPlan(events=(
            FaultEvent("disk_crash", at=0.001, disk=buddy),))
        report = system.run_recovery(0, seed=3, faults=plan)
        # Any-k re-pick: no escalation to decode needed, nothing lost.
        assert report.tasks_abandoned == 0


class TestGrantHygieneUnderTimeouts:
    def test_no_leaked_grants_under_injected_timeouts(self, config, sizes):
        """Satellite regression: a hedged retry that abandons queued helper
        reads must cancel the requests — the end-of-run audit stays clean."""
        obs = Observer()
        inv = attach_invariant_checker(obs)
        system = _geo_clay(config, sizes, obs=obs)
        plan = FaultPlan.stragglers([5, 17], factor=16.0).with_timeout(0.02)
        report = system.run_recovery(0, seed=3, faults=plan)
        assert report.hedged_retries > 0  # timeouts actually fired
        assert inv.stats["resources_audited"] > 0
        assert "0 leaked grants" in inv.report()

    def test_degraded_reads_under_timeouts_audit_clean(self, config, sizes):
        obs = Observer()
        inv = attach_invariant_checker(obs)
        system = _geo_clay(config, sizes, obs=obs)
        objs = system.degraded_read_candidates(0)
        plan = FaultPlan.stragglers([5], factor=16.0).with_timeout(0.02)
        system.measure_degraded_reads(objs, 0, seed=5, faults=plan)
        assert inv.stats["resources_audited"] > 0
        assert "0 leaked grants" in inv.report()


class TestDegradedDuringRecoveryFaults:
    def test_second_failure_during_mixed_run(self, config, sizes):
        obs = Observer()
        inv = attach_invariant_checker(obs)
        system = _geo_clay(config, sizes, obs=obs)
        objs = system.degraded_read_candidates(0)
        plan = FaultPlan.second_failure(_pg_buddy(system, 0),
                                        at_progress=0.5)
        results, report = system.measure_degraded_reads_during_recovery(
            objs, 0, seed=7, faults=plan)
        assert len(results) == len(objs)
        assert all(r.total_time > 0 for r in results)
        assert inv.stats["task_conservation_checks"] == 1

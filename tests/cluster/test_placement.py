"""Placement-policy tests: registry, flat_random invariants, rack_aware
span packing, copyset pool reuse."""

from collections import Counter

import pytest

from repro.cluster import Cluster, ClusterConfig, get_policy, policy_names
from repro.cluster.placement import POLICIES
from repro.cluster.placement.base import least_loaded_disk, rotated

#: 32 nodes in 8 racks of 4 — the placement-matrix testbed shape.
TIERED = dict(n_nodes=32, n_racks=8, nodes_per_rack=4)


def tiered_config(policy: str, n_pgs: int = 64) -> ClusterConfig:
    return ClusterConfig(n_pgs=n_pgs, placement=policy, **TIERED)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_knows_all_policies():
    assert set(policy_names()) == {"flat_random", "rack_aware", "copyset"}
    for name in policy_names():
        assert get_policy(name).name == name


def test_unknown_policy_is_an_error():
    with pytest.raises(ValueError, match="flat_random"):
        get_policy("round_robin")
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(placement="nope"))


# ----------------------------------------------------------------------
# Invariants every policy must honour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(POLICIES))
def test_pgs_use_distinct_nodes(name):
    cluster = Cluster(tiered_config(name))
    config = cluster.config
    for pg in cluster.pgs:
        assert len(pg.disk_ids) == config.n
        assert len({config.node_of(d) for d in pg.disk_ids}) == config.n


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_roles_rotate(name):
    """Role rotation must survive every policy: a disk that appears in
    many PGs plays many roles (Clay's four repair cases need this)."""
    cluster = Cluster(tiered_config(name, n_pgs=256))
    by_disk: dict[int, set[int]] = {}
    for pg in cluster.pgs:
        for disk in pg.disk_ids:
            by_disk.setdefault(disk, set()).add(pg.role_of(disk))
    # Disks in >= 8 PGs must have been handed >= 4 distinct roles.
    for disk, roles in by_disk.items():
        if len(cluster.pgs_of_disk(disk)) >= 8:
            assert len(roles) >= 4


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_per_node_disk_load_spread(name):
    """Within any node, PG membership across its disks differs by <= 1
    (the least_loaded_disk guarantee)."""
    cluster = Cluster(tiered_config(name, n_pgs=128))
    config = cluster.config
    load = Counter()
    for pg in cluster.pgs:
        load.update(pg.disk_ids)
    for node in range(config.n_nodes):
        counts = [load[d] for d in range(node * config.disks_per_node,
                                         (node + 1) * config.disks_per_node)]
        assert max(counts) - min(counts) <= 1, f"node {node}: {counts}"


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_seeded_determinism(name):
    a = Cluster(tiered_config(name))
    b = Cluster(tiered_config(name))
    assert [pg.disk_ids for pg in a.pgs] == [pg.disk_ids for pg in b.pgs]
    c = Cluster(ClusterConfig(n_pgs=64, placement=name, pg_seed=9, **TIERED))
    assert [pg.disk_ids for pg in a.pgs] != [pg.disk_ids for pg in c.pgs]


# ----------------------------------------------------------------------
# flat_random: byte-compatible with the historical builder
# ----------------------------------------------------------------------
def test_flat_random_matches_default_cluster():
    """``flat_random`` IS the default builder — same rng stream, same
    PGs (the expected_all_300 fixture depends on this)."""
    explicit = Cluster(ClusterConfig(n_pgs=50, placement="flat_random"))
    default = Cluster(ClusterConfig(n_pgs=50))
    assert [pg.disk_ids for pg in explicit.pgs] \
        == [pg.disk_ids for pg in default.pgs]


# ----------------------------------------------------------------------
# rack_aware: minimal span under the per-rack cap
# ----------------------------------------------------------------------
def test_rack_aware_minimises_span():
    """On 8 racks of 4 nodes with k+r=14 and cap=max(r, ceil(n/racks))=4,
    every PG fits in exactly ceil(14/4)=4 racks; flat_random scatters
    over 5-8."""
    aware = Cluster(tiered_config("rack_aware", n_pgs=128))
    spans = {aware.rack_span(pg) for pg in aware.pgs}
    assert spans == {4}
    flat = Cluster(tiered_config("flat_random", n_pgs=128))
    flat_spans = [flat.rack_span(pg) for pg in flat.pgs]
    assert min(flat_spans) >= 5


def test_rack_aware_respects_per_rack_cap():
    cluster = Cluster(tiered_config("rack_aware", n_pgs=128))
    config = cluster.config
    cap = max(min(config.r, config.rack_size),
              -(-config.n // config.n_racks))
    for pg in cluster.pgs:
        racks = Counter(config.rack_of(config.node_of(d))
                        for d in pg.disk_ids)
        assert max(racks.values()) <= cap


def test_rack_aware_balances_rack_load():
    cluster = Cluster(tiered_config("rack_aware", n_pgs=160))
    config = cluster.config
    per_rack = Counter()
    for pg in cluster.pgs:
        for d in pg.disk_ids:
            per_rack[config.rack_of(config.node_of(d))] += 1
    counts = [per_rack[r] for r in range(config.n_racks)]
    assert max(counts) <= 1.3 * min(counts)


def test_rack_aware_needs_enough_capacity():
    # 16 nodes in 16 racks of 1, cap=1: a 14-wide stripe fits (one chunk
    # per rack) — but 8 racks of 1 node... can't even build the config.
    one_per_rack = ClusterConfig(n_nodes=16, n_racks=16, nodes_per_rack=1,
                                 placement="rack_aware", n_pgs=8)
    cluster = Cluster(one_per_rack)
    assert all(cluster.rack_span(pg) == 14 for pg in cluster.pgs)


# ----------------------------------------------------------------------
# copyset: PGs drawn from a small pool of node sets
# ----------------------------------------------------------------------
def test_copyset_reuses_a_small_pool():
    cluster = Cluster(tiered_config("copyset", n_pgs=128))
    config = cluster.config
    node_sets = {frozenset(config.node_of(d) for d in pg.disk_ids)
                 for pg in cluster.pgs}
    # 2 permutations of 32 nodes chopped into 14-wide sets -> 2*2=4 sets,
    # versus ~128 distinct sets for flat_random.
    assert len(node_sets) <= 4
    flat = Cluster(tiered_config("flat_random", n_pgs=128))
    flat_sets = {frozenset(config.node_of(d) for d in pg.disk_ids)
                 for pg in flat.pgs}
    assert len(flat_sets) > 100


def test_copyset_rejects_tiny_clusters():
    # 14 nodes yield 1 set per permutation — fine; the error needs
    # n_nodes < n which ClusterConfig already rejects, so exercise the
    # smallest legal cluster instead.
    cluster = Cluster(ClusterConfig(n_nodes=14, placement="copyset", n_pgs=8))
    assert len(cluster.pgs) == 8


# ----------------------------------------------------------------------
# base helpers
# ----------------------------------------------------------------------
def test_rotated_covers_all_phases():
    disks = tuple(range(14))
    assert rotated(disks, 0, 14) == disks
    seen = {rotated(disks, pg, 14)[0] for pg in range(14)}
    assert seen == set(range(14))


def test_least_loaded_disk_prefers_cold_disks():
    config = ClusterConfig()
    load = Counter()
    first = least_loaded_disk(config, 3, load)
    assert config.node_of(first) == 3
    second = least_loaded_disk(config, 3, load)
    assert second != first  # the first pick is now warmer

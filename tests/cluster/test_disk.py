"""Disk model and simulated-disk tests."""

import pytest

from repro.cluster import BACKGROUND, FOREGROUND, HDD, SSD, Disk
from repro.cluster.disk import DiskModel
from repro.sim import Environment

MB = 1 << 20


def test_sequential_read_time():
    m = DiskModel("t", seek_time=0.001, read_bandwidth=100 * MB,
                  write_bandwidth=100 * MB)
    assert m.read_time(1, 100 * MB) == pytest.approx(1.001)


def test_scattered_read_costs_seeks():
    m = DiskModel("t", 0.001, 100 * MB, 100 * MB)
    assert m.read_time(64, 1 * MB) == pytest.approx(0.064 + 0.01)


def test_read_through_beats_scattered_for_dense_patterns():
    """Sub-chunk reads covering 1/4 of a small span should be priced as a
    read-through of the span, not 64 seeks (the Stripe+Clay case)."""
    m = DiskModel("t", 0.001, 100 * MB, 100 * MB, read_through_efficiency=0.5)
    scattered_only = 64 * 0.001 + (64 * 1024) / (100 * MB)
    with_span = m.read_time(64, 64 * 1024, span=256 * 1024)
    assert with_span < scattered_only
    assert with_span == pytest.approx(0.001 + 256 * 1024 / (50 * MB))


def test_read_through_not_used_for_sparse_large_patterns():
    """For huge chunks, scattered seeks are cheaper than streaming the span."""
    m = DiskModel("t", 0.001, 100 * MB, 100 * MB)
    t = m.read_time(64, 64 * MB, span=256 * MB)
    assert t == pytest.approx(64 * 0.001 + 64 * MB / (100 * MB))


def test_span_smaller_than_bytes_ignored():
    m = DiskModel("t", 0.001, 100 * MB, 100 * MB)
    assert m.read_time(2, 10 * MB, span=1) == m.read_time(2, 10 * MB)


def test_negative_io_rejected():
    with pytest.raises(ValueError):
        HDD.read_time(-1, 10)
    with pytest.raises(ValueError):
        HDD.write_time(1, -10)


def test_effective_bandwidth_monotone_in_io_size():
    bws = [HDD.effective_read_bandwidth(s * MB) for s in (1, 4, 16, 64)]
    assert bws == sorted(bws)


def test_hdd_calibration_anchor():
    """Large sequential reads approach the 190 MB/s plateau."""
    assert HDD.effective_read_bandwidth(256 * MB) > 180 * MB
    assert HDD.effective_read_bandwidth(64 * 1024) < 70 * MB


def test_ssd_faster_than_hdd_at_small_io():
    assert (SSD.effective_read_bandwidth(64 * 1024)
            > 4 * HDD.effective_read_bandwidth(64 * 1024))


def test_disk_counters_and_queueing():
    env = Environment()
    disk = Disk(env, DiskModel("t", 0.0, 100 * MB, 100 * MB), 0)

    def job():
        yield env.process(disk.read(2, 50 * MB))
        yield env.process(disk.write(1, 25 * MB))

    env.run(env.process(job()))
    assert disk.bytes_read == 50 * MB
    assert disk.bytes_written == 25 * MB
    assert disk.n_read_ios == 2 and disk.n_write_ios == 1
    assert disk.total_bytes == 75 * MB
    assert env.now == pytest.approx(0.75)


def test_foreground_preempts_queued_background():
    env = Environment()
    disk = Disk(env, DiskModel("t", 0.0, 100 * MB, 100 * MB), 0)
    order = []

    def submit(name, priority, at):
        yield env.timeout(at)
        yield env.process(disk.read(1, 100 * MB, priority))
        order.append(name)

    env.process(submit("first", BACKGROUND, 0))
    env.process(submit("bg", BACKGROUND, 0.1))
    env.process(submit("fg", FOREGROUND, 0.2))
    env.run()
    assert order == ["first", "fg", "bg"]

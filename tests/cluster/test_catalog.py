"""Catalog / directory-server placement tests."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.catalog import Catalog
from repro.core import ContiguousLayout, GeometricLayout, StripeLayout

MB = 1 << 20


@pytest.fixture
def cluster():
    return Cluster(ClusterConfig(n_pgs=32))


def geo_catalog(cluster, sizes):
    cat = Catalog(cluster, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB))
    cat.ingest(sizes)
    return cat


def test_ingest_assigns_objects(cluster):
    cat = geo_catalog(cluster, [10 * MB, 20 * MB, 30 * MB])
    assert len(cat.objects) == 3
    assert [o.object_id for o in cat.objects] == [0, 1, 2]
    for obj in cat.objects:
        assert obj.role is not None and 0 <= obj.role < 10


def test_total_bytes_and_metadata(cluster):
    cat = geo_catalog(cluster, [10 * MB, 30 * MB])
    assert cat.total_bytes == 40 * MB
    assert cat.metadata_bytes == 80


def test_small_bucket_share(cluster):
    """Fronts (size mod s0) land in small-size-buckets."""
    cat = geo_catalog(cluster, [int(5.5 * MB), 3 * MB])
    # 5.5 MB -> front 1.5 MB; 3 MB object entirely in the small bucket.
    assert cat.small_bucket_bytes == int(1.5 * MB) + 3 * MB
    assert cat.small_bucket_share == pytest.approx((4.5 * MB) / (8.5 * MB))


def test_chunk_counts_match_partitioning(cluster):
    cat = geo_catalog(cluster, [32 * MB])
    obj = cat.objects[0]
    counter = cat.chunk_counts[(obj.pg_id, obj.role)]
    assert counter == {4 * MB: 2, 8 * MB: 1, 16 * MB: 1}


def test_balancing_prefers_least_filled_role(cluster):
    cat = geo_catalog(cluster, [100 * MB] * 40)
    # Objects in the same PG should spread across data roles.
    by_pg = {}
    for obj in cat.objects:
        by_pg.setdefault(obj.pg_id, []).append(obj.role)
    for roles in by_pg.values():
        assert len(set(roles)) == len(roles) or len(roles) > 10


def test_disk_of_and_objects_on_disk(cluster):
    cat = geo_catalog(cluster, [50 * MB] * 20)
    obj = cat.objects[0]
    disk = cat.disk_of(obj)
    assert obj in cat.objects_on_disk(disk)


def test_striped_objects_have_no_role(cluster):
    cat = Catalog(cluster, StripeLayout(256 * 1024, 10))
    cat.ingest([10 * MB])
    obj = cat.objects[0]
    assert obj.role is None
    assert cat.disk_of(obj) is None
    pg = cluster.pgs[obj.pg_id]
    assert obj in cat.objects_striped_over(pg.disk_ids[0])
    # Disk at a parity role does not make the object degraded.
    assert obj not in cat.objects_striped_over(pg.disk_ids[13])


def test_recovery_inventory_data_role(cluster):
    cat = geo_catalog(cluster, [32 * MB])
    obj = cat.objects[0]
    disk = cat.disk_of(obj)
    inventory = cat.recovery_inventory(disk)
    entries = [e for e in inventory if e[0].pg_id == obj.pg_id]
    assert len(entries) == 1
    _pg, role, chunks, _small = entries[0]
    assert role == obj.role
    assert chunks == {4 * MB: 2, 8 * MB: 1, 16 * MB: 1}


def test_recovery_inventory_bytes_conservation():
    """Summed over all disks, recovery inventories must cover ~1.4x the
    ingested data (parities included, estimation error small)."""
    cluster = Cluster(ClusterConfig(n_pgs=16))
    rng = np.random.default_rng(0)
    sizes = rng.integers(4 * MB, 200 * MB, size=300)
    cat = geo_catalog(cluster, sizes)
    total = 0
    for disk in range(cluster.config.n_disks):
        for _pg, _role, chunks, small in cat.recovery_inventory(disk):
            total += small + sum(s * c for s, c in chunks.items())
    expected = cat.total_bytes * 1.4
    assert total == pytest.approx(expected, rel=0.1)


def test_contiguous_inventory_from_fill():
    cluster = Cluster(ClusterConfig(n_pgs=4))
    cat = Catalog(cluster, ContiguousLayout(16 * MB))
    cat.ingest([10 * MB, 10 * MB, 10 * MB])  # may share chunks
    total_chunks = 0
    seen_pgs = set()
    for disk in range(cluster.config.n_disks):
        for pg, role, chunks, _small in cat.recovery_inventory(disk):
            if role < 10 and (pg.pg_id, role) not in seen_pgs:
                seen_pgs.add((pg.pg_id, role))
                total_chunks += sum(chunks.values())
    # 30 MB of data in 16 MB chunks: 2 chunks if packed together, up to 3
    # if spread over distinct buckets — never 6 (per-object double count).
    assert total_chunks <= 3


def test_average_chunk_size(cluster):
    cat = geo_catalog(cluster, [32 * MB])
    assert cat.average_chunk_size == pytest.approx(8 * MB)


def test_placement_of_striped_marks_failed_strips(cluster):
    cat = Catalog(cluster, StripeLayout(1 * MB, 10))
    cat.ingest([10 * MB])
    obj = cat.objects[0]
    placement = cat.placement_of(obj, failed_role=3)
    needing = [c for c in placement.chunks if c.needs_repair]
    assert all(c.disk_index == 3 for c in needing)

"""Tests for §5.1 metadata management (index files)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.catalog import Catalog
from repro.cluster.metadata import (
    ChunkPosition,
    IndexRecord,
    PGIndex,
    build_indexes,
)
from repro.core import GeometricLayout
from repro.trace import W1

MB = 1 << 20


def make_record(**overrides):
    defaults = dict(object_id=42, size=100 * MB, disk_id=7, checksum=0xDEAD,
                    chunk_positions=(ChunkPosition(1, 0), ChunkPosition(2, 3)),
                    front_length=123, front_offset=456)
    defaults.update(overrides)
    return IndexRecord(**defaults)


def test_chunk_position_validation():
    with pytest.raises(ValueError):
        ChunkPosition(0, 0)
    with pytest.raises(ValueError):
        ChunkPosition(1, 70000)  # bucket slot must fit 2 bytes (§5.1)


def test_record_validation():
    with pytest.raises(ValueError):
        make_record(object_id=-1)
    with pytest.raises(ValueError):
        make_record(disk_id=70000)
    with pytest.raises(ValueError):
        make_record(front_length=0, front_offset=10)


def test_record_roundtrip():
    record = make_record()
    data = record.serialize()
    parsed, offset = IndexRecord.deserialize(data)
    assert parsed == record
    assert offset == len(data) == record.record_bytes


def test_record_without_front_is_smaller():
    with_front = make_record()
    without = make_record(front_length=0, front_offset=0)
    assert without.record_bytes == with_front.record_bytes - 4


def test_average_record_size_is_about_40_bytes():
    """§5.1: 'the average metadata size of an object is about 40 bytes'."""
    rng = np.random.default_rng(0)
    sizes = W1.sample_sizes(rng, 500)
    cluster = Cluster(ClusterConfig(n_pgs=32))
    catalog = Catalog(cluster, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB))
    catalog.ingest(sizes)
    indexes = build_indexes(catalog)
    total = sum(i.size_bytes for i in indexes.values())
    per_object = total / len(catalog.objects)
    assert 25 <= per_object <= 55


def test_pg_index_roundtrip_and_lookup():
    index = PGIndex(9)
    index.append(make_record(object_id=1))
    index.append(make_record(object_id=2, front_length=0, front_offset=0))
    data = index.serialize()
    parsed = PGIndex.deserialize(data)
    assert parsed.pg_id == 9
    assert len(parsed.records) == 2
    assert parsed.lookup(2).object_id == 2
    with pytest.raises(KeyError):
        parsed.lookup(3)


def test_pg_index_detects_corruption():
    index = PGIndex(1)
    index.append(make_record())
    data = bytearray(index.serialize())
    data[15] ^= 0xFF
    with pytest.raises(ValueError):
        PGIndex.deserialize(bytes(data))


def test_pg_index_truncation_rejected():
    with pytest.raises(ValueError):
        PGIndex.deserialize(b"short")


def test_replica_placement():
    """Indexes are replicated on r + 1 distinct disks of the PG."""
    index = PGIndex(3)
    pg_disks = tuple(range(100, 114))
    replicas = index.replica_disks(pg_disks)
    assert len(replicas) == 5
    assert len(set(replicas)) == 5
    assert all(d in pg_disks for d in replicas)
    with pytest.raises(ValueError):
        index.replica_disks((1, 2, 3))


def test_replica_placement_varies_by_pg():
    pg_disks = tuple(range(14))
    a = PGIndex(0).replica_disks(pg_disks)
    b = PGIndex(1).replica_disks(pg_disks)
    assert a != b


def test_build_indexes_positions_are_dense_per_bucket():
    """Slots within one (pg, role, level) bucket count up from zero."""
    cluster = Cluster(ClusterConfig(n_pgs=4))
    catalog = Catalog(cluster, GeometricLayout(4 * MB, 2))
    catalog.ingest([32 * MB] * 8)
    indexes = build_indexes(catalog)
    seen: dict[tuple, list[int]] = {}
    for pg_id, index in indexes.items():
        for record in index.records:
            obj = catalog.objects[record.object_id]
            for pos in record.chunk_positions:
                seen.setdefault((pg_id, obj.role, pos.level), []).append(pos.slot)
    for slots in seen.values():
        assert sorted(slots) == list(range(len(slots)))


def test_index_memory_estimate_matches_catalog():
    cluster = Cluster(ClusterConfig(n_pgs=8))
    catalog = Catalog(cluster, GeometricLayout(4 * MB, 2))
    catalog.ingest([10 * MB, 33 * MB, 200 * MB])
    indexes = build_indexes(catalog)
    assert sum(len(i.records) for i in indexes.values()) == 3


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**63 - 1),
       st.integers(min_value=0, max_value=2**40),
       st.integers(min_value=0, max_value=65535),
       st.lists(st.tuples(st.integers(1, 255), st.integers(0, 65535)),
                max_size=20))
def test_property_record_roundtrip(object_id, size, disk_id, chunks):
    record = IndexRecord(object_id, size, disk_id, checksum=0xABCD,
                         chunk_positions=tuple(ChunkPosition(l, s)
                                               for l, s in chunks))
    parsed, _ = IndexRecord.deserialize(record.serialize())
    assert parsed == record

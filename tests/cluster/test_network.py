"""Network link tests."""

import pytest

from repro.cluster import GBPS, Link, Nic, client_link
from repro.sim import Environment


def test_transfer_time():
    env = Environment()
    link = Link(env, 100.0)
    assert link.transfer_time(50) == pytest.approx(0.5)


def test_bandwidth_validation():
    with pytest.raises(ValueError):
        Link(Environment(), 0)


def test_negative_transfer_rejected():
    env = Environment()
    link = Link(env, 10.0)

    def proc():
        yield env.process(link.transfer(-1))

    with pytest.raises(ValueError):
        env.process(proc())
        env.run()


def test_transfers_serialize():
    env = Environment()
    link = Link(env, 100.0)
    done = []

    def job(name):
        yield env.process(link.transfer(100))
        done.append((env.now, name))

    env.process(job("a"))
    env.process(job("b"))
    env.run()
    assert done == [(1.0, "a"), (2.0, "b")]
    assert link.bytes_transferred == 200


def test_client_link_bandwidth():
    env = Environment()
    link = client_link(env, gbps=1.0)
    # 1 Gbps = 125 MiB/s here; a 125 MiB transfer takes 1 s.
    assert link.transfer_time(125 * (1 << 20)) == pytest.approx(1.0)
    fast = client_link(env, gbps=4.0)
    assert fast.transfer_time(125 * (1 << 20)) == pytest.approx(0.25)


def test_nic_is_fast():
    env = Environment()
    nic = Nic(env)
    # 1 GiB through a 50 Gbps NIC: well under a second.
    assert nic.transfer_time(1 << 30) < 0.2
    assert nic.bandwidth == 50 * GBPS

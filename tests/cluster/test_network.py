"""Network link tests."""

import pytest

from repro.cluster import GBPS, Link, Nic, client_link
from repro.sim import Environment


def test_transfer_time():
    env = Environment()
    link = Link(env, 100.0)
    assert link.transfer_time(50) == pytest.approx(0.5)


def test_bandwidth_validation():
    with pytest.raises(ValueError):
        Link(Environment(), 0)


def test_negative_transfer_rejected():
    env = Environment()
    link = Link(env, 10.0)

    def proc():
        yield env.process(link.transfer(-1))

    with pytest.raises(ValueError):
        env.process(proc())
        env.run()


def test_transfers_serialize():
    env = Environment()
    link = Link(env, 100.0)
    done = []

    def job(name):
        yield env.process(link.transfer(100))
        done.append((env.now, name))

    env.process(job("a"))
    env.process(job("b"))
    env.run()
    assert done == [(1.0, "a"), (2.0, "b")]
    assert link.bytes_transferred == 200


def test_client_link_bandwidth():
    env = Environment()
    link = client_link(env, gbps=1.0)
    # 1 Gbps = 125 MiB/s here; a 125 MiB transfer takes 1 s.
    assert link.transfer_time(125 * (1 << 20)) == pytest.approx(1.0)
    fast = client_link(env, gbps=4.0)
    assert fast.transfer_time(125 * (1 << 20)) == pytest.approx(0.25)


def test_nic_is_fast():
    env = Environment()
    nic = Nic(env)
    # 1 GiB through a 50 Gbps NIC: well under a second.
    assert nic.transfer_time(1 << 30) < 0.2
    assert nic.bandwidth == 50 * GBPS


# ----------------------------------------------------------------------
# Partial-byte accounting under interruption (fault plans kill transfers)
# ----------------------------------------------------------------------
def test_interrupted_transfer_accounts_partial_bytes():
    from repro.sim import Interrupted

    env = Environment()
    link = Link(env, 100.0)  # 100 B/s -> a 100 B transfer takes 1 s
    tproc = env.process(link.transfer(100))

    def killer():
        yield env.timeout(0.25)
        tproc.interrupt("test")

    env.process(killer())
    env.run()
    assert isinstance(tproc.value, Interrupted)
    # 25% of the service time elapsed -> 25 bytes on the counter.
    assert link.bytes_transferred == 25


def test_completed_transfer_still_counts_once():
    env = Environment()
    link = Link(env, 100.0)

    def xfer():
        yield env.process(link.transfer(100))

    env.run(env.process(xfer()))
    assert link.bytes_transferred == 100


# ----------------------------------------------------------------------
# client_link forwards observer wiring
# ----------------------------------------------------------------------
def test_client_link_forwards_obs_kind_and_run():
    from repro.obs import Observer

    env = Environment()
    obs = Observer()
    link = client_link(env, gbps=2.0, obs=obs, run="r1")

    def xfer():
        yield env.process(link.transfer(1 << 20))

    env.run(env.process(xfer()))
    names = {key for key, _ in obs.metrics}
    assert any(n.startswith("client.queue_wait") for n in names)
    assert any("r1.client-2.0gbps" in n for n in names)


# ----------------------------------------------------------------------
# Fabric: routing and gather on flat vs tiered configs
# ----------------------------------------------------------------------
def _fabrics():
    from repro.cluster import ClusterConfig, Fabric

    flat = Fabric(Environment(), ClusterConfig(n_nodes=16))
    env = Environment()
    tiered = Fabric(env, ClusterConfig(
        n_nodes=16, n_racks=4, nodes_per_rack=4,
        tor_gbps=10.0, oversubscription=2.0))
    return flat, tiered, env


def test_flat_fabric_routes_to_destination_nic_only():
    flat, _, _ = _fabrics()
    assert not flat.tiered
    assert flat.agg is None and flat.tors == []
    assert flat.route(3) == [flat.nics[3]]
    assert flat.route(3, src_node=9) == [flat.nics[3]]
    assert set(flat.links) == {f"nic-{n}" for n in range(16)}


def test_tiered_route_chains():
    _, fabric, _ = _fabrics()
    assert fabric.tiered
    # No source: destination NIC only (client ingress).
    assert fabric.route(5) == [fabric.nics[5]]
    # Same node: no network at all beyond the local NIC.
    assert fabric.route(5, src_node=5) == [fabric.nics[5]]
    # Intra-rack (nodes 4 and 5 share rack 1): both NICs, no switches.
    assert fabric.route(5, src_node=4) == [fabric.nics[4], fabric.nics[5]]
    # Cross-rack (node 0 in rack 0 -> node 5 in rack 1): full chain.
    assert fabric.route(5, src_node=0) == [
        fabric.nics[0], fabric.tors[0], fabric.agg,
        fabric.tors[1], fabric.nics[5]]


def test_tiered_fabric_link_registry():
    _, fabric, _ = _fabrics()
    assert fabric.links["tor-2"] is fabric.tors[2]
    assert fabric.links["agg"] is fabric.agg
    assert fabric.links["nic-7"] is fabric.nics[7]


def test_oversubscription_derives_agg_bandwidth():
    from repro.cluster import ClusterConfig

    config = ClusterConfig(n_nodes=16, n_racks=4, tor_gbps=10.0,
                           oversubscription=2.0)
    # 4 racks x 10 Gbps / 2:1 = 20 Gbps of aggregation capacity.
    assert config.agg_bandwidth == pytest.approx(20 * GBPS)
    explicit = ClusterConfig(n_nodes=16, n_racks=4, tor_gbps=10.0,
                             agg_gbps=5.0, oversubscription=2.0)
    assert explicit.agg_bandwidth == pytest.approx(5 * GBPS)


def test_cross_rack_transfer_charges_the_whole_chain():
    _, fabric, env = _fabrics()
    nbytes = 1 << 20

    def xfer():
        yield env.process(fabric.transfer(nbytes, 5, src_node=0))

    env.run(env.process(xfer()))
    for link in (fabric.nics[0], fabric.tors[0], fabric.agg,
                 fabric.tors[1], fabric.nics[5]):
        assert link.bytes_transferred == nbytes
    assert fabric.nics[1].bytes_transferred == 0
    assert fabric.tors[2].bytes_transferred == 0


def test_gather_skips_switches_for_local_sources():
    _, fabric, env = _fabrics()
    nbytes = 1 << 20
    # Helpers on nodes 4 (same rack as dst 5) and 8 (rack 2).
    sources = [(4, nbytes), (8, nbytes), (5, nbytes)]

    def proc():
        yield env.process(fabric.gather(5, 3 * nbytes, sources))

    env.run(env.process(proc()))
    # dst NIC serialises the combined payload (and nothing upstream of
    # the src==dst leg, which is skipped).
    assert fabric.nics[5].bytes_transferred == 3 * nbytes
    # Intra-rack leg: src NIC only.
    assert fabric.nics[4].bytes_transferred == nbytes
    assert fabric.tors[1].bytes_transferred == nbytes  # dst-rack ToR ingress
    # Cross-rack leg: src NIC, src ToR, agg, dst ToR.
    assert fabric.nics[8].bytes_transferred == nbytes
    assert fabric.tors[2].bytes_transferred == nbytes
    assert fabric.agg.bytes_transferred == nbytes


def test_gather_without_sources_matches_flat_model():
    flat, _, _ = _fabrics()
    env = flat.env
    nbytes = 4 << 20

    def proc():
        yield env.process(flat.gather(2, nbytes, [(0, nbytes)]))
        yield env.process(flat.gather(2, nbytes))

    env.run(env.process(proc()))
    # Flat fabric: source legs are ignored entirely either way.
    assert flat.nics[2].bytes_transferred == 2 * nbytes
    assert flat.nics[0].bytes_transferred == 0


def test_slow_agg_backlogs_cross_rack_flows():
    """With the agg link degraded, cross-rack gathers take longer than
    intra-rack ones moving the same bytes."""
    _, fabric, env = _fabrics()
    nbytes = 64 << 20
    times = {}

    def timed(name, dst, sources):
        t0 = env.now
        yield env.process(fabric.gather(dst, nbytes, sources))
        times[name] = env.now - t0

    fabric.agg.speed_factor = 8.0

    def driver():
        yield env.process(timed("intra", 5, [(4, nbytes)]))
        yield env.process(timed("cross", 5, [(0, nbytes)]))

    env.run(env.process(driver()))
    assert times["cross"] > 2 * times["intra"]

"""Cluster topology / placement-group tests."""

from collections import Counter

import pytest

from repro.cluster import Cluster, ClusterConfig


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=8)  # < k + r
    with pytest.raises(ValueError):
        ClusterConfig(disks_per_node=0)
    with pytest.raises(ValueError):
        ClusterConfig(n_pgs=0)


def test_config_defaults_match_paper():
    c = ClusterConfig()
    assert c.n_nodes == 16 and c.disks_per_node == 6
    assert c.k == 10 and c.r == 4 and c.n == 14
    assert c.n_disks == 96
    assert c.recovery_global_weight == 512
    assert c.recovery_weight_unit == 4 * (1 << 20)


def test_node_of():
    c = ClusterConfig()
    assert c.node_of(0) == 0
    assert c.node_of(5) == 0
    assert c.node_of(6) == 1
    assert c.node_of(95) == 15


def test_pgs_have_distinct_nodes():
    cluster = Cluster(ClusterConfig(n_pgs=200))
    for pg in cluster.pgs:
        assert len(pg.disk_ids) == 14
        nodes = {cluster.config.node_of(d) for d in pg.disk_ids}
        assert len(nodes) == 14


def test_pg_membership_balanced():
    config = ClusterConfig(n_pgs=480)
    cluster = Cluster(config)
    membership = Counter()
    for pg in cluster.pgs:
        membership.update(pg.disk_ids)
    counts = [membership[d] for d in range(config.n_disks)]
    expected = 480 * 14 / 96
    assert min(counts) >= 0.7 * expected
    assert max(counts) <= 1.3 * expected


def test_roles_rotate_across_pgs():
    """Each disk should play many different roles (Clay's 4 repair cases)."""
    cluster = Cluster(ClusterConfig(n_pgs=480))
    roles_of_disk0 = {pg.role_of(0) for pg in cluster.pgs_of_disk(0)}
    assert len(roles_of_disk0) >= 8


def test_pgs_of_disk_consistent():
    cluster = Cluster(ClusterConfig(n_pgs=100))
    for disk in (0, 50, 95):
        for pg in cluster.pgs_of_disk(disk):
            assert disk in pg


def test_pg_construction_deterministic():
    a = Cluster(ClusterConfig(n_pgs=50))
    b = Cluster(ClusterConfig(n_pgs=50))
    assert [pg.disk_ids for pg in a.pgs] == [pg.disk_ids for pg in b.pgs]
    c = Cluster(ClusterConfig(n_pgs=50, pg_seed=7))
    assert [pg.disk_ids for pg in a.pgs] != [pg.disk_ids for pg in c.pgs]


def test_role_of_raises_for_non_member():
    cluster = Cluster(ClusterConfig(n_pgs=4))
    pg = cluster.pgs[0]
    outsider = next(d for d in range(96) if d not in pg)
    with pytest.raises(ValueError):
        pg.role_of(outsider)


# ----------------------------------------------------------------------
# Rack hierarchy
# ----------------------------------------------------------------------
def test_default_config_is_flat():
    c = ClusterConfig()
    assert c.n_racks == 1
    assert c.rack_size == 16
    assert c.rack_of(0) == c.rack_of(15) == 0


def test_rack_of_and_nodes_in_rack():
    c = ClusterConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)
    assert c.rack_size == 4
    assert c.rack_of(0) == 0 and c.rack_of(3) == 0
    assert c.rack_of(4) == 1 and c.rack_of(15) == 3
    assert list(c.nodes_in_rack(2)) == [8, 9, 10, 11]


def test_derived_rack_size_and_short_last_rack():
    c = ClusterConfig(n_nodes=14, n_racks=4)  # ceil(14/4) = 4 per rack
    assert c.rack_size == 4
    assert list(c.nodes_in_rack(3)) == [12, 13]  # last rack is short
    assert c.rack_of(13) == 3


def test_rack_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_racks=0)
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=16, n_racks=2, nodes_per_rack=4)  # 8 < 16
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=16, n_racks=4, tor_gbps=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=16, n_racks=4, oversubscription=0.5)
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=16, n_racks=4, agg_gbps=-1.0)


def test_rack_span():
    config = ClusterConfig(n_nodes=16, n_racks=4, nodes_per_rack=4,
                           n_pgs=32)
    cluster = Cluster(config)
    for pg in cluster.pgs:
        span = cluster.rack_span(pg)
        assert 4 <= span <= 4  # 14 nodes of 16 must touch all 4 racks

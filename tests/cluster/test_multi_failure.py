"""Multi-failure recovery tests (§2.2: rare but required for reliability)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, RCStor
from repro.codes import ClayCode, RSCode
from repro.core import GeometricLayout, StripeLayout

MB = 1 << 20


@pytest.fixture(scope="module")
def system():
    config = ClusterConfig(n_pgs=64)
    s = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
               ClayCode(10, 4))
    rng = np.random.default_rng(1)
    s.ingest(rng.integers(8 * MB, 150 * MB, size=1000))
    return s


def _shared_pg_disks(system):
    """Two failed disks on different nodes sharing at least one PG."""
    pg = system.cluster.pgs[0]
    return pg.disk_ids[0], pg.disk_ids[1]


def test_validation(system):
    with pytest.raises(ValueError):
        system.run_multi_failure_recovery([])
    with pytest.raises(ValueError):
        system.run_multi_failure_recovery([0, 6, 12, 18, 24])  # > r


def test_single_failure_equivalence(system):
    """A one-element failure list behaves like run_recovery."""
    single = system.run_recovery(0)
    multi = system.run_multi_failure_recovery([0])
    assert multi.repaired_bytes == single.repaired_bytes
    assert multi.n_tasks == single.n_tasks
    assert multi.makespan == pytest.approx(single.makespan, rel=0.05)


def test_double_failure_repairs_both_disks(system):
    d1, d2 = _shared_pg_disks(system)
    double = system.run_multi_failure_recovery([d1, d2])
    s1 = system.run_recovery(d1)
    s2 = system.run_recovery(d2)
    assert double.repaired_bytes == pytest.approx(
        s1.repaired_bytes + s2.repaired_bytes, rel=0.15)
    assert double.makespan > 0


def test_shared_pgs_fall_back_to_full_decode(system):
    """PGs hit twice must read full survivor chunks (no sub-chunking)."""
    d1, d2 = _shared_pg_disks(system)
    tasks = system._build_multi_failure_tasks([d1, d2])
    assert tasks, "the two disks share a PG, so decode tasks must exist"
    for task in tasks:
        assert task.is_rs  # full decode path, not regenerating repair
        for helper in task.profile.helpers:
            assert helper.nbytes == task.profile.output_bytes  # full chunks


def test_multi_failure_helpers_avoid_failed_disks(system):
    d1, d2 = _shared_pg_disks(system)
    tasks = system._build_multi_failure_tasks([d1, d2])
    for task in tasks:
        failed_roles = {task.pg.role_of(d) for d in (d1, d2) if d in task.pg}
        for helper in task.profile.helpers:
            assert helper.role not in failed_roles


def test_disjoint_double_failure_is_two_singles(system):
    """Disks on the same node never share a PG: no decode tasks."""
    assert system._build_multi_failure_tasks([0, 1]) == []
    report = system.run_multi_failure_recovery([0, 1])
    assert report.repaired_bytes > 0


def test_multi_failure_with_rs_stripe():
    config = ClusterConfig(n_pgs=32)
    s = RCStor(config, StripeLayout(256 * 1024, 10), RSCode(10, 4))
    rng = np.random.default_rng(2)
    s.ingest(rng.integers(8 * MB, 64 * MB, size=400))
    pg = s.cluster.pgs[0]
    report = s.run_multi_failure_recovery([pg.disk_ids[0], pg.disk_ids[5]])
    assert report.repaired_bytes > 0
    assert report.recovery_rate > 0


def test_node_recovery(system):
    """A whole node fails: each PG loses one disk, so work is 6 optimal
    single-disk recoveries sharing the cluster."""
    report = system.run_node_recovery(0)
    singles = [system.run_recovery(d) for d in range(6)]
    assert report.repaired_bytes == sum(s.repaired_bytes for s in singles)
    # Parallelism: the node recovery beats running the six serially.
    assert report.makespan < sum(s.makespan for s in singles)
    # But it cannot beat the slowest single-disk recovery.
    assert report.makespan >= max(s.makespan for s in singles) * 0.9


def test_node_recovery_validation(system):
    with pytest.raises(ValueError):
        system.run_node_recovery(99)

"""Integration tests of the RCStor simulation (reads + recovery)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, RCStor
from repro.codes import ClayCode, LRCCode, RSCode
from repro.core import ContiguousLayout, GeometricLayout, StripeLayout

MB = 1 << 20
GB = 1 << 30


@pytest.fixture(scope="module")
def config():
    return ClusterConfig(n_pgs=48)


@pytest.fixture(scope="module")
def sizes():
    rng = np.random.default_rng(3)
    return rng.integers(4 * MB, 256 * MB, size=600)


@pytest.fixture(scope="module")
def geo_system(config, sizes):
    system = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                    ClayCode(10, 4))
    system.ingest(sizes)
    return system


@pytest.fixture(scope="module")
def stripe_rs_system(config, sizes):
    system = RCStor(config, StripeLayout(256 * 1024, 10), RSCode(10, 4))
    system.ingest(sizes)
    return system


def test_code_must_match_cluster(config):
    with pytest.raises(ValueError):
        RCStor(config, GeometricLayout(4 * MB), RSCode(6, 3))


def test_normal_read_transfer_bound(geo_system):
    """At 1 Gbps, normal reads are transfer-dominated (paper §6.2)."""
    obj = next(o for o in geo_system.catalog.objects if o.size > 50 * MB)
    [t] = geo_system.measure_normal_reads([obj])
    transfer = obj.size / (125 * MB)
    assert t == pytest.approx(transfer, rel=0.25)
    assert t >= transfer


def test_degraded_read_close_to_normal_read(geo_system):
    """Headline claim: Geo degraded reads ≈ 1.02x normal reads (idle)."""
    disk = geo_system.catalog.disk_of(geo_system.catalog.objects[0])
    objs = geo_system.degraded_read_candidates(disk)[:8]
    normal = geo_system.measure_normal_reads(objs)
    degraded = [r.total_time for r in
                geo_system.measure_degraded_reads(objs, disk)]
    ratio = sum(degraded) / sum(normal)
    assert 1.0 <= ratio < 1.25


def test_degraded_read_breakdown_consistent(geo_system):
    disk = geo_system.catalog.disk_of(geo_system.catalog.objects[0])
    objs = geo_system.degraded_read_candidates(disk)[:4]
    for r in geo_system.measure_degraded_reads(objs, disk):
        assert r.total_time > 0
        assert r.repair_time <= r.total_time + 1e-9
        assert r.transfer_time <= r.total_time + 1e-9
        # Pipelining: total is far below repair + transfer done serially.
        assert r.total_time <= r.repair_time + r.transfer_time


def test_degraded_read_busy_slower_than_idle(geo_system):
    disk = geo_system.catalog.disk_of(geo_system.catalog.objects[0])
    objs = geo_system.degraded_read_candidates(disk)[:6]
    idle = sum(r.total_time for r in
               geo_system.measure_degraded_reads(objs, disk))
    busy = sum(r.total_time for r in
               geo_system.measure_degraded_reads(objs, disk, busy=True, seed=1))
    assert busy > idle


def test_striped_degraded_read_candidates(stripe_rs_system):
    cands = stripe_rs_system.degraded_read_candidates(0)
    assert cands
    res = stripe_rs_system.measure_degraded_reads(cands[:5], 0)
    for r in res:
        transfer = r.object_size / (125 * MB)
        assert r.total_time >= transfer * 0.99


def test_recovery_conserves_bytes(geo_system):
    report = geo_system.run_recovery(0)
    expected = geo_system.catalog.total_bytes * 1.4 / geo_system.config.n_disks
    assert report.repaired_bytes == pytest.approx(expected, rel=0.35)
    assert report.makespan > 0
    assert report.n_tasks > 0
    assert report.recovery_rate > 0


def test_recovery_bandwidths_positive(geo_system):
    report = geo_system.run_recovery(1)
    assert 0 < report.disk_bandwidth < geo_system.config.disk_model.read_bandwidth
    assert report.network_bandwidth > 0


def test_recovery_busy_slower(geo_system):
    idle = geo_system.run_recovery(2)
    busy = geo_system.run_recovery(2, busy=True, seed=5)
    assert busy.makespan > idle.makespan


def test_recovery_deterministic(geo_system):
    a = geo_system.run_recovery(3)
    b = geo_system.run_recovery(3)
    assert a.makespan == pytest.approx(b.makespan)


def test_geo_recovers_faster_than_rs_per_byte(geo_system, stripe_rs_system):
    """The headline: Clay+Geo beats RS-on-stripe recovery clearly."""
    geo = geo_system.run_recovery(0)
    rs = stripe_rs_system.run_recovery(0)
    geo_per_byte = geo.makespan / geo.repaired_bytes
    rs_per_byte = rs.makespan / rs.repaired_bytes
    assert rs_per_byte > 1.4 * geo_per_byte


def test_fragmented_stripe_clay_recovers_slowest(config, sizes):
    """Small-strip Clay is the worst recovery configuration (Figure 9)."""
    stripe_clay = RCStor(config, StripeLayout(256 * 1024, 10), ClayCode(10, 4))
    stripe_clay.ingest(sizes)
    geo = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                 ClayCode(10, 4))
    geo.ingest(sizes)
    frag = stripe_clay.run_recovery(0)
    fast = geo.run_recovery(0)
    assert (frag.makespan / frag.repaired_bytes
            > 1.5 * fast.makespan / fast.repaired_bytes)


def test_contiguous_degraded_read_amplified(config, sizes):
    con = RCStor(config, ContiguousLayout(64 * MB), ClayCode(10, 4))
    con.ingest(sizes)
    geo = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                 ClayCode(10, 4))
    geo.ingest(sizes)
    # Same objects ingested in the same order -> same ids; compare means.
    con_objs = con.degraded_read_candidates(0)[:6]
    geo_objs = geo.degraded_read_candidates(0)[:6]
    con_t = np.mean([r.total_time / r.object_size for r in
                     con.measure_degraded_reads(con_objs, 0)])
    geo_t = np.mean([r.total_time / r.object_size for r in
                     geo.measure_degraded_reads(geo_objs, 0)])
    assert con_t > geo_t


def test_lrc_system_runs(config, sizes):
    lrc = RCStor(config, StripeLayout(256 * 1024, 10), LRCCode(10, 2, 2))
    lrc.ingest(sizes)
    report = lrc.run_recovery(0)
    assert report.recovery_rate > 0


def test_degraded_reads_during_recovery(geo_system):
    """§5.1 IO scheduling: reads complete while recovery is in flight, and
    background-priority recovery hurts them less than head-on competition."""
    from repro.cluster import BACKGROUND, FOREGROUND

    objs = geo_system.catalog.objects[:5]
    with_prio, report_bg = geo_system.measure_degraded_reads_during_recovery(
        objs, failed_disk=0, recovery_priority=BACKGROUND)
    without, report_fg = geo_system.measure_degraded_reads_during_recovery(
        objs, failed_disk=0, recovery_priority=FOREGROUND)
    assert len(with_prio) == len(without) == 5
    assert report_bg.repaired_bytes == report_fg.repaired_bytes
    mean_with = np.mean([r.total_time for r in with_prio])
    mean_without = np.mean([r.total_time for r in without])
    assert mean_with <= mean_without * 1.05
    # Degraded reads under recovery load are slower than on an idle system.
    idle = geo_system.measure_degraded_reads(objs, None)
    assert mean_without >= np.mean([r.total_time for r in idle]) * 0.99


def test_recovery_weight_limit_throttles(geo_system):
    unlimited = geo_system.run_recovery(4)
    throttled = geo_system.run_recovery(4, weight_limit=1)
    assert throttled.makespan > unlimited.makespan


def test_lrc_striped_degraded_read_touches_local_parity(config, sizes):
    """White-box: LRC's k+1-response rebuild reads the failed group's
    local parity disk (§6.1)."""
    from repro.cluster.rcstor import _Runtime
    from repro.cluster import client_link
    from repro.cluster.rcstor import DegradedReadResult

    lrc = RCStor(config, StripeLayout(256 * 1024, 10), LRCCode(10, 2, 2))
    lrc.ingest(sizes)
    obj = next(o for o in lrc.catalog.objects if o.size > 32 * MB)
    pg = lrc.cluster.pgs[obj.pg_id]
    failed_role = 2  # data role in group 0 -> local parity at role 10
    rt = _Runtime(lrc.config, 0)
    result = DegradedReadResult(0.0, 0.0, 0.0, obj.size)
    client = client_link(rt.env, 1.0)
    done = rt.env.process(lrc._degraded_striped_proc(
        rt, obj, failed_role, client, result))
    rt.env.run(done)
    local_parity_disk = rt.disks[pg.disk_ids[10]]
    global_parity_disk = rt.disks[pg.disk_ids[10 + lrc.code.group_of(failed_role)]]
    assert local_parity_disk.bytes_read > 0

"""Repair-profile tests: the codes → simulator bridge."""

import pytest

from repro.cluster import ProfileCache
from repro.codes import ClayCode, HitchhikerCode, LRCCode, RSCode

MB = 1 << 20


def test_rs_profile_reads_k_full_chunks():
    cache = ProfileCache(RSCode(10, 4))
    p = cache.get(0, 4 * MB)
    assert len(p.helpers) == 10
    assert all(h.nbytes == 4 * MB and h.n_ios == 1 for h in p.helpers)
    assert p.read_traffic_ratio == pytest.approx(10.0)


def test_clay_profile_traffic_and_fragmentation():
    cache = ProfileCache(ClayCode(10, 4))
    chunk = 256 * MB
    expectations = {0: 1, 5: 4, 10: 16, 13: 64}  # Figure 2 cases
    for failed, ios in expectations.items():
        p = cache.get(failed, chunk)
        assert len(p.helpers) == 13
        assert all(h.n_ios == ios for h in p.helpers)
        assert all(h.nbytes == chunk // 4 for h in p.helpers)
        assert p.read_traffic_ratio == pytest.approx(3.25)


def test_clay_profile_span_is_full_chunk_when_scattered():
    cache = ProfileCache(ClayCode(10, 4))
    p = cache.get(13, 256 * MB)  # worst case: 64 runs across the chunk
    h = p.helpers[0]
    assert h.span > h.nbytes
    # The scattered pattern spans (almost) the whole chunk.
    assert h.span > 0.9 * 256 * MB


def test_lrc_profile_locality():
    cache = ProfileCache(LRCCode(10, 2, 2))
    p = cache.get(0, 4 * MB)
    assert len(p.helpers) == 5  # group members only
    p_global = cache.get(13, 4 * MB)
    assert len(p_global.helpers) == 10


def test_hitchhiker_profile_half_reads():
    cache = ProfileCache(HitchhikerCode(10, 4))
    p = cache.get(0, 4 * MB)
    assert p.read_traffic_ratio == pytest.approx(6.5)
    by_role = {h.role: h for h in p.helpers}
    assert by_role[5].nbytes == 2 * MB  # non-group data node: half chunk


def test_profiles_cached():
    cache = ProfileCache(RSCode(10, 4))
    assert cache.get(3, MB) is cache.get(3, MB)


def test_chunk_rounding_to_alpha():
    cache = ProfileCache(ClayCode(10, 4))
    p = cache.get(0, 1000)  # not a multiple of alpha=256
    assert p.chunk_size == 1024
    tiny = cache.get(0, 1)
    assert tiny.chunk_size == 256


def test_scaled_profile():
    cache = ProfileCache(ClayCode(10, 4))
    p = cache.get(13, 256 * 1024)
    s = p.scaled(16)
    assert s.output_bytes == 16 * p.output_bytes
    assert s.helpers[0].n_ios == 16 * p.helpers[0].n_ios
    assert s.helpers[0].span == 16 * p.helpers[0].span
    assert p.scaled(1) is p
    with pytest.raises(ValueError):
        p.scaled(0)

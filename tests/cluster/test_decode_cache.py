"""Tests for the erasure-pattern decode-matrix LRU (repro.cluster.codec)."""

import numpy as np
import pytest

from repro.cluster import DecodeMatrixCache
from repro.codes import LRCCode, RSCode
from repro.codes.base import DecodeError


def _stripe(code, chunk_size=512, seed=3):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, chunk_size, dtype=np.uint8)
            for _ in range(code.k)]
    return dict(enumerate(code.encode_stripe(data)))


def test_cached_decode_is_bit_identical_to_code_decode():
    code = RSCode(6, 3)
    chunks = _stripe(code)
    cache = DecodeMatrixCache()
    for erased in ([0], [1, 4], [0, 6, 8], [5, 7]):
        available = {n: c for n, c in chunks.items() if n not in erased}
        expected = code.decode(available, erased, 512)
        got = cache.decode(code, available, erased, 512)
        assert sorted(got) == sorted(expected)
        for node in expected:
            assert np.array_equal(got[node], expected[node])


def test_repeated_patterns_hit_the_cache():
    code = RSCode(4, 2)
    chunks = _stripe(code)
    cache = DecodeMatrixCache()
    erased = [1]
    available = {n: c for n, c in chunks.items() if n not in erased}
    for _ in range(5):
        cache.decode(code, available, erased, 512)
    assert cache.misses == 1
    assert cache.hits == 4
    assert cache.hit_rate == 0.8
    assert len(cache) == 1


def test_distinct_patterns_and_codes_key_separately():
    rs = RSCode(4, 2)
    lrc = LRCCode(4, 2, 2)
    cache = DecodeMatrixCache()
    rs_chunks = _stripe(rs)
    lrc_chunks = _stripe(lrc)
    for erased in ([0], [1], [2]):
        cache.decode(rs, {n: c for n, c in rs_chunks.items()
                          if n not in erased}, erased, 512)
        cache.decode(lrc, {n: c for n, c in lrc_chunks.items()
                           if n not in erased}, erased, 512)
    assert cache.misses == 6
    assert cache.hits == 0
    assert len(cache) == 6


def test_lru_eviction_bounds_the_cache():
    code = RSCode(10, 4)
    cache = DecodeMatrixCache(capacity=3)
    alive = list(range(code.n))
    for failed in range(6):
        avail = [n for n in alive if n != failed]
        cache.matrix(code, avail, [failed])
    assert len(cache) == 3
    # The oldest pattern was evicted: asking again is a miss.
    before = cache.misses
    cache.matrix(code, [n for n in alive if n != 0], [0])
    assert cache.misses == before + 1
    # The most recent pattern is still cached.
    before_hits = cache.hits
    cache.matrix(code, [n for n in alive if n != 5], [5])
    assert cache.hits == before_hits + 1


def test_matrix_reconstructs_erased_chunks_directly():
    code = RSCode(5, 3)
    chunks = _stripe(code, chunk_size=64)
    cache = DecodeMatrixCache()
    erased = [2, 6]
    avail = sorted(set(chunks) - set(erased))
    m = cache.matrix(code, avail, erased)
    assert m.shape == (len(erased), len(avail))
    stacked = np.stack([chunks[n] for n in avail])
    from repro.gf.matrix import mat_mul

    rebuilt = mat_mul(m, stacked)
    for row, node in enumerate(sorted(erased)):
        assert np.array_equal(rebuilt[row], chunks[node])


def test_undecodable_pattern_raises_and_is_not_cached():
    from itertools import combinations

    lrc = LRCCode(4, 2, 2)
    cache = DecodeMatrixCache()
    # LRC is non-MDS: some 4-erasure patterns exceed what its local+global
    # parities span.  Find one rather than hard-coding group geometry.
    undecodable = next(
        list(c) for c in combinations(range(lrc.n), 4)
        if not lrc.decodable(c))
    avail = [n for n in range(lrc.n) if n not in undecodable]
    with pytest.raises(DecodeError):
        cache.matrix(lrc, avail, undecodable)
    assert len(cache) == 0


def test_clear_and_capacity_validation():
    cache = DecodeMatrixCache()
    code = RSCode(4, 2)
    cache.matrix(code, [0, 1, 2, 3], [4])
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.misses == 1  # stats survive clear()
    with pytest.raises(ValueError):
        DecodeMatrixCache(capacity=0)


def test_solution_matrix_lru_on_the_code_itself():
    """ScalarLinearCode memoizes per erasure pattern and stays correct."""
    code = RSCode(4, 2)
    nodes = (0, 2, 3, 5)
    first = code.solution_matrix(nodes)
    second = code.solution_matrix(nodes)
    assert first is second  # cached object, not a recompute
    # Eviction: overflow the bounded cache and confirm recompute happens.
    code.SOLUTION_CACHE_SIZE = 2
    code.solution_matrix((0, 1, 2, 3))
    code.solution_matrix((1, 2, 3, 4))
    code.solution_matrix((2, 3, 4, 5))
    third = code.solution_matrix(nodes)
    assert third is not first
    assert np.array_equal(third, first)

"""Tests for the §5.2 memory pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.memory import (
    IN_MEMORY,
    ON_DISK,
    ChunkTooLargeError,
    MemoryPool,
)

MB = 1 << 20


def test_validation():
    with pytest.raises(ValueError):
        MemoryPool(capacity_bytes=0)
    with pytest.raises(ValueError):
        MemoryPool(retention=0)


def test_allocation_cap_at_256mb():
    """§5.2: never allocate chunks above 256 MB."""
    pool = MemoryPool(capacity_bytes=2 << 30)
    with pytest.raises(ChunkTooLargeError):
        pool.allocate("huge", 257 * MB, now=0.0)
    pool.allocate("ok", 256 * MB, now=0.0)
    assert pool.used_bytes == 256 * MB


def test_lookup_states():
    pool = MemoryPool(capacity_bytes=1 << 30, retention=10)
    pool.allocate("a", 4 * MB, now=0.0)
    assert pool.lookup("a", now=1.0) == IN_MEMORY
    assert pool.lookup("never", now=1.0) is None
    # After the retention window, requests are redirected to disk.
    assert pool.lookup("a", now=11.0) == ON_DISK
    assert pool.stats.memory_hits == 1
    assert pool.stats.disk_redirects == 1
    assert pool.stats.misses == 1


def test_expiry_flushes_to_disk():
    pool = MemoryPool(capacity_bytes=1 << 30, retention=5)
    pool.allocate("a", 8 * MB, now=0.0)
    pool.allocate("b", 8 * MB, now=3.0)
    assert pool.expire(now=5.0) == 1  # only "a" expired
    assert pool.used_bytes == 8 * MB
    assert pool.lookup("a", now=5.0) == ON_DISK
    assert pool.lookup("b", now=5.0) == IN_MEMORY


def test_pressure_flushes_oldest_first():
    """Slow-client protection: memory pressure evicts the oldest chunk."""
    pool = MemoryPool(capacity_bytes=20 * MB, retention=100)
    pool.allocate("old", 8 * MB, now=0.0)
    pool.allocate("mid", 8 * MB, now=1.0)
    pool.allocate("new", 8 * MB, now=2.0)  # must flush "old"
    assert pool.lookup("old", now=2.0) == ON_DISK
    assert pool.lookup("mid", now=2.0) == IN_MEMORY
    assert pool.used_bytes == 16 * MB
    assert pool.stats.flushes == 1


def test_release_frees_without_flush():
    pool = MemoryPool(capacity_bytes=1 << 30)
    pool.allocate("a", 4 * MB, now=0.0)
    pool.release("a")
    assert pool.used_bytes == 0
    assert pool.lookup("a", now=0.0) is None  # gone entirely, not on disk
    pool.release("a")  # idempotent


def test_double_allocate_rejected():
    pool = MemoryPool()
    pool.allocate("a", MB, now=0.0)
    with pytest.raises(ValueError):
        pool.allocate("a", MB, now=0.0)


def test_reallocation_after_flush_clears_disk_state():
    pool = MemoryPool(retention=1)
    pool.allocate("a", MB, now=0.0)
    pool.expire(now=2.0)
    assert pool.lookup("a", now=2.0) == ON_DISK
    pool.allocate("a", MB, now=2.0)  # repaired again
    assert pool.lookup("a", now=2.5) == IN_MEMORY


def test_chunk_larger_than_pool_rejected():
    pool = MemoryPool(capacity_bytes=2 * MB, max_chunk_bytes=256 * MB)
    with pytest.raises(ChunkTooLargeError):
        pool.allocate("a", 4 * MB, now=0.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 64), st.floats(0, 100)),
                min_size=1, max_size=50))
def test_property_used_bytes_never_exceed_capacity(ops):
    pool = MemoryPool(capacity_bytes=128 * MB, retention=10)
    now = 0.0
    for i, (size_mb, advance) in enumerate(ops):
        now += advance
        pool.allocate(f"c{i}", size_mb * MB, now=now)
        assert 0 <= pool.used_bytes <= 128 * MB
        assert pool.resident_chunks <= 128 // 1  # sanity

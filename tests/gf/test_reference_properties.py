"""Property tests: table-driven GF kernels vs the pure-Python reference.

The production kernels in ``repro.gf.field`` / ``repro.gf.matrix`` are
numpy log/antilog table lookups; ``repro.gf.reference`` recomputes the same
field with carry-less polynomial arithmetic and plain-list Gauss-Jordan.
These tests pin the two implementations element-for-element on random
inputs — the safety net that lets the vectorized path keep evolving.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import reference as ref
from repro.gf.field import (
    EXP,
    GF_ORDER,
    INV_TABLE,
    LOG,
    MUL_TABLE,
    gf_mul,
    gf_pow,
)
from repro.gf.matrix import (
    SingularMatrixError,
    cauchy_matrix,
    mat_identity,
    mat_inv,
    mat_mul,
    mat_vec,
    vandermonde,
)

elements = st.integers(min_value=0, max_value=255)


# ----------------------------------------------------------------------
# scalar kernels: exhaustive and property-based
# ----------------------------------------------------------------------
def test_mul_table_matches_reference_exhaustively():
    expected = np.array([[ref.mul(a, b) for b in range(GF_ORDER)]
                         for a in range(GF_ORDER)], dtype=np.uint8)
    assert np.array_equal(MUL_TABLE, expected)


def test_inv_table_matches_reference():
    for a in range(1, GF_ORDER):
        assert int(INV_TABLE[a]) == ref.inv(a)


def test_exp_log_tables_are_consistent_with_reference_powers():
    for e in range(255):
        assert int(EXP[e]) == ref.pow_(2, e)
    for a in range(1, GF_ORDER):
        assert int(EXP[LOG[a]]) == a


@given(a=elements, n=st.integers(min_value=-300, max_value=300))
@settings(max_examples=100, deadline=None)
def test_gf_pow_matches_reference(a, n):
    if a == 0 and n < 0:
        with pytest.raises(ZeroDivisionError):
            gf_pow(a, n)
        with pytest.raises(ZeroDivisionError):
            ref.pow_(a, n)
        return
    assert gf_pow(a, n) == ref.pow_(a, n)


def test_reference_mul_rejects_non_field_elements():
    with pytest.raises(ValueError):
        ref.mul(256, 1)
    with pytest.raises(ValueError):
        ref.mul(1, -1)


# ----------------------------------------------------------------------
# matrix kernels on random matrices
# ----------------------------------------------------------------------
shapes = st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))


@given(shape=shapes, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_mat_mul_matches_reference(shape, seed):
    m, k, n = shape
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(m, k), dtype=np.uint8)
    b = rng.integers(0, 256, size=(k, n), dtype=np.uint8)
    expected = ref.mat_mul(a.tolist(), b.tolist())
    assert mat_mul(a, b).tolist() == expected


@given(shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_mat_vec_matches_reference(shape, seed):
    m, k = shape
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(m, k), dtype=np.uint8)
    x = rng.integers(0, 256, size=k, dtype=np.uint8)
    assert mat_vec(a, x).tolist() == ref.mat_vec(a.tolist(), x.tolist())


@given(n=st.integers(1, 6), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_mat_inv_agrees_with_reference_on_random_matrices(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
    try:
        expected = ref.mat_inv(a.tolist())
    except ValueError:
        with pytest.raises(SingularMatrixError):
            mat_inv(a)
        return
    assert mat_inv(a).tolist() == expected


def test_mat_inv_identity_edge_case():
    for n in (1, 4, 16):
        eye = mat_identity(n)
        assert np.array_equal(mat_inv(eye), eye)
        assert ref.mat_inv(eye.tolist()) == eye.tolist()


def test_mat_inv_singular_edge_cases():
    zero = np.zeros((3, 3), dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        mat_inv(zero)
    with pytest.raises(ValueError):
        ref.mat_inv(zero.tolist())
    # duplicated rows: rank deficient but not zero
    dup = np.array([[1, 2, 3], [1, 2, 3], [4, 5, 6]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        mat_inv(dup)
    with pytest.raises(ValueError):
        ref.mat_inv(dup.tolist())


# ----------------------------------------------------------------------
# constructions: the vectorized vandermonde/cauchy vs the loops
# ----------------------------------------------------------------------
@given(rows=st.integers(0, 8),
       points=st.lists(elements, min_size=1, max_size=10, unique=True))
@settings(max_examples=60, deadline=None)
def test_vandermonde_matches_reference(rows, points):
    got = vandermonde(rows, points)
    assert got.dtype == np.uint8
    assert got.tolist() == ref.vandermonde(rows, points)


def test_vandermonde_zero_point_edge_case():
    # 0**0 == 1, 0**i == 0 for i > 0: the column the log-table trick
    # cannot produce directly.
    v = vandermonde(4, [0, 1, 2])
    assert v[:, 0].tolist() == [1, 0, 0, 0]
    assert v.tolist() == ref.vandermonde(4, [0, 1, 2])


@given(seed=st.integers(0, 2**32 - 1),
       nx=st.integers(1, 8), ny=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_cauchy_matches_reference(seed, nx, ny):
    rng = np.random.default_rng(seed)
    pts = rng.permutation(256)[:nx + ny]
    xs, ys = pts[:nx].tolist(), pts[nx:].tolist()
    got = cauchy_matrix(xs, ys)
    assert got.dtype == np.uint8
    assert got.tolist() == ref.cauchy_matrix(xs, ys)


def test_construction_validation_matches_reference():
    for fn in (vandermonde, ref.vandermonde):
        with pytest.raises(ValueError):
            fn(3, [1, 1, 2])
    for fn in (cauchy_matrix, ref.cauchy_matrix):
        with pytest.raises(ValueError):
            fn([1, 2], [2, 3])  # overlap
        with pytest.raises(ValueError):
            fn([1, 1], [2, 3])  # duplicate


@given(a=elements, b=elements)
@settings(max_examples=100, deadline=None)
def test_gf_mul_is_reference_mul(a, b):
    assert gf_mul(a, b) == ref.mul(a, b)

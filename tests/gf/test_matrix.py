"""Tests for GF(256) matrix algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    SingularMatrixError,
    cauchy_matrix,
    mat_inv,
    mat_mul,
    mat_rank,
    mat_vec,
    systematic_generator,
    vandermonde,
)
from repro.gf.matrix import mat_identity


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


def test_identity_multiplication():
    rng = np.random.default_rng(0)
    a = random_matrix(rng, 5, 5)
    assert np.array_equal(mat_mul(a, mat_identity(5)), a)
    assert np.array_equal(mat_mul(mat_identity(5), a), a)


def test_mat_mul_shape_check():
    with pytest.raises(ValueError):
        mat_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))


def test_mat_vec_matches_mat_mul():
    rng = np.random.default_rng(1)
    a = random_matrix(rng, 4, 6)
    x = rng.integers(0, 256, size=6, dtype=np.uint8)
    assert np.array_equal(mat_vec(a, x), mat_mul(a, x[:, None])[:, 0])


def test_mat_vec_shape_check():
    with pytest.raises(ValueError):
        mat_vec(np.zeros((2, 3), dtype=np.uint8), np.zeros(2, dtype=np.uint8))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
def test_inverse_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    # Rejection-sample an invertible matrix.
    for _ in range(100):
        a = random_matrix(rng, n, n)
        if mat_rank(a) == n:
            break
    else:
        pytest.skip("could not sample invertible matrix")
    inv = mat_inv(a)
    assert np.array_equal(mat_mul(a, inv), mat_identity(n))
    assert np.array_equal(mat_mul(inv, a), mat_identity(n))


def test_singular_matrix_raises():
    a = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        mat_inv(a)


def test_non_square_inverse_raises():
    with pytest.raises(ValueError):
        mat_inv(np.zeros((2, 3), dtype=np.uint8))


def test_rank_of_identity():
    assert mat_rank(mat_identity(7)) == 7


def test_rank_of_zero():
    assert mat_rank(np.zeros((3, 4), dtype=np.uint8)) == 0


def test_rank_of_rank_one():
    row = np.arange(1, 6, dtype=np.uint8)
    from repro.gf.field import MUL_TABLE

    a = np.stack([MUL_TABLE[c][row] for c in (1, 2, 3)])
    assert mat_rank(a) == 1


def test_vandermonde_square_submatrices_invertible():
    v = vandermonde(3, [1, 2, 3, 4, 5])
    from itertools import combinations

    for cols in combinations(range(5), 3):
        assert mat_rank(v[:, list(cols)]) == 3


def test_vandermonde_rejects_duplicate_points():
    with pytest.raises(ValueError):
        vandermonde(2, [1, 1, 2])


def test_cauchy_square_submatrices_invertible():
    c = cauchy_matrix([10, 11, 12], [0, 1, 2, 3, 4])
    from itertools import combinations

    for cols in combinations(range(5), 3):
        assert mat_rank(c[:, list(cols)]) == 3


def test_cauchy_rejects_overlap():
    with pytest.raises(ValueError):
        cauchy_matrix([1, 2], [2, 3])


def test_systematic_generator_is_mds():
    """Any k rows of [I; P] must be invertible for an MDS code."""
    from itertools import combinations

    k, r = 4, 2
    g = systematic_generator(k, r)
    assert g.shape == (k + r, k)
    for rows in combinations(range(k + r), k):
        assert mat_rank(g[list(rows)]) == k


def test_systematic_generator_field_limit():
    with pytest.raises(ValueError):
        systematic_generator(200, 100)

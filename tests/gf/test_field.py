"""Unit and property tests for GF(2^8) scalar/vector arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf import (
    GF_ORDER,
    PRIMITIVE_ELEMENT,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    gf_xor_mul_into,
)
from repro.gf.field import EXP, LOG, MUL_TABLE

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_field_order():
    assert GF_ORDER == 256


def test_exp_log_roundtrip():
    for a in range(1, 256):
        assert EXP[LOG[a]] == a


def test_primitive_element_generates_group():
    seen = set()
    x = 1
    for _ in range(255):
        seen.add(x)
        x = gf_mul(x, PRIMITIVE_ELEMENT)
    assert len(seen) == 255
    assert x == 1  # order divides 255 and equals it


def test_known_products():
    # Hand-checked values under the 0x11D polynomial.
    assert gf_mul(2, 128) == 0x1D  # x * x^7 = x^8 = x^4+x^3+x^2+1
    assert gf_mul(4, 128) == 0x3A  # x^2 * x^7 = x * (x^4+x^3+x^2+1)
    assert gf_mul(3, 7) == 9  # (x+1)(x^2+x+1) = x^3+1


@given(elements, elements)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(elements, elements, elements)
def test_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(elements, elements, elements)
def test_distributive(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(elements)
def test_additive_inverse_is_self(a):
    assert gf_add(a, a) == 0


@given(nonzero)
def test_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(elements, nonzero)
def test_division_roundtrip(a, b):
    assert gf_mul(gf_div(a, b), b) == a


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)
    with pytest.raises(ZeroDivisionError):
        gf_div(5, 0)


@given(nonzero, st.integers(min_value=-10, max_value=300))
def test_pow_matches_repeated_multiplication(a, n):
    if n >= 0:
        expected = 1
        for _ in range(n):
            expected = gf_mul(expected, a)
    else:
        expected = 1
        inv = gf_inv(a)
        for _ in range(-n):
            expected = gf_mul(expected, inv)
    assert gf_pow(a, n) == expected


def test_pow_zero_cases():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    with pytest.raises(ZeroDivisionError):
        gf_pow(0, -1)


def test_mul_table_symmetric():
    assert np.array_equal(MUL_TABLE, MUL_TABLE.T)


def test_vectorized_mul_matches_scalar():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, size=100, dtype=np.uint8)
    b = rng.integers(0, 256, size=100, dtype=np.uint8)
    vec = gf_mul(a, b)
    for i in range(100):
        assert vec[i] == gf_mul(int(a[i]), int(b[i]))


def test_gf_mul_bytes_identity_and_zero():
    data = np.arange(256, dtype=np.uint8)
    assert np.array_equal(gf_mul_bytes(1, data), data)
    assert not np.any(gf_mul_bytes(0, data))


def test_gf_mul_bytes_scalar_consistency():
    data = np.arange(256, dtype=np.uint8)
    out = gf_mul_bytes(7, data)
    for i in range(256):
        assert out[i] == gf_mul(7, i)


def test_xor_mul_into_accumulates():
    rng = np.random.default_rng(1)
    acc = rng.integers(0, 256, size=64, dtype=np.uint8)
    data = rng.integers(0, 256, size=64, dtype=np.uint8)
    expected = acc ^ gf_mul_bytes(9, data)
    gf_xor_mul_into(acc, 9, data)
    assert np.array_equal(acc, expected)


def test_xor_mul_into_coeff_zero_is_noop():
    acc = np.arange(16, dtype=np.uint8)
    before = acc.copy()
    gf_xor_mul_into(acc, 0, np.full(16, 0xFF, dtype=np.uint8))
    assert np.array_equal(acc, before)


def test_xor_mul_into_coeff_one_is_xor():
    acc = np.arange(16, dtype=np.uint8)
    data = np.full(16, 0x0F, dtype=np.uint8)
    expected = acc ^ data
    gf_xor_mul_into(acc, 1, data)
    assert np.array_equal(acc, expected)

"""Tests for the symbolic GF linear-system solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GFLinearSystem, UnderdeterminedSystemError, mat_rank, mat_vec


def test_single_equation():
    sys = GFLinearSystem(1, 1)
    sys.add_equation({0: 3}, {0: 1})  # 3*u = s
    r = sys.solve()
    # u = inv(3) * s
    from repro.gf import gf_inv

    assert r.shape == (1, 1)
    assert r[0, 0] == gf_inv(3)


def test_two_by_two():
    # u0 + u1 = s0 ; u0 + 2*u1 = s1  =>  u1 = ... check numerically.
    sys = GFLinearSystem(2, 2)
    sys.add_equation({0: 1, 1: 1}, {0: 1})
    sys.add_equation({0: 1, 1: 2}, {1: 1})
    r = sys.solve()
    rng = np.random.default_rng(0)
    u = rng.integers(0, 256, size=2, dtype=np.uint8)
    from repro.gf import gf_add, gf_mul

    s0 = gf_add(int(u[0]), int(u[1]))
    s1 = gf_add(int(u[0]), gf_mul(2, int(u[1])))
    s = np.array([s0, s1], dtype=np.uint8)
    assert np.array_equal(mat_vec(r, s), u)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=2**32 - 1))
def test_random_invertible_systems(n, seed):
    """Build A u = s with random invertible A; solver must recover u."""
    rng = np.random.default_rng(seed)
    for _ in range(100):
        a = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
        if mat_rank(a) == n:
            break
    else:
        pytest.skip("no invertible matrix sampled")
    sys = GFLinearSystem(n, n)
    for i in range(n):
        sys.add_equation({j: int(a[i, j]) for j in range(n)}, {i: 1})
    r = sys.solve()
    u = rng.integers(0, 256, size=n, dtype=np.uint8)
    s = mat_vec(a, u)
    assert np.array_equal(mat_vec(r, s), u)


def test_redundant_equations_tolerated():
    sys = GFLinearSystem(1, 2)
    sys.add_equation({0: 1}, {0: 1})
    sys.add_equation({0: 1}, {0: 1})  # duplicate
    r = sys.solve()
    assert r[0, 0] == 1 and r[0, 1] == 0


def test_underdetermined_raises():
    sys = GFLinearSystem(2, 1)
    sys.add_equation({0: 1, 1: 1}, {0: 1})
    with pytest.raises(UnderdeterminedSystemError) as exc:
        sys.solve()
    assert exc.value.undetermined


def test_underdetermined_partial_required_ok():
    # u0 determined, u1 free; asking only for u0 succeeds.
    sys = GFLinearSystem(2, 1)
    sys.add_equation({0: 1}, {0: 1})
    r = sys.solve(required=[0])
    assert r[0, 0] == 1
    with pytest.raises(UnderdeterminedSystemError):
        sys.solve(required=[1])


def test_entangled_required_unknown_raises():
    # u0 + u1 = s0 pivots on u0 but leaves it entangled with free u1.
    sys = GFLinearSystem(2, 1)
    sys.add_equation({0: 1, 1: 1}, {0: 1})
    with pytest.raises(UnderdeterminedSystemError):
        sys.solve(required=[0])


def test_index_bounds_checked():
    sys = GFLinearSystem(2, 2)
    with pytest.raises(IndexError):
        sys.add_equation({5: 1}, {})
    with pytest.raises(IndexError):
        sys.add_equation({0: 1}, {9: 1})


def test_no_equations_raises():
    with pytest.raises(ValueError):
        GFLinearSystem(1, 1).solve()


def test_overdetermined_consistent_system():
    """More equations than unknowns, consistent by construction."""
    rng = np.random.default_rng(7)
    n = 4
    a = None
    while a is None or mat_rank(a) < n:
        a = rng.integers(0, 256, size=(n + 3, n), dtype=np.uint8)
    sys = GFLinearSystem(n, n + 3)
    for i in range(n + 3):
        sys.add_equation({j: int(a[i, j]) for j in range(n)}, {i: 1})
    r = sys.solve()
    u = rng.integers(0, 256, size=n, dtype=np.uint8)
    s = mat_vec(a, u)
    assert np.array_equal(mat_vec(r, s), u)

"""Tenant specs, validation, and SLO percentile summaries."""

import pytest

from repro.traffic import (
    BATCH_LANE,
    DEFAULT_TENANTS,
    INTERACTIVE_LANE,
    TenantSpec,
    summarize_slo,
    validate_tenants,
)


def test_default_mix_is_valid():
    validate_tenants(DEFAULT_TENANTS)
    assert {t.lane for t in DEFAULT_TENANTS} == {INTERACTIVE_LANE,
                                                 BATCH_LANE}


def test_spec_round_trips_through_doc():
    for spec in DEFAULT_TENANTS:
        assert TenantSpec.from_doc(spec.to_doc()) == spec


def test_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("x", share=0.0)
    with pytest.raises(ValueError):
        TenantSpec("x", share=1.5)
    with pytest.raises(ValueError):
        TenantSpec("x", share=0.5, lane=7)
    with pytest.raises(ValueError):
        TenantSpec("x", share=0.5, slo_ms=0.0)


def test_mix_validation():
    with pytest.raises(ValueError):
        validate_tenants(())
    with pytest.raises(ValueError):
        validate_tenants((TenantSpec("a", 0.5), TenantSpec("a", 0.5)))
    with pytest.raises(ValueError):
        validate_tenants((TenantSpec("a", 0.5), TenantSpec("b", 0.4)))


def test_summarize_slo_percentiles():
    spec = TenantSpec("t", share=1.0, slo_ms=250.0)
    latencies = [i / 100.0 for i in range(1, 101)]  # 10ms..1000ms
    slo = summarize_slo(spec, latencies, degraded=[0.9, 1.0])
    assert slo.n_requests == 100
    assert slo.p50_ms == pytest.approx(505.0)
    assert slo.p99_ms == pytest.approx(990.1)
    # 25 of 100 requests land at or under 250ms.
    assert slo.attainment == pytest.approx(0.25)
    assert slo.n_degraded == 2
    assert slo.degraded_p99_ms == pytest.approx(999.0)


def test_summarize_slo_empty_stream():
    slo = summarize_slo(TenantSpec("t", share=1.0), [], [])
    assert slo.n_requests == 0
    assert slo.p99_ms == 0.0
    assert slo.attainment == 0.0

"""Arrival processes: exactness, purity in the seed, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import DiurnalArrivals, PoissonArrivals

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=25, deadline=None)
@given(SEEDS, st.floats(min_value=0.5, max_value=200.0))
def test_poisson_stream_is_pure_function_of_seed(seed, rate):
    process = PoissonArrivals(rate)
    a = process.times(np.random.default_rng(seed), 10.0)
    b = process.times(np.random.default_rng(seed), 10.0)
    assert a.tobytes() == b.tobytes()


@settings(max_examples=25, deadline=None)
@given(SEEDS, st.floats(min_value=0.5, max_value=100.0),
       st.floats(min_value=0.0, max_value=0.95))
def test_diurnal_stream_is_pure_function_of_seed(seed, rate, amplitude):
    process = DiurnalArrivals(rate, amplitude=amplitude, period=20.0)
    a = process.times(np.random.default_rng(seed), 20.0)
    b = process.times(np.random.default_rng(seed), 20.0)
    assert a.tobytes() == b.tobytes()


@settings(max_examples=25, deadline=None)
@given(SEEDS)
def test_streams_are_sorted_and_inside_horizon(seed):
    for process in (PoissonArrivals(50.0),
                    DiurnalArrivals(50.0, amplitude=0.8, period=4.0)):
        times = process.times(np.random.default_rng(seed), 4.0)
        assert np.all(np.diff(times) >= 0)
        if times.size:
            assert 0.0 <= times[0] and times[-1] < 4.0


def test_poisson_empirical_rate_matches():
    times = PoissonArrivals(100.0).times(np.random.default_rng(7), 50.0)
    assert times.size == pytest.approx(100.0 * 50.0, rel=0.1)


def test_diurnal_mean_arrivals_closed_form_matches_sampling():
    process = DiurnalArrivals(80.0, amplitude=0.6, period=10.0)
    n = np.mean([process.times(np.random.default_rng(s), 25.0).size
                 for s in range(30)])
    assert n == pytest.approx(process.mean_arrivals(25.0), rel=0.05)


def test_diurnal_rate_oscillates_around_mean():
    process = DiurnalArrivals(100.0, amplitude=0.5, period=86_400.0)
    assert process.rate_at(86_400.0 / 4) == pytest.approx(150.0)
    assert process.rate_at(3 * 86_400.0 / 4) == pytest.approx(50.0)
    # Zero amplitude degenerates to the homogeneous process.
    flat = DiurnalArrivals(100.0, amplitude=0.0)
    assert flat.rate_at(12_345.0) == pytest.approx(100.0)
    assert flat.mean_arrivals(60.0) == pytest.approx(6000.0)


def test_validation_errors():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(10.0, amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(10.0, period=0.0)
    with pytest.raises(ValueError):
        PoissonArrivals(5.0).times(np.random.default_rng(0), 0.0)

"""Traffic schedules: determinism, stable merge, SeedSequence discipline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    DEFAULT_TENANTS,
    TenantSpec,
    arrival_process,
    build_schedule,
)
from repro.traffic.arrivals import DiurnalArrivals, PoissonArrivals

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def schedule_bytes(schedule):
    return (schedule.times.tobytes() + schedule.tenant_ids.tobytes()
            + schedule.object_ids.tobytes())


@settings(max_examples=15, deadline=None)
@given(SEEDS)
def test_schedule_is_pure_function_of_seed(seed):
    a = build_schedule(DEFAULT_TENANTS, rate=40.0, duration=5.0,
                       n_objects=100, seed=seed)
    b = build_schedule(DEFAULT_TENANTS, rate=40.0, duration=5.0,
                       n_objects=100, seed=seed)
    assert schedule_bytes(a) == schedule_bytes(b)


@settings(max_examples=15, deadline=None)
@given(SEEDS)
def test_schedule_accepts_equivalent_seedsequence(seed):
    a = build_schedule(DEFAULT_TENANTS, rate=40.0, duration=5.0,
                       n_objects=100, seed=seed)
    b = build_schedule(DEFAULT_TENANTS, rate=40.0, duration=5.0,
                       n_objects=100, seed=np.random.SeedSequence(seed))
    assert schedule_bytes(a) == schedule_bytes(b)


def test_different_seeds_differ():
    a = build_schedule(DEFAULT_TENANTS, rate=40.0, duration=5.0,
                       n_objects=100, seed=0)
    b = build_schedule(DEFAULT_TENANTS, rate=40.0, duration=5.0,
                       n_objects=100, seed=1)
    assert schedule_bytes(a) != schedule_bytes(b)


def test_merge_is_sorted_with_valid_ids():
    s = build_schedule(DEFAULT_TENANTS, rate=120.0, duration=4.0,
                       n_objects=50, seed=9)
    assert np.all(np.diff(s.times) >= 0)
    assert s.tenant_ids.min() >= 0
    assert s.tenant_ids.max() < len(DEFAULT_TENANTS)
    assert s.object_ids.min() >= 0 and s.object_ids.max() < 50
    assert len(s.times) == len(s.tenant_ids) == len(s.object_ids)
    assert sum(s.per_tenant_counts().values()) == s.n_requests
    assert s.offered_rate == pytest.approx(s.n_requests / 4.0)


def test_tenant_shares_steer_per_tenant_volume():
    s = build_schedule(DEFAULT_TENANTS, rate=400.0, duration=10.0,
                       n_objects=100, seed=3)
    counts = s.per_tenant_counts()
    for spec in DEFAULT_TENANTS:
        assert counts[spec.name] == pytest.approx(
            400.0 * 10.0 * spec.share, rel=0.15)


def test_diurnal_kind_uses_thinned_process():
    s = build_schedule(DEFAULT_TENANTS, rate=200.0, duration=8.0,
                       n_objects=60, seed=5, kind="diurnal")
    # The thinned stream still drains fewer arrivals than the peak
    # envelope would, and remains deterministic.
    assert s.n_requests == pytest.approx(200.0 * 8.0, rel=0.2)
    again = build_schedule(DEFAULT_TENANTS, rate=200.0, duration=8.0,
                           n_objects=60, seed=5, kind="diurnal")
    assert schedule_bytes(s) == schedule_bytes(again)


def test_arrival_process_factory():
    assert isinstance(arrival_process("poisson", 5.0), PoissonArrivals)
    diurnal = arrival_process("diurnal", 5.0, duration=60.0)
    assert isinstance(diurnal, DiurnalArrivals)
    assert diurnal.period == 60.0  # defaults to the horizon
    with pytest.raises(ValueError):
        arrival_process("bursty", 5.0)


def test_build_schedule_validation():
    with pytest.raises(ValueError):
        build_schedule(DEFAULT_TENANTS, rate=0.0, duration=5.0,
                       n_objects=10, seed=0)
    with pytest.raises(ValueError):
        build_schedule(DEFAULT_TENANTS, rate=5.0, duration=0.0,
                       n_objects=10, seed=0)
    bad = (TenantSpec("a", share=0.5), TenantSpec("b", share=0.2))
    with pytest.raises(ValueError):
        build_schedule(bad, rate=5.0, duration=5.0, n_objects=10, seed=0)

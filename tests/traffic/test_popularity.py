"""Zipf popularity: seeded permutation, mass concentration, purity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import ZipfPopularity

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=25, deadline=None)
@given(SEEDS, st.floats(min_value=0.0, max_value=1.5))
def test_sampling_is_pure_function_of_seed(seed, alpha):
    a = ZipfPopularity(200, alpha, np.random.default_rng(seed))
    b = ZipfPopularity(200, alpha, np.random.default_rng(seed))
    assert a.by_rank.tobytes() == b.by_rank.tobytes()
    draw_a = a.sample(np.random.default_rng(seed + 1), 500)
    draw_b = b.sample(np.random.default_rng(seed + 1), 500)
    assert draw_a.tobytes() == draw_b.tobytes()


@settings(max_examples=25, deadline=None)
@given(SEEDS)
def test_samples_are_valid_object_indices(seed):
    pop = ZipfPopularity(64, 0.9, np.random.default_rng(seed))
    draws = pop.sample(np.random.default_rng(seed), 1000)
    assert draws.min() >= 0 and draws.max() < 64


def test_rank_permutation_covers_all_objects():
    pop = ZipfPopularity(100, 1.0, np.random.default_rng(5))
    assert sorted(pop.by_rank) == list(range(100))


def test_weights_sum_to_one():
    pop = ZipfPopularity(50, 0.8, np.random.default_rng(1))
    total = sum(pop.weight_of_rank(r) for r in range(50))
    assert total == pytest.approx(1.0)


def test_hot_rank_dominates_and_alpha_zero_is_uniform():
    hot = ZipfPopularity(100, 1.0, np.random.default_rng(2))
    assert hot.weight_of_rank(0) > 10 * hot.weight_of_rank(99)
    flat = ZipfPopularity(100, 0.0, np.random.default_rng(2))
    assert flat.weight_of_rank(0) == pytest.approx(flat.weight_of_rank(99))


def test_hottest_object_is_permuted_not_object_zero():
    # Across seeds, rank 0 should land on many different object ids.
    hottest = {int(ZipfPopularity(64, 1.0,
                                  np.random.default_rng(s)).by_rank[0])
               for s in range(16)}
    assert len(hottest) > 1


def test_empirical_frequency_tracks_zipf_mass():
    pop = ZipfPopularity(32, 1.0, np.random.default_rng(3))
    draws = pop.sample(np.random.default_rng(4), 200_000)
    freq = np.bincount(draws, minlength=32) / draws.size
    assert freq[pop.by_rank[0]] == pytest.approx(pop.weight_of_rank(0),
                                                 rel=0.05)


def test_validation_errors():
    with pytest.raises(ValueError):
        ZipfPopularity(0, 1.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        ZipfPopularity(10, -0.1, np.random.default_rng(0))

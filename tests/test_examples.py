"""The examples must stay runnable: compile all, execute the fast ones."""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "degraded_read_pipelining.py",
            "recovery_comparison.py", "parameter_tuning.py",
            "regenerating_tradeoffs.py", "cluster_lifecycle.py"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.slow
def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES[0].parent / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Clay" in out


@pytest.mark.slow
def test_pipelining_example_runs(capsys):
    runpy.run_path(str(EXAMPLES[0].parent / "degraded_read_pipelining.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Timeline" in out

"""LRC tests — locality, Table 1 read traffic, and non-MDS behaviour."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import DecodeError, LRCCode, RSCode, extract_reads
from tests.codes.conftest import random_data


def test_parameter_validation():
    with pytest.raises(ValueError):
        LRCCode(10, 3, 2)  # 10 not divisible into 3 groups
    with pytest.raises(ValueError):
        LRCCode(0, 1, 1)


def test_structure_of_lrc_10_2_2():
    code = LRCCode(10, 2, 2)
    assert code.n == 14
    assert code.group_size == 5
    assert code.group_of(0) == 0
    assert code.group_of(7) == 1
    assert code.group_of(10) == 0  # local parity of group 0
    assert code.group_of(11) == 1
    assert code.group_of(12) is None  # global parity
    assert code.group_members(0) == [0, 1, 2, 3, 4, 10]


def test_local_parity_is_group_xor(rng):
    code = LRCCode(10, 2, 2)
    data = random_data(rng, 10, 16)
    parities = code.encode(data)
    group0_xor = np.zeros(16, dtype=np.uint8)
    for i in range(5):
        group0_xor ^= data[i]
    assert np.array_equal(parities[0], group0_xor)


def test_storage_matches_table1():
    assert LRCCode(10, 2, 2).storage_overhead == pytest.approx(1.4)


def test_read_traffic_matches_table1():
    """(12 nodes * 5 reads + 2 globals * 10 reads) / 14 = 5.71 (Table 1)."""
    code = LRCCode(10, 2, 2)
    assert code.average_repair_read_ratio(64) == pytest.approx(80 / 14, abs=1e-6)


def test_data_repair_reads_only_group():
    code = LRCCode(10, 2, 2)
    plan = code.repair_plan(3, 64)
    assert plan.helper_nodes == [0, 1, 2, 4, 10]
    assert plan.total_read_bytes == 5 * 64


def test_global_parity_repair_reads_all_data():
    code = LRCCode(10, 2, 2)
    plan = code.repair_plan(13, 64)
    assert plan.helper_nodes == list(range(10))


def test_repair_every_node(rng):
    code = LRCCode(10, 2, 2)
    data = random_data(rng, 10, 32)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in range(code.n):
        plan = code.repair_plan(f, 32)
        got = code.repair(f, extract_reads(plan, chunks), 32)
        assert np.array_equal(got, stripe[f])


def test_decode_all_triple_failures(rng):
    """Every pattern of <= g+1 = 3 failures must be recoverable."""
    code = LRCCode(6, 2, 2)
    data = random_data(rng, 6, 8)
    stripe = code.encode_stripe(data)
    for erased in combinations(range(code.n), 3):
        if not code.decodable(erased):
            pytest.fail(f"triple failure {erased} should be decodable")
        avail = {i: c for i, c in enumerate(stripe) if i not in erased}
        out = code.decode(avail, list(erased), 8)
        for f in erased:
            assert np.array_equal(out[f], stripe[f])


def test_not_mds_some_quadruple_fails():
    """Four failures inside one local group are unrecoverable (paper §2.2)."""
    code = LRCCode(10, 2, 2)
    assert not code.is_mds
    assert not code.decodable([0, 1, 2, 3])


def test_most_quadruples_recoverable(rng):
    """The code is not MDS but recovers the information-theoretically
    recoverable share of 4-failure patterns (the vast majority)."""
    code = LRCCode(10, 2, 2)
    total = recoverable = 0
    for erased in combinations(range(code.n), 4):
        total += 1
        recoverable += code.decodable(erased)
    assert 0.7 < recoverable / total < 1.0


def test_recoverable_quadruple_decodes(rng):
    code = LRCCode(10, 2, 2)
    data = random_data(rng, 10, 8)
    stripe = code.encode_stripe(data)
    erased = [0, 1, 5, 6]  # two per group: recoverable with globals
    assert code.decodable(erased)
    avail = {i: c for i, c in enumerate(stripe) if i not in erased}
    out = code.decode(avail, erased, 8)
    for f in erased:
        assert np.array_equal(out[f], stripe[f])


def test_unrecoverable_pattern_raises(rng):
    code = LRCCode(10, 2, 2)
    data = random_data(rng, 10, 8)
    stripe = code.encode_stripe(data)
    erased = [0, 1, 2, 3]
    avail = {i: c for i, c in enumerate(stripe) if i not in erased}
    with pytest.raises(DecodeError):
        code.decode(avail, erased, 8)


def test_globals_agree_with_rs_structure(rng):
    """Global parities use the same Cauchy rows as our RS code, so an
    LRC stripe's globals equal RS(k, g) parities of the same data."""
    lrc = LRCCode(10, 2, 2)
    rs = RSCode(10, 2)
    data = random_data(rng, 10, 16)
    lrc_parities = lrc.encode(data)
    rs_parities = rs.encode(data)
    assert np.array_equal(lrc_parities[2], rs_parities[0])
    assert np.array_equal(lrc_parities[3], rs_parities[1])

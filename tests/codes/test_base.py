"""Tests for the shared code abstractions (segments, plans, extraction)."""

import numpy as np
import pytest

from repro.codes import ReadSegment, RepairPlan, extract_reads


def test_segment_validation():
    with pytest.raises(ValueError):
        ReadSegment(0, 0, 0)
    with pytest.raises(ValueError):
        ReadSegment(0, -1, 4)
    with pytest.raises(ValueError):
        ReadSegment(-1, 0, 4)


def test_segment_end():
    assert ReadSegment(0, 8, 4).end == 12


def test_plan_rejects_reads_from_failed_node():
    with pytest.raises(ValueError):
        RepairPlan((1,), 16, [ReadSegment(1, 0, 8)])


def test_plan_rejects_segment_beyond_chunk():
    with pytest.raises(ValueError):
        RepairPlan((0,), 16, [ReadSegment(1, 8, 16)])


def test_plan_totals_and_per_node():
    plan = RepairPlan((0,), 16, [
        ReadSegment(1, 0, 4), ReadSegment(1, 8, 4), ReadSegment(2, 0, 16)])
    assert plan.total_read_bytes == 24
    assert plan.read_bytes_per_node() == {1: 8, 2: 16}
    assert plan.helper_nodes == [1, 2]
    assert plan.read_traffic_ratio() == 24 / 16


def test_plan_coalesce_merges_adjacent():
    plan = RepairPlan((0,), 16, [
        ReadSegment(1, 0, 4), ReadSegment(1, 4, 4), ReadSegment(1, 12, 4)])
    merged = plan.coalesced()
    assert merged.segments_for_node(1) == [ReadSegment(1, 0, 8), ReadSegment(1, 12, 4)]
    assert plan.io_count_per_node() == {1: 2}


def test_plan_coalesce_handles_overlap():
    plan = RepairPlan((0,), 16, [ReadSegment(1, 0, 8), ReadSegment(1, 4, 8)])
    assert plan.io_count_per_node() == {1: 1}
    assert plan.coalesced().segments_for_node(1) == [ReadSegment(1, 0, 12)]


def test_extract_reads_concatenates_in_offset_order():
    plan = RepairPlan((0,), 8, [ReadSegment(1, 6, 2), ReadSegment(1, 0, 2)])
    chunks = {1: np.arange(8, dtype=np.uint8)}
    reads = extract_reads(plan, chunks)
    assert np.array_equal(reads[1], np.array([0, 1, 6, 7], dtype=np.uint8))


def test_storage_overhead_formula():
    from repro.codes import RSCode

    assert RSCode(10, 4).storage_overhead == pytest.approx(1.4)
    assert RSCode(10, 4).n == 14

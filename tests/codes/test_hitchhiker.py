"""Hitchhiker-XOR tests — piggyback structure, MDS property, repair savings."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import HitchhikerCode, RSCode, extract_reads
from tests.codes.conftest import random_data


def test_requires_two_parities():
    with pytest.raises(ValueError):
        HitchhikerCode(4, 1)


def test_group_partition_10_4():
    code = HitchhikerCode(10, 4)
    assert code.groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]
    assert code.group_of(0) == 0
    assert code.group_of(9) == 2
    with pytest.raises(ValueError):
        code.group_of(10)


def test_alpha_is_two():
    assert HitchhikerCode(10, 4).alpha == 2


def test_chunk_size_must_be_even():
    code = HitchhikerCode(4, 2)
    with pytest.raises(ValueError):
        code.repair_plan(0, 15)


def test_first_parity_is_plain_rs(rng):
    """Parity 1 carries no piggyback: it equals RS on both substripes."""
    code = HitchhikerCode(6, 3)
    rs = RSCode(6, 3)
    data = random_data(rng, 6, 32)
    a = [c[:16] for c in data]
    b = [c[16:] for c in data]
    parities = code.encode(data)
    assert np.array_equal(parities[0][:16], rs.encode(a)[0])
    assert np.array_equal(parities[0][16:], rs.encode(b)[0])


def test_piggyback_content(rng):
    """Parity j>=2's second half is f_j(b) xor the group's a sub-chunks."""
    code = HitchhikerCode(6, 3)
    rs = RSCode(6, 3)
    data = random_data(rng, 6, 32)
    a = [c[:16] for c in data]
    b = [c[16:] for c in data]
    parities = code.encode(data)
    fb = rs.encode(b)
    expected = fb[1].copy()
    for member in code.groups[0]:
        expected ^= a[member]
    assert np.array_equal(parities[1][16:], expected)


def test_decode_every_r_failure_combination(rng):
    """Hitchhiker preserves the MDS property of its RS base code."""
    code = HitchhikerCode(5, 3)
    assert code.is_mds
    data = random_data(rng, 5, 16)
    stripe = code.encode_stripe(data)
    for erased in combinations(range(code.n), 3):
        avail = {i: c for i, c in enumerate(stripe) if i not in erased}
        out = code.decode(avail, list(erased), 16)
        for f in erased:
            assert np.array_equal(out[f], stripe[f])


def test_repair_every_node(rng):
    code = HitchhikerCode(10, 4)
    data = random_data(rng, 10, 64)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in range(code.n):
        plan = code.repair_plan(f, 64)
        got = code.repair(f, extract_reads(plan, chunks), 64)
        assert np.array_equal(got, stripe[f]), f"node {f}"


def test_data_repair_traffic_is_about_65_percent():
    """(10,4): group-of-3 node reads 13 half-chunks = 6.5 vs RS's 10."""
    code = HitchhikerCode(10, 4)
    plan = code.repair_plan(0, 64)
    assert plan.read_traffic_ratio() == pytest.approx(6.5)
    plan9 = code.repair_plan(9, 64)  # group of 4
    assert plan9.read_traffic_ratio() == pytest.approx(7.0)


def test_parity_repair_is_full_cost():
    code = HitchhikerCode(10, 4)
    for f in range(10, 14):
        assert code.repair_plan(f, 64).read_traffic_ratio() == pytest.approx(10.0)


def test_average_ratio_between_clay_and_rs():
    """Non-optimal regenerating code: better than RS, worse than MSR."""
    code = HitchhikerCode(10, 4)
    avg = code.average_repair_read_ratio(64)
    assert 3.25 < avg < 10.0
    assert avg == pytest.approx(107 / 14)


def test_data_repair_reads_only_planned_nodes():
    code = HitchhikerCode(10, 4)
    plan = code.repair_plan(4, 64)  # group 1 = {3,4,5}
    per_node = plan.read_bytes_per_node()
    # Group members contribute a full chunk (both halves); others a half.
    assert per_node[3] == 64 and per_node[5] == 64
    assert per_node[0] == 32
    assert per_node[10] == 32  # f_1(b)
    assert per_node[12] == 32  # piggybacked parity (group 1 -> parity 3)
    assert 11 not in per_node and 13 not in per_node


def test_uneven_group_sizes():
    code = HitchhikerCode(7, 3)
    sizes = sorted(len(g) for g in code.groups)
    assert sizes == [3, 4]
    assert sorted(sum(code.groups, [])) == list(range(7))

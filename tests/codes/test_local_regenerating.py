"""Tests for local regeneration (LRC-over-Clay, the paper's §8 direction)."""

import numpy as np
import pytest

from repro.codes import ClayCode, extract_reads
from repro.codes.local_regenerating import LocalRegeneratingCode
from repro.codes.base import DecodeError
from tests.codes.conftest import random_data


@pytest.fixture(scope="module")
def code():
    # 8 data in 2 groups of 4, Clay(4,2) locals, 2 RS globals: n = 14.
    return LocalRegeneratingCode(k=8, l=2, local_r=2, g=2)


@pytest.fixture(scope="module")
def stripe(code):
    rng = np.random.default_rng(11)
    chunk = code.alpha * 2
    data = [rng.integers(0, 256, chunk, dtype=np.uint8) for _ in range(code.k)]
    return chunk, data, code.encode_stripe(data)


def test_parameter_validation():
    with pytest.raises(ValueError):
        LocalRegeneratingCode(7, 2, 2, 2)  # 7 not divisible by 2
    with pytest.raises(ValueError):
        LocalRegeneratingCode(8, 2, 1, 2)  # local_r must be >= 2


def test_geometry(code):
    assert code.n == 14
    assert code.group_of(0) == 0 and code.group_of(7) == 1
    assert code.group_of(8) == 0 and code.group_of(11) == 1  # local parities
    assert code.group_of(12) is None  # global
    assert code.group_nodes(0) == [0, 1, 2, 3, 8, 9]
    assert not code.is_mds
    assert "LocalClay" in code.name


def test_systematic(code, stripe):
    chunk, data, full = stripe
    for i in range(code.k):
        assert np.array_equal(full[i], data[i])
    assert len(full) == code.n


def test_single_repair_stays_in_group(code, stripe):
    """The §8 win: one failure reads only its 5 group peers, at MSR traffic."""
    chunk, _data, full = stripe
    plan = code.repair_plan(2, chunk)
    assert set(plan.helper_nodes) <= set(code.group_nodes(0))
    assert len(plan.helper_nodes) == 5
    # Clay(4,2) inside the group: reads (6-1)/2 = 2.5x the lost chunk.
    assert plan.read_traffic_ratio() == pytest.approx(2.5)


def test_repair_every_node(code, stripe):
    chunk, _data, full = stripe
    chunks = {i: c for i, c in enumerate(full)}
    for failed in range(code.n):
        plan = code.repair_plan(failed, chunk)
        got = code.repair(failed, extract_reads(plan, chunks), chunk)
        assert np.array_equal(got, full[failed]), failed


def test_locality_beats_flat_clay(code):
    """Average single-failure traffic and helper count beat Clay(10,4)-style
    flat codes — the cross-datacenter argument of §8."""
    chunk = code.alpha
    flat = ClayCode(code.k, 2)
    local_ratio = np.mean([code.repair_plan(f, chunk).read_traffic_ratio()
                           for f in range(code.k)])
    local_helpers = max(len(code.repair_plan(f, chunk).helper_nodes)
                        for f in range(code.k))
    flat_helpers = len(flat.repair_plan(0, flat.alpha).helper_nodes)
    assert local_helpers < flat_helpers
    assert local_ratio < code.k  # far below RS


def test_decode_local_failures_per_group(code, stripe):
    chunk, _data, full = stripe
    erased = [0, 8, 5, 11]  # <= local_r per group (data + local parities)
    avail = {i: c for i, c in enumerate(full) if i not in erased}
    out = code.decode(avail, erased, chunk)
    for f in erased:
        assert np.array_equal(out[f], full[f])


def test_decode_beyond_locals_uses_globals(code, stripe):
    """Three losses in one group exceed its locals; the globals cover the
    lost data and the local parities are re-encoded."""
    chunk, _data, full = stripe
    erased = [0, 1, 8]  # 3 group-0 members, of which 2 are data (<= g)
    avail = {i: c for i, c in enumerate(full) if i not in erased}
    out = code.decode(avail, erased, chunk)
    for f in erased:
        assert np.array_equal(out[f], full[f])


def test_decode_lost_global_parities(code, stripe):
    chunk, _data, full = stripe
    erased = [12, 13]
    avail = {i: c for i, c in enumerate(full) if i not in erased}
    out = code.decode(avail, erased, chunk)
    for f in erased:
        assert np.array_equal(out[f], full[f])


def test_decode_unrecoverable_raises(code, stripe):
    chunk, _data, full = stripe
    erased = [0, 1, 2, 3, 8]  # whole group 0 data + a local: > locals + globals
    avail = {i: c for i, c in enumerate(full) if i not in erased}
    with pytest.raises(DecodeError):
        code.decode(avail, erased, chunk)


def test_no_globals_variant():
    code = LocalRegeneratingCode(k=4, l=1, local_r=2, g=0)
    rng = np.random.default_rng(3)
    chunk = code.alpha
    data = random_data(rng, 4, chunk)
    stripe = code.encode_stripe(data)
    assert len(stripe) == 6
    avail = {i: c for i, c in enumerate(stripe) if i != 1}
    out = code.decode(avail, [1], chunk)
    assert np.array_equal(out[1], stripe[1])
    with pytest.raises(DecodeError):
        code.decode({i: c for i, c in enumerate(stripe) if i > 2},
                    [0, 1, 2], chunk)


def test_storage_overhead(code):
    # 14 nodes / 8 data = 1.75 (locality costs storage vs 1.4 for (10,4)).
    assert code.storage_overhead == pytest.approx(14 / 8)

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_data(rng, k, chunk_size):
    return [rng.integers(0, 256, chunk_size, dtype=np.uint8) for _ in range(k)]

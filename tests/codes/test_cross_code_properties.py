"""Properties every erasure code in the package must share."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    ClayCode,
    HitchhikerCode,
    LRCCode,
    RSCode,
    extract_reads,
)

ALL_CODES = [
    pytest.param(lambda: RSCode(6, 3), 48, id="rs"),
    pytest.param(lambda: LRCCode(6, 2, 2), 48, id="lrc"),
    pytest.param(lambda: HitchhikerCode(6, 3), 48, id="hitchhiker"),
    pytest.param(lambda: ClayCode(4, 2), 48, id="clay"),
]


def stripe_for(code, chunk_size, seed=0):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, chunk_size, dtype=np.uint8)
            for _ in range(code.k)]
    return data, code.encode_stripe(data)


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_systematic(make_code, chunk):
    code = make_code()
    data, stripe = stripe_for(code, chunk)
    for i in range(code.k):
        assert np.array_equal(stripe[i], data[i])


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_encode_deterministic(make_code, chunk):
    code = make_code()
    data, stripe_a = stripe_for(code, chunk, seed=3)
    stripe_b = code.encode_stripe(data)
    for a, b in zip(stripe_a, stripe_b):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_linearity(make_code, chunk):
    """encode(x ^ y) == encode(x) ^ encode(y) for all linear codes."""
    code = make_code()
    x, _ = stripe_for(code, chunk, seed=1)
    y, _ = stripe_for(code, chunk, seed=2)
    xy = [a ^ b for a, b in zip(x, y)]
    for pa, pb, pc in zip(code.encode(x), code.encode(y), code.encode(xy)):
        assert np.array_equal(pa ^ pb, pc)


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_zero_maps_to_zero(make_code, chunk):
    code = make_code()
    zeros = [np.zeros(chunk, dtype=np.uint8) for _ in range(code.k)]
    for parity in code.encode(zeros):
        assert not np.any(parity)


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_repair_agrees_with_decode(make_code, chunk):
    """Single-failure repair and full decode must produce identical chunks."""
    code = make_code()
    _, stripe = stripe_for(code, chunk, seed=4)
    chunks = {i: c for i, c in enumerate(stripe)}
    for failed in range(code.n):
        plan = code.repair_plan(failed, chunk)
        reads = extract_reads(plan, chunks)
        via_repair = code.repair(failed, reads, chunk)
        available = {i: c for i, c in chunks.items() if i != failed}
        via_decode = code.decode(available, [failed], chunk)[failed]
        assert np.array_equal(via_repair, via_decode)


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_decode_after_reencode_roundtrip(make_code, chunk):
    """Decoded chunks re-encode to exactly the original stripe."""
    code = make_code()
    data, stripe = stripe_for(code, chunk, seed=5)
    erased = [0, code.k]  # one data, one parity
    available = {i: c for i, c in enumerate(stripe) if i not in erased}
    decoded = code.decode(available, erased, chunk)
    restored = [decoded.get(i, stripe[i]) for i in range(code.k)]
    for original, again in zip(stripe, code.encode_stripe(restored)):
        assert np.array_equal(original, again)


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_repair_plan_reads_within_bounds(make_code, chunk):
    code = make_code()
    for failed in range(code.n):
        plan = code.repair_plan(failed, chunk)
        assert failed not in plan.helper_nodes
        for seg in plan.segments:
            assert 0 <= seg.offset and seg.end <= chunk
        assert 0 < plan.total_read_bytes <= code.n * chunk


@pytest.mark.parametrize("make_code,chunk", ALL_CODES)
def test_repair_traffic_never_exceeds_rs(make_code, chunk):
    """k full chunks is the worst case; every code must do no worse."""
    code = make_code()
    for failed in range(code.n):
        assert code.repair_plan(failed, chunk).read_traffic_ratio() <= code.k


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=0, max_value=3))
def test_property_mds_codes_survive_any_r_erasures(seed, which):
    makers = [lambda: RSCode(5, 2), lambda: HitchhikerCode(5, 2),
              lambda: ClayCode(4, 2), lambda: ClayCode(5, 3)]
    code = makers[which]()
    if not code.is_mds:
        return
    rng = np.random.default_rng(seed)
    chunk = 2 * code.alpha
    data = [rng.integers(0, 256, chunk, dtype=np.uint8) for _ in range(code.k)]
    stripe = code.encode_stripe(data)
    erased = sorted(rng.permutation(code.n)[: code.r].tolist())
    available = {i: c for i, c in enumerate(stripe) if i not in erased}
    decoded = code.decode(available, erased, chunk)
    for f in erased:
        assert np.array_equal(decoded[f], stripe[f])


def test_mds_codes_read_traffic_ordering():
    """Table 1's ordering holds across chunk sizes: Clay < HH < RS."""
    for chunk_mult in (1, 4, 16):
        clay = ClayCode(10, 4)
        hh = HitchhikerCode(10, 4)
        rs = RSCode(10, 4)
        c = clay.average_repair_read_ratio(clay.alpha * chunk_mult)
        h = hh.average_repair_read_ratio(hh.alpha * chunk_mult * 128)
        r = rs.average_repair_read_ratio(chunk_mult * 256)
        assert c < h < r


def test_all_codes_reject_short_reads():
    """Repair with missing helper data must fail loudly, not silently."""
    code = RSCode(4, 2)
    _, stripe = stripe_for(code, 16)
    chunks = {i: c for i, c in enumerate(stripe)}
    plan = code.repair_plan(0, 16)
    reads = extract_reads(plan, chunks)
    del reads[1]
    with pytest.raises(KeyError):
        code.repair(0, reads, 16)

"""Reed-Solomon code tests."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import DecodeError, RSCode, extract_reads
from tests.codes.conftest import random_data


def test_parameters_validated():
    with pytest.raises(ValueError):
        RSCode(0, 4)
    with pytest.raises(ValueError):
        RSCode(4, 0)


def test_systematic_encode(rng):
    code = RSCode(4, 2)
    data = random_data(rng, 4, 32)
    stripe = code.encode_stripe(data)
    assert len(stripe) == 6
    for i in range(4):
        assert np.array_equal(stripe[i], data[i])


def test_encode_rejects_wrong_count(rng):
    code = RSCode(4, 2)
    with pytest.raises(ValueError):
        code.encode(random_data(rng, 3, 16))


def test_encode_rejects_mismatched_chunks(rng):
    code = RSCode(3, 2)
    data = random_data(rng, 3, 16)
    data[1] = data[1][:8]
    with pytest.raises(ValueError):
        code.encode(data)


def test_decode_all_single_erasures(rng):
    code = RSCode(6, 3)
    data = random_data(rng, 6, 16)
    stripe = code.encode_stripe(data)
    for f in range(code.n):
        avail = {i: c for i, c in enumerate(stripe) if i != f}
        out = code.decode(avail, [f], 16)
        assert np.array_equal(out[f], stripe[f])


def test_decode_every_r_failure_combination(rng):
    """The MDS property: every r-subset of erasures must decode (Table 1)."""
    code = RSCode(5, 3)
    data = random_data(rng, 5, 8)
    stripe = code.encode_stripe(data)
    for erased in combinations(range(code.n), 3):
        avail = {i: c for i, c in enumerate(stripe) if i not in erased}
        out = code.decode(avail, list(erased), 8)
        for f in erased:
            assert np.array_equal(out[f], stripe[f])


def test_decode_too_many_erasures_fails(rng):
    code = RSCode(4, 2)
    data = random_data(rng, 4, 8)
    stripe = code.encode_stripe(data)
    erased = [0, 1, 2]
    avail = {i: c for i, c in enumerate(stripe) if i not in erased}
    with pytest.raises(DecodeError):
        code.decode(avail, erased, 8)


def test_repair_plan_reads_k_full_chunks():
    code = RSCode(10, 4)
    plan = code.repair_plan(0, 1024)
    assert len(plan.helper_nodes) == 10
    assert plan.total_read_bytes == 10 * 1024
    assert plan.read_traffic_ratio() == 10.0  # Table 1


def test_repair_plan_rejects_bad_node():
    with pytest.raises(ValueError):
        RSCode(4, 2).repair_plan(6, 16)


def test_repair_every_node(rng):
    code = RSCode(6, 2)
    data = random_data(rng, 6, 24)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in range(code.n):
        plan = code.repair_plan(f, 24)
        got = code.repair(f, extract_reads(plan, chunks), 24)
        assert np.array_equal(got, stripe[f])


def test_average_read_ratio_is_k():
    assert RSCode(10, 4).average_repair_read_ratio(64) == pytest.approx(10.0)


def test_is_mds_flag():
    assert RSCode(10, 4).is_mds


def test_zero_data_encodes_to_zero_parity():
    code = RSCode(4, 2)
    data = [np.zeros(16, dtype=np.uint8) for _ in range(4)]
    for parity in code.encode(data):
        assert not np.any(parity)


def test_encode_is_linear(rng):
    """encode(x ^ y) == encode(x) ^ encode(y) — linearity of the code."""
    code = RSCode(4, 2)
    x = random_data(rng, 4, 16)
    y = random_data(rng, 4, 16)
    xy = [a ^ b for a, b in zip(x, y)]
    px = code.encode(x)
    py = code.encode(y)
    pxy = code.encode(xy)
    for a, b, c in zip(px, py, pxy):
        assert np.array_equal(a ^ b, c)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_property_single_repair_roundtrip(k, r, seed):
    rng = np.random.default_rng(seed)
    code = RSCode(k, r)
    data = random_data(rng, k, 8)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    f = int(rng.integers(0, code.n))
    plan = code.repair_plan(f, 8)
    got = code.repair(f, extract_reads(plan, chunks), 8)
    assert np.array_equal(got, stripe[f])

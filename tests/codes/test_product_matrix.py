"""Product-matrix MBR tests: the minimum-bandwidth corner of the trade-off."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import DecodeError
from repro.codes.product_matrix import ProductMatrixMBR


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def make_data(rng, code, length=4):
    return rng.integers(0, 256, code.B * length, dtype=np.uint8)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ProductMatrixMBR(5, 4, 3)  # d < k
    with pytest.raises(ValueError):
        ProductMatrixMBR(5, 2, 5)  # d > n-1
    with pytest.raises(ValueError):
        ProductMatrixMBR(300, 2)


def test_message_size_formula():
    code = ProductMatrixMBR(6, 3, 4)
    assert code.B == 3 * 4 - 3  # kd - k(k-1)/2
    assert code.alpha == 4 and code.beta == 1


def test_storage_overhead_exceeds_mds():
    """MBR pays extra storage for minimum repair bandwidth."""
    code = ProductMatrixMBR(10, 5, 9)
    assert code.storage_overhead > 10 / 5 * 0.99
    assert code.storage_overhead == pytest.approx(10 * 9 / code.B)


def test_data_length_validation(rng):
    code = ProductMatrixMBR(5, 3, 4)
    with pytest.raises(ValueError):
        code.encode(np.zeros(code.B + 1, dtype=np.uint8))


def test_encode_decode_roundtrip_any_k_subset(rng):
    code = ProductMatrixMBR(6, 3, 4)
    data = make_data(rng, code)
    chunks = code.encode(data)
    assert len(chunks) == 6
    assert all(c.size == code.alpha * 4 for c in chunks)
    for nodes in combinations(range(6), 3):
        got = code.decode({i: chunks[i] for i in nodes})
        assert np.array_equal(got, data), nodes


def test_decode_needs_k_chunks(rng):
    code = ProductMatrixMBR(6, 3, 4)
    data = make_data(rng, code)
    chunks = code.encode(data)
    with pytest.raises(DecodeError):
        code.decode({0: chunks[0], 1: chunks[1]})


def test_repair_every_node_from_every_helper_set(rng):
    code = ProductMatrixMBR(6, 3, 4)
    data = make_data(rng, code)
    chunks = code.encode(data)
    for failed in range(6):
        survivors = [i for i in range(6) if i != failed]
        for helpers in combinations(survivors, code.d):
            symbols = {h: code.helper_symbol(h, failed, chunks[h])
                       for h in helpers}
            got = code.repair(failed, symbols)
            assert np.array_equal(got, chunks[failed]), (failed, helpers)


def test_repair_bandwidth_is_exactly_alpha():
    """Repair-by-transfer: d helpers x beta=1 symbols = the lost alpha."""
    code = ProductMatrixMBR(10, 5, 9)
    assert code.repair_traffic_symbols == code.alpha


def test_repair_validation(rng):
    code = ProductMatrixMBR(5, 2, 3)
    data = make_data(rng, code)
    chunks = code.encode(data)
    symbols = {h: code.helper_symbol(h, 0, chunks[h]) for h in (1, 2)}
    with pytest.raises(DecodeError):
        code.repair(0, symbols)  # only 2 of d=3 helpers
    bad = {h: code.helper_symbol(h, 0, chunks[h]) for h in (0, 1, 2)}
    with pytest.raises(DecodeError):
        code.repair(0, bad)  # failed node among helpers


def test_d_equals_k_degenerate(rng):
    code = ProductMatrixMBR(5, 3, 3)  # no T block
    data = make_data(rng, code)
    chunks = code.encode(data)
    got = code.decode({0: chunks[0], 2: chunks[2], 4: chunks[4]})
    assert np.array_equal(got, data)


def test_name():
    assert ProductMatrixMBR(10, 5, 9).name == "PM-MBR(10,5,9)"


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_roundtrip_and_repair(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    k = int(rng.integers(1, n - 1))
    d = int(rng.integers(k, n))
    code = ProductMatrixMBR(n, k, d)
    data = make_data(rng, code, length=2)
    chunks = code.encode(data)
    nodes = rng.permutation(n)[:k]
    assert np.array_equal(code.decode({int(i): chunks[i] for i in nodes}), data)
    failed = int(rng.integers(0, n))
    helpers = [i for i in range(n) if i != failed][:d]
    symbols = {h: code.helper_symbol(h, failed, chunks[h]) for h in helpers}
    assert np.array_equal(code.repair(failed, symbols), chunks[failed])

"""Clay code tests — construction, decode, optimal repair, Fig. 2 patterns."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import ClayCode, DecodeError, extract_reads
from tests.codes.conftest import random_data


def test_parameter_validation():
    with pytest.raises(ValueError):
        ClayCode(4, 1)  # r >= 2 required
    with pytest.raises(ValueError):
        ClayCode(4, 2, gamma=1)
    with pytest.raises(ValueError):
        ClayCode(0, 2)


def test_sub_packetization_clay_10_4():
    """Table 1 / §2.2: Clay(10,4) has alpha=256, beta=64, d=13."""
    code = ClayCode(10, 4)
    assert code.alpha == 256
    assert code.beta == 64
    assert code.d == 13
    assert code.q == 4 and code.t == 4
    assert code.num_slots == 16  # two shortened (virtual) slots


def test_small_code_geometry():
    code = ClayCode(4, 2)
    assert code.q == 2 and code.t == 3
    assert code.alpha == 8 and code.beta == 4
    assert code.num_slots == 6  # no virtual slots: n = q*t
    assert not any(code.is_virtual(s) for s in range(6))


def test_virtual_slots_clay_10_4():
    code = ClayCode(10, 4)
    assert code.is_virtual(14) and code.is_virtual(15)
    assert not code.is_virtual(13)


def test_slot_xy_roundtrip():
    code = ClayCode(10, 4)
    for s in range(code.num_slots):
        x, y = code.slot_xy(s)
        assert code.xy_slot(x, y) == s
        assert 0 <= x < code.q and 0 <= y < code.t


def test_companion_is_involution():
    code = ClayCode(4, 2)
    for slot in range(code.num_slots):
        for z in code._layers:
            comp = code.companion(slot, z)
            if comp is None:
                x, y = code.slot_xy(slot)
                assert z[y] == x
            else:
                comp_slot, comp_z = comp
                assert comp_slot != slot
                back = code.companion(comp_slot, comp_z)
                assert back == (slot, z)


def test_chunk_size_must_divide_alpha():
    code = ClayCode(4, 2)
    with pytest.raises(ValueError):
        code.repair_plan(0, 12)  # not a multiple of alpha=8


def test_systematic_roundtrip(rng):
    code = ClayCode(4, 2)
    data = random_data(rng, 4, 32)
    stripe = code.encode_stripe(data)
    assert len(stripe) == 6
    for i in range(4):
        assert np.array_equal(stripe[i], data[i])


def test_encode_is_linear(rng):
    code = ClayCode(4, 2)
    x = random_data(rng, 4, 16)
    y = random_data(rng, 4, 16)
    xy = [a ^ b for a, b in zip(x, y)]
    for a, b, c in zip(code.encode(x), code.encode(y), code.encode(xy)):
        assert np.array_equal(a ^ b, c)


def test_decode_every_r_failure_combination(rng):
    """MDS check: every r-subset of Clay(4,2) must decode."""
    code = ClayCode(4, 2)
    data = random_data(rng, 4, 16)
    stripe = code.encode_stripe(data)
    for erased in combinations(range(code.n), 2):
        avail = {i: c for i, c in enumerate(stripe) if i not in erased}
        out = code.decode(avail, list(erased), 16)
        for f in erased:
            assert np.array_equal(out[f], stripe[f]), erased


def test_decode_single_failures_clay_5_3(rng):
    code = ClayCode(5, 3)  # q=3, t=3, one virtual slot
    assert code.num_slots == 9 and code.n == 8
    data = random_data(rng, 5, code.alpha)
    stripe = code.encode_stripe(data)
    for f in range(code.n):
        avail = {i: c for i, c in enumerate(stripe) if i != f}
        out = code.decode(avail, [f], code.alpha)
        assert np.array_equal(out[f], stripe[f])


def test_decode_triple_failures_clay_5_3(rng):
    code = ClayCode(5, 3)
    data = random_data(rng, 5, code.alpha)
    stripe = code.encode_stripe(data)
    for erased in [(0, 1, 2), (0, 4, 7), (5, 6, 7), (2, 3, 6)]:
        avail = {i: c for i, c in enumerate(stripe) if i not in erased}
        out = code.decode(avail, list(erased), code.alpha)
        for f in erased:
            assert np.array_equal(out[f], stripe[f])


def test_decode_rejects_too_many_erasures(rng):
    code = ClayCode(4, 2)
    with pytest.raises(DecodeError):
        code.decode({}, [0, 1, 2], 8)


def test_decode_requires_all_survivors(rng):
    code = ClayCode(4, 2)
    data = random_data(rng, 4, 8)
    stripe = code.encode_stripe(data)
    avail = {i: c for i, c in enumerate(stripe) if i not in (0, 3)}
    with pytest.raises(DecodeError):
        code.decode(avail, [0], 8)  # node 3 missing but not declared erased


def test_repair_every_node_clay_4_2(rng):
    code = ClayCode(4, 2)
    data = random_data(rng, 4, 64)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in range(code.n):
        plan = code.repair_plan(f, 64)
        got = code.repair(f, extract_reads(plan, chunks), 64)
        assert np.array_equal(got, stripe[f]), f"node {f}"


def test_repair_every_node_clay_5_3_shortened(rng):
    """Repair must also work with virtual (shortened) slots present."""
    code = ClayCode(5, 3)
    data = random_data(rng, 5, code.alpha)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in range(code.n):
        plan = code.repair_plan(f, code.alpha)
        got = code.repair(f, extract_reads(plan, chunks), code.alpha)
        assert np.array_equal(got, stripe[f]), f"node {f}"


def test_repair_traffic_is_optimal():
    """MSR optimality: read beta from each of d = n-1 helpers (Table 1)."""
    code = ClayCode(4, 2)
    plan = code.repair_plan(0, 64)
    assert plan.read_traffic_ratio() == pytest.approx((code.n - 1) / code.q)
    per_node = plan.read_bytes_per_node()
    assert len(per_node) == code.n - 1
    assert all(v == 64 // code.q for v in per_node.values())


def test_clay_10_4_read_traffic_matches_table1():
    code = ClayCode(10, 4)
    plan = code.repair_plan(0, 256)
    assert plan.read_traffic_ratio() == pytest.approx(3.25)


def test_fig2_fragmentation_cases():
    """Figure 2: repairing a column-y node needs q**y discontinuous reads of
    q**(t-1-y) sub-chunks on every helper — blocks of 64/16/4/1 for (10,4)."""
    code = ClayCode(10, 4)
    chunk = code.alpha  # 1-byte sub-chunks
    expectations = {0: (1, 64), 5: (4, 16), 10: (16, 4), 13: (64, 1)}
    for failed, (n_ios, run_len) in expectations.items():
        plan = code.repair_plan(failed, chunk)
        ios = plan.io_count_per_node()
        assert all(v == n_ios for v in ios.values()), failed
        helper = plan.helper_nodes[0]
        seg = plan.coalesced().segments_for_node(helper)[0]
        assert seg.length == run_len


def test_repair_layers_have_fixed_digit():
    code = ClayCode(10, 4)
    failed = 5
    x0, y0 = code.slot_xy(failed)
    for zi in code.repair_layer_indices(failed):
        assert code._layers[zi][y0] == x0
    assert len(code.repair_layer_indices(failed)) == code.beta


def test_repair_solution_cached():
    code = ClayCode(4, 2)
    first = code._repair_solution(1)
    assert code._repair_solution(1) is first


def test_gamma_choices_all_work(rng):
    for gamma in (2, 3, 0x1D):
        code = ClayCode(4, 2, gamma=gamma)
        data = random_data(rng, 4, 16)
        stripe = code.encode_stripe(data)
        chunks = {i: c for i, c in enumerate(stripe)}
        plan = code.repair_plan(2, 16)
        got = code.repair(2, extract_reads(plan, chunks), 16)
        assert np.array_equal(got, stripe[2])


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_repair_roundtrip_clay_4_2(seed):
    rng = np.random.default_rng(seed)
    code = ClayCode(4, 2)
    data = random_data(rng, 4, 16)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    f = int(rng.integers(0, code.n))
    plan = code.repair_plan(f, 16)
    got = code.repair(f, extract_reads(plan, chunks), 16)
    assert np.array_equal(got, stripe[f])


@pytest.mark.slow
def test_clay_10_4_full_roundtrip(rng):
    """End-to-end correctness at the paper's production parameters."""
    code = ClayCode(10, 4)
    chunk = code.alpha * 2
    data = random_data(rng, 10, chunk)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in (0, 5, 10, 13):  # one per Figure 2 case
        plan = code.repair_plan(f, chunk)
        got = code.repair(f, extract_reads(plan, chunks), chunk)
        assert np.array_equal(got, stripe[f])
    erased = [1, 6, 11, 12]
    avail = {i: c for i, c in enumerate(stripe) if i not in erased}
    out = code.decode(avail, erased, chunk)
    for f in erased:
        assert np.array_equal(out[f], stripe[f])


def test_clay_8_4_t2_geometry(rng):
    """q=4, t=2: a small-t construction with one virtual slot wide grid."""
    code = ClayCode(8, 4)
    assert code.q == 4 and code.t == 3  # ceil(12/4) = 3
    assert code.alpha == 64 and code.beta == 16
    data = random_data(rng, 8, code.alpha)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in (0, 5, 11):
        plan = code.repair_plan(f, code.alpha)
        got = code.repair(f, extract_reads(plan, chunks), code.alpha)
        assert np.array_equal(got, stripe[f])
        assert plan.read_traffic_ratio() == pytest.approx((code.n - 1) / 4)


def test_clay_6_2_no_shortening(rng):
    """q=2, t=4: n = q*t exactly, no virtual slots."""
    code = ClayCode(6, 2)
    assert code.num_slots == code.n == 8
    assert code.alpha == 16
    data = random_data(rng, 6, 32)
    stripe = code.encode_stripe(data)
    chunks = {i: c for i, c in enumerate(stripe)}
    for f in range(code.n):
        plan = code.repair_plan(f, 32)
        got = code.repair(f, extract_reads(plan, chunks), 32)
        assert np.array_equal(got, stripe[f])

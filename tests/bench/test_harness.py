"""Tests for the repro.bench harness, schema, regression gate, and CLI."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchSpec,
    all_specs,
    compare,
    render,
    run_spec,
    run_specs,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.harness import CALIBRATION_GROUP, Regression


def _noop_specs():
    return [
        BenchSpec("calibrate.spin", CALIBRATION_GROUP, lambda: None,
                  units=10, repeats=2),
        BenchSpec("micro.a", "micro", lambda: sum(range(100)), units=100,
                  repeats=2),
        BenchSpec("macro.b", "macro", lambda: None, repeats=2),
    ]


def test_run_spec_times_and_repeats():
    calls = []
    spec = BenchSpec("x", "micro", lambda: calls.append(1), units=4,
                     repeats=3)
    result = run_spec(spec)
    assert len(calls) == 4  # 1 warmup + 3 timed
    assert len(result.all_seconds) == 3
    assert result.seconds == min(result.all_seconds)
    assert result.per_unit_us == result.seconds / 4 * 1e6


def test_run_spec_rejects_bad_repeats():
    spec = BenchSpec("x", "micro", lambda: None)
    with pytest.raises(ValueError):
        run_spec(spec, repeats=0)


def test_run_specs_document_schema():
    doc = run_specs(_noop_specs())
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["calibration_s"] is not None
    marks = doc["benchmarks"]
    assert set(marks) == {"calibrate.spin", "micro.a", "macro.b"}
    for entry in marks.values():
        assert {"group", "units", "repeats", "seconds",
                "per_unit_us"} <= set(entry)
        assert "normalized" in entry
    # stable JSON round-trip
    assert json.loads(json.dumps(doc)) == doc


def test_run_specs_rejects_duplicate_names():
    specs = [BenchSpec("same", "micro", lambda: None),
             BenchSpec("same", "micro", lambda: None)]
    with pytest.raises(ValueError):
        run_specs(specs)


def _doc(marks):
    return {"schema": BENCH_SCHEMA, "calibration_s": 0.1,
            "benchmarks": marks}


def _entry(normalized, group="micro"):
    return {"group": group, "units": 1, "repeats": 3,
            "seconds": normalized * 0.1, "per_unit_us": 1.0,
            "normalized": normalized}


def test_compare_flags_only_regressions_beyond_tolerance():
    base = _doc({"a": _entry(1.0), "b": _entry(2.0), "c": _entry(3.0)})
    cur = _doc({"a": _entry(1.15),   # +15%: within the 20% gate
                "b": _entry(2.5),    # +25%: regression
                "c": _entry(2.0)})   # improvement
    regs = compare(cur, base, tolerance=0.20)
    assert [r.name for r in regs] == ["b"]
    assert regs[0].metric == "normalized"
    assert regs[0].ratio == pytest.approx(1.25)
    assert "b" in str(regs[0])


def test_compare_ignores_new_and_removed_benchmarks():
    base = _doc({"a": _entry(1.0), "gone": _entry(1.0)})
    cur = _doc({"a": _entry(1.0), "new": _entry(50.0)})
    assert compare(cur, base) == []


def test_compare_never_gates_on_the_calibration_itself():
    base = _doc({"cal": _entry(1.0, group=CALIBRATION_GROUP)})
    cur = _doc({"cal": _entry(9.0, group=CALIBRATION_GROUP)})
    assert compare(cur, base) == []


def test_compare_falls_back_to_seconds_without_calibration():
    base = {"benchmarks": {"a": {"group": "micro", "seconds": 1.0,
                                 "units": 1, "repeats": 1,
                                 "per_unit_us": 1.0}}}
    cur = {"benchmarks": {"a": {"group": "micro", "seconds": 1.5,
                                "units": 1, "repeats": 1,
                                "per_unit_us": 1.0}}}
    regs = compare(cur, base, tolerance=0.20)
    assert [r.metric for r in regs] == ["seconds"]


def test_compare_validates_tolerance():
    with pytest.raises(ValueError):
        compare(_doc({}), _doc({}), tolerance=-0.1)


def test_regression_ratio_handles_zero_baseline():
    assert Regression("x", "seconds", 0.0, 1.0).ratio == float("inf")


def test_render_lists_every_benchmark():
    doc = run_specs(_noop_specs())
    table = render(doc)
    for name in doc["benchmarks"]:
        assert name in table


def test_all_specs_unique_names_and_calibration_present():
    specs = all_specs()
    names = [s.name for s in specs]
    assert len(set(names)) == len(names)
    assert sum(1 for s in specs if s.group == CALIBRATION_GROUP) == 1
    assert any(s.group == "micro" for s in specs)
    assert any(s.group == "macro" for s in specs)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "calibrate.spin" in out
    assert "scenario.fig13" in out


def test_cli_runs_filtered_suite_and_writes_doc(tmp_path, capsys):
    out_path = tmp_path / "BENCH_engine.json"
    rc = bench_main(["--only", "gf.constructions", "--repeats", "1",
                     "--out", str(out_path)])
    assert rc == 0
    doc = json.loads(out_path.read_text())
    assert doc["schema"] == BENCH_SCHEMA
    assert set(doc["benchmarks"]) == {"calibrate.spin", "gf.constructions"}
    assert "gf.constructions" in capsys.readouterr().out


def test_cli_gate_passes_against_own_output(tmp_path, capsys):
    base = tmp_path / "baseline.json"
    assert bench_main(["--only", "gf.constructions", "--repeats", "1",
                       "--out", str(base)]) == 0
    # A generous gate against a just-written baseline must pass.
    rc = bench_main(["--only", "gf.constructions", "--repeats", "1",
                     "--baseline", str(base), "--gate", "5.0"])
    assert rc == 0
    assert "perf gate OK" in capsys.readouterr().out


def test_cli_gate_fails_on_regression(tmp_path, capsys):
    base = tmp_path / "baseline.json"
    assert bench_main(["--only", "gf.constructions", "--repeats", "1",
                       "--out", str(base)]) == 0
    # Shrink the baseline numbers so the fresh run looks like a regression.
    doc = json.loads(base.read_text())
    for entry in doc["benchmarks"].values():
        if entry["group"] != CALIBRATION_GROUP:
            entry["normalized"] /= 100.0
            entry["seconds"] /= 100.0
    base.write_text(json.dumps(doc))
    rc = bench_main(["--only", "gf.constructions", "--repeats", "1",
                     "--baseline", str(base), "--gate", "0.20"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "PERF GATE FAILED" in out
    assert "[bench-reset]" in out

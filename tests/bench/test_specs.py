"""Smoke tests: every benchmark body runs and returns a sane value.

The timing harness is tested in ``test_harness.py``; here each spec's
callable is invoked once (no repeats, no timing) so a broken benchmark
fails the suite rather than silently reporting garbage to the CI gate.
The heavy macros (fig13/tradeoff at bench scale) are exercised through a
cheaper equivalent: the shared ``_run`` helper with the fig4 units.
"""

import numpy as np
import pytest

from repro.bench import macro, micro


@pytest.mark.parametrize("spec", micro.specs(), ids=lambda s: s.name)
def test_micro_spec_bodies_run(spec):
    value = spec.fn()
    assert value is not None
    assert spec.units >= 1


def test_micro_decode_paths_agree():
    """Cold and cached decode benchmarks compute the same checksum."""
    assert micro._decode_cold() == micro._decode_cached()


def test_micro_engine_benchmarks_advance_the_clock():
    assert micro._event_throughput() == float(micro._N_EVENTS)
    assert micro._ready_lane() == 0.0  # zero-delay storm never moves time
    assert micro._process_churn() == 2.0 * micro._N_PROCS


def test_micro_contention_reports_utilization():
    util = micro._contention()
    assert 0.0 < util <= 1.0


def test_macro_fig4_runs_real_scenarios():
    rows = macro._fig4()
    assert rows > 0


def test_macro_specs_shapes():
    specs = macro.specs()
    assert [s.group for s in specs] == ["macro"] * len(specs)
    assert all(s.repeats == 2 for s in specs)


def test_micro_stripe_fixture_is_consistent():
    """The module-level RS stripe used by decode benches is decodable."""
    erased = micro._ERASED
    decoded = micro._RS.decode(micro._AVAILABLE, erased, micro._CHUNK)
    for node in erased:
        assert np.array_equal(decoded[node], micro._STRIPE[node])


def test_reliability_spec_bodies_run():
    from repro.bench import reliability

    assert reliability._markov_sweep() > 0
    assert reliability._fleet_topology() == reliability._CONFIG.n_pgs
    assert reliability._fleet_trial() >= 0
    specs = reliability.specs()
    assert [s.group for s in specs] == ["reliability"] * 3
    assert all(s.units > 1 for s in specs)

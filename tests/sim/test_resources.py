"""Tests for FIFO / priority resources."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, SimulationError


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_serial_service_on_unit_resource():
    env = Environment()
    disk = Resource(env)
    done = []

    def job(name, service):
        req = disk.request()
        yield req
        yield env.timeout(service)
        disk.release(req)
        done.append((env.now, name))

    env.process(job("a", 2))
    env.process(job("b", 3))
    env.process(job("c", 1))
    env.run()
    assert done == [(2, "a"), (5, "b"), (6, "c")]


def test_parallel_service_with_capacity():
    env = Environment()
    disk = Resource(env, capacity=2)
    done = []

    def job(name, service):
        req = disk.request()
        yield req
        yield env.timeout(service)
        disk.release(req)
        done.append((env.now, name))

    for name in ("a", "b", "c"):
        env.process(job(name, 2))
    env.run()
    # a and b run together; c starts when one finishes.
    assert done == [(2, "a"), (2, "b"), (4, "c")]


def test_release_requires_grant():
    env = Environment()
    disk = Resource(env)
    first = disk.request()  # granted immediately
    second = disk.request()  # queued
    with pytest.raises(SimulationError):
        disk.release(second)
    disk.release(first)


def test_fifo_ignores_priority():
    env = Environment()
    disk = Resource(env)
    order = []

    def job(name, priority):
        req = disk.request(priority)
        yield req
        yield env.timeout(1)
        disk.release(req)
        order.append(name)

    env.process(job("low", 10))
    env.process(job("high", 0))
    env.run()
    assert order == ["low", "high"]  # plain Resource is strictly FIFO


def test_priority_resource_orders_by_priority():
    env = Environment()
    disk = PriorityResource(env)
    order = []

    def job(name, priority, submit_at):
        yield env.timeout(submit_at)
        req = disk.request(priority)
        yield req
        yield env.timeout(10)
        disk.release(req)
        order.append(name)

    # First job occupies the disk; the rest queue and are served by priority.
    env.process(job("first", 5, 0))
    env.process(job("background", 5, 1))
    env.process(job("foreground", 0, 2))
    env.run()
    assert order == ["first", "foreground", "background"]


def test_priority_fifo_within_class():
    env = Environment()
    disk = PriorityResource(env)
    order = []

    def job(name, submit_at):
        yield env.timeout(submit_at)
        req = disk.request(1)
        yield req
        yield env.timeout(5)
        disk.release(req)
        order.append(name)

    env.process(job("a", 0))
    env.process(job("b", 1))
    env.process(job("c", 2))
    env.run()
    assert order == ["a", "b", "c"]


def test_utilization_accounting():
    env = Environment()
    disk = Resource(env)

    def job():
        req = disk.request()
        yield req
        yield env.timeout(4)
        disk.release(req)
        yield env.timeout(4)

    env.run(env.process(job()))
    assert disk.utilization() == pytest.approx(0.5)


def test_utilization_multi_capacity():
    env = Environment()
    disk = Resource(env, capacity=2)

    def job():
        req = disk.request()
        yield req
        yield env.timeout(10)
        disk.release(req)

    env.process(job())
    env.process(job())
    env.run()
    assert disk.utilization() == pytest.approx(1.0)


def test_queue_length():
    env = Environment()
    disk = Resource(env)
    disk.request()
    disk.request()
    disk.request()
    assert disk.queue_length == 2


def test_utilization_at_time_zero():
    env = Environment()
    assert Resource(env).utilization() == 0.0


def test_utilization_of_resource_created_mid_simulation():
    """Regression: utilization must divide by the resource's lifetime, not
    by ``env.now`` — a resource created at t=6 that is busy for all of its
    6-second life is 100% utilized, not 50%."""
    env = Environment()
    env.run(env.process(_sleep(env, 6)))
    assert env.now == pytest.approx(6.0)
    disk = Resource(env)

    def job():
        req = disk.request()
        yield req
        yield env.timeout(6)
        disk.release(req)

    env.run(env.process(job()))
    assert disk.utilization() == pytest.approx(1.0)


def _sleep(env, delay):
    yield env.timeout(delay)


def test_utilization_mid_simulation_half_busy():
    env = Environment()
    env.run(env.process(_sleep(env, 10)))
    disk = Resource(env)

    def job():
        req = disk.request()
        yield req
        yield env.timeout(3)
        disk.release(req)
        yield env.timeout(3)

    env.run(env.process(job()))
    assert disk.utilization() == pytest.approx(0.5)


def test_queue_wait_fifo():
    """queue_wait = grant time − request time, without hand-tracking."""
    env = Environment()
    disk = Resource(env)
    waits = {}

    def job(name, service):
        req = disk.request()
        yield req
        waits[name] = req.queue_wait
        yield env.timeout(service)
        disk.release(req)

    env.process(job("a", 2))
    env.process(job("b", 3))
    env.process(job("c", 1))
    env.run()
    assert waits["a"] == pytest.approx(0.0)
    assert waits["b"] == pytest.approx(2.0)   # behind a
    assert waits["c"] == pytest.approx(5.0)   # behind a and b


def test_queue_wait_priority_lanes():
    """Foreground jumps the background queue, so it waits less despite
    arriving later."""
    env = Environment()
    disk = PriorityResource(env)
    waits = {}

    def job(name, priority, submit_at):
        yield env.timeout(submit_at)
        req = disk.request(priority)
        yield req
        waits[name] = req.queue_wait
        yield env.timeout(10)
        disk.release(req)

    env.process(job("first", 5, 0))
    env.process(job("background", 5, 1))
    env.process(job("foreground", 0, 2))
    env.run()
    assert waits["first"] == pytest.approx(0.0)
    assert waits["foreground"] == pytest.approx(8.0)    # served at t=10
    assert waits["background"] == pytest.approx(19.0)   # served at t=20


def test_queue_wait_before_grant_raises():
    env = Environment()
    disk = Resource(env)
    disk.request()
    queued = disk.request()
    with pytest.raises(SimulationError):
        _ = queued.queue_wait


def test_queue_wait_survives_release():
    env = Environment()
    disk = Resource(env)
    req = disk.request()
    disk.release(req)
    assert req.queue_wait == pytest.approx(0.0)


def test_resource_records_metrics_when_observed():
    from repro.obs import Observer

    obs = Observer()
    env = Environment()
    disk = PriorityResource(env, obs=obs, kind="disk", instance="0")

    def job(priority, service):
        req = disk.request(priority)
        yield req
        yield env.timeout(service)
        disk.release(req)

    env.process(job(0, 2))
    env.process(job(1, 3))
    env.run()
    fg = obs.metrics.get("disk.queue_wait", lane=0)
    bg = obs.metrics.get("disk.queue_wait", lane=1)
    assert fg.count == 1 and fg.max == pytest.approx(0.0)
    assert bg.count == 1 and bg.max == pytest.approx(2.0)
    in_use = obs.metrics.get("disk.in_use", dev="0")
    assert in_use.max == 1 and in_use.value == 0


def test_unobserved_resource_has_no_metric_attrs():
    env = Environment()
    disk = Resource(env)
    assert disk._obs is None  # the disabled path stays a single None test


# ----------------------------------------------------------------------
# Release/cancel lifecycle guards
# ----------------------------------------------------------------------
def test_double_release_raises():
    env = Environment()
    disk = Resource(env)
    req = disk.request()
    disk.release(req)
    with pytest.raises(SimulationError, match="already released"):
        disk.release(req)
    assert disk.in_use == 0  # the failed release did not corrupt accounting


def test_release_method_on_request():
    env = Environment()
    disk = Resource(env)
    req = disk.request()
    assert disk.in_use == 1
    req.release()
    assert disk.in_use == 0
    with pytest.raises(SimulationError, match="already released"):
        req.release()


def test_release_foreign_request_raises():
    env = Environment()
    a, b = Resource(env), Resource(env)
    req = a.request()
    with pytest.raises(SimulationError, match="different resource"):
        b.release(req)
    a.release(req)


def test_release_ungranted_request_raises():
    env = Environment()
    disk = Resource(env)
    held = disk.request()
    queued = disk.request()
    assert not queued.granted
    with pytest.raises(SimulationError, match="never granted"):
        disk.release(queued)
    disk.release(held)


def test_cancel_queued_request_is_skipped_at_grant_time():
    env = Environment()
    disk = Resource(env)
    first = disk.request()
    second = disk.request()
    third = disk.request()
    second.cancel()
    assert disk.queue_length == 1
    second.cancel()  # idempotent
    first.release()
    assert third.granted and not second.granted
    with pytest.raises(SimulationError, match="cancel"):
        third.cancel()  # granted requests must be released, not cancelled
    with pytest.raises(SimulationError, match="cancelled"):
        disk.release(second)
    third.release()


def test_request_context_manager_releases():
    env = Environment()
    disk = Resource(env)
    done = []

    def job(name, service):
        with disk.request() as req:
            yield req
            yield env.timeout(service)
        done.append((env.now, name))

    env.process(job("a", 2))
    env.process(job("b", 1))
    env.run()
    assert done == [(2, "a"), (3, "b")]
    assert disk.in_use == 0


def test_request_context_manager_cancels_when_never_granted():
    env = Environment()
    disk = Resource(env)
    held = disk.request()
    with disk.request() as req:
        pass  # exits before the grant: withdrawn from the queue
    assert req.cancelled
    held.release()
    assert disk.in_use == 0 and disk.queue_length == 0

"""Cancellable waits: ``AnyOf`` races and ``Process.interrupt``."""

import pytest

from repro.sim import (
    AnyOf,
    Environment,
    Interrupted,
    Resource,
    SimulationError,
)


# ----------------------------------------------------------------------
# AnyOf
# ----------------------------------------------------------------------
def test_any_of_triggers_with_first_value():
    env = Environment()
    race = env.any_of([env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
    assert env.run(race) == "fast"
    assert env.now == 1.0


def test_any_of_already_drained_event_wins_immediately():
    env = Environment()
    done = env.event()
    done.succeed("early")
    env.run()  # drain the succeed callbacks
    race = env.any_of([env.timeout(3.0), done])
    assert env.run(race) == "early"
    assert env.now == 0.0


def test_any_of_empty_is_an_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_any_of_losers_keep_running():
    env = Environment()
    log = []

    def slow():
        yield env.timeout(2.0)
        log.append("slow")

    race = env.any_of([env.process(slow()), env.timeout(0.5, "won")])
    assert env.run(race) == "won"
    env.run()
    assert log == ["slow"]


def test_any_of_is_an_event_class():
    env = Environment()
    assert isinstance(env.any_of([env.timeout(1)]), AnyOf)


# ----------------------------------------------------------------------
# Process.interrupt
# ----------------------------------------------------------------------
def test_interrupt_runs_finally_and_finishes_with_interrupted():
    env = Environment()
    cleaned = []

    def worker():
        try:
            yield env.timeout(100.0)
        finally:
            cleaned.append(env.now)

    proc = env.process(worker())

    def killer():
        yield env.timeout(3.0)
        assert proc.interrupt("boredom")

    env.run(env.process(killer()))
    env.run(proc)
    assert cleaned == [3.0]
    assert isinstance(proc.value, Interrupted)
    assert proc.value.cause == "boredom"


def test_interrupt_caught_process_continues_on_new_event():
    env = Environment()

    def worker():
        try:
            yield env.timeout(100.0)
        except Interrupted:
            yield env.timeout(1.0)
        return "recovered"

    proc = env.process(worker())

    def killer():
        yield env.timeout(2.0)
        proc.interrupt()

    env.process(killer())
    assert env.run(proc) == "recovered"
    assert env.now == 3.0


def test_interrupt_finished_process_is_a_noop():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(worker())
    assert env.run(proc) == "done"
    assert proc.interrupt() is False
    assert proc.value == "done"


def test_interrupt_cancels_queued_resource_request_without_leak():
    """A with-managed request abandoned mid-queue must be cancelled, not
    leaked — the hedged-retry regression the fault paths rely on."""
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def waiter():
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(holder())
    queued = env.process(waiter())

    def killer():
        yield env.timeout(2.0)
        queued.interrupt("hedge")

    env.run(env.process(killer()))
    assert res.queue_length == 0  # the queued request was cancelled
    env.run()
    assert res.in_use == 0  # and the holder released normally


def test_interrupt_releases_granted_resource():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    proc = env.process(holder())

    def killer():
        yield env.timeout(1.0)
        proc.interrupt()

    env.run(env.process(killer()))
    assert res.in_use == 0


def test_interrupt_same_timestep_as_wakeup_does_not_double_resume():
    """Interrupting at the exact time the awaited event fires must not
    resume the process twice (stale-wakeup guard)."""
    env = Environment()
    resumes = []

    def worker():
        try:
            yield env.timeout(5.0)
            resumes.append("timer")
        except Interrupted:
            resumes.append("interrupt")

    proc = env.process(worker())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt()

    env.process(killer())
    env.run()
    assert len(resumes) == 1

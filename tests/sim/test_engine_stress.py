"""Stress tests for the dual-queue engine hot path.

The ``__slots__``/tuple refactor split the event queue into a binary heap
(future events) and a ready deque (events due *now*).  These tests hammer
the merged-pop ordering with 10k interleaved timeouts, zero-delay events,
process interrupts and resource-request cancellations, asserting that

* tie-breaking stays FIFO-deterministic (schedule order == fire order at
  equal sim times, across both queues), and
* :meth:`~repro.sim.resources.Resource.utilization` accounting survives a
  churn of grants, releases and cancellations exactly.
"""

import random

from repro.sim import Environment, Interrupted
from repro.sim.resources import PriorityResource, Resource

N = 10_000


def test_10k_interleaved_timeouts_fire_in_fifo_deterministic_order():
    """Equal-time events fire in scheduling order, mixed delays or not."""
    rng = random.Random(42)
    env = Environment()
    fired: list[int] = []
    # A deterministic pseudo-random mix of delays with heavy tie density:
    # many events land on the same integer timestamps, exercising the
    # heap/deque merge on every pop.
    schedule = [(float(rng.randrange(8)), i) for i in range(N)]

    def waiter(delay, tag):
        yield env.timeout(delay)
        fired.append(tag)

    for delay, tag in schedule:
        env.process(waiter(delay, tag))
    env.run()

    # stable sort by delay == FIFO within each timestamp
    expected = [tag for delay, tag in sorted(schedule, key=lambda p: p[0])]
    assert fired == expected
    assert len(fired) == N


def test_zero_delay_storm_preserves_seq_order_across_queues():
    """timeout(0) events (ready deque) interleaved with due heap events
    keep global (when, seq) order."""
    env = Environment()
    fired: list[str] = []

    def now_waiter(i):
        yield env.timeout(0.0)
        fired.append(f"now-{i}")

    def future_waiter(i):
        yield env.timeout(1.0)
        yield env.timeout(0.0)
        fired.append(f"later-{i}")

    for i in range(2_000):
        env.process(future_waiter(i))
        env.process(now_waiter(i))
    env.run()
    # All now-* run at t=0 in spawn order; all later-* at t=1 in spawn order.
    assert fired[:2_000] == [f"now-{i}" for i in range(2_000)]
    assert fired[2_000:] == [f"later-{i}" for i in range(2_000)]


def test_interleaved_interrupts_are_deterministic_and_leak_free():
    """Interrupt half the sleepers mid-wait; the rest keep FIFO order."""
    env = Environment()
    finished: list[int] = []
    interrupted: list[int] = []
    sleepers = []

    def sleeper(i):
        try:
            yield env.timeout(10.0)
            finished.append(i)
        except Interrupted:
            interrupted.append(i)

    def canceller():
        yield env.timeout(5.0)
        for i, proc in enumerate(sleepers):
            if i % 2:
                proc.interrupt(cause="mid-wait cancellation")

    for i in range(N):
        sleepers.append(env.process(sleeper(i)))
    env.process(canceller())
    env.run()

    assert interrupted == [i for i in range(N) if i % 2]
    assert finished == [i for i in range(N) if not i % 2]
    assert env.now == 10.0


def test_resource_churn_utilization_audit():
    """Grant/release/cancel churn leaves exact utilization accounting.

    Layout: capacity-2 resource, 4 clients.  Two holders take the slots
    over [0, 4); the queued pair is granted at t=4 and holds until t=8 and
    t=12 respectively; two queued requests are cancelled before ever being
    granted.  The utilization integral is therefore exactly
    ``2*4 + 2*4 + 1*4 = 20`` slot-seconds over a 16-second lifetime.
    """
    env = Environment()
    res = Resource(env, capacity=2)
    cancelled = []

    def holder(delay, hold):
        yield env.timeout(delay)
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    def cancelling_client(delay):
        yield env.timeout(delay)
        req = res.request()
        # Queued behind the holders — withdraw before the grant.
        yield env.timeout(1.0)
        req.cancel()
        cancelled.append(req)

    env.process(holder(0.0, 4.0))
    env.process(holder(0.0, 4.0))
    env.process(holder(0.0, 8.0))   # queued at t=0, granted at t=4
    env.process(holder(0.0, 4.0))   # queued at t=0, granted at t=4
    env.process(cancelling_client(0.0))
    env.process(cancelling_client(2.0))
    env.run(until=16.0)

    assert env.now == 16.0
    assert all(req.cancelled and not req.granted for req in cancelled)
    assert res.in_use == 0
    assert res.queue_length == 0
    assert res.utilization() == 20.0 / (2 * 16.0)


def test_mass_request_cancellation_keeps_fifo_of_survivors():
    """Cancel a pseudo-random half of 10k queued requests; the survivors
    are granted in exact FIFO order and the heap drains the husks."""
    rng = random.Random(7)
    env = Environment()
    res = PriorityResource(env, capacity=1)
    grants: list[int] = []
    requests = {}

    def opener():
        # Seize the single slot so every later request queues.
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    def client(i):
        req = res.request(priority=0)
        requests[i] = req
        yield req
        grants.append(i)
        res.release(req)

    env.process(opener())
    doomed = set()
    for i in range(N):
        env.process(client(i))
        if rng.random() < 0.5:
            doomed.add(i)

    def canceller():
        yield env.timeout(0.5)
        for i in sorted(doomed):
            requests[i].cancel()

    env.process(canceller())
    env.run()

    assert grants == [i for i in range(N) if i not in doomed]
    assert res.queue_length == 0
    assert res.in_use == 0

"""Tests for the discrete-event engine."""

import pytest

from repro.sim import AllOf, Environment, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    done = env.process(_sleep(env, 5.0))
    env.run(done)
    assert env.now == pytest.approx(5.0)


def _sleep(env, delay):
    yield env.timeout(delay)
    return "slept"


def test_process_return_value():
    env = Environment()
    done = env.process(_sleep(env, 1.0))
    assert env.run(done) == "slept"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_sequential_timeouts_accumulate():
    env = Environment()

    def proc():
        yield env.timeout(1)
        yield env.timeout(2)
        yield env.timeout(3)
        return env.now

    assert env.run(env.process(proc())) == pytest.approx(6.0)


def test_timeout_value_passes_through():
    env = Environment()

    def proc():
        got = yield env.timeout(1, value="payload")
        return got

    assert env.run(env.process(proc())) == "payload"


def test_concurrent_processes_interleave():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("b", 2))
    env.process(worker("a", 1))
    env.process(worker("c", 3))
    env.run()
    assert log == [(1, "a"), (2, "b"), (3, "c")]


def test_fifo_order_at_same_time():
    """Events scheduled at the same instant fire in scheduling order."""
    env = Environment()
    log = []

    def worker(name):
        yield env.timeout(1)
        log.append(name)

    for name in "abcd":
        env.process(worker(name))
    env.run()
    assert log == list("abcd")


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(4)
        return 42

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    assert env.run(env.process(parent())) == (4.0, 42)


def test_wait_on_manual_event():
    env = Environment()
    gate = env.event()

    def opener():
        yield env.timeout(3)
        gate.succeed("open")

    def waiter():
        value = yield gate
        return (env.now, value)

    env.process(opener())
    done = env.process(waiter())
    assert env.run(done) == (3.0, "open")


def test_double_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_value_before_trigger_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_all_of_waits_for_every_child():
    env = Environment()

    def child(delay):
        yield env.timeout(delay)
        return delay

    def parent():
        procs = [env.process(child(d)) for d in (3, 1, 2)]
        values = yield AllOf(env, procs)
        return (env.now, values)

    assert env.run(env.process(parent())) == (3.0, [3, 1, 2])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def parent():
        yield AllOf(env, [])
        return env.now

    assert env.run(env.process(parent())) == 0.0


def test_yield_already_fired_event_resumes():
    """A process that yields a long-drained event must not deadlock."""
    env = Environment()
    gate = env.event()
    gate.succeed("early")

    def late_waiter():
        yield env.timeout(5)
        value = yield gate
        return value

    # Drain gate's callbacks first.
    env.run(until=1)
    assert env.run(env.process(late_waiter())) == "early"


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    with pytest.raises(SimulationError):
        env.process(bad())
        env.run()


def test_run_until_time():
    env = Environment()
    log = []

    def ticker():
        while True:
            yield env.timeout(1)
            log.append(env.now)

    env.process(ticker())
    env.run(until=3.5)
    assert log == [1, 2, 3]
    assert env.now == pytest.approx(3.5)


def test_run_dry_before_event_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(never)


def test_deterministic_replay():
    def scenario():
        env = Environment()
        order = []

        def worker(name, d):
            yield env.timeout(d)
            order.append(name)

        for i, d in enumerate([3, 1, 2, 1, 3]):
            env.process(worker(i, d))
        env.run()
        return order

    assert scenario() == scenario()


def test_process_exception_propagates():
    """A crashing process surfaces its error instead of hanging the sim."""
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(bad())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_nested_all_of():
    env = Environment()

    def child(d):
        yield env.timeout(d)
        return d

    def parent():
        inner = AllOf(env, [env.process(child(1)), env.process(child(2))])
        outer = AllOf(env, [inner, env.process(child(3))])
        values = yield outer
        return (env.now, values)

    now, values = env.run(env.process(parent()))
    assert now == 3.0
    assert values[0] == [1, 2] and values[1] == 3


def test_all_of_over_already_triggered_and_drained_events():
    """AllOf must not wait forever on events whose callbacks already ran."""
    env = Environment()
    early1 = env.event()
    early1.succeed("one")
    early2 = env.event()
    early2.succeed("two")
    env.run()  # drain both callbacks

    def parent():
        values = yield AllOf(env, [early1, early2])
        return values

    assert env.run(env.process(parent())) == ["one", "two"]


def test_all_of_mixes_drained_and_pending_events():
    env = Environment()
    done = env.event()
    done.succeed("early")
    env.run()

    def child():
        yield env.timeout(2)
        return "late"

    def parent():
        values = yield AllOf(env, [done, env.process(child())])
        return (env.now, values)

    assert env.run(env.process(parent())) == (2.0, ["early", "late"])


def test_run_until_deadline_clamps_now_when_queue_drains_early():
    """run(until=t) must land the clock exactly on t even if the last
    event fires earlier."""
    env = Environment()
    env.process(_sleep(env, 1.0))
    env.run(until=7.5)
    assert env.now == pytest.approx(7.5)


def test_run_until_deadline_leaves_future_events_pending():
    env = Environment()
    log = []

    def late():
        yield env.timeout(10)
        log.append(env.now)

    env.process(late())
    env.run(until=4.0)
    assert env.now == pytest.approx(4.0)
    assert log == []
    env.run()  # the pending event still fires afterwards
    assert log == [10.0]


def test_run_until_zero_deadline():
    env = Environment()
    env.process(_sleep(env, 3))
    env.run(until=0.0)
    assert env.now == 0.0


def test_rehop_passes_value_of_drained_event():
    """The re-hop path must resume with the drained event's value."""
    env = Environment()
    gate = env.event()
    gate.succeed({"payload": 17})
    env.run()

    def waiter():
        value = yield gate
        second = yield gate  # re-hopping twice also works
        return (value, second)

    assert env.run(env.process(waiter())) == ({"payload": 17}, {"payload": 17})


def test_rehop_preserves_clock():
    env = Environment()
    gate = env.event()
    gate.succeed("v")
    env.run()

    def waiter():
        yield env.timeout(3)
        yield gate        # re-hop happens "now", not at trigger time
        return env.now

    assert env.run(env.process(waiter())) == pytest.approx(3.0)


def test_trace_hooks_observe_schedule_and_resume():
    calls = {"schedule": 0, "resume": 0}

    class Hooks:
        def on_schedule(self, when, event):
            calls["schedule"] += 1

        def on_resume(self, process, trigger):
            calls["resume"] += 1

    env = Environment(trace_hooks=Hooks())

    def proc():
        yield env.timeout(1)
        yield env.timeout(2)

    env.run(env.process(proc()))
    assert calls["schedule"] >= 3   # start event + two timeouts
    assert calls["resume"] == 3     # two resumes + final StopIteration


def test_many_processes_scale():
    """The heap scheduler handles thousands of concurrent processes."""
    env = Environment()
    done = []

    def worker(i):
        yield env.timeout(i % 97 * 0.01)
        done.append(i)

    for i in range(5000):
        env.process(worker(i))
    env.run()
    assert len(done) == 5000


def test_close_finalizes_abandoned_processes_deterministically():
    """Open-ended generators abandoned at end-of-run must be cleaned up by
    ``close()``, not whenever garbage collection reaches them — otherwise
    their ``finally`` blocks (resource releases, metric updates) fire at a
    moment that depends on the host process's allocation history."""
    env = Environment()
    cleaned = []

    def open_ended(name):
        try:
            while True:
                yield env.timeout(1)
        finally:
            cleaned.append((env.now, name))

    keep_alive = [env.process(open_ended(n)) for n in "ab"]
    env.run(until=5)
    assert cleaned == []
    env.close()
    # Cleanup runs in process creation order at the final sim time.
    assert cleaned == [(5, "a"), (5, "b")]
    env.close()  # idempotent: exhausted generators are no-ops
    assert len(cleaned) == 2
    assert keep_alive  # processes stayed referenced until close

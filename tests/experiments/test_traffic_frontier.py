"""traffic-frontier: scenario grid, seed groups, one tiny end-to-end
cell, and the rendered table."""

import pytest

from repro.experiments.traffic_frontier import (
    RATES,
    SCHEMES,
    WEIGHTS,
    FrontierRow,
    busiest_disk,
    compute_cell,
    frontier_tenants,
    render,
    scenarios,
)
from repro.experiments.common import (
    build_system,
    cluster_config,
    sample_workload,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    RunOptions,
    run_scenarios,
    typed_rows,
)

TINY = dict(n_objects=60, duration=2.0, seed=0)


def test_frontier_tenants_renormalise_and_rescale():
    specs = frontier_tenants()
    assert sum(t.share for t in specs) == pytest.approx(1.0)
    assert {t.name for t in specs} == {"interactive", "standard", "batch"}
    assert all(t.slo_ms >= 2000.0 for t in specs)  # W1-scale SLOs
    two = frontier_tenants(2)
    assert len(two) == 2
    assert sum(t.share for t in two) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        frontier_tenants(0)
    with pytest.raises(ValueError):
        frontier_tenants(99)


def test_scenario_grid_shape_and_shared_seed_group():
    units = scenarios(n_objects=60)
    assert len(units) == len(SCHEMES) * len(RATES) * len(WEIGHTS) * 2
    names = {u.name for u in units}
    assert f"RS/r{RATES[0]:g}/w{WEIGHTS[0]}/unhedged" in names
    assert f"Geo-4M/r{RATES[1]:g}/w{WEIGHTS[1]}/hedged" in names
    # One seed group for the whole grid: every cell faces the same
    # arrival draws, so the sweep compares policies, never draws.
    assert len({u.seed_group for u in units}) == 1
    # Narrowing the rate sweep narrows the grid without renaming cells.
    narrow = scenarios(n_objects=60, rates=(RATES[0],))
    assert len(narrow) == len(units) // 2
    assert {u.seed_group for u in narrow} == {units[0].seed_group}


def test_busiest_disk_is_deterministic_and_degrades_objects():
    ws = setting_by_name("W1")
    system = build_system("RS", ws, cluster_config(ws, 60, client_gbps=10.0))
    system.ingest(sample_workload(ws, 60, 0))
    disk = busiest_disk(system)
    assert disk == busiest_disk(system)
    assert len(system.degraded_read_candidates(disk)) > 0


def test_compute_cell_rows_and_determinism():
    tenants = tuple(t.to_doc() for t in frontier_tenants(2))
    out = compute_cell("RS", arrival_rate=25.0, repair_weight=8,
                       hedged=False, tenants=tenants, **TINY)
    rows = out["rows"]
    assert len(rows) == 2            # one row per tenant
    for row in rows:
        assert row["scheme"] == "RS"
        assert row["repair_weight"] == 8 and row["hedged"] is False
        assert row["n_requests"] >= 0
        assert row["recovery_makespan_s"] > 0
    assert sum(r["n_requests"] for r in rows) == rows[0]["offered_requests"]
    assert out["meta"]["n_degraded_candidates"] >= 0
    again = compute_cell("RS", arrival_rate=25.0, repair_weight=8,
                         hedged=False, tenants=tenants, **TINY)
    assert out == again


def test_end_to_end_cells_render(tmp_path):
    units = scenarios(n_objects=60, rates=(30.0,), n_tenants=2,
                      duration=2.0)
    keep = [u for u in units if "/w1/" in u.name or "/w512/" in u.name]
    keep = keep[:4]                  # one scheme's four cells
    report = run_scenarios(keep, RunOptions(cache_dir=tmp_path))
    results = report.results
    assert all(isinstance(r, ExperimentResult) for r in results)
    rows = typed_rows(results, FrontierRow)
    assert len(rows) == 4 * 2        # four cells x two tenants
    text = render(results)
    assert "SLO att." in text and "Recovery (s)" in text
    assert "Open-loop arrivals" in text

"""Tests for Table 3 (recovery disk/network bandwidth)."""

from repro.experiments import table3
from repro.runner import RunOptions, run_scenarios


def test_table3_scenarios_and_render():
    units = table3.scenarios("W1", n_objects=200, schemes=["Geo-128K", "RS"])
    assert units
    report = run_scenarios(units, RunOptions(jobs=1, seed=0, cache=False))
    text = table3.render(report.results)
    assert "Disk (MB/s)" in text
    assert "Network (MB/s)" in text
    assert "Geo-128K" in text and "RS" in text


def test_table3_run_produces_positive_bandwidths():
    from repro.experiments.common import SETTINGS

    result = table3.run(SETTINGS["W1"], n_objects=200,
                        schemes=["Geo-128K"])
    assert result.results
    for row in result.results:
        assert row.disk_bandwidth > 0
        assert row.network_bandwidth > 0
    assert "Geo-128K" in table3.to_text(result)

"""Tests of the DES-backed experiments (scaled down to stay fast)."""

import numpy as np
import pytest

from repro.experiments import fig11_fig12, fig13, headline, range_access, table4, table5
from repro.experiments.common import (
    W1_SETTING,
    W2_SETTING,
    build_system,
    cluster_config,
    nearest_candidates,
    request_size_targets,
    sample_workload,
)
from repro.experiments.tradeoff import run as run_tradeoff, to_text as tradeoff_text

MB = 1 << 20


@pytest.fixture(scope="module")
def w1_small():
    return run_tradeoff(W1_SETTING, n_objects=900, n_requests=10,
                        include_busy=False,
                        schemes=["Geo-4M", "Con-256M", "Stripe", "RS", "LRC"])


def test_tradeoff_runs_all_schemes(w1_small):
    assert {r.scheme for r in w1_small.results} == \
        {"Geo-4M", "Con-256M", "Stripe", "RS", "LRC"}
    for r in w1_small.results:
        assert r.recovery_time > 0
        assert r.degraded_ms > 0
        assert r.normal_ms > 0
        assert r.repaired_bytes > 0


def test_tradeoff_geo_beats_rs_recovery(w1_small):
    geo = w1_small.by_scheme("Geo-4M")
    rs = w1_small.by_scheme("RS")
    lrc = w1_small.by_scheme("LRC")
    stripe = w1_small.by_scheme("Stripe")
    per_byte = lambda r: r.recovery_time / r.repaired_bytes
    assert per_byte(rs) > 1.4 * per_byte(geo)        # paper: 1.85x
    assert per_byte(lrc) > 1.05 * per_byte(geo)      # paper: 1.30x
    assert per_byte(stripe) > per_byte(rs)           # fragmented Clay worst


def test_tradeoff_degraded_read_ordering(w1_small):
    """Geo degraded reads near normal reads; Con-256M clearly worse."""
    geo = w1_small.by_scheme("Geo-4M")
    con = w1_small.by_scheme("Con-256M")
    assert geo.degraded_ms < 1.15 * geo.normal_ms
    assert con.degraded_ms > 1.2 * con.normal_ms


def test_tradeoff_text_renders(w1_small):
    text = tradeoff_text(w1_small)
    assert "Geo-4M" in text and "Recovery@paper(s)" in text


def test_headline_ratios(w1_small):
    w2 = run_tradeoff(W2_SETTING, n_objects=8000, n_requests=6,
                      include_busy=False, schemes=["Geo-128K", "RS"])
    result = headline.run(w1=w1_small, w2=w2)
    assert result.w1_vs_rs > 1.4
    assert result.w1_vs_lrc > 1.05
    assert result.w2_vs_rs > 1.0
    assert 0.9 < result.degraded_over_normal < 1.3
    assert "1.85x" in headline.to_text(result)


def test_fig13_pipelining():
    rows = fig13.run(n_objects=500, n_requests=8)
    assert [r.client_gbps for r in rows] == [1.0, 2.0, 4.0]
    # Transfer halves with bandwidth; repair roughly constant.
    assert rows[0].transfer_ms == pytest.approx(2 * rows[1].transfer_ms, rel=0.1)
    assert rows[0].repair_ms == pytest.approx(rows[2].repair_ms, rel=0.2)
    # Degraded time tracks transfer when slow, repair when fast (Fig. 13).
    assert rows[0].degraded_ms == pytest.approx(rows[0].transfer_ms, rel=0.15)
    assert rows[2].degraded_ms < rows[2].transfer_ms + rows[2].repair_ms
    # Pipelining saves a meaningful fraction (paper: 23.4%-35.9%).
    assert all(0.1 < r.pipelining_saving < 0.6 for r in rows)


def test_fig11_latency_percentiles():
    rows = fig11_fig12.run(W1_SETTING, n_objects=400, n_probes=8,
                           schemes=["Geo-1M", "Con-64M"],
                           target_sizes=(8 * MB, 32 * MB))
    assert len(rows) == 4
    for r in rows:
        assert r.p5_ms <= r.p50_ms <= r.p95_ms
    by_key = {(r.scheme, r.object_size): r for r in rows}
    # Larger objects take longer.
    assert by_key[("Geo-1M", 32 * MB)].p50_ms > by_key[("Geo-1M", 8 * MB)].p50_ms
    # Contiguous 64M amplifies small-object degraded reads.
    assert by_key[("Con-64M", 8 * MB)].p50_ms > by_key[("Geo-1M", 8 * MB)].p50_ms


def test_range_access_rows():
    rows = range_access.run(n_objects=400, n_requests=10)
    assert [r.scheme for r in rows] == ["Geo-4M", "Con-16M", "Stripe-Max"]
    geo = rows[0]
    assert geo.ratio_to_geo == pytest.approx(1.0)
    # Under load, Geometric's partial repair beats Contiguous (§6.3).
    con = rows[1]
    assert geo.mean_range_ms_busy < con.mean_range_ms_busy


def test_table4_classification():
    rows = {r.layout: r for r in table4.run(n_objects=150)}
    assert not rows["Geometric"].can_exceed_object
    assert rows["Contiguous"].can_exceed_object
    assert rows["Stripe-Max"].mean_read_over_object == pytest.approx(1.0)
    assert rows["Geometric"].mean_read_over_object < 1.0
    text = table4.to_text(list(rows.values()))
    assert "Less than object size" in text


def test_table5_summary():
    rows = {r.layout: r for r in table5.run(n_objects=500, n_requests=6)}
    assert rows["Geometric"].read_amplification == pytest.approx(1.0, abs=0.01)
    assert rows["Contiguous"].read_amplification > 1.1
    assert rows["Geometric"].pipelining_efficiency > \
        rows["Stripe"].pipelining_efficiency
    assert rows["Stripe"].recovery_disk_bandwidth < \
        rows["Geometric"].recovery_disk_bandwidth


def test_w2_absolute_degraded_band():
    """W2 degraded reads are single-digit milliseconds (paper: 3-7 ms)."""
    sizes = sample_workload(W2_SETTING, 6000, 0)
    config = cluster_config(W2_SETTING, 6000)
    system = build_system("Geo-128K", W2_SETTING, config)
    system.ingest(sizes)
    targets = request_size_targets(W2_SETTING, sizes, 10, 1)
    requests = nearest_candidates(system.catalog.objects, targets)
    results = system.measure_degraded_reads(requests, None)
    mean_ms = 1000 * float(np.mean([r.total_time for r in results]))
    assert 0.5 < mean_ms < 15

"""Tests for the ``python -m repro.experiments`` runner."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_experiment_registry_covers_the_paper():
    expected = {"table1", "table2", "table3", "table4", "table5",
                "fig2", "fig4", "fig7", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "breakdown", "range", "headline",
                "ablations", "durability"}
    assert expected == set(EXPERIMENTS)


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Clay(10,4)" in out
    assert "3.25" in out


def test_cli_fig2(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "D1,D2,D3,D4" in out


def test_cli_with_scale_flag(capsys):
    assert main(["fig14", "--n-objects", "500"]) == 0
    out = capsys.readouterr().out
    assert "Peak at q=" in out


def test_cli_workload_flag(capsys):
    assert main(["breakdown", "--workload", "W2", "--n-objects", "2000"]) == 0
    out = capsys.readouterr().out
    assert "Geo-128K" in out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["nonsense"])

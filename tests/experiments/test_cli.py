"""Tests for the ``python -m repro.experiments`` runner CLI."""

import json

import pytest

from repro.experiments.__main__ import EXTENSIONS, SPECS, main


def test_experiment_registry_covers_the_paper():
    expected = {"table1", "table2", "table3", "table4", "table5",
                "fig2", "fig4", "fig7", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "breakdown", "range", "headline",
                "ablations", "durability", "chaos-tail", "chaos-recovery"}
    assert expected == set(SPECS) - EXTENSIONS
    # Extensions are runnable but excluded from ``all`` (its output is
    # pinned byte-for-byte by results/expected_all_300.json.gz).
    assert EXTENSIONS == {"placement-matrix", "durability-frontier",
                          "traffic-frontier"}
    assert EXTENSIONS <= set(SPECS)


def test_cli_table1(tmp_path, capsys):
    assert main(["table1", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Clay(10,4)" in out
    assert "3.25" in out


def test_cli_fig2(tmp_path, capsys):
    assert main(["fig2", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "D1,D2,D3,D4" in out


def test_cli_with_scale_flag(tmp_path, capsys):
    assert main(["fig14", "--n-objects", "500",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Peak at q=" in out


def test_cli_workload_flag(tmp_path, capsys):
    assert main(["breakdown", "--workload", "W2", "--n-objects", "2000",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Geo-128K" in out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_reports_cache_status(tmp_path, capsys):
    args = ["table1", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    assert "0/1 units cached" in capsys.readouterr().out
    assert main(args) == 0
    assert "1/1 units cached" in capsys.readouterr().out


def test_cli_no_cache_skips_the_cache(tmp_path, capsys):
    args = ["table1", "--cache-dir", str(tmp_path), "--no-cache"]
    assert main(args) == 0
    assert main(args) == 0
    assert "0/1 units cached" in capsys.readouterr().out
    assert list(tmp_path.rglob("*.json")) == []


def test_cli_json_output_is_machine_readable(tmp_path, capsys):
    assert main(["table1", "--json", "--cache-dir", str(tmp_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["root_seed"] == 0
    (result,) = doc["experiments"]["table1"]
    assert result["name"] == "table1/codes"
    assert any(row["name"] == "Clay(10,4)" for row in result["rows"])
    assert result["provenance"]["fn"] == "repro.experiments.table1:compute"


def test_cli_json_is_identical_across_jobs_and_cache(tmp_path, capsys):
    """The acceptance invariant at CLI level: byte-identical --json output
    for serial, parallel, and cache-served executions."""
    args = ["fig13", "--n-objects", "100", "--seed", "9", "--json",
            "--cache-dir", str(tmp_path)]
    assert main(args + ["--jobs", "2"]) == 0
    parallel_cold = capsys.readouterr().out
    assert main(args) == 0  # warm: served from cache
    warm = capsys.readouterr().out
    assert main(args + ["--no-cache"]) == 0  # serial, recomputed
    serial = capsys.readouterr().out
    assert parallel_cold == warm == serial


def test_cli_seed_changes_simulated_rows(tmp_path, capsys):
    args = ["fig13", "--n-objects", "100", "--json",
            "--cache-dir", str(tmp_path)]
    assert main(args + ["--seed", "1"]) == 0
    one = capsys.readouterr().out
    assert main(args + ["--seed", "2"]) == 0
    two = capsys.readouterr().out
    assert one != two


def test_cli_bench_out_accounts_units(tmp_path, capsys):
    bench = tmp_path / "BENCH_experiments.json"
    assert main(["fig13", "--n-objects", "100", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--bench-out", str(bench)]) == 0
    capsys.readouterr()
    doc = json.loads(bench.read_text())
    assert doc["jobs"] == 2
    assert doc["totals"]["units"] == 3
    assert doc["totals"]["misses"] == 3
    assert {u["name"] for u in doc["units"]} == \
        {"fig13/1gbps", "fig13/2gbps", "fig13/4gbps"}
    for unit in doc["units"]:
        assert unit["wall_s"] >= 0
        assert unit["sim_time_s"] > 0


def test_cli_timeline_flag_writes_merged_doc(tmp_path, capsys):
    out = tmp_path / "tl.json"
    assert main(["fig13", "--n-objects", "100", "--no-cache",
                 "--timeline", str(out)]) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert doc["schema"] == "repro.timeline/1"
    assert len(doc["segments"]) == 3  # one per bandwidth unit
    for seg in doc["segments"]:
        assert seg["t"]
        assert "degraded.reads_completed" in seg["counters"]
        assert "engine.events_scheduled" in seg["counters"]


def test_cli_timeline_does_not_change_json_rows(tmp_path, capsys):
    """Telemetry may add counters to the obs snapshot, but the simulated
    rows — the science — must be untouched by observation."""
    args = ["fig13", "--n-objects", "100", "--json", "--no-cache"]
    assert main(args) == 0
    plain = json.loads(capsys.readouterr().out)
    assert main(args + ["--timeline", str(tmp_path / "tl.json")]) == 0
    with_timeline = json.loads(capsys.readouterr().out)

    def rows(doc):
        return [(r["name"], r["rows"]) for r in doc["experiments"]["fig13"]]

    assert rows(plain) == rows(with_timeline)


def test_cli_profile_prints_flame_table(tmp_path, capsys):
    assert main(["fig13", "--n-objects", "100", "--no-cache",
                 "--profile"]) == 0
    out = capsys.readouterr().out
    assert "== profile (wall clock, per process site) ==" in out
    assert "rcstor.py:" in out


def test_cli_report_writes_self_contained_html(tmp_path, capsys):
    report = tmp_path / "run.html"
    assert main(["fig13", "--n-objects", "100", "--no-cache",
                 "--report", str(report)]) == 0
    capsys.readouterr()
    page = report.read_text(encoding="utf-8")
    assert page.startswith("<!doctype html>")
    assert "<script" not in page
    assert "<svg" in page
    assert "fig13" in page


def test_cli_flightrec_dir_stays_empty_on_clean_run(tmp_path, capsys):
    out = tmp_path / "fr"
    assert main(["fig13", "--n-objects", "100", "--no-cache",
                 "--flightrec", str(out)]) == 0
    capsys.readouterr()
    assert not out.exists() or not list(out.glob("*"))


def test_cli_zero_n_objects_is_not_treated_as_unset(tmp_path, capsys):
    """Falsy values must win over defaults (`is None` semantics): 0 objects
    is an explicit scale, not a request for the per-experiment default."""
    assert main(["fig14", "--n-objects", "0", "--json",
                 "--cache-dir", str(tmp_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    (result,) = doc["experiments"]["fig14"]
    assert result["provenance"]["params"]["n_objects"] == 0

"""Tests of the design-choice ablations."""

import pytest

from repro.cluster.disk import BACKGROUND
from repro.experiments import ablations
from repro.experiments.common import W1_SETTING


def test_two_pass_beats_greedy_on_pipelining():
    result = ablations.two_pass_vs_greedy(n_objects=300)
    assert result.mean_adjacent_ratio_two_pass <= 2.0 + 1e-9
    assert result.mean_adjacent_ratio_greedy > result.mean_adjacent_ratio_two_pass
    assert result.mean_degraded_ms_two_pass < result.mean_degraded_ms_greedy
    # Greedy's only advantage: fewer (larger) chunks.
    assert result.mean_chunks_greedy <= result.mean_chunks_two_pass


def test_front_cut_removes_amplification():
    result = ablations.front_cut_ablation(n_objects=300)
    assert result.read_amplification_with_cut == pytest.approx(1.0)
    assert result.read_amplification_without_cut > 1.02
    assert 0 < result.capacity_overhead_without_cut < 0.5


def test_priority_lanes_protect_degraded_reads():
    """§5.1: foreground reads must pre-empt queued recovery I/O."""
    result = ablations.io_priority_ablation(n_objects=700, n_requests=8)
    assert result.degraded_ms_with_priority < result.degraded_ms_without_priority
    assert result.recovery_s_with_priority > 0


def test_weight_sweep_monotone_saturating():
    rows = ablations.global_weight_sweep(n_objects=800, weights=(2, 64, 512))
    times = [t for _w, t in rows]
    # More admitted weight never slows recovery; it saturates.
    assert times[0] >= times[1] >= times[2] * 0.95


def test_pg_count_increases_recovery_rate():
    rows = ablations.pg_count_sweep(n_objects=800, pg_counts=(8, 160))
    assert rows[1][1] > rows[0][1]


def test_ecpipe_model_rows():
    rows = ablations.ecpipe_network_model()
    packets = [p for p, *_ in rows]
    speedups = [s for *_, s in rows]
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] > 9  # approaches k = 10
    assert speedups[-1] == pytest.approx(1.0)


def test_combined_report_renders():
    text = ablations.to_text(W1_SETTING)
    assert "Algorithm 1" in text
    assert "ECPipe" in text


def test_local_regeneration_tradeoff():
    """§8: LRC-over-Clay halves repair traffic again, at a storage premium."""
    flat, local = ablations.local_regeneration_tradeoff()
    assert local.repair_traffic_per_lost_byte < flat.repair_traffic_per_lost_byte
    assert local.storage_overhead > flat.storage_overhead

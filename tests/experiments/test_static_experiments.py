"""Tests of the deterministic (non-DES) experiment reproductions."""

import numpy as np
import pytest

from repro.experiments import calibration, fig2, fig4, fig7, fig14, table1, table2
from repro.experiments.common import W1_SETTING, W2_SETTING

KB = 1 << 10
MB = 1 << 20


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def test_table1_matches_paper_exactly():
    rows = {r.name: r for r in table1.run()}
    rs, lrc, clay = rows["RS(10,4)"], rows["LRC(10,2,2)"], rows["Clay(10,4)"]
    assert rs.is_mds and clay.is_mds and not lrc.is_mds
    assert rs.read_traffic == pytest.approx(10.0)
    assert lrc.read_traffic == pytest.approx(5.71, abs=0.01)
    assert clay.read_traffic == pytest.approx(3.25)
    assert all(r.storage_percent == pytest.approx(140.0) for r in rows.values())
    assert rs.sub_packetization == 1
    assert clay.sub_packetization == 256


def test_table1_renders():
    text = table1.to_text(table1.run())
    assert "Clay(10,4)" in text and "3.25" in text


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
def test_fig2_four_cases():
    rows = fig2.run()
    assert [r.case for r in rows] == [1, 2, 3, 4]
    assert [r.runs_per_helper for r in rows] == [1, 4, 16, 64]
    assert [r.run_length_subchunks for r in rows] == [64, 16, 4, 1]
    assert all(r.subchunks_read_per_helper == 64 for r in rows)
    assert all(r.read_fraction == pytest.approx(0.25) for r in rows)


def test_fig2_case_membership():
    rows = fig2.run()
    assert rows[0].failed_nodes == [0, 1, 2, 3]       # D1-D4
    assert rows[3].failed_nodes == [12, 13]           # P3, P4


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig4_points():
    return fig4.run()


def test_fig4_tradeoff_shape(fig4_points):
    """Bigger chunks: better recovery bandwidth, worse degraded reads."""
    bws = [p.recovery_bandwidth for p in fig4_points]
    assert bws == sorted(bws)
    assert fig4_points[-1].degraded_read_time > fig4_points[0].degraded_read_time


def test_fig4_calibration_anchors(fig4_points):
    for anchor in calibration.check():
        assert anchor.ok


def test_fig4_degraded_dominated_by_transfer_at_small_chunks(fig4_points):
    transfer = 64 * MB / (125 * MB)
    assert fig4_points[0].degraded_read_time < 1.5 * transfer


def test_fig4_read_amplification_at_huge_chunks():
    """Chunks above the object size repair wasted bytes."""
    t = fig4.degraded_read_64mb(256 * MB)
    t_fit = fig4.degraded_read_64mb(64 * MB)
    assert t > t_fit


# ----------------------------------------------------------------------
# Figure 7 / Table 2
# ----------------------------------------------------------------------
def test_fig7_cdfs(capsys):
    result = fig7.run(n_objects=30_000)
    assert result.capacity_above_4mb > 0.977
    assert np.all(np.diff(result.capacity_cdf) >= -1e-12)
    # Read traffic skews right of capacity for the large-object trace.
    assert result.read_traffic_cdf[len(result.grid) // 2] <= \
        result.capacity_cdf[len(result.grid) // 2] + 0.05
    assert "97.7%" in fig7.to_text(result)


def test_table2_stats_match_paper():
    rows = {r.name: r for r in table2.run(n_objects=20_000)}
    w1, w2 = rows["W1"], rows["W2"]
    assert w1.mean_object_size == pytest.approx(102.8 * MB, rel=0.1)
    assert w1.mean_request_size == pytest.approx(148.5 * MB, rel=0.02)
    assert w2.mean_object_size == pytest.approx(101.3 * KB, rel=0.1)
    assert w2.mean_request_size == pytest.approx(72.0 * KB, rel=0.02)


# ----------------------------------------------------------------------
# Figure 14
# ----------------------------------------------------------------------
def test_fig14_peaks_at_small_q():
    points = fig14.run(W1_SETTING, n_objects=2000)
    by_q = {p.q: p.average_chunk_size for p in points}
    peak = max(by_q.values())
    # The curve is nearly flat across q=2..4 at small sample sizes; the
    # paper's claim is that q=2/3 are at (or within noise of) the peak.
    assert fig14.best_q(points) in (2, 3, 4)
    assert by_q[2] > 0.9 * peak and by_q[3] > 0.9 * peak
    assert by_q[1] == pytest.approx(4 * MB, rel=0.01)  # constant sequence
    assert by_q[2] > 2 * by_q[1]
    assert by_q[10] < by_q[fig14.best_q(points)]


def test_fig14_w2():
    points = fig14.run(W2_SETTING, n_objects=5000)
    assert fig14.best_q(points) in (2, 3)
    assert "Peak at q=" in fig14.to_text(points, W2_SETTING)


# ----------------------------------------------------------------------
# Calibration rendering
# ----------------------------------------------------------------------
def test_calibration_to_text():
    text = calibration.to_text(calibration.anchors())
    assert "recovery bandwidth" in text


# ----------------------------------------------------------------------
# Figures 3 and 8
# ----------------------------------------------------------------------
def test_fig3_fig8_cases():
    from repro.experiments import fig3_fig8

    cases = {c.name: c for c in fig3_fig8.run()}
    assert cases["Fig3: regenerating, one chunk"].saving == 0.0
    case1 = cases["Fig8 case 1: repair outpaces transfer"]
    case2 = cases["Fig8 case 2: transfer blocked by repair"]
    assert case1.total_ms < case2.total_ms
    assert 0 < case2.saving < case1.saving < 1
    text = fig3_fig8.to_text(fig3_fig8.run())
    assert "Fig8 case 1" in text and "|" in text

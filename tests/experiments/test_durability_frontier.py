"""durability-frontier: scenario grid, seed groups, tiny end-to-end
computes, and the rendered table."""

from repro.experiments.durability_frontier import (
    POLICIES,
    SCHEMES,
    FrontierRow,
    compute_frontier,
    fleet_config,
    render,
    scenarios,
)
from repro.runner import (
    ExperimentResult,
    RunOptions,
    run_scenarios,
    typed_rows,
)

import pytest

TINY = dict(n_disks=128, years=0.5, n_trials=1, n_objects=120)


def test_fleet_config_shapes_the_fleet():
    config = fleet_config(10_240, "rack_aware", pg_seed=1)
    assert config.n_disks == 10_240
    assert config.n_nodes == 1_280 and config.disks_per_node == 8
    assert config.n_racks == 32
    assert config.n_pgs == 5_120
    assert config.placement == "rack_aware"
    small = fleet_config(128, "flat_random", pg_seed=2)
    assert small.n_racks == 2        # always multi-rack (bursts need it)
    with pytest.raises(ValueError, match="multiple of 8"):
        fleet_config(100, "flat_random", pg_seed=1)


def test_scenario_grid_covers_schemes_policies_reps():
    units = scenarios(n_objects=120, reps=2, n_disks=128, years=0.5,
                      n_trials=1)
    assert len(units) == len(SCHEMES) * len(POLICIES) * 2
    names = {u.name for u in units}
    assert "RS/rack_aware/rep0" in names
    assert "Geo-4M/flat_random/rep1" in names
    # One seed group per repetition, shared across schemes and policies:
    # every unit of a rep faces the same derived failure history.
    groups = {u.name: u.seed_group for u in units}
    assert groups["RS/rack_aware/rep0"] == groups["LRC/flat_random/rep0"]
    assert groups["RS/rack_aware/rep0"] != groups["RS/rack_aware/rep1"]


def test_policies_filter_narrows_the_grid():
    units = scenarios(n_objects=120, policies=("rack_aware",), reps=1,
                      n_disks=128, years=0.5, n_trials=1)
    assert len(units) == len(SCHEMES)
    assert all(u.name.endswith("/rack_aware/rep0") for u in units)


def test_compute_frontier_rows_and_meta():
    out = compute_frontier("RS", "rack_aware", rep=0, speedups=(0.25, 1.0),
                           seed=3, **TINY)
    assert out["meta"]["base_repair_hours"] > 0
    assert out["meta"]["fatal_probabilities"] == [0.0, 0.0, 0.0, 0.0, 1.0]
    rows = out["rows"]
    assert len(rows) == 2            # one trial per speedup
    by_speed = {r["repair_speedup"]: r for r in rows}
    assert by_speed[0.25]["repair_hours"] == pytest.approx(
        4 * by_speed[1.0]["repair_hours"])
    for r in rows:
        assert r["scheme"] == "RS" and r["policy"] == "rack_aware"
        assert r["n_disks"] == 128 and r["n_pgs"] == 64
        assert r["years"] == 0.5


def test_compute_frontier_is_deterministic():
    a = compute_frontier("LRC", "flat_random", rep=1, speedups=(1.0,),
                         seed=7, **TINY)
    b = compute_frontier("LRC", "flat_random", rep=1, speedups=(1.0,),
                         seed=7, **TINY)
    assert a == b
    # LRC's q-vector is asymmetric — the non-MDS combinatorics, not the
    # MDS shortcut.
    q = a["meta"]["fatal_probabilities"]
    assert q[-1] == 1.0 and any(0.0 < x < 1.0 for x in q)


def test_render_groups_grid_points(tmp_path):
    units = scenarios(n_objects=120, policies=("rack_aware",), reps=1,
                      n_disks=128, years=0.5, n_trials=1)
    # Two schemes keep the end-to-end run fast; the full grid is CI's job.
    keep = [u for u in units if u.name.split("/")[0] in ("RS", "Geo-4M")]
    report = run_scenarios(keep, RunOptions(cache_dir=tmp_path))
    results = report.results
    assert all(isinstance(r, ExperimentResult) for r in results)
    rows = typed_rows(results, FrontierRow)
    assert len(rows) == 2 * len((0.25, 1.0, 4.0))
    text = render(results)
    assert "MTTDL (h) [95% CI]" in text
    assert "Geo-4M" in text and "RS" in text
    assert "Accelerated stress regime" in text

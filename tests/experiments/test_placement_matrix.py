"""The placement-matrix experiment: policy x scheme on the tiered fabric."""

import json

import pytest

from repro.experiments.__main__ import EXTENSIONS, SPECS, main
from repro.experiments.common import setting_by_name
from repro.experiments.placement_matrix import tiered_config


def _run_matrix(tmp_path, capsys, extra=()):
    args = ["placement-matrix", "--n-objects", "150", "--n-requests", "3",
            "--policies", "flat_random,rack_aware", "--json",
            "--cache-dir", str(tmp_path), *extra]
    assert main(args) == 0
    out = capsys.readouterr().out
    doc = json.loads(out)
    rows = {}
    for result in doc["experiments"]["placement-matrix"]:
        for row in result["rows"]:
            rows[(row["scheme"], row["policy"])] = row
    return out, rows


def test_tiered_config_shape():
    config = tiered_config(setting_by_name("W1"), 300, "rack_aware")
    assert config.n_nodes == 32 and config.n_racks == 8
    assert config.rack_size == 4
    assert config.oversubscription == 4.0
    assert config.placement == "rack_aware"


def test_rack_aware_beats_flat_on_cross_rack_repair_traffic(tmp_path,
                                                            capsys):
    """The acceptance bar: under 4:1 oversubscription, rack-aware
    placement packs stripes into fewer racks and moves less repair
    traffic over the aggregation layer than flat_random."""
    _, rows = _run_matrix(tmp_path, capsys)
    for scheme in ("Geo-4M", "RS"):
        flat = rows[(scheme, "flat_random")]
        aware = rows[(scheme, "rack_aware")]
        assert aware["rack_span_mean"] < flat["rack_span_mean"]
        # Cross-rack bytes *per repaired byte* is the placement signal;
        # the absolute count is confounded by how much of the failed
        # disk each policy happened to fill.
        assert (aware["cross_rack_mb"] / aware["repaired_mb"]
                < flat["cross_rack_mb"] / flat["repaired_mb"])
    # On the paper's scheme the absolute win holds too at this scale.
    assert rows[("Geo-4M", "rack_aware")]["cross_rack_mb"] \
        < rows[("Geo-4M", "flat_random")]["cross_rack_mb"]
    # Every aggregation transit crosses two ToR uplinks.
    aware = rows[("Geo-4M", "rack_aware")]
    assert aware["tor_mb"] >= 2 * aware["cross_rack_mb"] * 0.99


def test_jobs_fanout_matches_serial_and_hits_cache(tmp_path, capsys):
    serial, _ = _run_matrix(tmp_path, capsys)
    fanned, _ = _run_matrix(tmp_path, capsys, extra=("--jobs", "2"))
    assert fanned == serial


def test_all_excludes_placement_matrix():
    """``all`` output is pinned by results/expected_all_300.json.gz, so
    the extension must not leak into it."""
    assert "placement-matrix" in SPECS
    assert "placement-matrix" in EXTENSIONS


def test_unknown_policy_fails_fast(tmp_path):
    with pytest.raises(ValueError, match="rack_aware"):
        main(["placement-matrix", "--policies", "best_effort",
              "--cache-dir", str(tmp_path)])

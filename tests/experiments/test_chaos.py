"""Chaos experiments: CLI flags, fault determinism across ``--jobs`` and
cache hits, and the straggler-degrades-tail acceptance property."""

import json

from repro.experiments.__main__ import main

SCALE = ["--n-objects", "150", "--n-requests", "3"]


def _run_json(capsys, args):
    assert main(args + ["--json"]) == 0
    return capsys.readouterr().out


def _rows(doc_text, experiment):
    # --check-invariants appends its report after the JSON document.
    doc, _end = json.JSONDecoder().raw_decode(doc_text)
    return [row for result in doc["experiments"][experiment]
            for row in result["rows"]]


class TestFaultDeterminism:
    """Satellite: fault schedules are bit-reproducible across ``--jobs``
    and cache hits — byte-identical JSON, faults included."""

    def test_chaos_tail_identical_across_jobs_and_cache(self, tmp_path,
                                                        capsys):
        args = ["chaos-tail", *SCALE, "--straggler", "8", "--seed", "5",
                "--cache-dir", str(tmp_path)]
        parallel_cold = _run_json(capsys, args + ["--jobs", "4"])
        warm = _run_json(capsys, args + ["--jobs", "1"])
        serial = _run_json(capsys, args + ["--no-cache"])
        assert parallel_cold == warm == serial
        assert all(r["hedged"] for r in _rows(serial, "chaos-tail"))

    def test_chaos_recovery_identical_across_jobs_and_cache(self, tmp_path,
                                                            capsys):
        args = ["chaos-recovery", "--n-objects", "150", "--seed", "5",
                "--cache-dir", str(tmp_path)]
        parallel_cold = _run_json(capsys, args + ["--jobs", "4"])
        warm = _run_json(capsys, args + ["--jobs", "1"])
        serial = _run_json(capsys, args + ["--no-cache"])
        assert parallel_cold == warm == serial


class TestChaosFlags:
    def test_straggler_flag_narrows_the_grid(self, tmp_path, capsys):
        out = _run_json(capsys, ["chaos-tail", *SCALE, "--straggler", "4",
                                 "--cache-dir", str(tmp_path)])
        rows = _rows(out, "chaos-tail")
        assert rows
        assert {r["straggler_factor"] for r in rows} == {4.0}

    def test_faults_flag_loads_a_plan_file(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "events": [{"kind": "disk_slow", "at": 0.0, "disk": 2,
                        "factor": 8.0}],
            "helper_timeout": 0.05,
        }))
        out = _run_json(capsys, ["chaos-tail", *SCALE, "--straggler", "4",
                                 "--faults", str(plan_path),
                                 "--no-cache"])
        doc = json.loads(out)
        for result in doc["experiments"]["chaos-tail"]:
            faults = result["provenance"]["params"]["faults"]
            assert faults["helper_timeout"] == 0.05
            assert faults["events"][0]["kind"] == "disk_slow"
        # The explicit plan arms the hedge timeout on every row.
        assert all(r["hedged"] for r in _rows(out, "chaos-tail"))


class TestAcceptance:
    def test_straggler_degrades_pipelined_p99_with_clean_invariants(
            self, tmp_path, capsys):
        base = _run_json(capsys, ["chaos-tail", *SCALE, "--straggler", "1",
                                  "--check-invariants",
                                  "--cache-dir", str(tmp_path)])
        slow = _run_json(capsys, ["chaos-tail", *SCALE, "--straggler", "16",
                                  "--check-invariants",
                                  "--cache-dir", str(tmp_path)])
        assert "0 leaked grants" in base and "0 leaked grants" in slow
        p99 = {out: {r["scheme"]: r["p99_ms"] for r in _rows(out, "chaos-tail")}
               for out in (base, slow)}
        for scheme in ("Geo-4M", "Con-64M"):  # the pipelined schemes
            assert p99[slow][scheme] > p99[base][scheme]

    def test_second_failure_scenario_reports_impact(self, tmp_path, capsys):
        out = _run_json(capsys, ["chaos-recovery", "--n-objects", "150",
                                 "--check-invariants",
                                 "--cache-dir", str(tmp_path)])
        assert "0 lost tasks" in out
        rows = _rows(out, "chaos-recovery")
        assert len(rows) == 4
        assert all(r["tasks_abandoned"] == 0 for r in rows)
        assert any(r["slowdown"] > 1.0 or r["tasks_escalated"] > 0
                   for r in rows)

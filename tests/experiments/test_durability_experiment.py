"""Tests for the durability experiment (fast, using a stub tradeoff)."""

import pytest

from repro.experiments.durability import DurabilityRow, run, to_text
from repro.experiments.tradeoff import SchemeResult, TradeoffResult


def stub_result(recovery_paper_scale: dict[str, float]) -> TradeoffResult:
    rows = []
    for scheme, seconds in recovery_paper_scale.items():
        rows.append(SchemeResult(
            scheme=scheme, recovery_time=seconds / 100,
            recovery_time_busy=None,
            recovery_time_paper_scale=seconds, recovery_rate=1.0,
            repaired_bytes=1, degraded_ms=1.0, degraded_ms_busy=None,
            normal_ms=1.0, disk_bandwidth=1.0, network_bandwidth=1.0))
    return TradeoffResult("W1", 0, 0, rows)


def test_durability_from_stub():
    # Paper-like recovery times: Geo 143s, RS 265s, LRC 188s.
    result = stub_result({"Geo-4M": 143.0, "RS": 265.0, "LRC": 188.0})
    rows = {r.scheme: r for r in run(tradeoff_result=result)}
    assert rows["Geo-4M"].recovery_hours_paper_scale == pytest.approx(143 / 3600)
    # Same fault tolerance + 1.85x faster recovery => ~1.85^4 more MTTDL.
    ratio = rows["Geo-4M"].mttdl_hours / rows["RS"].mttdl_hours
    assert ratio == pytest.approx((265 / 143) ** 4, rel=0.05)
    # LRC: fastest-class recovery cannot offset the non-MDS penalty.
    assert rows["LRC"].mttdl_hours < rows["RS"].mttdl_hours / 100
    assert rows["Geo-4M"].nines > rows["RS"].nines > rows["LRC"].nines


def test_durability_text():
    result = stub_result({"Geo-4M": 143.0, "RS": 265.0, "LRC": 188.0})
    text = to_text(run(tradeoff_result=result))
    assert "MTTDL" in text and "Geo-4M" in text


def test_durability_row_fields():
    row = DurabilityRow("x", 1.0, 1e20, 15.0)
    assert row.scheme == "x"

"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs import MetricsRegistry, format_metric_name
from repro.obs.metrics import Counter, Gauge, Histogram


def test_counter_accumulates():
    c = Counter("n")
    c.inc()
    c.inc(41)
    assert c.value == 42


def test_gauge_time_weighted_mean():
    g = Gauge("depth")
    g.set(0, now=0.0)
    g.set(4, now=10.0)   # level 0 held for 10s
    g.set(0, now=15.0)   # level 4 held for 5s
    # Integral = 0*10 + 4*5 = 20 over 15s.
    assert g.mean() == pytest.approx(20 / 15)
    assert g.min == 0 and g.max == 4 and g.value == 0


def test_gauge_mean_extends_to_now():
    g = Gauge("depth")
    g.set(2, now=0.0)
    assert g.mean(now=10.0) == pytest.approx(2.0)


def test_gauge_single_sample_reports_that_sample():
    g = Gauge("util")
    g.set(0.75, now=3.0)
    assert g.mean() == pytest.approx(0.75)


def test_gauge_unsampled_is_zero():
    assert Gauge("x").mean() == 0.0


def test_histogram_exact_stats():
    h = Histogram("wait")
    for v in [1.0, 2.0, 3.0, 4.0]:
        h.observe(v)
    assert h.count == 4
    assert h.mean == pytest.approx(2.5)
    assert h.min == 1.0 and h.max == 4.0


def test_histogram_percentiles_small_sample():
    h = Histogram("wait")
    for v in range(1, 101):
        h.observe(float(v))
    p50, p95, p99 = h.percentiles()
    assert p50 == pytest.approx(50.5)
    assert p95 == pytest.approx(95.05)
    assert p99 == pytest.approx(99.01)


def test_histogram_reservoir_bounds_memory_and_stays_deterministic():
    def build():
        h = Histogram("wait", reservoir_size=64)
        for v in range(10_000):
            h.observe(float(v % 1000))
        return h

    a, b = build(), build()
    assert len(a._reservoir) == 64
    assert a.count == 10_000
    assert a.quantile(0.5) == b.quantile(0.5)  # deterministic replacement
    # The reservoir median of a uniform 0..999 stream lands mid-range.
    assert 250 < a.quantile(0.5) < 750


def test_histogram_quantile_validation():
    h = Histogram("wait")
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert h.quantile(0.5) == 0.0  # empty histogram


def test_empty_histogram_every_readout_is_zero():
    # Empty-data contract: 0.0 everywhere, never NaN or IndexError.
    h = Histogram("wait")
    assert h.percentiles() == (0.0, 0.0, 0.0)
    assert h.quantile(0.0) == 0.0 and h.quantile(1.0) == 0.0
    assert h.mean == 0.0


def test_summary_deterministically_sorted():
    def build(keys):
        reg = MetricsRegistry()
        for key in keys:
            reg.counter(key).inc()
        reg.gauge("g.depth").set(2, now=1.0)
        reg.histogram("h.wait").observe(0.5)
        return reg.summary()

    a = build(["z.last", "a.first", "m.mid"])
    b = build(["m.mid", "z.last", "a.first"])
    assert a == b  # registration order is invisible
    assert a.index("a.first") < a.index("m.mid") < a.index("z.last")


def test_registry_creates_and_reuses():
    reg = MetricsRegistry()
    a = reg.counter("reads", disk=3)
    b = reg.counter("reads", disk=3)
    assert a is b
    assert reg.counter("reads", disk=4) is not a
    assert len(reg) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_format_metric_name_sorts_labels():
    assert format_metric_name("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
    assert format_metric_name("m", {}) == "m"


def test_registry_get_returns_none_for_missing():
    reg = MetricsRegistry()
    assert reg.get("nope") is None


def test_summary_renders_all_kinds():
    reg = MetricsRegistry()
    reg.counter("events").inc(7)
    reg.gauge("depth", dev=0).set(2, now=1.0)
    reg.histogram("wait", lane=0).observe(0.5)
    text = reg.summary()
    assert "events" in text and "7" in text
    assert "depth{dev=0}" in text
    assert "wait{lane=0}" in text
    assert "p95" in text


def test_summary_empty_registry():
    assert "no metrics" in MetricsRegistry().summary()

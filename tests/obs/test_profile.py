"""Tests for the wall-clock engine profiler (repro.obs.profile)."""

from repro.obs import (
    Observer,
    attach_profiler,
    merge_profiles,
    profile_bench_section,
    snapshot,
    summarize_profile,
)
from repro.obs.profile import ENGINE_SITE, PROFILE_SCHEMA, Profiler, _site_of
from repro.sim import Environment


def _run(obs, n=5):
    env = Environment(trace_hooks=obs.engine_hooks)

    def spinner(env):
        for _ in range(n):
            yield env.timeout(1.0)

    def pacer(env):
        yield env.timeout(2.5)

    env.process(spinner(env))
    env.process(pacer(env))
    env.run()


def test_profiler_attributes_time_per_generator_site():
    obs = Observer()
    attach_profiler(obs)
    _run(obs)
    doc = obs.profiler.profile_doc()
    assert doc["schema"] == PROFILE_SCHEMA
    sites = {row["site"]: row for row in doc["sites"]}
    spinner = next(s for s in sites if s.startswith("spinner ("))
    pacer = next(s for s in sites if s.startswith("pacer ("))
    assert sites[spinner]["resumes"] == 6  # first resume + 5 timeouts
    assert sites[pacer]["resumes"] == 2
    assert all(row["wall_s"] >= 0.0 for row in doc["sites"])
    assert doc["total_wall_s"] >= doc["attributed_wall_s"] >= 0.0


def test_site_of_names_file_and_line():
    obs = Observer()
    env = Environment(trace_hooks=obs.engine_hooks)

    def proc(env):
        yield env.timeout(1)

    process = env.process(proc(env))
    site = _site_of(process)
    assert site.startswith("proc (")
    assert "test_profile.py:" in site
    # Anything without generator code attributes to the engine itself.
    assert _site_of(object()) == ENGINE_SITE


def test_stop_is_idempotent_and_closes_the_open_interval():
    profiler = Profiler()

    class _FakeGen:
        gi_code = (lambda: None).__code__

    class _FakeProc:
        _gen = _FakeGen()

    profiler.on_resume(_FakeProc())
    profiler.stop()
    doc1 = profiler.profile_doc()
    profiler.stop()
    doc2 = profiler.profile_doc()
    assert doc1["sites"] == doc2["sites"]  # no double counting


def test_merge_profiles_sums_by_site():
    a = {"schema": PROFILE_SCHEMA, "total_wall_s": 1.0,
         "attributed_wall_s": 0.8,
         "sites": [{"site": "x (f.py:1)", "resumes": 2, "wall_s": 0.5},
                   {"site": "y (f.py:9)", "resumes": 1, "wall_s": 0.3}]}
    b = {"schema": PROFILE_SCHEMA, "total_wall_s": 2.0,
         "attributed_wall_s": 0.6,
         "sites": [{"site": "x (f.py:1)", "resumes": 4, "wall_s": 0.6}]}
    merged = merge_profiles([a, None, b])
    assert merged["total_wall_s"] == 3.0
    rows = {r["site"]: r for r in merged["sites"]}
    assert rows["x (f.py:1)"] == {"site": "x (f.py:1)", "resumes": 6,
                                  "wall_s": 1.1}
    assert rows["y (f.py:9)"]["resumes"] == 1
    # Sorted hottest-first.
    assert merged["sites"][0]["site"] == "x (f.py:1)"


def test_bench_section_and_text_summary():
    doc = {"schema": PROFILE_SCHEMA, "total_wall_s": 2.0,
           "attributed_wall_s": 1.0,
           "sites": [{"site": "x (f.py:1)", "resumes": 3, "wall_s": 0.75},
                     {"site": "y (f.py:9)", "resumes": 1, "wall_s": 0.25}]}
    section = profile_bench_section(doc, n_slowest=1)
    assert section["hottest"] == [
        {"name": "x (f.py:1)", "resumes": 3, "wall_s": 0.75, "share": 0.75}]
    text = summarize_profile(doc)
    assert "x (f.py:1)" in text and "75.0%" in text
    assert summarize_profile({"sites": []}) == "(no profile samples)"


def test_snapshot_carries_profile_only_when_armed():
    plain = Observer()
    Environment(trace_hooks=plain.engine_hooks).run()
    assert "profile" not in snapshot(plain)

    armed = Observer()
    attach_profiler(armed)
    _run(armed)
    assert snapshot(armed)["profile"]["schema"] == PROFILE_SCHEMA

"""Snapshot/merge semantics: what workers ship back to the runner."""

import json

from repro.obs import Observer, merge_snapshots, merge_trace_events, snapshot, summarize
from repro.obs.snapshot import RESERVOIR_SHIP_CAP


def _observer(counter=0, gauge=None, hist=(), spans=()):
    obs = Observer()
    if counter:
        obs.metrics.counter("events").inc(counter)
    if gauge is not None:
        g = obs.metrics.gauge("level")
        for now, value in gauge:
            g.set(value, now=now)
    h = obs.metrics.histogram("wait") if hist else None
    for value in hist:
        h.observe(value)
    pid = obs.tracer.process("run") if spans else None
    for start, end in spans:
        obs.tracer.complete("work", pid, 0, start, end)
    return obs


def test_snapshot_is_json_safe_and_structured():
    obs = _observer(counter=3, gauge=[(0.0, 1.0), (2.0, 5.0)],
                    hist=[1.0, 2.0, 3.0], spans=[(0.0, 2.5)])
    snap = snapshot(obs)
    json.dumps(snap)  # must serialize as-is for the cache
    assert snap["counters"]["events"] == 3
    assert snap["gauges"]["level"]["max"] == 5.0
    assert snap["histograms"]["wait"]["count"] == 3
    assert snap["histograms"]["wait"]["total"] == 6.0
    assert snap["n_spans"] == 1
    assert snap["sim_time_s"] == 2.5
    assert "trace_events" not in snap


def test_snapshot_trace_events_only_on_request():
    obs = _observer(spans=[(0.0, 1.0)])
    snap = snapshot(obs, include_trace=True)
    assert any(e.get("ph") == "X" for e in snap["trace_events"])


def test_snapshot_reservoir_is_capped_and_deterministic():
    obs = Observer()
    h = obs.metrics.histogram("wait")
    for i in range(10 * RESERVOIR_SHIP_CAP):
        h.observe(float(i % 997))
    first = snapshot(obs)["histograms"]["wait"]["reservoir"]
    second = snapshot(obs)["histograms"]["wait"]["reservoir"]
    assert first == second
    assert len(first) <= RESERVOIR_SHIP_CAP
    assert first == sorted(first)


def test_merge_sums_counters_and_histograms_exactly():
    a = snapshot(_observer(counter=2, hist=[1.0, 3.0]))
    b = snapshot(_observer(counter=5, hist=[2.0, 10.0]))
    merged = merge_snapshots([a, b])
    assert merged["counters"]["events"] == 7
    wait = merged["histograms"]["wait"]
    assert wait["count"] == 4
    assert wait["total"] == 16.0
    assert wait["min"] == 1.0 and wait["max"] == 10.0
    assert wait["reservoir"] == [1.0, 2.0, 3.0, 10.0]


def test_merge_gauges_bounds_exact_mean_approximate():
    a = snapshot(_observer(gauge=[(0.0, 2.0), (1.0, 2.0)]))
    b = snapshot(_observer(gauge=[(0.0, 6.0), (1.0, 6.0)]))
    merged = merge_snapshots([a, b])
    level = merged["gauges"]["level"]
    assert level["min"] == 2.0 and level["max"] == 6.0
    assert level["mean"] == 4.0  # mean of per-unit means


def test_merge_accumulates_sim_time_and_spans():
    a = snapshot(_observer(spans=[(0.0, 2.0)]))
    b = snapshot(_observer(spans=[(0.0, 3.0), (3.0, 4.0)]))
    merged = merge_snapshots([a, b, {}, None])
    assert merged["n_spans"] == 3
    assert merged["sim_time_s"] == 6.0


def test_merge_is_order_insensitive_for_exact_fields():
    snaps = [snapshot(_observer(counter=i + 1, hist=[float(i)]))
             for i in range(3)]
    forward = merge_snapshots(snaps)
    backward = merge_snapshots(list(reversed(snaps)))
    assert forward["counters"] == backward["counters"]
    assert forward["histograms"]["wait"]["count"] == \
        backward["histograms"]["wait"]["count"]
    assert forward["histograms"]["wait"]["reservoir"] == \
        backward["histograms"]["wait"]["reservoir"]


def test_summarize_renders_all_sections():
    obs = _observer(counter=1, gauge=[(0.0, 1.0)], hist=[1.0, 2.0])
    text = summarize(merge_snapshots([snapshot(obs)]))
    assert "== counters ==" in text
    assert "== gauges" in text
    assert "== histograms ==" in text
    assert "p99" in text
    assert summarize(merge_snapshots([])) == "(no metrics recorded)"


def test_merge_trace_events_rebases_pids_disjointly():
    unit_a = [{"ph": "X", "name": "w", "pid": 0, "tid": 0},
              {"ph": "X", "name": "w", "pid": 1, "tid": 0}]
    unit_b = [{"ph": "X", "name": "w", "pid": 0, "tid": 0}]
    merged = merge_trace_events([unit_a, [], unit_b])
    assert [e["pid"] for e in merged] == [0, 1, 2]
    # Inputs are not mutated.
    assert unit_b[0]["pid"] == 0

"""Tests for sim-time telemetry timelines (repro.obs.timeline)."""

import pytest

from repro.obs import Observer, attach_timeline, merge_timelines, snapshot
from repro.obs.timeline import TIMELINE_SCHEMA, MAX_SAMPLES, Timeline
from repro.sim import Environment


def _run_workload(obs, n=20, pitch=0.5, label=None):
    env = Environment(trace_hooks=obs.engine_hooks)
    if label is not None:
        obs.timeline.set_label(env, label)
    done = obs.metrics.counter("work.done")
    depth = obs.metrics.gauge("work.depth")
    wait = obs.metrics.histogram("work.wait")

    def worker():
        for i in range(n):
            yield env.timeout(pitch)
            done.inc()
            depth.set(i % 4, env.now)
            wait.observe(0.1 * (i % 5))

    env.process(worker())
    env.run()
    return env


def test_samples_land_on_the_interval_grid():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    _run_workload(obs, n=10, pitch=0.5)  # runs to t=5.0
    doc = obs.timeline.timeline_doc()
    assert doc["schema"] == TIMELINE_SCHEMA
    (seg,) = doc["segments"]
    assert seg["t"] == [1.0, 2.0, 3.0, 4.0, 5.0]
    # At tick t the sampler sees the state *before* events at t run:
    # 2 ticks of work per sim second, so t=1.0 shows one completed tick.
    assert seg["counters"]["work.done"] == [1, 3, 5, 7, 9]


def test_histogram_series_ship_count_and_percentiles():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    _run_workload(obs, n=10, pitch=0.5)
    (seg,) = obs.timeline.timeline_doc()["segments"]
    series = seg["histograms"]["work.wait"]
    assert set(series) == {"count", "p50", "p95", "p99"}
    assert series["count"][-1] == 9.0
    assert all(len(col) == len(seg["t"]) for col in series.values())


def test_labelled_counters_aggregate_by_base_name():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    env = Environment(trace_hooks=obs.engine_hooks)
    a = obs.metrics.counter("disk.reads", disk=0)
    b = obs.metrics.counter("disk.reads", disk=1)

    def worker():
        for _ in range(4):
            yield env.timeout(1.0)
            a.inc(2)
            b.inc(3)

    env.process(worker())
    env.run()
    (seg,) = obs.timeline.timeline_doc()["segments"]
    assert "disk.reads" in seg["counters"]
    assert not any("{" in key for key in seg["counters"])
    assert seg["counters"]["disk.reads"][-1] == 15  # 3 ticks * (2+3)


def test_metric_born_mid_run_is_zero_backfilled():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    env = Environment(trace_hooks=obs.engine_hooks)

    def worker():
        yield env.timeout(3.0)
        late = obs.metrics.counter("late.metric")
        late.inc(7)
        yield env.timeout(2.0)

    env.process(worker())
    env.run()
    (seg,) = obs.timeline.timeline_doc()["segments"]
    col = seg["counters"]["late.metric"]
    assert len(col) == len(seg["t"])
    assert col[:3] == [0.0, 0.0, 0.0] and col[-1] == 7


def test_auto_interval_decimates_and_stays_bounded():
    obs = Observer()
    attach_timeline(obs)  # auto-scale
    env = Environment(trace_hooks=obs.engine_hooks)
    c = obs.metrics.counter("n")

    def worker():
        for _ in range(4 * MAX_SAMPLES):
            yield env.timeout(1.0)
            c.inc()

    env.process(worker())
    env.run()
    (seg,) = obs.timeline.timeline_doc()["segments"]
    assert len(seg["t"]) <= MAX_SAMPLES
    assert seg["interval"] > 1.0  # doubled at least once
    # Monotone grid, counter still monotone after decimation.
    assert seg["t"] == sorted(seg["t"])
    col = seg["counters"]["n"]
    assert col == sorted(col)


def test_timeline_is_deterministic_across_runs():
    def run():
        obs = Observer()
        attach_timeline(obs, sample_interval=0.75)
        _run_workload(obs, n=30, pitch=0.4, label="det")
        return obs.timeline.timeline_doc()

    assert run() == run()


def test_marks_record_at_sim_time():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    env = _run_workload(obs, n=4, pitch=1.0)
    obs.timeline.mark(env, "fault:disk_crash", disk=3)
    (seg,) = obs.timeline.timeline_doc()["segments"]
    (mark,) = seg["marks"]
    assert mark["name"] == "fault:disk_crash"
    assert mark["t"] == env.now
    assert mark["args"] == {"disk": 3}
    # Marks for unknown environments are dropped, not an error.
    obs.timeline.mark(object(), "ignored")


def test_each_environment_gets_its_own_segment():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    _run_workload(obs, n=4, pitch=1.0, label="first")
    _run_workload(obs, n=4, pitch=1.0, label="second")
    doc = obs.timeline.timeline_doc()
    assert [seg["label"] for seg in doc["segments"]] == ["first", "second"]
    assert obs.timeline.n_segments == 2


def test_merge_is_ordered_concatenation():
    def doc_for(label):
        obs = Observer()
        attach_timeline(obs, sample_interval=1.0)
        _run_workload(obs, n=4, pitch=1.0, label=label)
        return obs.timeline.timeline_doc()

    a, b = doc_for("a"), doc_for("b")
    merged = merge_timelines([a, None, b])
    assert merged["schema"] == TIMELINE_SCHEMA
    assert [seg["label"] for seg in merged["segments"]] == ["a", "b"]
    assert merged["segments"][0] == a["segments"][0]
    assert merge_timelines([]) == {
        "schema": TIMELINE_SCHEMA, "sample_interval": None, "segments": []}


def test_snapshot_carries_timeline_only_when_armed():
    plain = Observer()
    Environment(trace_hooks=plain.engine_hooks).run()
    assert "timeline" not in snapshot(plain)

    armed = Observer()
    attach_timeline(armed, sample_interval=1.0)
    _run_workload(armed, n=4, pitch=1.0)
    snap = snapshot(armed)
    assert snap["timeline"]["schema"] == TIMELINE_SCHEMA


def test_unattached_timeline_refuses_to_bind():
    timeline = Timeline()
    with pytest.raises(RuntimeError, match="attach_timeline"):
        timeline.bind(object())


def test_invalid_sample_interval_rejected():
    with pytest.raises(ValueError):
        Timeline(sample_interval=0.0)
    with pytest.raises(ValueError):
        Timeline(sample_interval=-1.0)

"""Tests for HTML run reports and cross-run diffs (repro.obs.report)."""

import json

from repro.obs import (
    Observer,
    attach_timeline,
    diff_docs,
    render_diff,
    render_report,
    snapshot,
    write_report,
)
from repro.obs.report import main as report_main
from repro.sim import Environment


def _report_doc():
    obs = Observer()
    attach_timeline(obs, sample_interval=1.0)
    env = Environment(trace_hooks=obs.engine_hooks)
    pid = obs.tracer.process("run")
    c = obs.metrics.counter("work.done")
    h = obs.metrics.histogram("work.wait")

    def worker():
        for i in range(8):
            yield env.timeout(1.0)
            c.inc()
            h.observe(0.1 * i)

    obs.timeline.set_label(env, "unit-0")
    obs.timeline.mark(env, "fault:disk_crash", disk=2)
    env.run(env.process(worker()))
    obs.tracer.complete("repair", pid, obs.tracer.track(pid, "t"), 0.0, 4.0)
    snap = snapshot(obs, include_trace=True)
    return {
        "title": "test run <&>",
        "sim_version": "1.2.3",
        "root_seed": 7,
        "sections": [{"name": "fig13", "text": "col1  col2\n1     2"}],
        "obs": snap,
        "timeline": snap["timeline"],
        "trace_events": snap["trace_events"],
        "bench": {"totals": {"units": 1, "misses": 1, "hits": 0,
                             "dedups": 0, "hit_rate": 0.0, "wall_s": 0.5,
                             "sim_time_s": 8.0}},
    }


def test_render_report_is_self_contained_html():
    page = render_report(_report_doc())
    assert page.startswith("<!doctype html>")
    # Self-contained: no external scripts, stylesheets or images.
    assert "<script" not in page and "href=" not in page and "src=" not in page
    assert "<svg" in page                      # timeline charts + waterfall
    assert "test run &lt;&amp;&gt;" in page    # titles are escaped
    assert "unit-0" in page
    assert "work.wait" in page                 # percentile table
    assert "fault:disk_crash" in page          # mark rendered
    assert "fig13" in page


def test_render_report_minimal_doc():
    page = render_report({"title": "empty"})
    assert page.startswith("<!doctype html>") and page.endswith("</html>")


def test_write_report(tmp_path):
    out = tmp_path / "report.html"
    assert write_report(_report_doc(), str(out)) == str(out)
    assert out.read_text(encoding="utf-8").startswith("<!doctype html>")


def _result_doc(x, extra=None):
    rows = [{"scheme": "Geo-4M", "p99": x, "bytes": 100.0}]
    if extra:
        rows[0].update(extra)
    return {"schema": 1,
            "experiments": {"fig13": [{"name": "fig13/1Gbps", "rows": rows}]}}


def test_diff_docs_reports_per_metric_deltas():
    records = diff_docs(_result_doc(2.0), _result_doc(3.0))
    by_metric = {r["metric"]: r for r in records}
    p99 = by_metric["p99"]
    assert p99["unit"] == "fig13/1Gbps"
    assert p99["a"] == 2.0 and p99["b"] == 3.0
    assert p99["delta"] == 1.0 and p99["ratio"] == 1.5
    assert by_metric["bytes"]["delta"] == 0.0
    # Biggest relative movement leads.
    assert records[0]["metric"] == "p99"


def test_diff_docs_handles_missing_sides():
    records = diff_docs(_result_doc(2.0), _result_doc(2.0, {"new": 5.0}))
    (new,) = [r for r in records if r["metric"] == "new"]
    assert new["a"] is None and new["b"] == 5.0 and new["delta"] is None


def test_diff_docs_bench_mode():
    a = {"units": [{"name": "u1", "wall_s": 1.0}]}
    b = {"units": [{"name": "u1", "wall_s": 2.0}]}
    (record,) = diff_docs(a, b)
    assert record["metric"] == "wall_s" and record["ratio"] == 2.0


def test_render_diff_marks_identical_runs():
    page = render_diff(_result_doc(2.0), _result_doc(2.0))
    assert "numerically identical" in page
    page = render_diff(_result_doc(2.0), _result_doc(3.0), "before", "after")
    assert "before" in page and "after" in page and "+50.00%" in page


def test_cli_diff_mode(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps(_result_doc(2.0)), encoding="utf-8")
    b.write_text(json.dumps(_result_doc(2.5)), encoding="utf-8")
    out = tmp_path / "diff.html"
    assert report_main([str(a), str(b), "-o", str(out)]) == 0
    page = out.read_text(encoding="utf-8")
    assert "p99" in page and "+25.00%" in page
    assert "wrote" in capsys.readouterr().out

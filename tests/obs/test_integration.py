"""End-to-end observability tests: spans, metrics and trace export from a
real RCStor measurement, plus the CLI ``--trace`` / ``--metrics`` flags."""

import json

import numpy as np
import pytest

from repro.cluster import ClusterConfig, RCStor
from repro.codes import ClayCode
from repro.core import GeometricLayout, StripeLayout
from repro.obs import Observer, observed, write_chrome_trace

MB = 1 << 20


def _geo_system(obs=None, n_objects=60):
    config = ClusterConfig(n_pgs=32)
    system = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                    ClayCode(10, 4), obs=obs)
    rng = np.random.default_rng(7)
    system.ingest(rng.integers(4 * MB, 64 * MB, size=n_objects))
    return system


def test_no_observer_records_nothing():
    system = _geo_system()
    assert system.obs is None
    objs = system.catalog.objects[:2]
    system.measure_degraded_reads(objs, None)  # must run clean without obs


def test_degraded_read_spans_decompose():
    """The acceptance check: every degraded read produces a top-level span
    whose duration matches the reported total, with repair/transfer child
    phases reproducing the result's breakdown within 1%."""
    obs = Observer()
    system = _geo_system(obs)
    objs = system.catalog.objects[:5]
    results = system.measure_degraded_reads(objs, None)

    tops = obs.tracer.spans_named("degraded_read")
    assert len(tops) == len(results)
    repairs = obs.tracer.spans_named("repair")
    assert len(repairs) == len(results)
    transfers = obs.tracer.spans_named("transfer")
    assert transfers, "no transfer spans recorded"

    for top, repair, result in zip(tops, repairs, results):
        assert top.duration == pytest.approx(result.total_time, rel=0.01)
        assert repair.duration == pytest.approx(result.repair_time, rel=0.01)
        xfers = [s for s in transfers
                 if top.start <= s.start and s.end <= top.end + 1e-9]
        assert sum(s.duration for s in xfers) == pytest.approx(
            result.transfer_time, rel=0.01)
        # The phases cover the read: nothing ends after the top span.
        assert repair.end <= top.end + 1e-9


def test_repair_span_nests_phase_children():
    obs = Observer()
    system = _geo_system(obs)
    objs = system.catalog.objects[:3]
    system.measure_degraded_reads(objs, None)
    repairs = obs.tracer.spans_named("repair")
    for phase in ("helper_reads", "gather", "decode", "locate"):
        children = obs.tracer.spans_named(phase)
        assert children, f"no {phase} spans"
        for child in children:
            parent = next(r for r in repairs
                          if r.start - 1e-9 <= child.start
                          and child.end <= r.end + 1e-9)
            assert parent is not None


def test_striped_scheme_also_traced():
    obs = Observer()
    config = ClusterConfig(n_pgs=32)
    system = RCStor(config, StripeLayout(256 * 1024, 10), ClayCode(10, 4),
                    obs=obs)
    rng = np.random.default_rng(11)
    system.ingest(rng.integers(4 * MB, 32 * MB, size=40))
    objs = system.catalog.objects[:3]
    results = system.measure_degraded_reads(objs, None)
    tops = obs.tracer.spans_named("degraded_read")
    assert len(tops) == len(results)
    for top, result in zip(tops, results):
        assert top.duration == pytest.approx(result.total_time, rel=0.01)


def test_recovery_tasks_traced():
    obs = Observer()
    system = _geo_system(obs)
    disk = system.catalog.disk_of(system.catalog.objects[0])
    report = system.run_recovery(disk)
    tasks = obs.tracer.spans_named("recovery_task")
    assert len(tasks) == report.n_tasks
    writes = obs.tracer.spans_named("write")
    assert len(writes) == report.n_tasks
    # Tasks land on per-server tracks.
    track_names = {name for _pid, _tid, name in obs.tracer.tracks}
    assert any(name.startswith("server-") for name in track_names)


def test_resource_metrics_recorded():
    obs = Observer()
    system = _geo_system(obs)
    disk = system.catalog.disk_of(system.catalog.objects[0])
    system.run_recovery(disk)
    metrics = obs.metrics
    # Per-priority-lane wait histograms (recovery runs in the background
    # lane) and per-disk / per-NIC utilization gauges.
    waits = [key for key, _m in metrics if key.startswith("disk.queue_wait")]
    assert waits
    utils = [m for key, m in metrics if key.startswith("disk.utilization")]
    assert utils and all(0.0 <= g.value <= 1.0 for g in utils)
    nic_utils = [m for key, m in metrics if key.startswith("nic.utilization")]
    assert nic_utils
    summary = obs.summary()
    assert "disk.utilization" in summary
    assert "disk.queue_wait" in summary and "p99" in summary
    assert metrics.counter("engine.events_scheduled").value > 0


def test_trace_export_is_valid_chrome_json(tmp_path):
    obs = Observer()
    system = _geo_system(obs)
    objs = system.catalog.objects[:3]
    system.measure_degraded_reads(objs, None)
    out = tmp_path / "trace.json"
    n = write_chrome_trace(obs.tracer, str(out))
    assert n == len(obs.tracer.spans) > 0
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    span_events = [e for e in events if e.get("ph") == "X"]
    assert len(span_events) == n
    for e in span_events:
        assert {"name", "pid", "tid", "ts", "dur"} <= set(e)
        assert e["dur"] >= 0


def test_default_observer_picked_up_by_new_systems():
    with observed() as obs:
        system = _geo_system()
        assert system.obs is obs
        system.measure_degraded_reads(system.catalog.objects[:2], None)
        assert obs.tracer.spans_named("degraded_read")
    assert _geo_system().obs is None


def test_cli_trace_and_metrics_flags(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out = tmp_path / "trace.json"
    assert main(["fig13", "--n-objects", "200", "--n-requests", "3",
                 "--trace", str(out), "--metrics",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    printed = capsys.readouterr().out
    assert "Pipelining saving" in printed
    assert "disk.utilization" in printed
    assert "queue_wait" in printed
    doc = json.loads(out.read_text())
    names = {e.get("name") for e in doc["traceEvents"]}
    assert "degraded_read" in names
    # One trace process per simulated bandwidth point.
    from repro.obs import get_default_observer
    assert get_default_observer() is None  # CLI cleaned up after itself

"""Tests for the span tracer and the Chrome/Perfetto exporter."""

import json

import pytest

from repro.obs import Observer, Tracer, chrome_trace, observed, write_chrome_trace
from repro.obs.observer import get_default_observer, set_default_observer


def test_process_and_track_registration():
    t = Tracer()
    p0 = t.process("run-a")
    p1 = t.process("run-b")
    assert (p0, p1) == (0, 1)
    assert t.track(p0, "repair") == 0
    assert t.track(p0, "transfer") == 1
    assert t.track(p0, "repair") == 0       # cached
    assert t.track(p1, "repair") == 0       # tids are per-process
    assert (p0, 1, "transfer") in t.tracks


def test_complete_span_records_interval():
    t = Tracer()
    pid = t.process("run")
    tid = t.track(pid, "work")
    span = t.complete("decode", pid, tid, 1.0, 3.5, nbytes=42)
    assert span.duration == pytest.approx(2.5)
    assert span.end == pytest.approx(3.5)
    assert span.args == {"nbytes": 42}
    assert t.spans_named("decode") == [span]


def test_begin_end_span():
    t = Tracer()
    pid = t.process("run")
    handle = t.begin("read", pid, t.track(pid, "io"), 2.0, disk=3)
    span = handle.end(5.0, nbytes=7)
    assert span.start == 2.0 and span.duration == pytest.approx(3.0)
    assert span.args == {"disk": 3, "nbytes": 7}
    assert len(t) == 1


def test_span_cannot_end_before_start():
    t = Tracer()
    with pytest.raises(ValueError):
        t.complete("bad", 0, 0, 5.0, 4.0)


def test_chrome_trace_structure():
    t = Tracer()
    pid = t.process("Geo-4M/degraded")
    tid = t.track(pid, "repair")
    t.complete("helper_reads", pid, tid, 0.25, 0.75, nbytes=10)
    t.counter(pid, "queue_depth", 0.5, 3)
    doc = chrome_trace(t)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    meta = [e for e in events if e["ph"] == "M"]
    names = {(e["name"], e["args"].get("name")) for e in meta}
    assert ("process_name", "Geo-4M/degraded") in names
    assert ("thread_name", "repair") in names
    (x,) = [e for e in events if e["ph"] == "X"]
    assert x["name"] == "helper_reads"
    assert x["ts"] == pytest.approx(0.25e6)      # sim seconds -> us
    assert x["dur"] == pytest.approx(0.5e6)
    assert x["args"] == {"nbytes": 10}
    (c,) = [e for e in events if e["ph"] == "C"]
    assert c["args"] == {"queue_depth": 3}


def test_write_chrome_trace_roundtrip(tmp_path):
    t = Tracer()
    pid = t.process("run")
    t.complete("span", pid, t.track(pid, "t"), 0.0, 1.0)
    out = tmp_path / "trace.json"
    assert write_chrome_trace(t, str(out)) == 1
    loaded = json.loads(out.read_text())
    assert isinstance(loaded["traceEvents"], list)
    assert any(e.get("ph") == "X" for e in loaded["traceEvents"])


def test_default_observer_context():
    assert get_default_observer() is None
    with observed() as obs:
        assert isinstance(obs, Observer)
        assert get_default_observer() is obs
        with observed(Observer()) as inner:
            assert get_default_observer() is inner
        assert get_default_observer() is obs
    assert get_default_observer() is None


def test_set_default_observer_is_deprecated_but_works():
    obs = Observer()
    with pytest.warns(DeprecationWarning):
        assert set_default_observer(obs) is None
    with pytest.warns(DeprecationWarning):
        assert set_default_observer(None) is obs
    assert get_default_observer() is None


def test_engine_hooks_count_into_registry():
    from repro.sim import Environment

    obs = Observer()
    env = Environment(trace_hooks=obs.engine_hooks)

    def proc():
        yield env.timeout(1)
        yield env.timeout(2)

    env.run(env.process(proc()))
    assert obs.metrics.counter("engine.events_scheduled").value > 0
    assert obs.metrics.counter("engine.process_resumes").value >= 2

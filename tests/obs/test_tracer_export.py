"""Tests for the span tracer and the Chrome/Perfetto exporter."""

import json

import pytest

from repro.obs import (
    Observer,
    Tracer,
    chrome_trace,
    chrome_trace_events,
    observed,
    write_chrome_trace,
)
from repro.obs.observer import get_default_observer, set_default_observer


def test_process_and_track_registration():
    t = Tracer()
    p0 = t.process("run-a")
    p1 = t.process("run-b")
    assert (p0, p1) == (0, 1)
    assert t.track(p0, "repair") == 0
    assert t.track(p0, "transfer") == 1
    assert t.track(p0, "repair") == 0       # cached
    assert t.track(p1, "repair") == 0       # tids are per-process
    assert (p0, 1, "transfer") in t.tracks


def test_complete_span_records_interval():
    t = Tracer()
    pid = t.process("run")
    tid = t.track(pid, "work")
    span = t.complete("decode", pid, tid, 1.0, 3.5, nbytes=42)
    assert span.duration == pytest.approx(2.5)
    assert span.end == pytest.approx(3.5)
    assert span.args == {"nbytes": 42}
    assert t.spans_named("decode") == [span]


def test_begin_end_span():
    t = Tracer()
    pid = t.process("run")
    handle = t.begin("read", pid, t.track(pid, "io"), 2.0, disk=3)
    span = handle.end(5.0, nbytes=7)
    assert span.start == 2.0 and span.duration == pytest.approx(3.0)
    assert span.args == {"disk": 3, "nbytes": 7}
    assert len(t) == 1


def test_span_cannot_end_before_start():
    t = Tracer()
    with pytest.raises(ValueError):
        t.complete("bad", 0, 0, 5.0, 4.0)


def test_chrome_trace_structure():
    t = Tracer()
    pid = t.process("Geo-4M/degraded")
    tid = t.track(pid, "repair")
    t.complete("helper_reads", pid, tid, 0.25, 0.75, nbytes=10)
    t.counter(pid, "queue_depth", 0.5, 3)
    doc = chrome_trace(t)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    meta = [e for e in events if e["ph"] == "M"]
    names = {(e["name"], e["args"].get("name")) for e in meta}
    assert ("process_name", "Geo-4M/degraded") in names
    assert ("thread_name", "repair") in names
    (x,) = [e for e in events if e["ph"] == "X"]
    assert x["name"] == "helper_reads"
    assert x["ts"] == pytest.approx(0.25e6)      # sim seconds -> us
    assert x["dur"] == pytest.approx(0.5e6)
    assert x["args"] == {"nbytes": 10}
    (c,) = [e for e in events if e["ph"] == "C"]
    assert c["args"] == {"queue_depth": 3}


def test_write_chrome_trace_roundtrip(tmp_path):
    t = Tracer()
    pid = t.process("run")
    t.complete("span", pid, t.track(pid, "t"), 0.0, 1.0)
    out = tmp_path / "trace.json"
    assert write_chrome_trace(t, str(out)) == 1
    loaded = json.loads(out.read_text())
    assert isinstance(loaded["traceEvents"], list)
    assert any(e.get("ph") == "X" for e in loaded["traceEvents"])


def test_chrome_trace_of_empty_tracer():
    # No processes, tracks or spans: a valid, empty-but-loadable document.
    doc = chrome_trace(Tracer())
    assert doc["traceEvents"] == []
    assert json.loads(json.dumps(doc)) == doc


def test_unclosed_span_handle_is_not_exported():
    t = Tracer()
    pid = t.process("run")
    tid = t.track(pid, "t")
    handle = t.begin("open", pid, tid, 1.0)
    t.complete("closed", pid, tid, 0.0, 0.5)
    # The open handle never called .end(): it must not leak into the
    # span list or the export.
    assert len(t) == 1
    events = chrome_trace_events(t)
    assert [e["name"] for e in events if e["ph"] == "X"] == ["closed"]
    # Closing it afterwards records it with the handle's stored start.
    span = handle.end(2.0, reason="late")
    assert span.start == 1.0 and span.duration == 1.0
    assert span.args == {"reason": "late"}
    assert len(t) == 2


def test_nested_same_track_spans_roundtrip(tmp_path):
    # Nesting is by time containment on one track; Perfetto renders the
    # inner "X" event inside the outer one.  The export must preserve the
    # exact containment after a JSON round-trip.
    t = Tracer()
    pid = t.process("run")
    tid = t.track(pid, "repair")
    t.complete("outer", pid, tid, 0.0, 10.0)
    t.complete("inner", pid, tid, 2.0, 4.0)
    out = tmp_path / "nested.json"
    assert write_chrome_trace(t, str(out)) == 2
    loaded = json.loads(out.read_text(encoding="utf-8"))
    spans = {e["name"]: e for e in loaded["traceEvents"]
             if e["ph"] == "X"}
    outer, inner = spans["outer"], spans["inner"]
    assert outer["pid"] == inner["pid"] and outer["tid"] == inner["tid"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]


def test_write_chrome_trace_is_perfetto_loadable(tmp_path):
    # The minimal contract the Perfetto JSON importer requires: a
    # traceEvents list whose entries carry ph/pid/tid, numeric ts/dur on
    # "X" events, and name metadata args on "M" events.
    t = Tracer()
    pid = t.process("Geo-4M/degraded")
    t.complete("read", pid, t.track(pid, "client"), 0.0, 0.125, nbytes=4096)
    t.counter(pid, "depth", 0.1, 2)
    out = tmp_path / "trace.json"
    write_chrome_trace(t, str(out))
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert set(loaded) == {"traceEvents", "displayTimeUnit"}
    for event in loaded["traceEvents"]:
        assert event["ph"] in {"M", "X", "C"}
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float) and event["dur"] >= 0
        if event["ph"] == "M":
            assert event["name"].endswith(("_name", "_sort_index"))
            assert "args" in event


def test_default_observer_context():
    assert get_default_observer() is None
    with observed() as obs:
        assert isinstance(obs, Observer)
        assert get_default_observer() is obs
        with observed(Observer()) as inner:
            assert get_default_observer() is inner
        assert get_default_observer() is obs
    assert get_default_observer() is None


def test_set_default_observer_is_deprecated_but_works():
    obs = Observer()
    with pytest.warns(DeprecationWarning):
        assert set_default_observer(obs) is None
    with pytest.warns(DeprecationWarning):
        assert set_default_observer(None) is obs
    assert get_default_observer() is None


def test_engine_hooks_count_into_registry():
    from repro.sim import Environment

    obs = Observer()
    env = Environment(trace_hooks=obs.engine_hooks)

    def proc():
        yield env.timeout(1)
        yield env.timeout(2)

    env.run(env.process(proc()))
    assert obs.metrics.counter("engine.events_scheduled").value > 0
    assert obs.metrics.counter("engine.process_resumes").value >= 2

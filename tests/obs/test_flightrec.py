"""Tests for the flight recorder (repro.obs.flightrec)."""

import json

import pytest

from repro.obs import FlightRecorder, Observer, attach_flightrec
from repro.obs.flightrec import FLIGHTREC_SCHEMA
from repro.sim import Environment


def _run_ticks(obs, n=10):
    env = Environment(trace_hooks=obs.engine_hooks)

    def worker():
        for _ in range(n):
            yield env.timeout(1.0)

    env.run(env.process(worker()))
    return env


def test_ring_keeps_only_the_tail():
    obs = Observer()
    recorder = attach_flightrec(obs, capacity=4)
    _run_ticks(obs, n=10)
    assert recorder.n_seen > 4
    assert len(recorder.events) == 4
    bundle = recorder.bundle()
    assert bundle["schema"] == FLIGHTREC_SCHEMA
    assert bundle["events_kept"] == 4
    assert bundle["events_seen"] == recorder.n_seen
    # The tail is the *most recent* events, in schedule order.
    times = [e["t"] for e in bundle["event_tail"]]
    assert times == sorted(times) and times[-1] >= 9.0


def test_incidents_and_fault_state_land_in_the_bundle():
    recorder = FlightRecorder(capacity=8)
    recorder.incident("repair_task_abandoned", sim_time=3.5, weight=2)
    recorder.note_fault_state({"injected": 1, "failed_disks": [4]})
    recorder.note_fault_state({"injected": 2, "failed_disks": [4, 7]})
    bundle = recorder.bundle()
    assert bundle["incidents"] == [
        {"kind": "repair_task_abandoned", "sim_time": 3.5, "weight": 2}]
    assert bundle["fault_state"] == {"injected": 2, "failed_disks": [4, 7]}


def test_bundle_with_observer_includes_metrics_and_span_tail():
    obs = Observer()
    recorder = attach_flightrec(obs)
    obs.metrics.counter("work.done").inc(3)
    pid = obs.tracer.process("run")
    obs.tracer.complete("repair", pid, obs.tracer.track(pid, "t"), 0.0, 2.0)
    _run_ticks(obs, n=3)
    bundle = recorder.bundle(obs)
    assert bundle["metrics"]["counters"]["work.done"] == 3
    (span,) = bundle["span_tail"]
    assert span["name"] == "repair" and span["duration"] == 2.0


def test_dump_writes_valid_json_atomically(tmp_path):
    obs = Observer()
    recorder = attach_flightrec(obs)
    recorder.provenance = {"scenario": "fig13/1Gbps", "seed": 42}
    _run_ticks(obs, n=2)
    path = recorder.dump_to(str(tmp_path / "deep"), "fig13/1Gbps unit",
                            obs=obs)
    assert path.endswith("fig13-1Gbps-unit.flightrec.json")
    doc = json.loads(open(path, encoding="utf-8").read())
    assert doc["schema"] == FLIGHTREC_SCHEMA
    assert doc["provenance"]["seed"] == 42
    assert not list(tmp_path.glob("**/*.tmp"))  # no temp file left behind


def test_capacity_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)

"""Fleet Monte-Carlo durability engine: cross-validation against the
Markov chain, determinism, and the fault-model mechanics."""

import pytest

from repro.cluster.topology import ClusterConfig
from repro.obs import Observer
from repro.reliability import (
    FleetParams,
    FleetSim,
    ReliabilityParams,
    estimate_mttdl,
    independent_pgs,
    mds_fatal_probabilities,
    system_mttdl,
)


def simple_params(**overrides):
    base = dict(fatal_probabilities=(0.0, 1.0), years=2.0, afr=0.5,
                repair_hours=24.0, lse_rate=0.0, scrub_interval_hours=0.0)
    base.update(overrides)
    return FleetParams(**base)


# ----------------------------------------------------------------------
# The acceptance test: MC vs Markov under the chain's own assumptions
# ----------------------------------------------------------------------
def test_mc_mttdl_matches_markov_within_95ci():
    """With independent groups, exponential lifetimes, fixed repair time
    and no latent errors — exactly the Markov chain's world — the
    simulated MTTDL must bracket the analytic one."""
    n_groups, group_size = 150, 8
    afr, repair_hours = 0.6, 30.0
    q = (0.0, 1.0)
    sim = FleetSim(independent_pgs(n_groups, group_size),
                   n_groups * group_size)
    params = FleetParams(fatal_probabilities=q, years=10.0, afr=afr,
                         repair_hours=repair_hours, lse_rate=0.0,
                         scrub_interval_hours=0.0)
    results = sim.run_trials(params, seed=12345, n_trials=10)
    est = estimate_mttdl([r.n_losses for r in results],
                         [r.years for r in results])
    assert est.n_losses > 100, "the regime must actually observe losses"
    markov = system_mttdl(
        ReliabilityParams(group_size, afr, repair_hours, q), n_groups)
    assert est.contains(markov), \
        f"MC [{est.lo_hours:.0f}, {est.hi_hours:.0f}] excludes {markov:.0f}"


def test_trials_are_deterministic_per_seed():
    sim = FleetSim(independent_pgs(20, 4), 80)
    params = simple_params()
    a = sim.run_trial(params, 42)
    b = sim.run_trial(params, 42)
    c = sim.run_trial(params, 43)
    assert a == b
    assert a != c


def test_every_failure_fatal_counts_each_group_hit():
    """q = (1.0,): the first failure in a PG always loses data, so losses
    equal the group-hits of disk failures and nothing stays damaged."""
    sim = FleetSim(independent_pgs(10, 4), 40)
    r = sim.run_trial(simple_params(fatal_probabilities=(1.0,)), 5)
    assert r.disk_failures > 0
    assert r.n_losses == r.disk_failures  # disjoint PGs: one hit each
    assert r.peak_damaged_pgs == 0
    assert r.first_loss_hours == pytest.approx(min(r.loss_hours))


def test_scrubbing_clears_latent_errors():
    sim = FleetSim(independent_pgs(25, 4), 100)
    on = sim.run_trial(simple_params(afr=0.05, lse_rate=2.0,
                                     scrub_interval_hours=168.0), 9)
    off = sim.run_trial(simple_params(afr=0.05, lse_rate=2.0,
                                      scrub_interval_hours=0.0), 9)
    assert on.lse_arrivals > 0
    assert on.lse_scrubbed > 0
    assert on.lse_scrubbed <= on.lse_arrivals
    assert off.lse_scrubbed == 0


def test_correlated_faults_require_a_rack_map():
    sim = FleetSim(independent_pgs(4, 4), 16)
    with pytest.raises(ValueError, match="multi-rack"):
        sim.run_trial(simple_params(rack_burst_rate=1.0), 0)
    with pytest.raises(ValueError, match="multi-rack"):
        sim.run_trial(simple_params(tor_outage_rate=1.0), 0)


def test_from_cluster_runs_bursts_and_outages():
    config = ClusterConfig(n_nodes=16, disks_per_node=4, n_racks=2,
                           nodes_per_rack=8, n_pgs=32,
                           placement="rack_aware", pg_seed=3)
    sim = FleetSim.from_cluster(config)
    assert sim.n_disks == 64 and sim.n_pgs == 32
    assert sim.disk_racks is not None
    r = sim.run_trial(simple_params(
        afr=0.05, rack_burst_rate=3.0, burst_node_fraction=0.5,
        tor_outage_rate=3.0, tor_outage_hours=48.0, node_afr=0.1,
        repair_streams=4, years=4.0), 21)
    assert r.rack_bursts > 0
    assert r.tor_outages > 0
    assert r.node_failures > 0
    assert r.disk_failures > 0


def test_risk_aware_and_fifo_queues_both_drain():
    """Throttled repair must complete rebuilds in both orderings, and a
    saturated queue accumulates wait time."""
    sim = FleetSim(independent_pgs(30, 4), 120)
    for risk_aware in (True, False):
        r = sim.run_trial(simple_params(
            afr=1.5, repair_hours=200.0, repair_streams=2,
            risk_aware=risk_aware, years=3.0), 11)
        assert r.repairs_completed > 0
        assert r.repair_wait_hours > 0


def test_weibull_wearout_matches_exponential_mean_failure_count():
    """Shape 3 wear-out keeps mean lifetime 1/afr, so the failure count
    stays in the same ballpark as the memoryless draw."""
    sim = FleetSim(independent_pgs(50, 4), 200)
    exp = sim.run_trial(simple_params(afr=0.4, years=10.0), 3)
    wei = sim.run_trial(simple_params(afr=0.4, years=10.0,
                                      weibull_shape=3.0), 3)
    assert wei.disk_failures > 0
    assert 0.5 < wei.disk_failures / exp.disk_failures < 2.0


def test_observer_sees_losses_and_incidents():
    obs = Observer()
    sim = FleetSim(independent_pgs(10, 4), 40, obs=obs)
    r = sim.run_trial(simple_params(fatal_probabilities=(1.0,), afr=1.0), 2)
    assert r.n_losses > 0
    assert obs.metrics.counter("fleet.data_losses").value == r.n_losses
    assert obs.metrics.counter("fleet.disk_failures").value \
        == r.disk_failures


# ----------------------------------------------------------------------
# Parameters and topology plumbing
# ----------------------------------------------------------------------
def test_params_doc_round_trip():
    params = simple_params(weibull_shape=2.0, repair_streams=8,
                           risk_aware=False)
    doc = params.to_doc()
    assert doc["fatal_probabilities"] == [0.0, 1.0]
    assert FleetParams.from_doc(doc) == params


def test_params_validation():
    with pytest.raises(ValueError, match="end at 1.0"):
        simple_params(fatal_probabilities=(0.0, 0.5))
    with pytest.raises(ValueError, match="must be positive"):
        simple_params(years=0.0)
    with pytest.raises(ValueError, match="weibull_shape"):
        simple_params(weibull_shape=-1.0)
    with pytest.raises(ValueError, match=">= 0"):
        simple_params(lse_rate=-0.1)
    with pytest.raises(ValueError, match="burst_node_fraction"):
        simple_params(burst_node_fraction=0.0)
    with pytest.raises(ValueError, match="tor_repair_factor"):
        simple_params(tor_repair_factor=0.5)


def test_independent_pgs_are_disjoint():
    pgs = independent_pgs(5, 3)
    flat = [d for pg in pgs for d in pg]
    assert len(flat) == len(set(flat)) == 15
    with pytest.raises(ValueError):
        independent_pgs(0, 3)
    with pytest.raises(ValueError):
        independent_pgs(3, 1)


def test_fleet_sim_rejects_bad_topology():
    with pytest.raises(ValueError, match="at least two disks"):
        FleetSim([(0, 1)], 1)
    with pytest.raises(ValueError, match="at least one placement group"):
        FleetSim([], 4)
    with pytest.raises(ValueError, match="outside the fleet"):
        FleetSim([(0, 9)], 4)


def test_mds_fatal_probabilities():
    assert mds_fatal_probabilities(4) == (0.0, 0.0, 0.0, 0.0, 1.0)
    assert mds_fatal_probabilities(1) == (0.0, 1.0)
    with pytest.raises(ValueError):
        mds_fatal_probabilities(0)


def test_reliability_params_for_code_uses_exact_q():
    from repro.codes import RSCode

    p = ReliabilityParams.for_code(RSCode(10, 4), n_disks=14, afr=0.02,
                                   repair_hours=24.0)
    assert p.fatal_probabilities == (0.0, 0.0, 0.0, 0.0, 1.0)
    assert p.n_disks == 14

"""Tests for the MTTDL reliability model."""

import math

import pytest

from repro.codes import ClayCode, LRCCode, RSCode
from repro.reliability import (
    ReliabilityParams,
    annual_durability,
    fatal_probabilities_for_code,
    mttdl_group,
    system_mttdl,
)
from repro.reliability.markov import HOURS_PER_YEAR, durability_nines


def params(n=14, afr=0.02, repair_hours=1.0, q=(0.0, 0.0, 0.0, 0.0, 1.0)):
    return ReliabilityParams(n, afr, repair_hours, q)


def test_validation():
    with pytest.raises(ValueError):
        params(n=1)
    with pytest.raises(ValueError):
        params(afr=0)
    with pytest.raises(ValueError):
        params(q=(0.0, 0.5))  # must end at 1.0
    with pytest.raises(ValueError):
        params(q=(0.0, 2.0, 1.0))


def test_single_fault_tolerance_closed_form():
    """For r=1 (mirror-like), MTTDL = (mu + (2n-1) lam) / (n (n-1) lam^2)."""
    n, afr, repair = 4, 0.05, 2.0
    p = ReliabilityParams(n, afr, repair, (0.0, 1.0))
    lam = afr / HOURS_PER_YEAR
    mu = 1 / repair
    expected = (mu + (2 * n - 1) * lam) / (n * (n - 1) * lam ** 2)
    # Renewal method is exact to O(lam/mu).
    assert mttdl_group(p) == pytest.approx(expected, rel=1e-4)


def test_faster_recovery_increases_mttdl():
    """The paper's §2.1 claim, quantified."""
    slow = mttdl_group(params(repair_hours=10.0))
    fast = mttdl_group(params(repair_hours=1.0))
    assert fast > 50 * slow  # r=4: roughly (10x)^4 / corrections


def test_mttdl_scaling_with_recovery_speedup():
    """With r tolerated failures, MTTDL scales ~speedup^r."""
    base = mttdl_group(params(repair_hours=2.0))
    twice = mttdl_group(params(repair_hours=1.0))
    assert twice / base == pytest.approx(2 ** 4, rel=0.05)


def test_higher_afr_decreases_mttdl():
    assert mttdl_group(params(afr=0.05)) < mttdl_group(params(afr=0.01))


def test_system_mttdl_divides_by_groups():
    p = params()
    assert system_mttdl(p, 100) == pytest.approx(mttdl_group(p) / 100)
    with pytest.raises(ValueError):
        system_mttdl(p, 0)


def test_fatal_probabilities_mds():
    assert fatal_probabilities_for_code(RSCode(10, 4)) == [0, 0, 0, 0, 1.0]
    assert fatal_probabilities_for_code(ClayCode(10, 4)) == [0, 0, 0, 0, 1.0]


def test_fatal_probabilities_lrc():
    """LRC(10,2,2) survives any 3 failures but loses some 4th failures."""
    q = fatal_probabilities_for_code(LRCCode(10, 2, 2))
    assert q[0] == q[1] == q[2] == 0.0
    assert 0 < q[3] < 0.5  # a minority of 4th failures is fatal
    assert q[-1] == 1.0


def test_lrc_mttdl_below_mds_at_same_recovery_speed():
    """Non-MDS reliability penalty: same repair time, earlier data loss."""
    mds = params(q=(0.0, 0.0, 0.0, 0.0, 1.0))
    q_lrc = tuple(fatal_probabilities_for_code(LRCCode(10, 2, 2)))
    lrc = params(q=q_lrc)
    assert mttdl_group(lrc) < mttdl_group(mds)


def test_faster_recovery_can_beat_mds_tolerance():
    """The paper's trade: Clay+Geo recovers 1.85x faster than RS, which
    (all else equal) gives it ~1.85^4 more MTTDL."""
    rs = mttdl_group(params(repair_hours=1.85))
    clay = mttdl_group(params(repair_hours=1.0))
    assert clay / rs == pytest.approx(1.85 ** 4, rel=0.05)


def test_annual_durability_and_nines():
    mttdl = 1e9  # hours
    p = annual_durability(mttdl)
    assert 0 < p < 1
    nines = durability_nines(mttdl)
    assert nines == pytest.approx(-math.log10(1 - p))
    with pytest.raises(ValueError):
        annual_durability(0)


def test_reasonable_magnitudes():
    """14-wide group, 2% AFR, 2-hour repair: astronomically durable per
    group; a large fleet brings it down but stays in the many-nines range."""
    p = params(repair_hours=2.0)
    group = mttdl_group(p)
    assert group > 1e12  # hours
    fleet = system_mttdl(p, 10_000)
    assert durability_nines(fleet) > 4

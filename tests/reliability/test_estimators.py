"""Confidence-interval estimators: chi-square reference values, Garwood
and Wilson intervals, and the pooled MTTDL estimate."""

import math

import pytest

from repro.reliability import (
    LossProbability,
    MttdlEstimate,
    estimate_mttdl,
    loss_probability,
)
from repro.reliability.estimators import (
    chi2_quantile,
    poisson_count_interval,
    wilson_interval,
)
from repro.reliability.markov import HOURS_PER_YEAR


# Exact chi-square quantiles (R: qchisq(p, df)) the Wilson–Hilferty
# cube must reproduce within a couple of percent.
CHI2_REFERENCE = [
    (0.975, 2, 7.3778),
    (0.975, 10, 20.4832),
    (0.025, 10, 3.2470),
    (0.975, 40, 59.3417),
    (0.025, 40, 24.4330),
]


@pytest.mark.parametrize("p,df,exact", CHI2_REFERENCE)
def test_chi2_quantile_tracks_exact_values(p, df, exact):
    rel = abs(chi2_quantile(p, df) - exact) / exact
    assert rel < 0.03, f"chi2({p}, {df}) off by {rel:.1%}"


def test_chi2_quantile_small_df_lower_tail_errs_conservative():
    """At df=2 the cube underestimates the lower-tail quantile (exact
    0.0506), which *widens* the Garwood interval — the safe direction."""
    assert 0.0 < chi2_quantile(0.025, 2) < 0.0506


def test_chi2_quantile_validation():
    with pytest.raises(ValueError, match="not in"):
        chi2_quantile(0.0, 2)
    with pytest.raises(ValueError, match="must be positive"):
        chi2_quantile(0.975, 0)
    with pytest.raises(ValueError, match="95% level"):
        chi2_quantile(0.5, 2)


def test_poisson_interval_zero_count_is_one_sided():
    lo, hi = poisson_count_interval(0)
    assert lo == 0.0
    # Garwood upper bound for k=0 is chi2(0.975, 2)/2 ~ 3.69.
    assert hi == pytest.approx(3.69, rel=0.05)
    with pytest.raises(ValueError):
        poisson_count_interval(-1)


def test_poisson_interval_brackets_the_count():
    for k in (1, 5, 100, 1000):
        lo, hi = poisson_count_interval(k)
        assert 0 < lo < k < hi
    # Large-count interval converges to the normal k +- 1.96 sqrt(k).
    lo, hi = poisson_count_interval(10_000)
    assert lo == pytest.approx(10_000 - 1.96 * 100, rel=0.01)
    assert hi == pytest.approx(10_000 + 1.96 * 100, rel=0.01)


def test_wilson_interval_reference_values():
    # Wilson 95% for 0/10: [0, 0.2775]; for 5/10: [0.2366, 0.7634].
    lo, hi = wilson_interval(0, 10)
    assert lo == 0.0
    assert hi == pytest.approx(0.2775, abs=1e-3)
    lo, hi = wilson_interval(5, 10)
    assert lo == pytest.approx(0.2366, abs=1e-3)
    assert hi == pytest.approx(0.7634, abs=1e-3)
    lo, hi = wilson_interval(10, 10)
    assert hi == pytest.approx(1.0) and lo > 0.65


def test_wilson_interval_validation():
    with pytest.raises(ValueError):
        wilson_interval(0, 0)
    with pytest.raises(ValueError):
        wilson_interval(3, 2)


def test_estimate_mttdl_pools_before_dividing():
    """Pooled MLE: total exposure / total losses, not the mean of ratios
    (which a zero-loss trial would break)."""
    est = estimate_mttdl([4, 0, 2], [10.0, 10.0, 10.0])
    assert isinstance(est, MttdlEstimate)
    assert est.n_losses == 6
    assert est.exposure_hours == pytest.approx(30.0 * HOURS_PER_YEAR)
    assert est.mttdl_hours == pytest.approx(30.0 * HOURS_PER_YEAR / 6)
    assert est.lo_hours < est.mttdl_hours < est.hi_hours
    assert est.contains(est.mttdl_hours)
    assert not est.contains(est.hi_hours * 2)


def test_estimate_mttdl_zero_losses_is_a_lower_bound():
    est = estimate_mttdl([0, 0], [5.0, 5.0])
    assert est.mttdl_hours == math.inf
    assert est.hi_hours == math.inf
    assert est.lo_hours > 0
    assert est.contains(1e300)


def test_estimate_mttdl_validation():
    with pytest.raises(ValueError):
        estimate_mttdl([], [])
    with pytest.raises(ValueError):
        estimate_mttdl([1, 2], [10.0])
    with pytest.raises(ValueError):
        estimate_mttdl([1], [0.0])


def test_loss_probability_counts_within_horizon():
    lp = loss_probability([2.0, None, 15.0, 9.9], horizon_years=10.0)
    assert isinstance(lp, LossProbability)
    assert lp.n_lost == 2 and lp.n_trials == 4
    assert lp.p == 0.5
    assert 0.0 < lp.lo < 0.5 < lp.hi < 1.0


def test_loss_probability_validation():
    with pytest.raises(ValueError):
        loss_probability([1.0], horizon_years=0.0)
    with pytest.raises(ValueError):
        loss_probability([], horizon_years=10.0)

"""Scenario identity: content hashing and per-unit seed derivation."""

from repro.runner import Scenario, scenario

from tests.runner import computes


def test_content_hash_ignores_param_order_and_name():
    a = Scenario("a", "m:f", {"x": 1, "y": 2})
    b = Scenario("b", "m:f", {"y": 2, "x": 1})
    assert a.content_hash() == b.content_hash()


def test_content_hash_changes_with_params_fn_and_seededness():
    base = Scenario("u", "m:f", {"x": 1})
    assert base.content_hash() != Scenario("u", "m:f", {"x": 2}).content_hash()
    assert base.content_hash() != Scenario("u", "m:g", {"x": 1}).content_hash()
    assert base.content_hash() != Scenario(
        "u", "m:f", {"x": 1}, seeded=False).content_hash()


def test_derive_seed_is_order_independent():
    """A unit's seed depends only on (root seed, identity), never on what
    else runs — adding a scenario cannot perturb another's draws."""
    unit = Scenario("u", "m:f", {"x": 1})
    alone = unit.derive_seed(7)
    in_any_batch = [Scenario("v", "m:f", {"x": i}) for i in range(5)]
    assert all(unit.derive_seed(7) == alone for _ in in_any_batch)
    assert unit.derive_seed(8) != alone
    # Distinct identities draw distinct seeds (w.h.p.).
    assert len({s.derive_seed(7) for s in in_any_batch}) == 5


def test_seed_group_shares_draws_across_a_grid():
    """Units of one comparison grid sample identically; the group id does
    not mention the member list, so membership changes are invisible."""
    geo = Scenario("geo", "m:f", {"scheme": "Geo"}, seed_group="grid/W1")
    rs = Scenario("rs", "m:f", {"scheme": "RS"}, seed_group="grid/W1")
    assert geo.content_hash() != rs.content_hash()
    assert geo.derive_seed(3) == rs.derive_seed(3)
    assert geo.derive_seed(3) != geo.derive_seed(4)
    other = Scenario("geo", "m:f", {"scheme": "Geo"}, seed_group="grid/W2")
    assert other.derive_seed(3) != geo.derive_seed(3)


def test_seedless_scenarios_have_no_seed():
    unit = Scenario("u", "m:f", seeded=False)
    assert unit.derive_seed(0) is None
    assert unit.derive_seed(99) is None


def test_scenario_helper_derives_path_and_resolves():
    unit = scenario(computes.toy, x=3)
    assert unit.fn == "tests.runner.computes:toy"
    assert unit.name == "toy"
    assert unit.resolve() is computes.toy


def test_prefixed_renames_without_changing_identity():
    unit = scenario(computes.toy, name="u", x=1)
    pre = unit.prefixed("fig9")
    assert pre.name == "fig9/u"
    assert pre.content_hash() == unit.content_hash()
    assert pre.derive_seed(0) == unit.derive_seed(0)

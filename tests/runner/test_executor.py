"""Executor semantics: caching, dedup, capture, and the parallel-identity
invariant (same rows for any ``--jobs``)."""

import json

import pytest

from repro.runner import Capture, RunOptions, run_scenarios, scenario

from tests.runner import computes


def _options(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path)
    return RunOptions(**kwargs)


def test_cold_run_misses_then_warm_run_hits(tmp_path):
    units = [scenario(computes.toy, name="a", x=1),
             scenario(computes.toy, name="b", x=2)]
    cold = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in cold.outcomes] == ["miss", "miss"]
    assert cold.hit_rate == 0.0
    warm = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in warm.outcomes] == ["hit", "hit"]
    assert warm.hit_rate == 1.0
    assert [r.rows for r in warm.results] == [r.rows for r in cold.results]
    assert [r.provenance for r in warm.results] == \
        [r.provenance for r in cold.results]


def test_in_run_dedup_shares_identical_work(tmp_path):
    before = len(computes.CALLS)
    units = [scenario(computes.toy, name="fig9/u", x=5),
             scenario(computes.toy, name="headline/u", x=5)]
    report = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in report.outcomes] == ["miss", "dedup"]
    assert len(computes.CALLS) == before + 1
    # The shared result is rebound to each requesting unit's name.
    assert [r.name for r in report.results] == ["fig9/u", "headline/u"]
    assert report.results[0].rows == report.results[1].rows


def test_no_cache_always_recomputes(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    run_scenarios(units, _options(tmp_path))
    report = run_scenarios(units, _options(tmp_path, cache=False))
    assert [o.status for o in report.outcomes] == ["miss"]
    assert list(tmp_path.glob("*.json"))  # only the first run persisted


def test_corrupted_cache_entry_falls_back_to_recompute(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    run_scenarios(units, _options(tmp_path))
    entry, = tmp_path.glob("*.json")
    entry.write_text("not json at all", encoding="utf-8")
    report = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in report.outcomes] == ["miss"]
    # ... and the recompute repaired the entry in place.
    assert run_scenarios(units, _options(tmp_path)).hit_rate == 1.0


def test_root_seed_threads_into_units_and_cache(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    r0 = run_scenarios(units, _options(tmp_path, seed=0))
    r7 = run_scenarios(units, _options(tmp_path, seed=7))
    assert r0.results[0].rows != r7.results[0].rows
    assert r0.results[0].provenance.seed == units[0].derive_seed(0)
    assert r7.results[0].provenance.seed == units[0].derive_seed(7)
    assert r7.results[0].provenance.root_seed == 7
    # Each root seed has its own cache entries.
    assert run_scenarios(units, _options(tmp_path, seed=7)).hit_rate == 1.0


def test_seedless_unit_runs_without_seed(tmp_path):
    units = [scenario(computes.toy_seedless, name="s", seeded=False, x=4)]
    report = run_scenarios(units, _options(tmp_path, seed=123))
    assert report.results[0].provenance.seed is None
    assert report.results[0].provenance.root_seed is None
    assert run_scenarios(units, _options(tmp_path, seed=5)).hit_rate == 1.0


def test_bad_payload_is_a_contract_error(tmp_path):
    units = [scenario(computes.bad_payload, name="bad")]
    with pytest.raises(TypeError, match="rows"):
        run_scenarios(units, _options(tmp_path))


def test_trace_capture_bypasses_cache_reads(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    run_scenarios(units, _options(tmp_path))
    live = run_scenarios(units, _options(
        tmp_path, capture=Capture(trace=True)))
    assert [o.status for o in live.outcomes] == ["miss"]
    assert "trace_events" in live.results[0].obs
    # The stored entry stays slim: no trace payload in the cache file.
    entry, = tmp_path.glob("*.json")
    doc = json.loads(entry.read_text(encoding="utf-8"))
    assert "trace_events" not in (doc["result"].get("obs") or {})


def test_bench_doc_accounts_every_unit(tmp_path):
    units = [scenario(computes.toy, name="a", x=1),
             scenario(computes.toy, name="b", x=2)]
    run_scenarios([units[0]], _options(tmp_path))
    report = run_scenarios(units, _options(tmp_path))
    doc = report.bench_doc(jobs=3)
    assert doc["jobs"] == 3
    assert [u["status"] for u in doc["units"]] == ["hit", "miss"]
    assert doc["totals"]["units"] == 2
    assert doc["totals"]["hits"] == 1 and doc["totals"]["misses"] == 1
    assert doc["totals"]["hit_rate"] == 0.5
    json.dumps(doc)  # must be serializable as-is


# ----------------------------------------------------------------------
# Telemetry captures: timelines, profiles, flight recorder
# ----------------------------------------------------------------------
def test_timeline_capture_ships_segments_and_merges(tmp_path):
    units = [scenario(computes.sim_ticks, name="t/a", n=8),
             scenario(computes.sim_ticks, name="t/b", n=12)]
    report = run_scenarios(units, _options(
        tmp_path, capture=Capture(timeline=True, sample_interval=1.0)))
    for result in report.results:
        assert result.obs["timeline"]["segments"]
    merged = report.merged_timeline()
    assert [seg["label"] for seg in merged["segments"]] == \
        [f"sim-ticks/{units[0].derive_seed(0)}",
         f"sim-ticks/{units[1].derive_seed(0)}"]
    assert merged["segments"][0]["counters"]["ticks.done"][-1] > 0


def test_timeline_merge_identical_for_any_jobs(tmp_path):
    units = [scenario(computes.sim_ticks, name=f"t/{i}", n=8 + i)
             for i in range(4)]
    capture = Capture(timeline=True, sample_interval=0.5)
    serial = run_scenarios(units, RunOptions(jobs=1, cache=False,
                                             capture=capture))
    parallel = run_scenarios(units, RunOptions(jobs=4, cache=False,
                                               capture=capture))
    assert serial.merged_timeline() == parallel.merged_timeline()


def test_timeline_and_profile_never_poison_the_cache(tmp_path):
    units = [scenario(computes.sim_ticks, name="t/a", n=8)]
    plain_opts = _options(tmp_path)
    baseline = run_scenarios(units, plain_opts)
    # A telemetry run in between must not alter what a later plain warm
    # run returns — cached rows stay byte-identical.
    live = run_scenarios(units, _options(
        tmp_path, capture=Capture(timeline=True, profile=True)))
    assert [o.status for o in live.outcomes] == ["miss"]
    assert "timeline" in live.results[0].obs
    assert "profile" in live.results[0].obs
    warm = run_scenarios(units, plain_opts)
    assert [o.status for o in warm.outcomes] == ["hit"]
    assert warm.results[0].to_doc() == baseline.results[0].to_doc()
    assert "timeline" not in warm.results[0].obs
    entry, = tmp_path.rglob("*.json")
    stored = json.loads(entry.read_text(encoding="utf-8"))
    stored_obs = stored["result"].get("obs") or {}
    assert "timeline" not in stored_obs and "profile" not in stored_obs


def test_profile_capture_feeds_bench_doc(tmp_path):
    units = [scenario(computes.sim_ticks, name="t/a", n=8)]
    report = run_scenarios(units, _options(
        tmp_path, capture=Capture(profile=True)))
    merged = report.merged_profile()
    assert any(row["site"].startswith("worker (")
               for row in merged["sites"])
    bench = report.bench_doc(jobs=1)
    assert bench["profile"]["hottest"]
    # Without profiling there is no profile section at all.
    plain = run_scenarios(units, _options(tmp_path, cache=False))
    assert "profile" not in plain.bench_doc(jobs=1)


def test_flightrec_dumps_bundle_when_compute_raises(tmp_path):
    out = tmp_path / "postmortems"
    units = [scenario(computes.explodes, name="boom/unit")]
    with pytest.raises(RuntimeError, match="boom"):
        run_scenarios(units, RunOptions(
            cache=False, capture=Capture(flightrec=str(out))))
    bundle_path, = out.glob("*.flightrec.json")
    bundle = json.loads(bundle_path.read_text(encoding="utf-8"))
    assert bundle["incidents"][0]["kind"] == "compute_exception"
    assert "boom at t=1.5" in bundle["incidents"][0]["error"]
    assert bundle["provenance"]["scenario"] == "boom/unit"
    assert bundle["events_seen"] >= 2  # the doomed process's two timeouts
    assert "metrics" in bundle


def test_flightrec_dumps_bundle_on_forced_invariant_failure(tmp_path):
    from repro.analysis import InvariantViolation

    out = tmp_path / "postmortems"
    units = [scenario(computes.violates_invariant, name="inv/unit")]
    with pytest.raises(InvariantViolation, match="conservation"):
        run_scenarios(units, RunOptions(
            cache=False,
            capture=Capture(invariants=True, flightrec=str(out))))
    bundle_path, = out.glob("*.flightrec.json")
    bundle = json.loads(bundle_path.read_text(encoding="utf-8"))
    assert bundle["incidents"][0]["kind"] == "compute_exception"
    assert "conservation" in bundle["incidents"][0]["error"]


def test_flightrec_quiet_run_writes_no_bundle(tmp_path):
    out = tmp_path / "postmortems"
    units = [scenario(computes.sim_ticks, name="ok/unit", n=4)]
    run_scenarios(units, RunOptions(
        cache=False, capture=Capture(flightrec=str(out))))
    assert not out.exists() or not list(out.glob("*"))


def test_progress_callback_sees_every_unit(tmp_path):
    events = []
    units = [scenario(computes.toy, name="a", x=21),
             scenario(computes.toy, name="b", x=21),   # dedup of a
             scenario(computes.toy, name="c", x=22)]
    run_scenarios(units, _options(tmp_path))  # warm the cache for c... no-op
    run_scenarios(units, _options(
        tmp_path, progress=lambda done, total, status, name:
        events.append((done, total, status, name))))
    assert [e[0] for e in events] == [1, 2, 3]
    assert all(e[1] == 3 for e in events)
    statuses = sorted(e[2] for e in events)
    assert statuses == ["dedup", "hit", "hit"]


# ----------------------------------------------------------------------
# The headline invariant: parallel == serial, bit for bit, on real DES
# experiments (two different ones, per the acceptance criteria).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("units_of", [
    lambda: __import__("repro.experiments.fig13", fromlist=["x"]).scenarios(
        "W1", n_objects=80),
    lambda: __import__("repro.experiments.tradeoff", fromlist=["x"]).scenarios(
        "W1", n_objects=120, n_requests=2, schemes=["Geo-4M", "RS"],
        include_busy=False),
], ids=["fig13", "tradeoff"])
def test_parallel_matches_serial_bit_for_bit(units_of, tmp_path):
    units = units_of()
    serial = run_scenarios(units, RunOptions(jobs=1, seed=3, cache=False))
    parallel = run_scenarios(units, RunOptions(jobs=4, seed=3, cache=False))
    assert [r.to_doc() for r in serial.results] == \
        [r.to_doc() for r in parallel.results]
    # And a cached replay of the same work is the same document again.
    warm_opts = _options(tmp_path, jobs=1, seed=3)
    run_scenarios(units, warm_opts)
    warm = run_scenarios(units, warm_opts)
    assert warm.hit_rate == 1.0
    assert [r.to_doc() for r in warm.results] == \
        [r.to_doc() for r in serial.results]

"""Executor semantics: caching, dedup, capture, and the parallel-identity
invariant (same rows for any ``--jobs``)."""

import json

import pytest

from repro.runner import Capture, RunOptions, run_scenarios, scenario

from tests.runner import computes


def _options(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path)
    return RunOptions(**kwargs)


def test_cold_run_misses_then_warm_run_hits(tmp_path):
    units = [scenario(computes.toy, name="a", x=1),
             scenario(computes.toy, name="b", x=2)]
    cold = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in cold.outcomes] == ["miss", "miss"]
    assert cold.hit_rate == 0.0
    warm = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in warm.outcomes] == ["hit", "hit"]
    assert warm.hit_rate == 1.0
    assert [r.rows for r in warm.results] == [r.rows for r in cold.results]
    assert [r.provenance for r in warm.results] == \
        [r.provenance for r in cold.results]


def test_in_run_dedup_shares_identical_work(tmp_path):
    before = len(computes.CALLS)
    units = [scenario(computes.toy, name="fig9/u", x=5),
             scenario(computes.toy, name="headline/u", x=5)]
    report = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in report.outcomes] == ["miss", "dedup"]
    assert len(computes.CALLS) == before + 1
    # The shared result is rebound to each requesting unit's name.
    assert [r.name for r in report.results] == ["fig9/u", "headline/u"]
    assert report.results[0].rows == report.results[1].rows


def test_no_cache_always_recomputes(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    run_scenarios(units, _options(tmp_path))
    report = run_scenarios(units, _options(tmp_path, cache=False))
    assert [o.status for o in report.outcomes] == ["miss"]
    assert list(tmp_path.glob("*.json"))  # only the first run persisted


def test_corrupted_cache_entry_falls_back_to_recompute(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    run_scenarios(units, _options(tmp_path))
    entry, = tmp_path.glob("*.json")
    entry.write_text("not json at all", encoding="utf-8")
    report = run_scenarios(units, _options(tmp_path))
    assert [o.status for o in report.outcomes] == ["miss"]
    # ... and the recompute repaired the entry in place.
    assert run_scenarios(units, _options(tmp_path)).hit_rate == 1.0


def test_root_seed_threads_into_units_and_cache(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    r0 = run_scenarios(units, _options(tmp_path, seed=0))
    r7 = run_scenarios(units, _options(tmp_path, seed=7))
    assert r0.results[0].rows != r7.results[0].rows
    assert r0.results[0].provenance.seed == units[0].derive_seed(0)
    assert r7.results[0].provenance.seed == units[0].derive_seed(7)
    assert r7.results[0].provenance.root_seed == 7
    # Each root seed has its own cache entries.
    assert run_scenarios(units, _options(tmp_path, seed=7)).hit_rate == 1.0


def test_seedless_unit_runs_without_seed(tmp_path):
    units = [scenario(computes.toy_seedless, name="s", seeded=False, x=4)]
    report = run_scenarios(units, _options(tmp_path, seed=123))
    assert report.results[0].provenance.seed is None
    assert report.results[0].provenance.root_seed is None
    assert run_scenarios(units, _options(tmp_path, seed=5)).hit_rate == 1.0


def test_bad_payload_is_a_contract_error(tmp_path):
    units = [scenario(computes.bad_payload, name="bad")]
    with pytest.raises(TypeError, match="rows"):
        run_scenarios(units, _options(tmp_path))


def test_trace_capture_bypasses_cache_reads(tmp_path):
    units = [scenario(computes.toy, name="a", x=1)]
    run_scenarios(units, _options(tmp_path))
    live = run_scenarios(units, _options(
        tmp_path, capture=Capture(trace=True)))
    assert [o.status for o in live.outcomes] == ["miss"]
    assert "trace_events" in live.results[0].obs
    # The stored entry stays slim: no trace payload in the cache file.
    entry, = tmp_path.glob("*.json")
    doc = json.loads(entry.read_text(encoding="utf-8"))
    assert "trace_events" not in (doc["result"].get("obs") or {})


def test_bench_doc_accounts_every_unit(tmp_path):
    units = [scenario(computes.toy, name="a", x=1),
             scenario(computes.toy, name="b", x=2)]
    run_scenarios([units[0]], _options(tmp_path))
    report = run_scenarios(units, _options(tmp_path))
    doc = report.bench_doc(jobs=3)
    assert doc["jobs"] == 3
    assert [u["status"] for u in doc["units"]] == ["hit", "miss"]
    assert doc["totals"]["units"] == 2
    assert doc["totals"]["hits"] == 1 and doc["totals"]["misses"] == 1
    assert doc["totals"]["hit_rate"] == 0.5
    json.dumps(doc)  # must be serializable as-is


# ----------------------------------------------------------------------
# The headline invariant: parallel == serial, bit for bit, on real DES
# experiments (two different ones, per the acceptance criteria).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("units_of", [
    lambda: __import__("repro.experiments.fig13", fromlist=["x"]).scenarios(
        "W1", n_objects=80),
    lambda: __import__("repro.experiments.tradeoff", fromlist=["x"]).scenarios(
        "W1", n_objects=120, n_requests=2, schemes=["Geo-4M", "RS"],
        include_busy=False),
], ids=["fig13", "tradeoff"])
def test_parallel_matches_serial_bit_for_bit(units_of, tmp_path):
    units = units_of()
    serial = run_scenarios(units, RunOptions(jobs=1, seed=3, cache=False))
    parallel = run_scenarios(units, RunOptions(jobs=4, seed=3, cache=False))
    assert [r.to_doc() for r in serial.results] == \
        [r.to_doc() for r in parallel.results]
    # And a cached replay of the same work is the same document again.
    warm_opts = _options(tmp_path, jobs=1, seed=3)
    run_scenarios(units, warm_opts)
    warm = run_scenarios(units, warm_opts)
    assert warm.hit_rate == 1.0
    assert [r.to_doc() for r in warm.results] == \
        [r.to_doc() for r in serial.results]

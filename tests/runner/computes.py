"""Importable toy compute functions for runner tests.

Scenario functions resolve by dotted ``module:function`` path, so the
test fixtures must live in a real module, not a test body.
"""

CALLS = []


def toy(x=1, seed=0):
    """A seeded compute: rows depend on (x, seed) only."""
    CALLS.append(("toy", x, seed))
    return {"rows": [{"x": x, "doubled": 2 * x, "seed": seed}],
            "meta": {"x": x}}


def toy_seedless(x=1):
    """A deterministic analytic compute (no seed parameter)."""
    CALLS.append(("toy_seedless", x))
    return {"rows": [{"x": x}]}


def bad_payload(seed=0):
    """Violates the contract: no 'rows' key."""
    return {"values": [seed]}

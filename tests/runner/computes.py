"""Importable toy compute functions for runner tests.

Scenario functions resolve by dotted ``module:function`` path, so the
test fixtures must live in a real module, not a test body.
"""

CALLS = []


def toy(x=1, seed=0):
    """A seeded compute: rows depend on (x, seed) only."""
    CALLS.append(("toy", x, seed))
    return {"rows": [{"x": x, "doubled": 2 * x, "seed": seed}],
            "meta": {"x": x}}


def toy_seedless(x=1):
    """A deterministic analytic compute (no seed parameter)."""
    CALLS.append(("toy_seedless", x))
    return {"rows": [{"x": x}]}


def bad_payload(seed=0):
    """Violates the contract: no 'rows' key."""
    return {"values": [seed]}


def sim_ticks(n=12, seed=0):
    """A tiny DES run under the ambient observer: yields timeline samples,
    profiler resumes, and flight-recorder events when those are armed."""
    from repro.obs import get_default_observer
    from repro.sim import Environment

    obs = get_default_observer()
    env = Environment(trace_hooks=obs.engine_hooks if obs else None)
    done = obs.metrics.counter("ticks.done") if obs else None
    wait = obs.metrics.histogram("ticks.wait") if obs else None
    timeline = getattr(obs, "timeline", None) if obs else None
    if timeline is not None:
        timeline.set_label(env, f"sim-ticks/{seed}")

    def worker():
        for i in range(n):
            yield env.timeout(0.5)
            if done is not None:
                done.inc()
                wait.observe(0.1 * (i % 3))

    env.process(worker())
    env.run()
    return {"rows": [{"n": n, "t_end": env.now, "seed": seed}]}


def explodes(seed=0):
    """Raises mid-simulation: the flight recorder must dump a bundle."""
    from repro.obs import get_default_observer
    from repro.sim import Environment

    obs = get_default_observer()
    env = Environment(trace_hooks=obs.engine_hooks if obs else None)

    def doomed():
        yield env.timeout(1.0)
        yield env.timeout(0.5)
        raise RuntimeError("boom at t=1.5")

    env.run(env.process(doomed()))
    return {"rows": []}  # pragma: no cover - never reached


def violates_invariant(seed=0):
    """Forces an InvariantViolation when the checker is armed."""
    from repro.obs import get_default_observer

    obs = get_default_observer()
    checker = getattr(obs, "invariants", None) if obs else None
    if checker is not None:
        checker.check_task_conservation(
            {"n_tasks": 2, "tasks_completed": 1, "tasks_abandoned": 0})
    return {"rows": [{"checked": checker is not None}]}

"""Result-cache behaviour: keys, invalidation, and damage tolerance."""

import json

from repro.runner import ExperimentResult, Provenance, ResultCache, scenario

from tests.runner import computes


def _result(unit, seed=11, rows=None):
    return ExperimentResult(
        name=unit.name,
        rows=rows if rows is not None else [{"x": 1, "doubled": 2,
                                             "seed": seed}],
        provenance=Provenance(fn=unit.fn, params=unit.params,
                              scenario_hash=unit.content_hash(), seed=seed,
                              root_seed=0, sim_version="1.0.0"))


def test_store_load_roundtrip(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy, name="u", x=1)
    stored = _result(unit)
    path = cache.store(unit, 11, stored)
    assert path.is_file()
    loaded = cache.load(unit, 11)
    assert loaded is not None
    assert loaded.rows == stored.rows
    assert loaded.provenance == stored.provenance


def test_param_change_invalidates(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy, name="u", x=1)
    cache.store(unit, 11, _result(unit))
    assert cache.load(scenario(computes.toy, name="u", x=2), 11) is None


def test_seed_change_invalidates(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy, name="u", x=1)
    cache.store(unit, 11, _result(unit))
    assert cache.load(unit, 12) is None
    assert cache.load(unit, 11) is not None


def test_version_change_invalidates(tmp_path):
    unit = scenario(computes.toy, name="u", x=1)
    ResultCache(tmp_path, version="1.0.0").store(unit, 11, _result(unit))
    assert ResultCache(tmp_path, version="1.0.1").load(unit, 11) is None


def test_corrupted_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy, name="u", x=1)
    path = cache.store(unit, 11, _result(unit))
    path.write_text("{ truncated", encoding="utf-8")
    assert cache.load(unit, 11) is None
    path.write_text(json.dumps({"key": "wrong-shape"}), encoding="utf-8")
    assert cache.load(unit, 11) is None
    path.write_text(json.dumps({"key": cache.key(unit, 11),
                                "result": {"rows": []}}), encoding="utf-8")
    assert cache.load(unit, 11) is None  # result doc missing fields


def test_tampered_key_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy, name="u", x=1)
    path = cache.store(unit, 11, _result(unit))
    doc = json.loads(path.read_text(encoding="utf-8"))
    doc["key"]["scenario_hash"] = "0" * 64
    path.write_text(json.dumps(doc), encoding="utf-8")
    assert cache.load(unit, 11) is None


def test_hit_rebinds_name_for_cross_figure_dedup(tmp_path):
    """The same work cached under fig9 serves a headline unit verbatim,
    renamed to the requesting scenario."""
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy, name="fig9/u", x=1)
    cache.store(unit, 11, _result(unit))
    twin = scenario(computes.toy, name="headline/u", x=1)
    # Distinct file paths, same key: a fresh store under the twin's name.
    assert cache.load(twin, 11) is None
    cache.store(twin, 11, _result(unit))
    loaded = cache.load(twin, 11)
    assert loaded is not None and loaded.name == "headline/u"


def test_seedless_entries_key_on_none(tmp_path):
    cache = ResultCache(tmp_path, version="1.0.0")
    unit = scenario(computes.toy_seedless, name="u", seeded=False, x=1)
    cache.store(unit, None, _result(unit, seed=None))
    assert cache.load(unit, None) is not None
    assert "sx" in cache.path(unit, None).name

"""Tests for W1/W2 workloads and the request sampler (Table 2)."""

import numpy as np
import pytest

from repro.trace import W1, W2, AliTraceModel, RequestSampler

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(777)


@pytest.fixture(scope="module")
def w1_sizes(rng):
    return W1.sample_sizes(rng, 30_000)


@pytest.fixture(scope="module")
def w2_sizes(rng):
    return W2.sample_sizes(rng, 30_000)


def test_w1_range_and_mean(w1_sizes):
    assert w1_sizes.min() >= 4 * MB
    assert w1_sizes.max() <= 4 * GB
    assert w1_sizes.mean() == pytest.approx(102.8 * MB, rel=0.05)


def test_w2_range_and_mean(w2_sizes):
    assert w2_sizes.min() >= 4 * KB
    assert w2_sizes.max() <= 4 * MB
    assert w2_sizes.mean() == pytest.approx(101.3 * KB, rel=0.05)


def test_workload_cdf_consistent(w1_sizes):
    empirical = float((w1_sizes <= 64 * MB).mean())
    assert W1.cdf(64 * MB) == pytest.approx(empirical, abs=0.02)


def test_request_sampler_solves_theta(w1_sizes):
    sampler = RequestSampler(w1_sizes, mean_request_size=148.5 * MB)
    assert sampler.mean_request_size == pytest.approx(148.5 * MB, rel=1e-3)
    assert sampler.theta > 0  # W1 read traffic skews to larger objects


def test_w2_request_sampler_skews_small(w2_sizes):
    sampler = RequestSampler(w2_sizes, mean_request_size=72.0 * KB)
    assert sampler.theta < 0
    assert sampler.mean_request_size == pytest.approx(72.0 * KB, rel=1e-3)


def test_request_sampler_empirical_mean(w1_sizes, rng):
    sampler = RequestSampler(w1_sizes, mean_request_size=148.5 * MB)
    reqs = sampler.sample_sizes(rng, 50_000)
    assert reqs.mean() == pytest.approx(148.5 * MB, rel=0.05)


def test_request_sampler_validation():
    with pytest.raises(ValueError):
        RequestSampler(np.array([]))
    with pytest.raises(ValueError):
        RequestSampler(np.array([100.0, 200.0]), mean_request_size=1e12)


def test_request_sampler_uniform_default():
    sizes = np.array([10.0, 20.0, 30.0])
    sampler = RequestSampler(sizes)
    assert sampler.theta == 0.0
    assert sampler.mean_request_size == pytest.approx(20.0)


def test_trace_capacity_dominated_by_large_objects(rng):
    """§4.1: > 97.7 % of capacity is in objects larger than 4 MB."""
    model = AliTraceModel()
    sizes = model.sample_sizes(rng, 100_000)
    assert model.capacity_share_above(sizes, 4 * MB) > 0.977


def test_trace_spans_published_range(rng):
    model = AliTraceModel()
    sizes = model.sample_sizes(rng, 100_000)
    assert sizes.min() >= 4 * KB and sizes.max() <= 4 * GB
    # Both populations are present.
    assert (sizes < MB).mean() > 0.3
    assert (sizes > 16 * MB).mean() > 0.05


def test_trace_objects_have_ids(rng):
    objs = AliTraceModel().sample_objects(rng, 100)
    assert [o.object_id for o in objs] == list(range(100))
    assert all(o.size >= 4 * KB for o in objs)


def test_capacity_share_empty():
    assert AliTraceModel().capacity_share_above(np.array([]), 1) == 0.0


def test_determinism():
    a = W1.sample_sizes(np.random.default_rng(42), 1000)
    b = W1.sample_sizes(np.random.default_rng(42), 1000)
    assert np.array_equal(a, b)


def test_w2_mixture_matches_section_6_3_shares():
    """W2's two-population shape reproduces the paper's small-size-bucket
    capacity shares (26.7% / 35.4% at s0 = 128/256 KB) within tolerance."""
    from repro.core.partitioning import GeometricPartitioner

    sizes = W2.sample_sizes(np.random.default_rng(9), 20_000)

    def share(s0):
        p = GeometricPartitioner(s0, 2, 256 * MB)
        front = total = 0
        for s in sizes:
            part = p.partition(int(s))
            front += part.front
            total += s
        return front / total

    assert share(128 * KB) == pytest.approx(0.267, abs=0.05)
    assert share(256 * KB) == pytest.approx(0.354, abs=0.05)


def test_mixture_workload_validation():
    from repro.trace import MixtureWorkload

    with pytest.raises(ValueError):
        MixtureWorkload("bad", 4 * KB, 4 * MB, mean_object_size=1.0,
                        mean_request_size=1.0, n_objects_paper=1,
                        small_median=16 * KB, small_sigma=1.0,
                        large_median=800 * KB, large_sigma=0.9)


def test_mixture_cdf_monotone():
    xs = np.geomspace(4 * KB, 4 * MB, 40)
    cdfs = [W2.cdf(float(x)) for x in xs]
    assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))
    assert cdfs[0] < 0.05 and cdfs[-1] > 0.95

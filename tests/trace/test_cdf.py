"""Tests for byte/count CDF utilities (Figure 7)."""

import numpy as np
import pytest

from repro.trace import byte_cdf, count_cdf


def test_byte_cdf_simple():
    sizes = np.array([1.0, 1.0, 8.0])
    grid, cdf = byte_cdf(sizes, grid=np.array([0.5, 1.0, 8.0]))
    assert cdf[0] == 0.0
    assert cdf[1] == pytest.approx(0.2)  # 2 of 10 bytes
    assert cdf[2] == pytest.approx(1.0)


def test_byte_cdf_weighted():
    sizes = np.array([1.0, 8.0])
    weights = np.array([8.0, 1.0])  # small object read 8x as often
    _, cdf = byte_cdf(sizes, grid=np.array([1.0, 8.0]), weights=weights)
    assert cdf[0] == pytest.approx(0.5)


def test_count_cdf():
    sizes = np.array([1.0, 2.0, 4.0, 8.0])
    grid, cdf = count_cdf(sizes, grid=np.array([1.0, 3.0, 8.0]))
    assert cdf[0] == pytest.approx(0.25)
    assert cdf[1] == pytest.approx(0.5)
    assert cdf[2] == pytest.approx(1.0)


def test_default_grid_is_geometric():
    sizes = np.geomspace(1, 1e6, 100)
    grid, cdf = byte_cdf(sizes, points=16)
    assert len(grid) == 16
    ratios = grid[1:] / grid[:-1]
    assert np.allclose(ratios, ratios[0])


def test_cdf_monotone():
    rng = np.random.default_rng(0)
    sizes = rng.lognormal(10, 2, size=1000)
    _, b = byte_cdf(sizes)
    _, c = count_cdf(sizes)
    assert np.all(np.diff(b) >= -1e-12)
    assert np.all(np.diff(c) >= -1e-12)
    assert b[-1] == pytest.approx(1.0)
    assert c[-1] == pytest.approx(1.0)


def test_byte_cdf_lags_count_cdf():
    """Capacity mass sits right of count mass for heavy-tailed sizes."""
    rng = np.random.default_rng(1)
    sizes = rng.lognormal(10, 2, size=5000)
    grid = np.geomspace(sizes.min(), sizes.max(), 32)
    _, b = byte_cdf(sizes, grid=grid)
    _, c = count_cdf(sizes, grid=grid)
    assert np.all(b <= c + 1e-9)


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        byte_cdf(np.array([]))
    with pytest.raises(ValueError):
        count_cdf(np.array([]))

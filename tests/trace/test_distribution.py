"""Tests for the truncated-lognormal building block."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import TruncatedLognormal, solve_median_for_mean


def test_validation():
    with pytest.raises(ValueError):
        TruncatedLognormal(10, 1, 100, 10)  # lo > hi
    with pytest.raises(ValueError):
        TruncatedLognormal(-1, 1, 1, 10)
    with pytest.raises(ValueError):
        TruncatedLognormal(10, 0, 1, 10)


def test_cdf_bounds():
    d = TruncatedLognormal(100, 1.0, 10, 1000)
    assert d.cdf(5) == 0.0
    assert d.cdf(2000) == 1.0
    assert 0 < d.cdf(100) < 1


def test_cdf_monotone():
    d = TruncatedLognormal(100, 1.2, 10, 10_000)
    xs = np.geomspace(10, 10_000, 50)
    cdfs = [d.cdf(x) for x in xs]
    assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))


def test_samples_within_bounds():
    d = TruncatedLognormal(100, 1.5, 10, 1000)
    rng = np.random.default_rng(0)
    s = d.sample(rng, 10_000)
    assert s.min() >= 10 and s.max() <= 1000


def test_sample_mean_matches_closed_form():
    d = TruncatedLognormal(100, 1.0, 10, 10_000)
    rng = np.random.default_rng(1)
    s = d.sample(rng, 200_000)
    assert s.mean() == pytest.approx(d.mean(), rel=0.02)


def test_sample_median_near_untruncated_median():
    d = TruncatedLognormal(100, 0.8, 1, 1e9)  # effectively untruncated
    rng = np.random.default_rng(2)
    s = d.sample(rng, 100_000)
    assert np.median(s) == pytest.approx(100, rel=0.03)


def test_mean_formula_against_numeric_integration():
    d = TruncatedLognormal(50, 1.3, 5, 5000)
    xs = np.geomspace(5, 5000, 200_001)
    # Numeric E[X] over the truncated density via the CDF.
    cdf = np.array([d.cdf(x) for x in xs])
    numeric = np.sum(0.5 * (xs[1:] + xs[:-1]) * np.diff(cdf))
    assert d.mean() == pytest.approx(numeric, rel=1e-3)


def test_solver_hits_target():
    median = solve_median_for_mean(1.5, 1e3, 1e9, 5e6)
    d = TruncatedLognormal(median, 1.5, 1e3, 1e9)
    assert d.mean() == pytest.approx(5e6, rel=1e-6)


def test_solver_rejects_unreachable_target():
    with pytest.raises(ValueError):
        solve_median_for_mean(1.0, 1e3, 1e6, 1e9)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.3, max_value=2.5),
       st.floats(min_value=0.05, max_value=0.9))
def test_property_solver_roundtrip(sigma, frac):
    lo, hi = 1e3, 1e8
    # geometric interpolation of the target inside the interval
    target = lo * (hi / lo) ** frac
    if not lo < target < hi:
        return
    median = solve_median_for_mean(sigma, lo, hi, target)
    got = TruncatedLognormal(median, sigma, lo, hi).mean()
    assert got == pytest.approx(target, rel=1e-5)


def test_norm_ppf_accuracy():
    from repro.trace.distribution import _norm_ppf, _phi

    ps = np.array([0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999])
    zs = _norm_ppf(ps)
    back = np.array([_phi(z) for z in zs])
    assert np.allclose(back, ps, atol=1e-8)
    assert math.isclose(float(_norm_ppf(np.array([0.5]))[0]), 0.0, abs_tol=1e-12)

"""FaultPlan / FaultEvent: validation, ordering, JSON, determinism."""

import pytest

from repro.faults import FaultEvent, FaultPlan


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("disk_melt", at=1.0, disk=0)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent("disk_crash", disk=0)
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent("disk_crash", at=1.0, at_progress=0.5, disk=0)

    def test_disk_kinds_need_disk(self):
        with pytest.raises(ValueError, match="needs a disk"):
            FaultEvent("disk_crash", at=1.0)

    def test_node_kinds_need_node(self):
        with pytest.raises(ValueError, match="needs a node"):
            FaultEvent("nic_slow", at=1.0, factor=2.0)

    def test_progress_fraction_bounded(self):
        with pytest.raises(ValueError, match="not in"):
            FaultEvent("disk_crash", at_progress=1.5, disk=0)

    def test_slow_factor_at_least_one(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            FaultEvent("disk_slow", at=0.0, disk=0, factor=0.5)

    def test_negative_time_and_duration_rejected(self):
        with pytest.raises(ValueError, match="negative fault time"):
            FaultEvent("disk_crash", at=-1.0, disk=0)
        with pytest.raises(ValueError, match="must be positive"):
            FaultEvent("disk_slow", at=0.0, disk=0, factor=2.0,
                       duration=0.0)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert not FaultPlan.from_doc(None)

    def test_timeout_only_plan_is_truthy(self):
        assert FaultPlan(helper_timeout=0.1)
        with pytest.raises(ValueError, match="positive"):
            FaultPlan(helper_timeout=0.0)

    def test_events_sorted_timed_then_progress(self):
        plan = FaultPlan(events=(
            FaultEvent("disk_crash", at_progress=0.5, disk=3),
            FaultEvent("disk_slow", at=2.0, disk=1, factor=2.0),
            FaultEvent("disk_crash", at=1.0, disk=0),
        ))
        assert [e.at for e in plan.timed_events] == [1.0, 2.0]
        assert [e.at_progress for e in plan.progress_events] == [0.5]
        assert plan.events == plan.timed_events + plan.progress_events

    def test_json_round_trip(self):
        plan = FaultPlan(
            events=(FaultEvent("disk_crash", at=1.0, disk=0),
                    FaultEvent("nic_slow", at=0.5, node=2, factor=4.0,
                               duration=3.0),
                    FaultEvent("corrupt", at=2.0, disk=5, count=3),
                    FaultEvent("disk_crash", at_progress=0.5, disk=9)),
            helper_timeout=0.25)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_from_file(self, tmp_path):
        plan = FaultPlan.stragglers([1, 2], factor=8.0, helper_timeout=0.1)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert FaultPlan.load(path) == plan

    def test_with_timeout_and_extended(self):
        base = FaultPlan.second_failure(7)
        timed = base.with_timeout(0.5)
        assert timed.helper_timeout == 0.5 and timed.events == base.events
        grown = base.extended([FaultEvent("disk_crash", at=1.0, disk=3)])
        assert len(grown.events) == 2
        assert grown.timed_events[0].disk == 3

    def test_stragglers_factor_one_is_empty(self):
        assert not FaultPlan.stragglers([0, 1], factor=1.0)

    def test_second_failure_is_progress_event(self):
        plan = FaultPlan.second_failure(4, at_progress=0.5)
        (event,) = plan.progress_events
        assert event.kind == "disk_crash"
        assert event.disk == 4 and event.at_progress == 0.5


class TestSeededGenerators:
    def test_random_stragglers_reproducible(self):
        a = FaultPlan.random_stragglers(96, fraction=0.1, factor=4.0, seed=7)
        b = FaultPlan.random_stragglers(96, fraction=0.1, factor=4.0, seed=7)
        c = FaultPlan.random_stragglers(96, fraction=0.1, factor=4.0, seed=8)
        assert a == b
        assert a != c
        assert len(a.events) == round(0.1 * 96)

    def test_exponential_crashes_reproducible_and_bounded(self):
        a = FaultPlan.exponential_crashes(rate=0.5, horizon=10.0,
                                          n_disks=20, seed=3)
        b = FaultPlan.exponential_crashes(rate=0.5, horizon=10.0,
                                          n_disks=20, seed=3)
        assert a == b
        times = [e.at for e in a.events]
        assert times == sorted(times)
        assert all(t <= 10.0 for t in times)
        disks = [e.disk for e in a.events]
        assert len(disks) == len(set(disks)), "each disk crashes once"
        capped = FaultPlan.exponential_crashes(rate=5.0, horizon=10.0,
                                               n_disks=20, seed=3,
                                               max_failures=2)
        assert len(capped.events) <= 2

    def test_correlated_node_burst_covers_the_node(self):
        plan = FaultPlan.correlated_node_burst(node=2, disks_per_node=6,
                                               seed=1, at=5.0, spread=1.0)
        assert {e.disk for e in plan.events} == set(range(12, 18))
        assert all(5.0 <= e.at <= 6.0 for e in plan.events)
        again = FaultPlan.correlated_node_burst(node=2, disks_per_node=6,
                                                seed=1, at=5.0, spread=1.0)
        assert plan == again


# ----------------------------------------------------------------------
# Rack-scoped events
# ----------------------------------------------------------------------
def test_tor_slow_requires_a_rack():
    with pytest.raises(ValueError):
        FaultEvent("tor_slow", at=0.0, factor=2.0)
    event = FaultEvent("tor_slow", at=0.0, rack=3, factor=2.0, duration=5.0)
    assert event.rack == 3


def test_tor_slowdown_constructor():
    plan = FaultPlan.tor_slowdown(2, factor=4.0, at=1.0, duration=10.0)
    (event,) = plan.events
    assert event.kind == "tor_slow" and event.rack == 2
    assert event.factor == 4.0 and event.duration == 10.0
    # A non-degrading factor yields an empty plan (like other builders).
    assert FaultPlan.tor_slowdown(2, factor=1.0).events == ()


def test_tor_slow_round_trips_through_json():
    plan = FaultPlan.tor_slowdown(5, factor=2.0, duration=3.0)
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_rack_burst_composes_node_bursts():
    nodes = [4, 5, 6, 7]
    plan = FaultPlan.rack_burst(nodes, disks_per_node=6, seed=11, at=2.0,
                                spread=1.0)
    assert len(plan.events) == 24  # every disk of every node
    assert {e.kind for e in plan.events} == {"disk_slow"}
    assert all(2.0 <= e.at <= 3.0 for e in plan.events)
    # Bit-identical to its per-node bursts replayed together.
    manual = FaultPlan()
    for i, node in enumerate(nodes):
        manual = manual.extended(FaultPlan.correlated_node_burst(
            node, 6, 11 + i, 2.0, spread=1.0).events)
    assert plan == manual


def test_rack_burst_can_crash():
    plan = FaultPlan.rack_burst([0, 1], disks_per_node=2, seed=0, at=0.0,
                                kind="disk_crash")
    assert {e.kind for e in plan.events} == {"disk_crash"}
    assert {e.disk for e in plan.events} == {0, 1, 2, 3}

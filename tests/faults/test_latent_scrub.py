"""The ``latent_error`` / ``scrub`` fault kinds: JSON, generator
determinism, and the scrub-vs-read discovery race at the injector."""

import pytest

from repro.cluster.disk import HDD, IO_CORRUPT, IO_OK, Disk
from repro.cluster.network import Nic
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim import Environment

MB = 1 << 20


def _rig(plan, n_disks=2):
    env = Environment()
    disks = [Disk(env, HDD, i) for i in range(n_disks)]
    nics = [Nic(env, name="nic-0")]
    return env, disks, FaultInjector(env, disks, nics, plan)


# ----------------------------------------------------------------------
# Events and plans
# ----------------------------------------------------------------------
def test_new_kinds_are_disk_scoped():
    with pytest.raises(ValueError, match="needs a disk"):
        FaultEvent("latent_error", at=1.0)
    with pytest.raises(ValueError, match="needs a disk"):
        FaultEvent("scrub", at=1.0)
    assert FaultEvent("latent_error", at=1.0, disk=0, count=3).count == 3
    assert FaultEvent("scrub", at_progress=0.5, disk=1).disk == 1


def test_json_round_trip():
    plan = FaultPlan(events=(
        FaultEvent("latent_error", at=1.0, disk=0, count=2),
        FaultEvent("scrub", at=2.0, disk=0),
        FaultEvent("scrub", at_progress=0.7, disk=1)))
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_latent_errors_generator_deterministic_per_seed():
    a = FaultPlan.latent_errors(rate=0.5, horizon=50.0, n_disks=8, seed=4)
    b = FaultPlan.latent_errors(rate=0.5, horizon=50.0, n_disks=8, seed=4)
    c = FaultPlan.latent_errors(rate=0.5, horizon=50.0, n_disks=8, seed=5)
    assert a == b
    assert a != c
    times = [e.at for e in a.events]
    assert times == sorted(times)
    assert all(0.0 < t <= 50.0 for t in times)
    assert {e.kind for e in a.events} == {"latent_error"}
    assert all(0 <= e.disk < 8 for e in a.events)
    with pytest.raises(ValueError, match="positive"):
        FaultPlan.latent_errors(rate=0.0, horizon=1.0, n_disks=2, seed=0)


def test_scrub_schedule_staggers_phases_and_covers_every_disk():
    plan = FaultPlan.scrub_schedule(n_disks=4, interval=10.0, horizon=35.0,
                                    seed=2)
    assert plan == FaultPlan.scrub_schedule(n_disks=4, interval=10.0,
                                            horizon=35.0, seed=2)
    by_disk: dict[int, list[float]] = {}
    for e in plan.events:
        assert e.kind == "scrub"
        by_disk.setdefault(e.disk, []).append(e.at)
    assert set(by_disk) == {0, 1, 2, 3}
    for times in by_disk.values():
        assert times[0] < 10.0            # seeded phase in [0, interval)
        for prev, nxt in zip(times, times[1:]):
            assert nxt == pytest.approx(prev + 10.0)
    # Different disks get different phases (staggered, not a herd).
    assert len({round(t[0], 6) for t in by_disk.values()}) > 1
    with pytest.raises(ValueError, match="positive"):
        FaultPlan.scrub_schedule(n_disks=4, interval=0.0, horizon=1.0)


# ----------------------------------------------------------------------
# Injector semantics: hidden errors, scrub repair, read race
# ----------------------------------------------------------------------
def test_scrub_clears_hidden_errors_before_any_read():
    plan = FaultPlan(events=(
        FaultEvent("latent_error", at=1.0, disk=0, count=2),
        FaultEvent("scrub", at=2.0, disk=0)))
    env, disks, injector = _rig(plan)
    env.run(until=1.5)
    assert disks[0].pending_corrupt == 2
    assert injector.latent_errors == {0: 2}
    env.run(until=3.0)
    assert disks[0].pending_corrupt == 0
    assert injector.latent_errors == {}
    assert injector.scrubbed_errors == 2


def test_read_surfaces_latent_error_before_scrub():
    """The discovery race: a read that beats the scrub consumes the
    error (IO_CORRUPT) and the scrub only repairs what is left."""
    plan = FaultPlan(events=(
        FaultEvent("latent_error", at=0.0, disk=0, count=2),
        FaultEvent("scrub", at=5.0, disk=0)))
    env, disks, injector = _rig(plan)
    statuses = []

    def proc():
        statuses.append((yield env.process(disks[0].read(1, MB))))
    env.run(env.process(proc()))
    assert statuses == [IO_CORRUPT]
    assert disks[0].pending_corrupt == 1
    env.run(until=6.0)
    # The scrub repaired the one remaining error; the consumed one was
    # already surfaced to the reader, not silently scrubbed.
    assert disks[0].pending_corrupt == 0
    assert injector.scrubbed_errors == 1

    def after():
        statuses.append((yield env.process(disks[0].read(1, MB))))
    env.run(env.process(after()))
    assert statuses == [IO_CORRUPT, IO_OK]


def test_scrub_of_clean_disk_is_a_no_op():
    plan = FaultPlan(events=(FaultEvent("scrub", at=1.0, disk=1),))
    env, disks, injector = _rig(plan)
    env.run(until=2.0)
    assert injector.scrubbed_errors == 0
    assert len(injector.injected) == 1


def test_at_progress_latent_then_scrub_via_notify_progress():
    """Progress-triggered events interact like timed ones: the latent
    error lands at 20% of the run, the scrub finds it at 60%."""
    plan = FaultPlan(events=(
        FaultEvent("latent_error", at_progress=0.2, disk=0, count=2),
        FaultEvent("scrub", at_progress=0.6, disk=0)))
    env, disks, injector = _rig(plan)
    assert injector.has_progress_events
    injector.notify_progress(0.1)
    assert disks[0].pending_corrupt == 0
    injector.notify_progress(0.25)
    assert disks[0].pending_corrupt == 2
    assert injector.latent_errors == {0: 2}
    injector.notify_progress(0.5)
    assert disks[0].pending_corrupt == 2   # scrub not reached yet
    injector.notify_progress(0.6)
    assert disks[0].pending_corrupt == 0
    assert injector.scrubbed_errors == 2
    assert not injector.has_progress_events

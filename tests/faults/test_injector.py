"""FaultInjector replay against live disks/NICs in a bare environment."""

import pytest

from repro.cluster.disk import (
    FOREGROUND,
    HDD,
    IO_CORRUPT,
    IO_FAILED,
    IO_OK,
    Disk,
)
from repro.cluster.network import Nic
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim import Environment

MB = 1 << 20


def _rig(plan, n_disks=4, n_nodes=2):
    env = Environment()
    disks = [Disk(env, HDD, i) for i in range(n_disks)]
    nics = [Nic(env, name=f"nic-{n}") for n in range(n_nodes)]
    return env, disks, nics, FaultInjector(env, disks, nics, plan)


def test_timed_disk_crash_fails_io():
    plan = FaultPlan(events=(FaultEvent("disk_crash", at=1.0, disk=0),))
    env, disks, _, injector = _rig(plan)
    statuses = []

    def proc():
        statuses.append((yield env.process(disks[0].read(1, MB))))
        yield env.timeout(2.0)  # past the crash
        statuses.append((yield env.process(disks[0].read(1, MB))))
        statuses.append((yield env.process(disks[1].read(1, MB))))

    env.run(env.process(proc()))
    assert statuses == [IO_OK, IO_FAILED, IO_OK]
    assert injector.failed_disks == {0}
    assert disks[0].bytes_read == MB  # the failed read moved no bytes


def test_node_crash_takes_all_its_disks():
    plan = FaultPlan(events=(FaultEvent("node_crash", at=0.5, node=1),))
    env, disks, _, injector = _rig(plan)
    env.run(until=1.0)
    assert injector.failed_disks == {2, 3}
    assert not disks[0].failed and disks[2].failed and disks[3].failed


def test_disk_slowdown_applies_and_restores():
    plan = FaultPlan(events=(
        FaultEvent("disk_slow", at=0.0, disk=0, factor=4.0, duration=5.0),))
    env, disks, _, _ = _rig(plan)
    baseline = HDD.read_time(1, 16 * MB)
    durations = []

    def timed_read():
        t0 = env.now
        yield env.process(disks[0].read(1, 16 * MB))
        durations.append(env.now - t0)

    def proc():
        yield env.process(timed_read())       # slowed window
        yield env.timeout(10.0)               # past restore
        yield env.process(timed_read())       # back to normal

    env.run(env.process(proc()))
    assert durations[0] == pytest.approx(baseline * 4.0)
    assert durations[1] == pytest.approx(baseline)
    assert disks[0].speed_factor == 1.0


def test_nic_slowdown_stretches_transfers():
    plan = FaultPlan(events=(
        FaultEvent("nic_slow", at=0.0, node=0, factor=2.0, duration=50.0),))
    env, _, nics, _ = _rig(plan)
    done = []

    def proc():
        t0 = env.now
        yield env.process(nics[0].transfer(64 * MB))
        done.append(env.now - t0)

    env.run(env.process(proc()))
    assert done[0] == nics[0].transfer_time(64 * MB) * 2.0


def test_corruption_surfaces_on_next_reads_only():
    plan = FaultPlan(events=(FaultEvent("corrupt", at=0.0, disk=0, count=2),))
    env, disks, _, _ = _rig(plan)
    statuses = []

    def proc():
        for _ in range(3):
            statuses.append((yield env.process(disks[0].read(1, MB))))

    env.run(env.process(proc()))
    assert statuses == [IO_CORRUPT, IO_CORRUPT, IO_OK]
    assert disks[0].bytes_read == 3 * MB  # corrupt reads still move bytes


def test_progress_events_fire_on_notify():
    plan = FaultPlan.second_failure(1, at_progress=0.5)
    env, disks, _, injector = _rig(plan)
    seen = []
    injector.on_disk_failure(seen.append)
    assert injector.has_progress_events
    injector.notify_progress(0.25)
    assert not disks[1].failed
    injector.notify_progress(0.5)
    assert disks[1].failed
    assert seen == [1]
    assert not injector.has_progress_events
    injector.notify_progress(1.0)  # idempotent once drained
    assert seen == [1]


def test_injected_events_are_recorded_in_order():
    plan = FaultPlan(events=(
        FaultEvent("disk_slow", at=2.0, disk=1, factor=2.0, duration=1.0),
        FaultEvent("disk_crash", at=1.0, disk=0),
    ))
    env, _, _, injector = _rig(plan)
    env.run(until=3.0)
    assert [e.kind for e in injector.injected] == ["disk_crash", "disk_slow"]


def test_crash_is_idempotent_across_node_and_disk_events():
    plan = FaultPlan(events=(
        FaultEvent("disk_crash", at=1.0, disk=2),
        FaultEvent("node_crash", at=2.0, node=1),
    ))
    env, _, _, injector = _rig(plan)
    crashes = []
    injector.on_disk_failure(crashes.append)
    env.run(until=3.0)
    assert crashes == [2, 3]  # disk 2 notified once, not twice


def test_queued_read_granted_after_crash_fails_without_service():
    """A reader queued behind a slow read when the disk dies gets
    IO_FAILED at grant time — the dead disk's queue drains instantly."""
    plan = FaultPlan(events=(FaultEvent("disk_crash", at=0.01, disk=0),))
    env, disks, _, _ = _rig(plan)
    statuses = []

    def reader():
        statuses.append((yield env.process(disks[0].read(1, 64 * MB))))

    def proc():
        first = env.process(disks[0].read(1, 64 * MB))  # holds the queue
        yield env.timeout(0.001)
        second = env.process(reader())
        yield env.all_of([first, second])

    env.run(env.process(proc()))
    # The first read was in service when the disk died; the queued one is
    # granted afterwards and must fail immediately.
    assert statuses == [IO_FAILED]


def test_overlapping_slowdowns_compose_and_restore_exactly():
    """Two slowdown windows overlap (4.9x over t=0..5, 3.3x over t=2..8).

    The device speed must be the product of the *currently active*
    windows at every instant, and return to exactly 1.0 once both have
    restored — the old divide-out-the-factor restore drifted through
    float rounding (4.9 * 3.3 / 4.9 != 3.3) and the residue survived
    forever.
    """
    plan = FaultPlan(events=(
        FaultEvent("disk_slow", at=0.0, disk=0, factor=4.9, duration=5.0),
        FaultEvent("disk_slow", at=2.0, disk=0, factor=3.3, duration=6.0),
    ))
    env, disks, _, _ = _rig(plan)
    samples = {}

    def probe():
        for t in (1.0, 3.0, 6.0, 9.0):
            yield env.timeout(t - env.now)
            samples[t] = disks[0].speed_factor

    env.run(env.process(probe()))
    assert samples[1.0] == 4.9            # first window only
    assert samples[3.0] == 4.9 * 3.3      # both active
    assert samples[6.0] == 3.3            # exactly: first window restored
    assert samples[9.0] == 1.0            # exactly: fully restored


def test_tor_slowdown_stretches_cross_rack_transfers():
    from repro.cluster import ClusterConfig, Fabric
    from repro.faults import FaultPlan

    env = Environment()
    config = ClusterConfig(n_nodes=16, n_racks=4, nodes_per_rack=4,
                           tor_gbps=10.0)
    fabric = Fabric(env, config)
    plan = FaultPlan.tor_slowdown(0, factor=3.0, at=0.0, duration=100.0)
    FaultInjector(env, [], fabric.nics, plan, links=fabric.links)
    durations = {}

    def timed(name, dst, src):
        t0 = env.now
        yield env.process(fabric.transfer(256 * MB, dst, src_node=src))
        durations[name] = env.now - t0

    def proc():
        yield env.timeout(0.001)  # let the injector apply the event
        yield env.process(timed("hit", 5, 0))    # rack 0 -> rack 1
        yield env.process(timed("clear", 9, 5))  # rack 1 -> rack 2

    env.run(env.process(proc()))
    assert fabric.tors[0].speed_factor == 3.0
    assert durations["hit"] > durations["clear"]


def test_tor_slow_on_flat_fabric_is_an_error():
    from repro.faults import FaultPlan

    plan = FaultPlan.tor_slowdown(0, factor=2.0, at=0.0)
    env, _, _, _ = _rig(plan)
    with pytest.raises(ValueError, match="no ToR links"):
        env.run(until=1.0)


def test_nic_slow_prefers_the_fabric_registry():
    from repro.cluster import ClusterConfig, Fabric
    from repro.faults import FaultPlan

    env = Environment()
    fabric = Fabric(env, ClusterConfig(n_nodes=16))
    plan = FaultPlan(events=(
        FaultEvent("nic_slow", at=0.0, node=3, factor=2.0, duration=10.0),))
    FaultInjector(env, [], [], plan, links=fabric.links)
    env.run(until=1.0)
    assert fabric.nics[3].speed_factor == 2.0

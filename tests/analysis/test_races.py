"""RACE8xx cooperative-process race detection (whole-program pass).

The positive fixtures are cut-down versions of the two real bugs this
pass caught in the tree — the stale ``failed_roles`` snapshot in the
recovery engine and the compose/restore ``speed_factor`` pair in the
fault injector — and every positive is paired with the *fixed* shape,
which must stay clean.
"""

import textwrap

from repro.analysis.callgraph import Project
from repro.analysis.races import RacePass


def run_race_pass(*sources):
    project = Project()
    for idx, source in enumerate(sources):
        project.add_source(textwrap.dedent(source),
                           f"src/repro/cluster/mod{idx}.py")
    project.link()
    return RacePass(project).run()


def rules_at(violations, rule):
    return sorted(v.line for v in violations if v.rule == rule)


# ----------------------------------------------------------------------
# RACE801: stale snapshot across an unprotected yield (check-then-act)
# ----------------------------------------------------------------------
SNAPSHOT_STALE = """\
class Engine:
    def __init__(self, env, faults):
        self.env = env
        self.faults = faults

    def start(self):
        self.env.process(self.worker())
        for _ in range(3):
            self.env.process(self.crasher())

    def worker(self):
        while True:
            failed = {d for d in self.faults.failed_disks if d > 0}
            status = yield self.env.timeout(1.0)
            if status == "timeout":
                self.repick(failed)

    def crasher(self):
        yield self.env.timeout(0.5)
        self.faults.failed_disks.add(1)

    def repick(self, failed):
        return len(failed)
"""


def test_race801_flags_stale_snapshot_use_after_yield():
    violations = run_race_pass(SNAPSHOT_STALE)
    assert [v.rule for v in violations] == ["RACE801"]
    violation = violations[0]
    assert "failed" in violation.message
    assert "failed_disks" in violation.message
    # flagged at the post-yield use, not at the snapshot itself
    assert violation.line == 16


def test_race801_clean_when_snapshot_recomputed_after_the_wait():
    fixed = SNAPSHOT_STALE.replace(
        'if status == "timeout":\n'
        "                self.repick(failed)",
        'if status == "timeout":\n'
        "                failed = {d for d in self.faults.failed_disks"
        " if d > 0}\n"
        "                self.repick(failed)")
    assert fixed != SNAPSHOT_STALE
    assert run_race_pass(fixed) == []


def test_race801_reported_once_per_snapshot_not_per_use():
    source = SNAPSHOT_STALE.replace(
        "self.repick(failed)",
        "self.repick(failed)\n                self.repick(failed)")
    violations = run_race_pass(source)
    assert [v.rule for v in violations] == ["RACE801"]


def test_race801_clean_without_concurrent_writer():
    # Same worker, but nobody else ever mutates ``failed_disks``: the
    # snapshot cannot go stale, so nothing fires.
    solo = SNAPSHOT_STALE.replace(
        "    def crasher(self):\n"
        "        yield self.env.timeout(0.5)\n"
        "        self.faults.failed_disks.add(1)\n", "")
    solo = solo.replace(
        "        for _ in range(3):\n"
        "            self.env.process(self.crasher())\n", "")
    assert run_race_pass(solo) == []


def test_race801_snapshot_protected_by_grant_is_clean():
    # Holding a managed resource grant across the wait serialises the
    # writers (they queue on the same resource), so the snapshot stays
    # fresh: yields inside `with X.request()` are grant-protected.
    protected = SNAPSHOT_STALE.replace(
        "    def worker(self):\n"
        "        while True:\n"
        "            failed = {d for d in self.faults.failed_disks"
        " if d > 0}\n"
        "            status = yield self.env.timeout(1.0)\n"
        '            if status == "timeout":\n'
        "                self.repick(failed)\n",
        "    def worker(self):\n"
        "        while True:\n"
        "            with self.lock.request() as grant:\n"
        "                yield grant\n"
        "                failed = {d for d in self.faults.failed_disks"
        " if d > 0}\n"
        "                status = yield self.env.timeout(1.0)\n"
        '                if status == "timeout":\n'
        "                    self.repick(failed)\n")
    assert protected != SNAPSHOT_STALE
    violations = run_race_pass(protected)
    assert rules_at(violations, "RACE801") == []


# ----------------------------------------------------------------------
# RACE801 via shared closure locals (the on_crash / failed_disks shape)
# ----------------------------------------------------------------------
SHARED_LOCAL = """\
class Engine:
    def __init__(self, env, faults):
        self.env = env
        self.faults = faults

    def run_tasks(self, tasks):
        failed_disks = set()

        def on_crash(disk_id):
            failed_disks.add(disk_id)

        self.faults.on_disk_failure(on_crash)
        procs = [self.env.process(self.one_task(task, failed_disks))
                 for task in tasks]
        yield self.env.all_of(procs)

    def one_task(self, task, failed_disks):
        roles = {d for d in failed_disks if d > 0}
        yield self.env.timeout(1.0)
        return self.decode(roles)

    def decode(self, roles):
        return len(roles)
"""


def test_race801_sees_closure_set_mutated_by_escaping_callback():
    violations = run_race_pass(SHARED_LOCAL)
    assert [v.rule for v in violations] == ["RACE801"]
    assert "roles" in violations[0].message


def test_race801_shared_local_clean_when_recomputed():
    fixed = SHARED_LOCAL.replace(
        "        yield self.env.timeout(1.0)\n"
        "        return self.decode(roles)",
        "        yield self.env.timeout(1.0)\n"
        "        roles = {d for d in failed_disks if d > 0}\n"
        "        return self.decode(roles)")
    assert fixed != SHARED_LOCAL
    assert run_race_pass(fixed) == []


# ----------------------------------------------------------------------
# RACE802: cross-yield compose/restore write pair
# ----------------------------------------------------------------------
COMPOSE_RESTORE = """\
class Slower:
    def __init__(self, env, device):
        self.env = env
        self.device = device

    def start(self):
        for factor in (2.0, 3.0):
            self.env.process(self.window(factor, 5.0))

    def window(self, factor, duration):
        self.device.speed_factor *= factor
        yield self.env.timeout(duration)
        self.device.speed_factor /= factor
"""


def test_race802_flags_divide_restore_after_yield():
    violations = run_race_pass(COMPOSE_RESTORE)
    assert [v.rule for v in violations] == ["RACE802"]
    violation = violations[0]
    assert violation.line == 13  # the restore write, not the compose
    assert "speed_factor" in violation.message


def test_race802_clean_with_exact_bookkeeping():
    # The fixed shape from the injector: register the factor, recompute
    # the product of *currently active* factors on both edges.  The
    # recompute is a plain assign from current state — no stale operand.
    fixed = """\
class Slower:
    def __init__(self, env, device):
        self.env = env
        self.device = device
        self.active = []

    def start(self):
        for factor in (2.0, 3.0):
            self.env.process(self.window(factor, 5.0))

    def recompute(self):
        speed = 1.0
        for factor in self.active:
            speed *= factor
        self.device.speed_factor = speed

    def window(self, factor, duration):
        self.active.append(factor)
        self.recompute()
        yield self.env.timeout(duration)
        self.active.remove(factor)
        self.recompute()
"""
    assert run_race_pass(fixed) == []


def test_race802_commutative_accumulation_is_clean():
    # += / -= commute across interleavings; only compose/restore shapes
    # (multiply, divide, shifts, …) are order-sensitive.
    additive = COMPOSE_RESTORE.replace("*=", "+=").replace("/=", "-=")
    assert run_race_pass(additive) == []


def test_race802_single_window_is_clean():
    solo = COMPOSE_RESTORE.replace(
        "        for factor in (2.0, 3.0):\n"
        "            self.env.process(self.window(factor, 5.0))",
        "        self.env.process(self.window(2.0, 5.0))")
    assert run_race_pass(solo) == []


# ----------------------------------------------------------------------
# Live aliases are not snapshots (regression for a false positive the
# injector fix itself uncovered)
# ----------------------------------------------------------------------
def test_live_alias_through_setdefault_is_not_a_snapshot():
    # ``active`` aliases the stored list: reads through it always see
    # current state, so using it after a yield is not check-then-act.
    source = """\
class Slower:
    def __init__(self, env):
        self.env = env
        self.slowdowns = {}

    def start(self):
        for factor in (2.0, 3.0):
            self.env.process(self.window(factor))

    def window(self, factor):
        active = self.slowdowns.setdefault("disk", [])
        active.append(factor)
        yield self.env.timeout(5.0)
        active.remove(factor)
"""
    assert run_race_pass(source) == []


def test_bare_attribute_alias_is_not_a_snapshot():
    source = """\
class Engine:
    def __init__(self, env, faults):
        self.env = env
        self.faults = faults

    def start(self):
        self.env.process(self.worker())
        for _ in range(3):
            self.env.process(self.crasher())

    def worker(self):
        live = self.faults.failed_disks
        yield self.env.timeout(1.0)
        return len(live)

    def crasher(self):
        yield self.env.timeout(0.5)
        self.faults.failed_disks.add(1)
"""
    assert run_race_pass(source) == []


def test_constructor_writes_do_not_make_attributes_concurrent():
    source = """\
class Engine:
    def __init__(self, env):
        self.env = env
        self.queue = []

    def start(self):
        for _ in range(3):
            self.env.process(self.worker())

    def worker(self):
        depth = len(self.queue)
        yield self.env.timeout(1.0)
        return depth
"""
    assert run_race_pass(source) == []

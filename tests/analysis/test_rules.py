"""Per-rule simlint tests, driven by the fixture files in ``fixtures/``.

Every fixture contains a positive case (must be flagged), a negative case
(must stay clean) and a suppressed case (flagged line carrying a
``# simlint: disable=RULE`` comment); tests locate expected violations by
source text, not hard-coded line numbers.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.linter import Suppressions, layer_of

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, layer: str = "sim", select=None):
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    return source, lint_source(source, f"src/repro/{layer}/{name}.py",
                               select=select)


def lines_containing(source: str, needle: str) -> list[int]:
    return [i for i, text in enumerate(source.splitlines(), start=1)
            if needle in text]


def flagged_lines(violations, rule: str) -> list[int]:
    return sorted(v.line for v in violations if v.rule == rule)


# ----------------------------------------------------------------------
# SIM1xx: determinism
# ----------------------------------------------------------------------
def test_sim101_wall_clock():
    source, violations = lint_fixture("sim101")
    assert flagged_lines(violations, "SIM101") == \
        lines_containing(source, "time.time()")[:1]
    assert all(v.rule == "SIM101" for v in violations)


def test_sim101_not_applied_outside_deterministic_layers():
    source = (FIXTURES / "sim101.py").read_text(encoding="utf-8")
    assert lint_source(source, "src/repro/experiments/sim101.py",
                       select=["SIM101"]) == []
    assert lint_source(source, "tools/sim101.py", select=["SIM101"]) == []


def test_sim102_rng():
    source, violations = lint_fixture("sim102")
    expected = (lines_containing(source, "random.random()")
                + lines_containing(source, "np.random.default_rng()")
                + lines_containing(source, "np.random.rand(")
                + lines_containing(source, "random.Random()"))
    assert flagged_lines(violations, "SIM102") == sorted(expected)


def test_sim103_set_iteration():
    source, violations = lint_fixture("sim103")
    expected = (lines_containing(source, "for node in {3, 1, 2}:")[:1]
                + lines_containing(source, "in set(items)]"))
    assert flagged_lines(violations, "SIM103") == sorted(expected)
    assert all(v.fix is not None for v in violations
               if v.rule == "SIM103")


# ----------------------------------------------------------------------
# GEN2xx: process-generator hygiene
# ----------------------------------------------------------------------
def test_gen201_bare_yield():
    source, violations = lint_fixture("gen201")
    flagged = flagged_lines(violations, "GEN201")
    assert len(flagged) == 1
    bare_yields = lines_containing(source, "    yield")
    assert flagged[0] in bare_yields
    # The data generator's bare yields are not process yields.
    data_gen_start = lines_containing(source, "def data_gen")[0]
    quiet_start = lines_containing(source, "def quiet_proc")[0]
    assert not any(data_gen_start < line < quiet_start for line in flagged)


def test_gen202_literal_yield():
    source, violations = lint_fixture("gen202")
    assert flagged_lines(violations, "GEN202") == \
        lines_containing(source, "yield 42")


def test_gen203_discarded_return():
    source, violations = lint_fixture("gen203")
    flagged = flagged_lines(violations, "GEN203")
    candidates = lines_containing(source, "env.process(worker(env))")
    # Only the fire-and-forget statement in `bad`, not the assignment in
    # `ok` nor the suppressed line in `quiet`.
    assert flagged == candidates[:1]


# ----------------------------------------------------------------------
# RES3xx: resource acquire/release pairing
# ----------------------------------------------------------------------
def test_res301_leak_on_early_return():
    source, violations = lint_fixture("res301")
    flagged = flagged_lines(violations, "RES301")
    assert flagged == lines_containing(source, "req = disk.request()")[:1]
    [violation] = [v for v in violations if v.rule == "RES301"]
    assert "req" in violation.message and "released" in violation.message


def test_res302_unprotected_wait():
    source, violations = lint_fixture("res302", select=["RES302"])
    assert flagged_lines(violations, "RES302") == \
        lines_containing(source, "yield env.timeout(1)")[:1]


# ----------------------------------------------------------------------
# LAY4xx: layering and API hygiene
# ----------------------------------------------------------------------
def test_lay401_layer_violation():
    source, violations = lint_fixture("lay401", select=["LAY401"])
    assert flagged_lines(violations, "LAY401") == \
        lines_containing(source, "from repro.cluster import")
    [violation] = violations
    assert "sim" in violation.message and "repro.cluster" in violation.message


def test_lay401_respects_the_dag():
    ok = "from repro.codes import RSCode\n"
    assert lint_source(ok, "src/repro/cluster/x.py", select=["LAY401"]) == []
    bad = "from repro.experiments import fig13\n"
    assert len(lint_source(bad, "src/repro/cluster/x.py",
                           select=["LAY401"])) == 1


def test_lay401_runner_layer():
    ok = "from repro.obs import merge_snapshots\n"
    assert lint_source(ok, "src/repro/runner/executor.py",
                       select=["LAY401"]) == []
    # The runner orchestrates experiments but must never import them
    # (experiments import the runner, not the other way around) and must
    # not reach into the simulation directly.
    for bad in ("from repro.experiments import fig13\n",
                "from repro.cluster import RCStor\n"):
        assert len(lint_source(bad, "src/repro/runner/executor.py",
                               select=["LAY401"])) == 1


def test_lay402_mutable_default():
    source, violations = lint_fixture("lay402")
    assert flagged_lines(violations, "LAY402") == \
        lines_containing(source, "def bad(items=[]):")


def test_lay402_applies_everywhere():
    bad = "def f(x=[]):\n    return x\n"
    assert len(lint_source(bad, "tools/outside.py")) == 1


# ----------------------------------------------------------------------
# FLT5xx: fault-awareness
# ----------------------------------------------------------------------
def test_flt501_repair_wait_without_cancellation():
    source, violations = lint_fixture("flt501", layer="cluster",
                                      select=["FLT501"])
    # Only the unprotected repair-path wait is flagged: the with-managed,
    # try/finally-cancelled, released, allow-listed (normal read),
    # out-of-scope, and suppressed variants all stay clean.
    assert flagged_lines(violations, "FLT501") == \
        lines_containing(source, "yield req")[:1]
    [violation] = violations
    assert "repair_reads" in violation.message
    assert "cancel" in violation.message


def test_flt501_scoped_to_fault_injectable_layers():
    source = (FIXTURES / "flt501.py").read_text(encoding="utf-8")
    assert lint_source(source, "src/repro/sim/flt501.py",
                       select=["FLT501"]) == []
    assert lint_source(source, "src/repro/faults/flt501.py",
                       select=["FLT501"]) != []


# ----------------------------------------------------------------------
# OBS6xx: telemetry hot paths
# ----------------------------------------------------------------------
def test_obs601_hot_loop_registry_lookup():
    source, violations = lint_fixture("obs601", layer="cluster",
                                      select=["OBS601"])
    # The two in-loop registry lookups are flagged; the hoisted-handle,
    # non-generator, tracer-receiver, before-loop and suppressed variants
    # all stay clean.
    expected = (lines_containing(source, 'counter("tasks.done")')[:1]
                + lines_containing(source, 'histogram("drain.latency")'))
    assert flagged_lines(violations, "OBS601") == sorted(expected)
    assert all("hoist the handle" in v.message for v in violations)


def test_obs601_scoped_to_engine_layers():
    source = (FIXTURES / "obs601.py").read_text(encoding="utf-8")
    assert lint_source(source, "src/repro/sim/obs601.py",
                       select=["OBS601"]) != []
    assert lint_source(source, "src/repro/faults/obs601.py",
                       select=["OBS601"]) != []
    # The obs layer itself (and e.g. the runner) may look metrics up
    # wherever it wants — there is no engine hot loop there.
    assert lint_source(source, "src/repro/obs/obs601.py",
                       select=["OBS601"]) == []
    assert lint_source(source, "src/repro/runner/obs601.py",
                       select=["OBS601"]) == []


# ----------------------------------------------------------------------
# Driver machinery
# ----------------------------------------------------------------------
def test_file_wide_suppression():
    source = ("# simlint: disable-file=SIM101\n"
              "import time\n\n\n"
              "def f():\n"
              "    return time.time()\n")
    assert lint_source(source, "src/repro/sim/x.py") == []


def test_suppress_all():
    source = "def f(x=[]):  # simlint: disable=ALL\n    return x\n"
    assert lint_source(source, "src/repro/sim/x.py") == []


def test_syntax_error_reported_as_e999():
    violations = lint_source("def f(:\n", "src/repro/sim/broken.py")
    assert [v.rule for v in violations] == ["E999"]


def test_violation_format():
    [v] = lint_source("def f(x=[]):\n    return x\n", "src/repro/sim/x.py")
    formatted = v.format()
    assert formatted.startswith("src/repro/sim/x.py:1:")
    assert "LAY402" in formatted


@pytest.mark.parametrize("path,layer", [
    ("src/repro/sim/engine.py", "sim"),
    ("src/repro/cluster/rcstor.py", "cluster"),
    ("src/repro/cluster/placement/rack_aware.py", "placement"),
    ("src/repro/cluster/placement/__init__.py", "placement"),
    ("src/repro/__init__.py", ""),
    ("repro/codes/clay.py", "codes"),
    ("tools/foo.py", None),
])
def test_layer_of(path, layer):
    assert layer_of(path) == layer


def test_suppressions_parse():
    s = Suppressions("x = 1  # simlint: disable=RES301, RES302\n"
                     "# simlint: disable-file=GEN201\n")
    assert s.is_suppressed("RES301", 1)
    assert s.is_suppressed("RES302", 1)
    assert not s.is_suppressed("RES301", 2)
    assert s.is_suppressed("GEN201", 99)

"""Runtime invariant checker tests: sim clock, grant leaks, byte
conservation — plus end-to-end runs with the checker armed."""

import numpy as np
import pytest

from repro.analysis import InvariantChecker, InvariantViolation, \
    attach_invariant_checker
from repro.cluster import ClusterConfig, RCStor
from repro.cluster.profiles import HelperRead, ProfileCache, RepairProfile
from repro.codes import ClayCode, RSCode
from repro.core import GeometricLayout
from repro.obs import Observer, observed
from repro.sim import Environment, Resource

MB = 1 << 20


# ----------------------------------------------------------------------
# Monotonic sim clock
# ----------------------------------------------------------------------
def test_on_schedule_rejects_past_events():
    checker = InvariantChecker()
    env = Environment()
    env.now = 5.0
    with pytest.raises(InvariantViolation, match="backwards"):
        checker.on_schedule(4.0, env.event())
    checker.on_schedule(5.0, env.event())  # at `now` is fine


def test_schedule_checks_flow_through_engine_hooks():
    obs = Observer()
    checker = attach_invariant_checker(obs)
    env = Environment(trace_hooks=obs.engine_hooks)

    def proc():
        yield env.timeout(1)
        yield env.timeout(2)

    env.process(proc())
    env.run()
    assert checker.stats["schedule_checks"] > 0


# ----------------------------------------------------------------------
# Grant-leak audit
# ----------------------------------------------------------------------
def _observed_resource():
    obs = Observer()
    checker = attach_invariant_checker(obs)
    env = Environment()
    res = Resource(env, capacity=1, obs=obs, kind="disk", instance="0")
    return checker, env, res


def test_resource_registration():
    checker, _env, _res = _observed_resource()
    assert checker.stats["resources_registered"] == 1


def test_audit_flags_held_grant():
    checker, env, res = _observed_resource()
    req = res.request()
    assert req.granted
    with pytest.raises(InvariantViolation, match="leak"):
        checker.audit_env(env)
    res.release(req)
    checker.audit_env(env)
    assert checker.stats["resources_audited"] >= 1


def test_audit_ignores_other_envs_and_exempted_envs():
    checker, env, res = _observed_resource()
    req = res.request()
    checker.audit_env(Environment())  # different env: nothing to audit
    checker.exempt_env(env)
    checker.audit_env(env)  # leaked grant, but exempted
    res.release(req)


def test_audit_clean_after_cancelled_waiter():
    checker, env, res = _observed_resource()
    first = res.request()
    second = res.request()
    second.cancel()
    first.release()
    checker.audit_env(env)


# ----------------------------------------------------------------------
# Repair byte conservation
# ----------------------------------------------------------------------
def test_rs_profile_conserves_bytes():
    checker = InvariantChecker()
    code = RSCode(10, 4)
    profile = ProfileCache(code).get(0, 4 * MB)
    checker.check_repair_profile(code, profile)
    assert checker.expected_repair_bytes(code, 0, 4 * MB) == 10 * 4 * MB


def test_clay_profile_conserves_bytes():
    checker = InvariantChecker()
    code = ClayCode(10, 4)
    profile = ProfileCache(code).get(3, 4 * MB)
    checker.check_repair_profile(code, profile)
    # d = n - 1 = 13 helpers each read chunk/(d - k + 1) = chunk/4.
    expected = checker.expected_repair_bytes(code, 3, 4 * MB)
    assert expected == 13 * 4 * MB // 4


def test_scaled_profiles_still_conserve():
    checker = InvariantChecker()
    code = ClayCode(10, 4)
    profile = ProfileCache(code).get(0, 4 * MB).scaled(7)
    checker.check_repair_profile(code, profile)


def test_tampered_profile_is_rejected():
    checker = InvariantChecker()
    code = RSCode(10, 4)
    good = ProfileCache(code).get(0, 4 * MB)
    helpers = tuple(HelperRead(h.role, h.n_ios, h.nbytes * 2, h.span)
                    for h in good.helpers)
    bad = RepairProfile(good.failed_role, good.chunk_size, helpers,
                        good.output_bytes)
    with pytest.raises(InvariantViolation, match="conservation"):
        checker.check_repair_profile(code, bad)


def test_profile_output_must_match_chunk():
    checker = InvariantChecker()
    code = RSCode(10, 4)
    good = ProfileCache(code).get(0, 4 * MB)
    bad = RepairProfile(good.failed_role, good.chunk_size, good.helpers,
                        good.output_bytes - 1)
    with pytest.raises(InvariantViolation, match="outputs"):
        checker.check_repair_profile(code, bad)


def test_decode_profile_reads_full_chunks():
    checker = InvariantChecker()
    helpers = tuple(HelperRead(r, 1, 4 * MB, 4 * MB) for r in range(10))
    profile = RepairProfile(0, 4 * MB, helpers, 4 * MB)
    checker.check_decode_profile(profile, 10)
    with pytest.raises(InvariantViolation, match="decode profile"):
        checker.check_decode_profile(profile, 11)


@pytest.mark.parametrize("code", [RSCode(4, 2), ClayCode(4, 2)])
def test_codec_roundtrip_on_real_bytes(code):
    checker = InvariantChecker()
    checker.verify_codec_roundtrip(code, code.alpha * 64, seed=7)
    assert checker.stats["codec_roundtrips"] == 1


# ----------------------------------------------------------------------
# End-to-end: checker armed through the observer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def checked_system():
    obs = Observer()
    checker = attach_invariant_checker(obs)
    config = ClusterConfig(n_pgs=32)
    system = RCStor(config,
                    GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                    ClayCode(10, 4), obs=obs)
    rng = np.random.default_rng(3)
    system.ingest(rng.integers(8 * MB, 100 * MB, size=300))
    return checker, system


def test_recovery_under_invariants(checked_system):
    checker, system = checked_system
    before = checker.stats["profile_checks"]
    report = system.run_recovery(0)
    assert report.repaired_bytes > 0
    assert checker.stats["profile_checks"] > before
    assert checker.stats["resources_audited"] > 0


def test_multi_failure_under_invariants(checked_system):
    checker, system = checked_system
    pg = system.cluster.pgs[0]
    before = checker.stats["profile_checks"]
    report = system.run_multi_failure_recovery(
        [pg.disk_ids[0], pg.disk_ids[1]])
    assert report.repaired_bytes > 0
    assert checker.stats["profile_checks"] > before


def test_degraded_reads_under_invariants(checked_system):
    checker, system = checked_system
    objects = system.catalog.objects_on_disk(0)[:3]
    results = system.measure_degraded_reads(objects, failed_disk=0, seed=5)
    assert len(results) == len(objects) > 0
    assert checker.stats["schedule_checks"] > 0


def test_busy_degraded_reads_exempt_foreground_env(checked_system):
    checker, system = checked_system
    objects = system.catalog.objects_on_disk(0)[:2]
    results = system.measure_degraded_reads(objects, failed_disk=0,
                                            busy=True, seed=5)
    # Open-ended foreground generators hold grants at run end; the busy
    # env must be exempted, so the audit passes instead of raising.
    assert len(results) == len(objects) > 0


def test_default_observer_arms_internal_systems():
    with observed() as obs:
        checker = attach_invariant_checker(obs)
        config = ClusterConfig(n_pgs=16)
        system = RCStor(config,
                        GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                        RSCode(10, 4))
        rng = np.random.default_rng(11)
        system.ingest(rng.integers(8 * MB, 40 * MB, size=100))
        system.run_recovery(0)
    assert checker.stats["profile_checks"] > 0
    assert checker.stats["resources_audited"] > 0
    assert "0 leaked grants" in checker.report()
    # Recovery ran once, so its task books were checked once.
    assert checker.stats["task_conservation_checks"] == 1


def test_task_conservation_balanced_books_pass():
    checker = InvariantChecker()
    checker.check_task_conservation(
        {"n_tasks": 10, "tasks_completed": 8, "tasks_abandoned": 2,
         "tasks_requeued": 3})
    assert checker.stats["task_conservation_checks"] == 1


def test_task_conservation_lost_task_raises():
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation, match="silently lost"):
        checker.check_task_conservation(
            {"n_tasks": 10, "tasks_completed": 9, "tasks_abandoned": 0,
             "tasks_requeued": 1})


def test_task_conservation_unfaulted_meta_defaults():
    # The unfaulted engine records only completions; missing fault keys
    # default to zero.
    checker = InvariantChecker()
    checker.check_task_conservation({"n_tasks": 5, "tasks_completed": 5})

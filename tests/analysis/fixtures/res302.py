"""RES302 fixture: grant held across a sim wait without try/finally."""


def bad(env, disk):
    req = disk.request()
    yield req
    yield env.timeout(1)
    disk.release(req)


def ok(env, disk):
    req = disk.request()
    yield req
    try:
        yield env.timeout(1)
    finally:
        disk.release(req)


def quiet(env, disk):
    req = disk.request()
    yield req
    yield env.timeout(1)  # simlint: disable=RES302
    disk.release(req)

"""SIM103 fixture: iteration over unordered sets feeding scheduling."""


def bad(env, items):
    for node in {3, 1, 2}:
        env.process(node)
    return [x for x in set(items)]


def ok(env, items):
    for node in sorted({3, 1, 2}):
        env.process(node)
    return [x for x in sorted(set(items))]


def quiet(env):
    for node in {3, 1, 2}:  # simlint: disable=SIM103
        env.process(node)

"""LAY401 fixture: layering violations (linted as if under repro/sim)."""

from repro.cluster import rcstor

from repro.sim.engine import Environment

from repro.obs import observer  # simlint: disable=LAY401

"""SIM101 fixture: wall-clock calls in a deterministic layer."""

import time


def bad():
    return time.time()


def ok(env):
    return env.now


def quiet():
    return time.time()  # simlint: disable=SIM101

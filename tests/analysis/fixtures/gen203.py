"""GEN203 fixture: fire-and-forget process discarding a return value."""


def worker(env):
    yield env.timeout(1)
    return 42


def bad(env):
    env.process(worker(env))


def ok(env):
    done = env.process(worker(env))
    yield done


def quiet(env):
    env.process(worker(env))  # simlint: disable=GEN203

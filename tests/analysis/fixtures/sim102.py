"""SIM102 fixture: nondeterministic RNG usage."""

import random

import numpy as np


def bad_module_rng():
    return random.random()


def bad_unseeded_default_rng():
    return np.random.default_rng()


def bad_legacy_global(n):
    return np.random.rand(n)


def bad_unseeded_random_instance():
    return random.Random()


def ok(seed):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.random() + local.random()


def quiet():
    return random.choice([1, 2])  # simlint: disable=SIM102

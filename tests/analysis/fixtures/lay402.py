"""LAY402 fixture: mutable default arguments."""


def bad(items=[]):
    return items


def ok(items=None):
    return items if items is not None else []


def quiet(items={}):  # simlint: disable=LAY402
    return items

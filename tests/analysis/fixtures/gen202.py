"""GEN202 fixture: process generator yielding a non-event literal."""


def bad_proc(env):
    yield env.timeout(1)
    yield 42


def ok_proc(env):
    yield env.timeout(1)
    yield env.event()


def quiet_proc(env):
    yield env.timeout(1)
    yield "done"  # simlint: disable=GEN202

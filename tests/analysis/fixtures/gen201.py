"""GEN201 fixture: bare ``yield`` in a process generator."""


def bad_proc(env):
    yield env.timeout(1)
    yield


def ok_proc(env):
    yield env.timeout(1)


def data_gen(items):
    # Not a process generator: never yields events, never started via
    # env.process(...) — bare yields are fine here.
    for _ in items:
        yield


def quiet_proc(env):
    yield env.timeout(1)
    yield  # simlint: disable=GEN201

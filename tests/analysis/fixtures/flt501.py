"""FLT501 fixture: repair-path grant wait without cancellation handling."""


def repair_reads(env, disk):
    req = disk.queue.request(0)
    yield req
    yield env.timeout(1)
    disk.queue.release(req)


def recovery_ok_with(env, disk):
    with disk.queue.request(0) as req:
        yield req
        yield env.timeout(1)


def repair_ok_cancelled(env, disk):
    req = disk.queue.request(0)
    try:
        yield req
        yield env.timeout(1)
    finally:
        req.cancel()


def rebuild_ok_released(env, disk):
    req = disk.queue.request(0)
    try:
        yield req
    finally:
        disk.queue.release(req)


def _batch_read(env, disk):
    # Normal-read service routine: allow-listed by name.
    req = disk.queue.request(0)
    yield req
    yield env.timeout(1)
    disk.queue.release(req)


def plain_read(env, disk):
    # Not repair-path code: out of the rule's scope.
    req = disk.queue.request(0)
    yield req
    disk.queue.release(req)


def repair_quiet(env, disk):
    req = disk.queue.request(0)
    yield req  # simlint: disable=FLT501
    disk.queue.release(req)

"""RES301 fixture: resource grant not released on every path."""


def bad(env, disk):
    req = disk.request()
    yield req
    if env.now > 10:
        return
    disk.release(req)


def ok(env, disk):
    req = disk.request()
    yield req
    try:
        yield env.timeout(1)
    finally:
        disk.release(req)


def ok_with(env, disk):
    with disk.request() as req:
        yield req
        yield env.timeout(1)


def quiet(env, disk):
    req = disk.request()  # simlint: disable=RES301
    yield req
    return

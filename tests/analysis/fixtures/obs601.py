"""OBS601 fixture: per-event metric registry lookups in hot loops."""


def server_loop(env, obs, tasks):
    for task in tasks:
        yield env.timeout(task.cost)
        obs.metrics.counter("tasks.done").inc()


def drain(env, rt, queue):
    while queue:
        item = queue.popleft()
        yield env.timeout(item.cost)
        rt.obs.metrics.histogram("drain.latency").observe(item.cost)


def hoisted_ok(env, obs, tasks):
    done = obs.metrics.counter("tasks.done")
    for task in tasks:
        yield env.timeout(task.cost)
        done.inc()


def not_a_generator(obs, tasks):
    # One-shot accounting outside the engine: per-call lookup cost is fine.
    for task in tasks:
        obs.metrics.counter("tasks.seen").inc()


def tracer_loop(env, obs, tasks):
    # Span bookkeeping, not a registry lookup: out of scope.
    for task in tasks:
        yield env.timeout(task.cost)
        obs.tracer.counter("spans.seen")


def lookup_before_loop(env, metrics, tasks):
    gauge = metrics.gauge("queue.depth")
    while tasks:
        yield env.timeout(1)
        gauge.set(len(tasks), env.now)


def quiet_loop(env, obs, tasks):
    for task in tasks:
        yield env.timeout(task.cost)
        obs.metrics.counter("tasks.done").inc()  # simlint: disable=OBS601

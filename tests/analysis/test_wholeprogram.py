"""Whole-program driver: incremental cache, baseline workflow, SARIF and
GitHub-annotation output, and the CLI flags that expose them."""

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.wholeprogram import (
    apply_baseline,
    fingerprints,
    run_whole_program,
    to_github,
    to_sarif,
    write_baseline,
)

STALE_SNAPSHOT = """\
class Engine:
    def __init__(self, env, faults):
        self.env = env
        self.faults = faults

    def start(self):
        self.env.process(self.worker())
        for _ in range(3):
            self.env.process(self.crasher())

    def worker(self):
        while True:
            failed = {d for d in self.faults.failed_disks if d > 0}
            status = yield self.env.timeout(1.0)
            if status == "timeout":
                self.repick(failed)

    def crasher(self):
        yield self.env.timeout(0.5)
        self.faults.failed_disks.add(1)

    def repick(self, failed):
        return len(failed)
"""

CLEAN = "def helper(x):\n    return x + 1\n"


def project_dir(tmp_path, sources):
    root = tmp_path / "proj"
    for rel, text in sources.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


@pytest.fixture
def dirty_tree(tmp_path):
    return project_dir(tmp_path, {
        "src/repro/cluster/engine.py": STALE_SNAPSHOT,
        "src/repro/cluster/util.py": CLEAN,
    })


def run(tree, cache, **kwargs):
    return run_whole_program([str(tree)], cache_dir=str(cache), **kwargs)


# ----------------------------------------------------------------------
# Driver + incremental cache
# ----------------------------------------------------------------------
def test_whole_program_finds_cross_function_race(dirty_tree, tmp_path):
    result = run(dirty_tree, tmp_path / "cache")
    assert [v.rule for v in result.findings] == ["RACE801"]
    assert result.stats.files_total == 2
    assert result.stats.files_reanalysed == 2
    assert not result.stats.run_cache_hit


def test_second_run_reanalyses_nothing_and_matches(dirty_tree, tmp_path):
    cache = tmp_path / "cache"
    first = run(dirty_tree, cache)
    second = run(dirty_tree, cache)
    assert second.stats.run_cache_hit
    assert second.stats.files_reanalysed == 0
    assert all(t.cached for t in second.stats.passes)
    assert [(v.rule, v.path, v.line, v.col, v.message)
            for v in second.findings] == \
        [(v.rule, v.path, v.line, v.col, v.message) for v in first.findings]


def test_editing_one_file_reanalyses_only_that_file(dirty_tree, tmp_path):
    cache = tmp_path / "cache"
    run(dirty_tree, cache)
    util = dirty_tree / "src/repro/cluster/util.py"
    util.write_text(CLEAN + "\n\ndef other(y):\n    return y\n",
                    encoding="utf-8")
    third = run(dirty_tree, cache)
    assert not third.stats.run_cache_hit       # the run key changed
    assert third.stats.files_reanalysed == 1   # per-file tier: just util.py
    assert [v.rule for v in third.findings] == ["RACE801"]


def test_no_cache_bypasses_reads_and_writes(dirty_tree, tmp_path):
    cache = tmp_path / "cache"
    run(dirty_tree, cache)
    result = run(dirty_tree, cache, use_cache=False)
    assert not result.stats.run_cache_hit
    assert result.stats.files_reanalysed == 2


def test_select_narrows_whole_program_findings(dirty_tree, tmp_path):
    result = run(dirty_tree, tmp_path / "c1", select=["RACE802"])
    assert result.findings == []
    result = run(dirty_tree, tmp_path / "c2", select=["RACE801"])
    assert [v.rule for v in result.findings] == ["RACE801"]


def test_suppression_comment_silences_whole_program_rules(tmp_path):
    silenced = STALE_SNAPSHOT.replace(
        "                self.repick(failed)",
        "                self.repick(failed)"
        "  # simlint: disable=RACE801")
    tree = project_dir(tmp_path, {"src/repro/cluster/engine.py": silenced})
    result = run(tree, tmp_path / "cache")
    assert result.findings == []


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------
def test_baseline_roundtrip_suppresses_known_findings(dirty_tree, tmp_path):
    result = run(dirty_tree, tmp_path / "cache")
    baseline = tmp_path / "baseline.json"
    assert write_baseline(result.findings, baseline) == 1
    fresh, baselined = apply_baseline(result.findings, baseline)
    assert fresh == []
    assert len(baselined) == 1


def test_baseline_fingerprints_survive_pure_line_shifts(dirty_tree, tmp_path):
    result = run(dirty_tree, tmp_path / "cache")
    baseline = tmp_path / "baseline.json"
    write_baseline(result.findings, baseline)
    # prepend a comment block: every finding moves down two lines but
    # the (rule, path, line-text, occurrence) fingerprint is unchanged
    engine = dirty_tree / "src/repro/cluster/engine.py"
    engine.write_text("# moved\n# down\n" + STALE_SNAPSHOT,
                      encoding="utf-8")
    shifted = run(dirty_tree, tmp_path / "cache2")
    assert [v.rule for v in shifted.findings] == ["RACE801"]
    fresh, baselined = apply_baseline(shifted.findings, baseline)
    assert fresh == []
    assert len(baselined) == 1


def test_new_findings_are_not_masked_by_the_baseline(dirty_tree, tmp_path):
    result = run(dirty_tree, tmp_path / "cache")
    baseline = tmp_path / "baseline.json"
    write_baseline(result.findings, baseline)
    util = dirty_tree / "src/repro/cluster/util.py"
    util.write_text(STALE_SNAPSHOT.replace("failed", "stale"),
                    encoding="utf-8")
    noisier = run(dirty_tree, tmp_path / "cache2")
    fresh, baselined = apply_baseline(noisier.findings, baseline)
    assert [v.rule for v in fresh] == ["RACE801"]
    assert "util.py" in fresh[0].path
    assert len(baselined) == 1


def test_fingerprints_disambiguate_identical_lines(tmp_path):
    # two byte-identical offending lines in one file must not collide
    result_fps = fingerprints  # alias for line length
    from repro.analysis.linter import Violation
    v1 = Violation("RACE801", "m.py", 3, 0, "x")
    v2 = Violation("RACE801", "m.py", 7, 0, "x")
    sources = {"m.py": "a\n\nuse(failed)\n\n\n\nuse(failed)\n"}
    fp = result_fps([v1, v2], sources)
    assert len(fp) == 2 and fp[0] != fp[1]


# ----------------------------------------------------------------------
# SARIF + GitHub output
# ----------------------------------------------------------------------
def test_sarif_is_valid_and_byte_stable(dirty_tree, tmp_path):
    first = run(dirty_tree, tmp_path / "cache")
    second = run(dirty_tree, tmp_path / "cache")
    doc_a, doc_b = to_sarif(first.findings), to_sarif(second.findings)
    assert doc_a == doc_b  # byte-identical across cached/uncached runs
    sarif = json.loads(doc_a)
    assert sarif["version"] == "2.1.0"
    runs = sarif["runs"][0]
    assert runs["tool"]["driver"]["name"] == "simlint"
    results = runs["results"]
    assert len(results) == 1
    assert results[0]["ruleId"] == "RACE801"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 16
    rules = runs["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["RACE801"]


def test_github_annotations_escape_newlines_and_locate(dirty_tree, tmp_path):
    result = run(dirty_tree, tmp_path / "cache")
    out = to_github(result.findings)
    line = out.splitlines()[0]
    assert line.startswith("::error file=")
    assert ",line=16," in line
    assert "title=simlint RACE801::" in line
    from repro.analysis.linter import Violation
    tricky = Violation("RACE801", "m.py", 1, 0, "two\nlines, 100%")
    encoded = to_github([tricky])
    assert "%0A" in encoded and "%25" in encoded and "\n" not in \
        encoded.replace("\n", "", 1)  # one trailing record separator only


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_cli_whole_program_exit_codes_and_stats(dirty_tree, tmp_path,
                                                capsys):
    cache = str(tmp_path / "cache")
    assert main(["--whole-program", "--stats", "--cache-dir", cache,
                 str(dirty_tree)]) == 1
    captured = capsys.readouterr()
    assert "RACE801" in captured.out
    assert "re-analysed" in captured.err

    assert main(["--whole-program", "--stats", "--cache-dir", cache,
                 str(dirty_tree)]) == 1
    captured = capsys.readouterr()
    assert "0 re-analysed, run cache hit" in captured.err


def test_cli_baseline_workflow_end_to_end(dirty_tree, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    baseline = str(tmp_path / "baseline.json")
    assert main(["--whole-program", "--write-baseline", baseline,
                 "--cache-dir", cache, str(dirty_tree)]) == 0
    assert "baseline of 1 finding(s)" in capsys.readouterr().out
    assert main(["--whole-program", "--baseline", baseline,
                 "--cache-dir", cache, str(dirty_tree)]) == 0
    assert "(1 baselined)" in capsys.readouterr().out


def test_cli_sarif_format(dirty_tree, tmp_path, capsys):
    assert main(["--whole-program", "--format", "sarif",
                 "--cache-dir", str(tmp_path / "cache"),
                 str(dirty_tree)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"][0]["ruleId"] == "RACE801"


def test_cli_flag_compatibility_errors(tmp_path):
    with pytest.raises(SystemExit) as err:
        main(["--stats", str(tmp_path)])
    assert err.value.code == 2
    with pytest.raises(SystemExit) as err:
        main(["--whole-program", "--fix", str(tmp_path)])
    assert err.value.code == 2
    with pytest.raises(SystemExit) as err:
        main(["--format", "sarif", str(tmp_path)])
    assert err.value.code == 2


def test_cli_list_rules_groups_by_tier_and_pass(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "Per-file rules (syntactic, single AST)" in out
    assert "Per-file rules (CFG-based, single function)" in out
    assert "Whole-program passes" in out
    assert "[race-detection]" in out
    assert "[determinism-taint]" in out
    assert "[grant-escape]" in out
    # per-file CFG rules are also listed under their whole-program lift
    assert out.count("RES301") == 2

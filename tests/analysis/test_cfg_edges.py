"""CFG walker edge cases: control-flow shapes that historically break
resource state machines (while/else, try/except/else/finally with
continue, one-line nested with, genexps containing yield)."""

from repro.analysis import lint_source

PATH = "src/repro/cluster/edge.py"


def lint(source, select=("RES301", "RES302")):
    return lint_source(source, PATH, select=list(select))


def rules_of(violations):
    return sorted(v.rule for v in violations)


# ----------------------------------------------------------------------
# while/else
# ----------------------------------------------------------------------
def test_while_else_release_in_else_is_clean_without_break():
    source = """\
def proc(env, disk):
    req = disk.request()
    yield req
    while env.pending():
        yield env.timeout(1.0)
    else:
        req.release()
"""
    assert lint(source, select=["RES301"]) == []


def test_while_else_break_skips_the_else_release():
    # `break` jumps past the else block, so the release is not on that
    # path: the grant is live at function exit.
    source = """\
def proc(env, disk):
    req = disk.request()
    yield req
    while env.pending():
        status = yield env.timeout(1.0)
        if status == "giveup":
            break
    else:
        req.release()
"""
    assert "RES301" in rules_of(lint(source, select=["RES301"]))


# ----------------------------------------------------------------------
# try/except/else/finally with continue
# ----------------------------------------------------------------------
def test_continue_in_except_still_reaches_finally_release():
    source = """\
def proc(env, disk):
    for _ in range(3):
        req = disk.request()
        yield req
        try:
            yield env.timeout(1.0)
        except SimulationError:
            continue
        finally:
            req.release()
"""
    assert lint(source, select=["RES301"]) == []


def test_continue_in_except_skips_an_else_only_release():
    # The release lives in the try/else block; `continue` in the handler
    # starts the next iteration without ever running it.
    source = """\
def proc(env, disk):
    for _ in range(3):
        req = disk.request()
        yield req
        try:
            yield env.timeout(1.0)
        except SimulationError:
            continue
        else:
            req.release()
"""
    assert "RES301" in rules_of(lint(source, select=["RES301"]))


def test_release_after_the_loop_does_not_cover_continue():
    source = """\
def proc(env, disk):
    req = disk.request()
    yield req
    for _ in range(3):
        status = yield env.timeout(1.0)
        if status == "retry":
            continue
    req.release()
"""
    # every `continue` eventually falls out of the loop into the release
    assert lint(source, select=["RES301"]) == []


# ----------------------------------------------------------------------
# nested with on one line
# ----------------------------------------------------------------------
def test_one_line_nested_with_manages_both_grants():
    source = """\
def proc(env, a, b):
    with a.request() as ra, b.request() as rb:
        yield ra
        yield rb
        yield env.timeout(1.0)
"""
    assert lint(source) == []


def test_one_line_nested_with_only_first_is_a_grant():
    source = """\
def proc(env, a, span):
    with a.request() as ra, span("repair") as sp:
        yield ra
        yield env.timeout(1.0)
"""
    assert lint(source) == []


# ----------------------------------------------------------------------
# generator expressions containing yield
# ----------------------------------------------------------------------
def test_genexp_with_yield_in_body_does_not_crash_or_leak_state():
    # The yield in a genexp body runs lazily — if the genexp is never
    # iterated, the grant wait never happens.  The walker must neither
    # crash nor treat the assignment line as the open-the-grant wait.
    source = """\
def proc(env, disk, items):
    req = disk.request()
    gen = ((yield req) for item in items)
    req.cancel()
    return gen
"""
    violations = lint(source)
    assert all(v.rule in ("RES301", "RES302") for v in violations)


def test_genexp_with_yield_in_iterable_runs_eagerly():
    # The outermost iterable of a genexp IS evaluated at creation time,
    # so this function is a generator and the wait is real.
    source = """\
def proc(env, disk, items):
    req = disk.request()
    gen = (item for item in (yield req))
    req.release()
    return gen
"""
    assert lint(source, select=["RES301"]) == []

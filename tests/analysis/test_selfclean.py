"""The shipped source tree must be simlint-clean (the CI gate)."""

from pathlib import Path

from repro.analysis import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50
    assert result.ok, "\n".join(v.format() for v in result.violations)

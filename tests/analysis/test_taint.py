"""DET7xx determinism-taint pass (whole-program).

SIM101/102 flag nondeterminism sources only in layers that forbid them;
this pass follows the tainted *value* to a sink that feeds simulated
behaviour, so laundering through helpers or permitted layers no longer
hides the bug.
"""

import textwrap

from repro.analysis.callgraph import Project
from repro.analysis.taint import TaintPass


def run_taint(source, path="src/repro/experiments/mod.py"):
    project = Project()
    project.add_source(textwrap.dedent(source), path)
    project.link()
    return TaintPass(project).run()


def rules_of(violations):
    return [v.rule for v in violations]


# ----------------------------------------------------------------------
# DET701: event scheduling / request priority
# ----------------------------------------------------------------------
def test_det701_wall_clock_laundered_through_two_helpers():
    source = """\
import time


def jitter():
    return time.time() % 1.0


def backoff(attempt):
    return jitter() * attempt


def worker(env):
    yield env.timeout(backoff(3))
"""
    violations = run_taint(source)
    assert rules_of(violations) == ["DET701"]
    assert "time.time" in violations[0].message
    assert "worker" in violations[0].message


def test_det701_tainted_request_priority():
    source = """\
import random


def worker(env, disk):
    prio = random.randint(0, 3)
    req = disk.request(priority=prio)
    yield req
"""
    violations = run_taint(source)
    assert rules_of(violations) == ["DET701"]
    assert "priority" in violations[0].message


def test_det701_set_iteration_order_reaches_scheduling():
    source = """\
def worker(env, disk_ids):
    for disk in set(disk_ids):
        yield env.timeout(disk * 0.5)
"""
    assert rules_of(run_taint(source)) == ["DET701"]


def test_sorted_sanitizes_order_taint_only():
    clean = """\
def worker(env, disk_ids):
    for disk in sorted(set(disk_ids)):
        yield env.timeout(disk * 0.5)
"""
    assert run_taint(clean) == []

    still_dirty = """\
import time


def worker(env):
    delays = sorted([time.time() % 1.0])
    yield env.timeout(delays[0])
"""
    assert rules_of(run_taint(still_dirty)) == ["DET701"]


def test_det701_param_sink_summary_flags_the_caller():
    # ``schedule_at`` is innocent in isolation; the caller feeding it a
    # wall-clock read is the bug, and that is where the finding lands.
    source = """\
import time


def schedule_at(env, delay):
    yield env.timeout(delay)


def driver(env):
    yield from schedule_at(env, time.time() % 1.0)
"""
    violations = run_taint(source)
    assert rules_of(violations) == ["DET701"]
    assert "schedule_at" in violations[0].message
    assert violations[0].line == 9  # the call in driver, not the helper


def test_seeded_rng_is_clean():
    source = """\
import random


def worker(env, seed):
    rng = random.Random(seed)
    yield env.timeout(rng.random())
"""
    assert run_taint(source) == []


# ----------------------------------------------------------------------
# DET702 / DET703: metric labels and scenario parameters
# ----------------------------------------------------------------------
def test_det702_tainted_metric_label():
    source = """\
import os


def record(metrics):
    shard = os.getenv("SHARD")
    metrics.counter(f"repair.{shard}").inc()
"""
    violations = run_taint(source)
    assert rules_of(violations) == ["DET702"]
    assert "os.getenv" in violations[0].message


def test_det703_tainted_scenario_parameter():
    source = """\
import random


def build(Scenario):
    return Scenario(n_objects=random.randint(1, 10))
"""
    assert rules_of(run_taint(source)) == ["DET703"]


def test_container_write_taints_the_container():
    source = """\
import time


def worker(env):
    delays = []
    delays.append(time.time() % 1.0)
    yield env.timeout(delays[0])
"""
    assert rules_of(run_taint(source)) == ["DET701"]

"""Autofix tests: SIM103's mechanical ``sorted(...)`` wrap."""

from repro.analysis import lint_file, lint_source
from repro.analysis.linter import apply_fixes


def _sim_file(tmp_path, source):
    path = tmp_path / "src" / "repro" / "sim" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text(source, encoding="utf-8")
    return path


def test_sim103_fix_wraps_in_sorted(tmp_path):
    path = _sim_file(tmp_path,
                     "def f(env, nodes):\n"
                     "    for n in {3, 1, 2}:\n"
                     "        env.process(n)\n")
    violations = lint_file(path)
    assert [v.rule for v in violations] == ["SIM103"]
    assert apply_fixes(path, violations) == 1
    fixed = path.read_text(encoding="utf-8")
    assert "for n in sorted({3, 1, 2}):" in fixed
    assert lint_file(path) == []


def test_fix_applies_to_set_call_in_comprehension(tmp_path):
    path = _sim_file(tmp_path,
                     "def f(env, nodes):\n"
                     "    return [env.process(n) for n in set(nodes)]\n")
    violations = lint_file(path)
    assert apply_fixes(path, violations) == 1
    assert "in sorted(set(nodes))]" in path.read_text(encoding="utf-8")
    assert lint_file(path) == []


def test_multiple_fixes_one_file(tmp_path):
    path = _sim_file(tmp_path,
                     "def f(env):\n"
                     "    for a in {1, 2}:\n"
                     "        env.process(a)\n"
                     "    for b in {3, 4}:\n"
                     "        env.process(b)\n")
    violations = lint_file(path)
    assert apply_fixes(path, violations) == 2
    assert lint_file(path) == []


def test_non_autofixable_rules_have_no_fix():
    violations = lint_source("def f(x=[]):\n    return x\n",
                             "src/repro/sim/x.py")
    assert violations and all(v.fix is None for v in violations)

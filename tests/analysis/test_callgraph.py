"""Project symbol table and call graph (the whole-program substrate)."""

import textwrap

from repro.analysis.callgraph import Project


def build(*named_sources):
    project = Project()
    for path, source in named_sources:
        project.add_source(textwrap.dedent(source), path)
    project.link()
    return project


ENGINE = ("src/repro/cluster/engine.py", """\
class Engine:
    def __init__(self, env):
        self.env = env

    def start(self, tasks):
        for task in tasks:
            self.env.process(self.worker(task))

    def worker(self, task):
        yield self.env.timeout(task.cost)
        return self.finish(task, force=True)

    def finish(self, task, *, force=False):
        return (task, force)


def helper(x):
    return x
""")


def test_functions_methods_and_nested_defs_are_indexed():
    project = build(ENGINE)
    quals = set(project.functions)
    assert "repro.cluster.engine.Engine.worker" in quals
    assert "repro.cluster.engine.helper" in quals
    worker = project.functions["repro.cluster.engine.Engine.worker"]
    assert worker.class_name == "Engine"
    assert worker.is_generator
    assert worker.params == ["self", "task"]
    assert worker.layer == "cluster"


def test_spawned_generators_are_marked_processes():
    project = build(ENGINE)
    worker = project.functions["repro.cluster.engine.Engine.worker"]
    assert worker.is_process
    spawns = [s for s in project.spawn_sites if s.target is worker]
    assert len(spawns) == 1
    assert spawns[0].in_loop


def test_method_calls_resolve_through_self():
    project = build(ENGINE)
    worker = project.functions["repro.cluster.engine.Engine.worker"]
    sites = [s for s in project.call_sites() if s.caller is worker]
    finish = project.functions["repro.cluster.engine.Engine.finish"]
    assert any(finish in s.callees for s in sites)


def test_map_arguments_offsets_self_and_handles_kwonly():
    project = build(ENGINE)
    finish = project.functions["repro.cluster.engine.Engine.finish"]
    worker = project.functions["repro.cluster.engine.Engine.worker"]
    call = [s.call for s in project.call_sites()
            if s.caller is worker and finish in s.callees][0]
    pairs = dict(Project.map_arguments(finish, call))
    # positional arg `task` lands on param index 1 (after `self`),
    # keyword-only `force` beyond len(params)
    assert [type(a).__name__ for a in pairs.values()] == ["Name", "Constant"]
    assert sorted(pairs) == [1, 2]
    assert finish.params[1] == "task"
    assert finish.kwonly == ["force"]


def test_cross_module_resolution_by_imported_name():
    other = ("src/repro/experiments/driver.py", """\
from repro.cluster.engine import helper


def run():
    return helper(3)
""")
    project = build(ENGINE, other)
    run = project.functions["repro.experiments.driver.run"]
    sites = [s for s in project.call_sites() if s.caller is run]
    helper = project.functions["repro.cluster.engine.helper"]
    assert any(helper in s.callees for s in sites)


def test_unresolvable_calls_have_no_callees():
    project = build(ENGINE)
    worker = project.functions["repro.cluster.engine.Engine.worker"]
    timeout_sites = [
        s for s in project.call_sites()
        if s.caller is worker and getattr(s.call.func, "attr", "") == "timeout"]
    assert timeout_sites == [] or all(not s.callees for s in timeout_sites)

"""CLI tests: exit codes, output format, ``--fix`` and ``--list-rules``."""

from repro.analysis.cli import main


def _sim_file(tmp_path, source, name="mod.py"):
    path = tmp_path / "src" / "repro" / "sim" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def test_clean_file_exits_zero(tmp_path, capsys):
    path = _sim_file(tmp_path, "def f(env):\n    return env.now\n")
    assert main([str(path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_violation_exits_one_with_rule_id_and_location(tmp_path, capsys):
    path = _sim_file(tmp_path,
                     "import time\n\n\n"
                     "def f():\n"
                     "    return time.time()\n")
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "SIM101" in out
    assert f"{path}:5:" in out


def test_no_files_exits_two(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 2


def test_select_restricts_rules(tmp_path):
    path = _sim_file(tmp_path,
                     "import time\n\n\n"
                     "def f(x=[]):\n"
                     "    return time.time()\n")
    assert main([str(path), "--select", "LAY402"]) == 1
    assert main([str(path), "--select", "GEN201"]) == 0


def test_fix_repairs_in_place(tmp_path, capsys):
    path = _sim_file(tmp_path,
                     "def f(env):\n"
                     "    for n in {3, 1, 2}:\n"
                     "        env.process(n)\n")
    assert main([str(path), "--fix"]) == 0
    out = capsys.readouterr().out
    assert "fixed 1 violation(s)" in out
    assert "sorted({3, 1, 2})" in path.read_text(encoding="utf-8")


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM101", "SIM102", "SIM103", "GEN201", "GEN202",
                    "GEN203", "RES301", "RES302", "LAY401", "LAY402"):
        assert rule_id in out


def test_python_dash_m_entry_point(tmp_path):
    """``python -m repro.analysis`` routes through cli.main and exits."""
    import runpy

    path = _sim_file(tmp_path, "def f(env):\n    return env.now\n")
    import sys
    from unittest import mock

    with mock.patch.object(sys, "argv", ["repro.analysis", str(path)]):
        try:
            runpy.run_module("repro.analysis.__main__", run_name="__main__")
        except SystemExit as exc:
            assert exc.code == 0
        else:
            raise AssertionError("module entry point did not exit")

"""Interprocedural grant-escape summaries and the RES/FLT lifts.

The per-file CFG rules must assume any helper a grant is passed to takes
ownership (otherwise every delegation would be a leak report).  The
whole-program pass replaces that assumption with per-parameter summaries
— *releases*, *escapes*, *waits* — so leaks **through** helpers surface
and legitimate hand-offs stay quiet.
"""

import textwrap

from repro.analysis.callgraph import Project
from repro.analysis.summaries import GrantEscapePass, GrantSummaries


def build(source, path="src/repro/cluster/mod.py"):
    project = Project()
    project.add_source(textwrap.dedent(source), path)
    project.link()
    return project


def run_pass(source, path="src/repro/cluster/mod.py"):
    return GrantEscapePass(build(source, path)).run()


# ----------------------------------------------------------------------
# Summary computation
# ----------------------------------------------------------------------
HELPERS = """\
class Repair:
    def release_helper(self, queue, req):
        queue.release(req)

    def wait_helper(self, req):
        status = yield req
        return status

    def reader(self, req):
        return req.size

    def chain(self, queue, req):
        self.release_helper(queue, req)
"""


def test_summaries_classify_release_wait_and_read():
    project = build(HELPERS)
    summaries = GrantSummaries(project).run()

    def summary(name):
        fn = [f for f in project.functions.values() if f.name == name][0]
        return summaries.summary_of(fn.qualname)

    release = summary("release_helper")
    assert 2 in release.releases      # params are (self, queue, req)
    wait = summary("wait_helper")
    assert 1 in wait.waits
    assert 1 not in wait.releases and 1 not in wait.escapes
    reader = summary("reader")
    # an attribute read neither releases nor takes ownership
    assert 1 not in reader.releases and 1 not in reader.escapes


def test_summaries_propagate_release_through_call_chains():
    project = build(HELPERS)
    summaries = GrantSummaries(project).run()
    chain = [fn for fn in project.functions.values()
             if fn.name == "chain"][0]
    assert 2 in summaries.summary_of(chain.qualname).releases


# ----------------------------------------------------------------------
# RES301 lift: leak through a helper that only reads the grant
# ----------------------------------------------------------------------
LEAK_THROUGH_READER = """\
class Repair:
    def reader(self, req):
        return req.size

    def repair_leak(self, queue):
        req = queue.request()
        yield req
        size = self.reader(req)
        return size
"""


def test_res301_lift_flags_leak_through_read_only_helper():
    violations = run_pass(LEAK_THROUGH_READER)
    assert [v.rule for v in violations] == ["RES301"]
    assert "req" in violations[0].message


def test_res301_lift_quiet_when_helper_releases():
    source = LEAK_THROUGH_READER.replace(
        "    def reader(self, req):\n"
        "        return req.size\n",
        "    def reader(self, req):\n"
        "        req.release()\n"
        "        return 0\n")
    assert run_pass(source) == []


def test_res301_lift_quiet_when_helper_takes_ownership():
    # Storing the grant is an escape: ownership transferred, the caller
    # is no longer on the hook.
    source = LEAK_THROUGH_READER.replace(
        "    def reader(self, req):\n"
        "        return req.size\n",
        "    def reader(self, req):\n"
        "        self.pending = req\n"
        "        return 0\n")
    assert run_pass(source) == []


def test_res301_lift_quiet_with_try_finally():
    source = """\
class Repair:
    def reader(self, req):
        return req.size

    def repair_ok(self, queue):
        req = queue.request()
        yield req
        try:
            size = self.reader(req)
        finally:
            req.release()
        return size
"""
    assert run_pass(source) == []


# ----------------------------------------------------------------------
# FLT501 lift: repair path outsources the hedgeless wait to a helper
# ----------------------------------------------------------------------
OUTSOURCED_WAIT = """\
class Repair:
    def wait_helper(self, req):
        status = yield req
        req.release()
        return status

    def repair_chunk(self, disk):
        req = disk.request()
        status = yield from self.wait_helper(req)
        return status
"""


def test_flt501_lift_flags_outsourced_unprotected_wait():
    violations = run_pass(OUTSOURCED_WAIT)
    assert "FLT501" in [v.rule for v in violations]
    flt = [v for v in violations if v.rule == "FLT501"][0]
    assert "wait_helper" in flt.message


def test_flt501_lift_quiet_outside_repair_paths():
    source = OUTSOURCED_WAIT.replace("repair_chunk", "serve_chunk")
    assert [v.rule for v in run_pass(source)
            if v.rule == "FLT501"] == []


def test_flt501_lift_quiet_when_wait_is_hedged():
    source = """\
class Repair:
    def wait_helper(self, req):
        status = yield req
        req.release()
        return status

    def repair_chunk(self, disk, env):
        req = disk.request()
        try:
            status = yield from self.wait_helper(req)
        finally:
            req.cancel()
        return status
"""
    assert [v.rule for v in run_pass(source)
            if v.rule == "FLT501"] == []

"""Figure 13 — pipelining benefit at 1/2/4 Gbps client links."""

from conftest import emit

from repro.experiments import fig13


def test_fig13_client_bandwidth(benchmark):
    rows = benchmark.pedantic(
        lambda: fig13.run(n_objects=1500, n_requests=20),
        rounds=1, iterations=1)
    emit("Figure 13: Geo-4M timing by client bandwidth", fig13.to_text(rows))
    # Degraded read ~ transfer time when the edge is slow, ~ repair time
    # when the edge is fast; pipelining saves 23.4-35.9% in the paper.
    assert abs(rows[0].degraded_ms - rows[0].transfer_ms) \
        < 0.2 * rows[0].transfer_ms
    assert rows[2].degraded_ms < 0.8 * (rows[2].transfer_ms + rows[2].repair_ms)
    assert all(0.1 < r.pipelining_saving < 0.6 for r in rows)

"""Figure 12 — W2 degraded read latency by object size (p5/p50/p95)."""

from conftest import emit

from repro.experiments import fig11_fig12
from repro.experiments.common import W2_SETTING

KB = 1 << 10


def test_fig12_latency_by_size_w2(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_fig12.run(W2_SETTING, n_objects=8000, n_probes=16),
        rounds=1, iterations=1)
    emit("Figure 12: W2 degraded read latency by object size",
         fig11_fig12.to_text(rows))
    by_key = {(r.scheme, r.object_size): r for r in rows}
    for scheme in {r.scheme for r in rows}:
        assert (by_key[(scheme, 256 * KB)].p50_ms
                <= by_key[(scheme, 1024 * KB)].p50_ms + 0.5)
    # All W2 degraded reads are single-digit to low-double-digit ms.
    for r in rows:
        assert r.p95_ms < 40

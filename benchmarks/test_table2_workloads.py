"""Table 2 — W1/W2 workload statistics."""

from conftest import emit

from repro.experiments import table2

MB = 1 << 20
KB = 1 << 10


def test_table2_workloads(benchmark):
    rows = benchmark.pedantic(lambda: table2.run(n_objects=30_000),
                              rounds=1, iterations=1)
    emit("Table 2: workloads", table2.to_text(rows))
    by_name = {r.name: r for r in rows}
    assert abs(by_name["W1"].mean_object_size - 102.8 * MB) < 0.15 * 102.8 * MB
    assert abs(by_name["W2"].mean_object_size - 101.3 * KB) < 0.15 * 101.3 * KB

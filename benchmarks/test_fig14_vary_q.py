"""Figure 14 — average chunk size under varying q (peak at q = 2-3)."""

from conftest import emit

from repro.experiments import fig14
from repro.experiments.common import W1_SETTING, W2_SETTING


def test_fig14_vary_q(benchmark):
    def both():
        return (fig14.run(W1_SETTING, n_objects=4000),
                fig14.run(W2_SETTING, n_objects=15_000))

    w1, w2 = benchmark.pedantic(both, rounds=1, iterations=1)
    emit("Figure 14: average chunk size vs q",
         fig14.to_text(w1, W1_SETTING) + "\n\n" + fig14.to_text(w2, W2_SETTING))
    for points in (w1, w2):
        by_q = {p.q: p.average_chunk_size for p in points}
        peak = max(by_q.values())
        assert fig14.best_q(points) in (2, 3, 4)
        assert by_q[2] > 0.9 * peak
        assert by_q[1] < by_q[2]  # q=1 (constant chunks) is worse than q=2

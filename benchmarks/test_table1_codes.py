"""Table 1 — codes comparison (read traffic / storage / sub-packetization)."""

from conftest import emit

from repro.experiments import table1


def test_table1_codes(benchmark):
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    emit("Table 1: Codes Comparison", table1.to_text(rows))
    by_name = {r.name: r for r in rows}
    assert round(by_name["RS(10,4)"].read_traffic, 2) == 10.0
    assert round(by_name["LRC(10,2,2)"].read_traffic, 2) == 5.71
    assert round(by_name["Clay(10,4)"].read_traffic, 2) == 3.25
    assert by_name["Clay(10,4)"].sub_packetization == 256

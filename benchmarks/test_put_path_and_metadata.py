"""§5.1 systems benches: staged put path, batch export, index metadata."""

import numpy as np
from conftest import emit

from repro.cluster import ClusterConfig, RCStor, build_indexes
from repro.cluster.ingestion import measure_puts, parity_update_cost, run_batch_export
from repro.codes import ClayCode
from repro.core import GeometricLayout
from repro.experiments.common import format_table
from repro.trace import W1

MB = 1 << 20
GB = 1 << 30


def _system(n_objects=800):
    config = ClusterConfig(n_pgs=48)
    system = RCStor(config, GeometricLayout(4 * MB, 2, max_chunk_size=256 * MB),
                    ClayCode(10, 4))
    system.ingest(W1.sample_sizes(np.random.default_rng(0), n_objects))
    return system


def test_put_path(benchmark):
    def run():
        system = _system()
        rng = np.random.default_rng(1)
        sizes = W1.sample_sizes(rng, 60)
        puts = measure_puts(system, sizes)
        export = run_batch_export(system, sizes)
        return puts, export

    puts, export = benchmark.pedantic(run, rounds=1, iterations=1)
    cost = parity_update_cost(100 * MB)
    emit("§5.1 put path (staging + batch export)", format_table(
        ["Metric", "Value"],
        [["mean put latency (ms)", round(puts.mean_latency * 1000)],
         ["p95 put latency (ms)", round(puts.p95_latency * 1000)],
         ["staging write amplification", puts.write_amplification],
         ["export rate (MB/s)", round(export.export_rate / MB)],
         ["export I/O amplification", round(export.io_amplification, 2)],
         ["parity-update bytes avoided per 100MB object",
          f"{cost['saving_bytes'] / MB:.0f}MB"]]))
    assert puts.mean_latency > 0
    assert export.io_amplification < 3.0


def test_metadata_size(benchmark):
    def run():
        system = _system(1200)
        return system, build_indexes(system.catalog)

    system, indexes = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(i.size_bytes for i in indexes.values())
    per_object = total / len(system.catalog.objects)
    largest = max(indexes.values(), key=lambda i: i.size_bytes)
    emit("§5.1 metadata (index files)", format_table(
        ["Metric", "Value"],
        [["objects indexed", len(system.catalog.objects)],
         ["bytes per object (paper: ~40)", round(per_object, 1)],
         ["total index bytes", total],
         ["largest PG index (bytes)", largest.size_bytes],
         ["index replicas per PG", 5]]))
    assert 25 <= per_object <= 55

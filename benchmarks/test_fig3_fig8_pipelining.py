"""Figures 3 and 8 — pipelining regimes rendered from the model."""

from conftest import emit

from repro.experiments import fig3_fig8


def test_fig3_fig8_pipelining(benchmark):
    cases = benchmark.pedantic(fig3_fig8.run, rounds=1, iterations=1)
    emit("Figures 3/8: pipelining regimes", fig3_fig8.to_text(cases))
    by_name = {c.name: c for c in cases}
    one_chunk = by_name["Fig3: regenerating, one chunk"]
    fine = by_name["Fig3: RS (fine-grained)"]
    assert one_chunk.saving == 0.0  # nothing overlaps with a single chunk
    assert fine.total_ms < one_chunk.total_ms
    case1 = by_name["Fig8 case 1: repair outpaces transfer"]
    case2 = by_name["Fig8 case 2: transfer blocked by repair"]
    assert case1.saving > case2.saving > 0.1
    # Case 1: completion ~ first repair + full transfer (perfect pipeline).
    first_repair = case1.chunk_sizes[0] / case1.repair_bw
    transfer = sum(case1.chunk_sizes) / (125 << 20)
    assert case1.total_ms == (first_repair + transfer) * 1000

"""Codec micro-benchmarks (the §5.2 kernels, here in pure Python/numpy).

These are real repeated-measurement benchmarks (unlike the experiment
regenerations, which run once): encode / decode / single-node repair
throughput of the four codes on a 64 KiB chunk stripe.
"""

import numpy as np
import pytest

from repro.codes import ClayCode, HitchhikerCode, LRCCode, RSCode, extract_reads

CHUNK = 64 * 1024


def _stripe(code, rng):
    data = [rng.integers(0, 256, CHUNK, dtype=np.uint8) for _ in range(code.k)]
    return data, code.encode_stripe(data)


@pytest.mark.parametrize("make_code", [
    lambda: RSCode(10, 4),
    lambda: LRCCode(10, 2, 2),
    lambda: HitchhikerCode(10, 4),
    lambda: ClayCode(10, 4),
], ids=["rs", "lrc", "hitchhiker", "clay"])
def test_encode_throughput(benchmark, make_code):
    code = make_code()
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, CHUNK, dtype=np.uint8) for _ in range(code.k)]
    benchmark(code.encode, data)


@pytest.mark.parametrize("make_code", [
    lambda: RSCode(10, 4),
    lambda: LRCCode(10, 2, 2),
], ids=["rs", "lrc"])
def test_single_repair_throughput(benchmark, make_code):
    code = make_code()
    rng = np.random.default_rng(1)
    _data, stripe = _stripe(code, rng)
    chunks = {i: c for i, c in enumerate(stripe)}
    plan = code.repair_plan(0, CHUNK)
    reads = extract_reads(plan, chunks)
    result = benchmark(code.repair, 0, reads, CHUNK)
    assert np.array_equal(result, stripe[0])


def test_clay_repair_throughput(benchmark):
    """Clay repair after the one-time cached linear solve."""
    code = ClayCode(10, 4)
    rng = np.random.default_rng(2)
    _data, stripe = _stripe(code, rng)
    chunks = {i: c for i, c in enumerate(stripe)}
    plan = code.repair_plan(0, CHUNK)
    reads = extract_reads(plan, chunks)
    code._repair_solution(0)  # warm the cache (excluded from timing)
    result = benchmark(code.repair, 0, reads, CHUNK)
    assert np.array_equal(result, stripe[0])


def test_rs_decode_two_erasures(benchmark):
    code = RSCode(10, 4)
    rng = np.random.default_rng(3)
    _data, stripe = _stripe(code, rng)
    available = {i: c for i, c in enumerate(stripe) if i not in (0, 5)}
    out = benchmark(code.decode, available, [0, 5], CHUNK)
    assert np.array_equal(out[0], stripe[0])

"""Figure 4 — degraded read time vs recovery bandwidth across chunk sizes."""

from conftest import emit

from repro.experiments import calibration, fig4

MB = 1 << 20


def test_fig4_chunk_size_tradeoff(benchmark):
    points = benchmark.pedantic(fig4.run, rounds=1, iterations=1)
    emit("Figure 4: the chunk-size dilemma (Clay(10,4), HDD, 1 Gbps)",
         fig4.to_text(points) + "\n\n"
         + calibration.to_text(calibration.anchors()))
    bws = [p.recovery_bandwidth for p in points]
    assert bws == sorted(bws)  # recovery improves monotonically
    assert points[-1].degraded_read_time > 1.5 * points[0].degraded_read_time * 0.6
    for anchor in calibration.check():
        assert anchor.ok

"""Figure 2 — Clay(10,4) repair read patterns per failed disk."""

from conftest import emit

from repro.experiments import fig2


def test_fig2_repair_patterns(benchmark):
    rows = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    emit("Figure 2: Clay(10,4) repair patterns", fig2.to_text(rows))
    assert [r.runs_per_helper for r in rows] == [1, 4, 16, 64]
    assert [r.run_length_subchunks for r in rows] == [64, 16, 4, 1]

"""Table 3 — disk and network bandwidth during recovery (W1 and W2)."""

from conftest import emit

from repro.experiments import table3
from repro.experiments.common import W1_SETTING, W2_SETTING

MB = 1 << 20


def test_table3_bandwidth(benchmark):
    def both():
        w1 = table3.run(W1_SETTING, n_objects=2500)
        w2 = table3.run(W2_SETTING, n_objects=20_000,
                        schemes=["Geo-128K", "Geo-256K", "Stripe",
                                 "Stripe-Max", "RS", "LRC", "HH", "ECPipe"])
        return w1, w2

    w1, w2 = benchmark.pedantic(both, rounds=1, iterations=1)
    emit("Table 3: recovery bandwidths",
         table3.to_text(w1) + "\n\n" + table3.to_text(w2))
    # Paper W1 pattern: RS moves the most bytes per disk; the 256KB-strip
    # Clay configuration the fewest (25 vs 110 MB/s).
    bw = {r.scheme: r.disk_bandwidth for r in w1.results}
    assert bw["RS"] > bw["Stripe"]
    assert bw["Geo-16M"] >= bw["Geo-1M"] * 0.95
    # Network stays far below the NIC capacity (not the bottleneck).
    for r in w1.results:
        assert r.network_bandwidth < 3000 * MB

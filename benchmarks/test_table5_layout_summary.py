"""Table 5 — layout comparison summary."""

from conftest import emit

from repro.experiments import table5


def test_table5_layout_summary(benchmark):
    rows = benchmark.pedantic(lambda: table5.run(n_objects=1200, n_requests=12),
                              rounds=1, iterations=1)
    emit("Table 5: layout comparison", table5.to_text(rows))
    by_layout = {r.layout: r for r in rows}
    assert by_layout["Geometric"].read_amplification < 1.05
    assert by_layout["Contiguous"].read_amplification > 1.1
    assert by_layout["Geometric"].pipelining_efficiency > \
        by_layout["Stripe"].pipelining_efficiency
    assert by_layout["Stripe"].recovery_disk_bandwidth < \
        by_layout["Geometric"].recovery_disk_bandwidth

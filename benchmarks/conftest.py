"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4 for the index), asserts its headline shape, and prints the
paper-style rows (visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

import sys


def emit(title: str, text: str) -> None:
    print(f"\n===== {title} =====\n{text}", file=sys.stderr)

"""Ablation benches: the design choices DESIGN.md calls out."""

from conftest import emit

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_ablation_partitioning_and_frontcut(benchmark):
    text = benchmark.pedantic(lambda: ablations.to_text(), rounds=1, iterations=1)
    emit("Ablations: Algorithm 1, front cut, ECPipe", text)
    assert "Algorithm 1" in text


def test_ablation_io_priority(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.io_priority_ablation(n_objects=1400, n_requests=20),
        rounds=1, iterations=1)
    emit("Ablation: §5.1 IO priority lanes",
         format_table(
             ["Recovery I/O priority", "Degraded read (ms)", "Recovery (s)"],
             [["background (RCStor)", round(result.degraded_ms_with_priority),
               round(result.recovery_s_with_priority, 1)],
              ["foreground (ablated)", round(result.degraded_ms_without_priority),
               round(result.recovery_s_without_priority, 1)]]))
    # Priority lanes never hurt degraded reads; whether they help depends on
    # how much the sampled reads' helper disks overlap recovery traffic.
    assert (result.degraded_ms_with_priority
            <= result.degraded_ms_without_priority * 1.02)


def test_ablation_weight_and_pgs(benchmark):
    def run():
        return (ablations.global_weight_sweep(n_objects=1200),
                ablations.pg_count_sweep(n_objects=1200))

    weights, pgs = benchmark.pedantic(run, rounds=1, iterations=1)
    MB = 1 << 20
    emit("Ablation: recovery weight cap and PG count",
         format_table(["Weight cap", "Recovery (s)"],
                      [[w, round(t, 2)] for w, t in weights])
         + "\n\n"
         + format_table(["PGs", "Recovery rate (MB/s)"],
                        [[p, round(r / MB)] for p, r in pgs]))
    assert pgs[-1][1] > pgs[0][1]

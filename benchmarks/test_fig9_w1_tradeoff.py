"""Figure 9 — W1 (HDD) recovery time vs degraded read time, all schemes."""

from conftest import emit

from repro.experiments import tradeoff
from repro.experiments.common import W1_SETTING


def test_fig9_w1_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: tradeoff.run(W1_SETTING, n_objects=2500, n_requests=15),
        rounds=1, iterations=1)
    emit("Figure 9: W1 recovery vs degraded read (idle + busy)",
         tradeoff.to_text(result))
    per_byte = {r.scheme: r.recovery_time / r.repaired_bytes
                for r in result.results}
    geo = per_byte["Geo-4M"]
    # Who wins, by roughly what factor (paper: RS 1.85x, LRC 1.30x, and
    # 256KB-strip Clay is the worst recovery configuration).
    assert per_byte["RS"] > 1.3 * geo
    assert per_byte["LRC"] > 1.05 * geo
    assert per_byte["Stripe"] > per_byte["RS"]
    # Degraded reads: Geo stays near normal reads; Con-256M clearly worse.
    geo_row = result.by_scheme("Geo-4M")
    assert geo_row.degraded_ms < 1.15 * geo_row.normal_ms
    assert result.by_scheme("Con-256M").degraded_ms > 1.2 * geo_row.normal_ms
    # Busy system: larger s0 shortens degraded reads (the s0 trade-off).
    assert result.by_scheme("Geo-16M").degraded_ms_busy < \
        result.by_scheme("Geo-1M").degraded_ms_busy

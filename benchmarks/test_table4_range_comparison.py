"""Table 4 — range degraded reads comparison across layouts."""

from conftest import emit

from repro.experiments import table4


def test_table4_range_comparison(benchmark):
    rows = benchmark.pedantic(lambda: table4.run(n_objects=500),
                              rounds=1, iterations=1)
    emit("Table 4: range degraded reads", table4.to_text(rows))
    by_layout = {r.layout: r for r in rows}
    assert by_layout["Geometric"].mean_read_over_object < 1.0
    assert by_layout["Contiguous"].can_exceed_object
    assert by_layout["Stripe-Max"].mean_read_over_object == 1.0

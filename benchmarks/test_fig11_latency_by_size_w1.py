"""Figure 11 — W1 degraded read latency by object size (p5/p50/p95)."""

from conftest import emit

from repro.experiments import fig11_fig12
from repro.experiments.common import W1_SETTING

MB = 1 << 20


def test_fig11_latency_by_size_w1(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_fig12.run(W1_SETTING, n_objects=1200, n_probes=16),
        rounds=1, iterations=1)
    emit("Figure 11: W1 degraded read latency by object size",
         fig11_fig12.to_text(rows))
    by_key = {(r.scheme, r.object_size): r for r in rows}
    # Latency grows with object size for every layout.
    for scheme in {r.scheme for r in rows}:
        assert by_key[(scheme, 8 * MB)].p50_ms < by_key[(scheme, 128 * MB)].p50_ms
    # Geometric keeps both median and tail low for small objects versus
    # large-chunk contiguous layouts (read amplification).
    assert by_key[("Geo-1M", 8 * MB)].p50_ms < by_key[("Con-64M", 8 * MB)].p50_ms
    assert by_key[("Geo-1M", 8 * MB)].p95_ms < by_key[("Con-256M", 8 * MB)].p95_ms

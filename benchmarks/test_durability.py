"""§2.1 quantified: recovery speed and code structure vs durability."""

from conftest import emit

from repro.experiments import durability


def test_durability(benchmark):
    rows = benchmark.pedantic(lambda: durability.run(n_objects=2500),
                              rounds=1, iterations=1)
    emit("Durability (MTTDL from measured recovery times, 2% AFR)",
         durability.to_text(rows))
    by_scheme = {r.scheme: r for r in rows}
    # Faster recovery -> higher MTTDL at equal fault tolerance.
    assert by_scheme["Geo-4M"].mttdl_hours > by_scheme["RS"].mttdl_hours
    # LRC's non-MDS patterns cost orders of magnitude of MTTDL.
    assert by_scheme["LRC"].mttdl_hours < 0.01 * by_scheme["RS"].mttdl_hours

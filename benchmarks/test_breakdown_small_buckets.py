"""§6.3 breakdown — small-size-bucket shares and average chunk sizes."""

from conftest import emit

from repro.experiments import breakdown
from repro.experiments.common import W1_SETTING, W2_SETTING

MB = 1 << 20


def test_breakdown_small_buckets(benchmark):
    def both():
        return (breakdown.run(W1_SETTING, n_objects=10_000),
                breakdown.run(W2_SETTING, n_objects=20_000))

    w1, w2 = benchmark.pedantic(both, rounds=1, iterations=1)
    emit("§6.3 breakdown",
         breakdown.to_text(w1, W1_SETTING) + "\n\n"
         + breakdown.to_text(w2, W2_SETTING))
    w1_rows = {r.scheme: r for r in w1}
    # Larger s0 -> larger small-size-bucket share and larger chunks.
    assert (w1_rows["Geo-1M"].small_bucket_share
            < w1_rows["Geo-4M"].small_bucket_share
            < w1_rows["Geo-16M"].small_bucket_share < 0.15)
    # Paper: 14.8 / 25.0 / 56.4 MB average chunks; Stripe-Max only 10.3 MB.
    assert w1_rows["Geo-4M"].average_chunk_size > \
        2 * w1_rows["Stripe-Max"].average_chunk_size
    assert abs(w1_rows["Stripe-Max"].average_chunk_size - 10.3 * MB) < 2 * MB

"""§6.2 headline — 1.85x RS / 1.30x LRC recovery, degraded ≈ normal reads."""

from conftest import emit

from repro.experiments import headline


def test_headline_ratios(benchmark):
    result = benchmark.pedantic(
        lambda: headline.run(n_objects_w1=3000, n_objects_w2=25_000),
        rounds=1, iterations=1)
    emit("§6.2 headline claims", headline.to_text(result))
    assert result.w1_vs_rs > 1.4
    assert result.w1_vs_lrc > 1.05
    assert result.w2_vs_rs > 1.0
    assert 0.9 < result.degraded_over_normal < 1.3

"""§6.3 — degraded range reads (random offset, uniform length)."""

from conftest import emit

from repro.experiments import range_access


def test_range_access(benchmark):
    rows = benchmark.pedantic(
        lambda: range_access.run(n_objects=1200, n_requests=25),
        rounds=1, iterations=1)
    emit("§6.3 range degraded reads (W1)", range_access.to_text(rows))
    by_scheme = {r.scheme: r for r in rows}
    # Under contention, Geometric's partial repair beats Contiguous — the
    # paper's 67.6% ratio (idle differences are transfer-hidden in our
    # calibration; see EXPERIMENTS.md).
    assert by_scheme["Geo-4M"].mean_range_ms_busy < \
        by_scheme["Con-16M"].mean_range_ms_busy

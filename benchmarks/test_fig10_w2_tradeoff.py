"""Figure 10 — W2 (SSD) recovery time vs degraded read time, all schemes."""

from conftest import emit

from repro.experiments import tradeoff
from repro.experiments.common import W2_SETTING


def test_fig10_w2_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: tradeoff.run(W2_SETTING, n_objects=25_000, n_requests=10),
        rounds=1, iterations=1)
    emit("Figure 10: W2 recovery vs degraded read (idle + busy)",
         tradeoff.to_text(result))
    per_byte = {r.scheme: r.recovery_time / r.repaired_bytes
                for r in result.results}
    # Paper: Clay+Geo recovers 2.01x faster than RS on W2.
    assert per_byte["RS"] > 1.1 * per_byte["Geo-128K"]
    # Degraded reads are single-digit milliseconds on SSDs (paper: 3-7 ms).
    for r in result.results:
        assert r.degraded_ms < 20

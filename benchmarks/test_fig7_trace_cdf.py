"""Figure 7 — trace byte-CDFs of capacity and read traffic."""

from conftest import emit

from repro.experiments import fig7


def test_fig7_trace_cdf(benchmark):
    result = benchmark.pedantic(lambda: fig7.run(n_objects=60_000),
                                rounds=1, iterations=1)
    emit("Figure 7: trace byte-CDFs", fig7.to_text(result))
    assert result.capacity_above_4mb > 0.977

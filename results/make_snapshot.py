#!/usr/bin/env python
"""Regenerate results/snapshot.txt — the run EXPERIMENTS.md quotes.

Usage:  python results/make_snapshot.py > results/snapshot.txt
Takes a few minutes; all sampling is seeded, so reruns are reproducible.
"""

import time

from repro.experiments import (
    ablations,
    breakdown,
    calibration,
    durability,
    fig2,
    fig3_fig8,
    fig4,
    fig7,
    fig11_fig12,
    fig13,
    fig14,
    headline,
    range_access,
    table1,
    table2,
    table3,
    table4,
    table5,
    tradeoff,
)
from repro.experiments.common import W1_SETTING, W2_SETTING


def main() -> None:
    t0 = time.time()
    print("== Table 1 =="); print(table1.to_text(table1.run()))
    print("\n== Figure 2 =="); print(fig2.to_text(fig2.run()))
    print("\n== Figures 3/8 =="); print(fig3_fig8.to_text(fig3_fig8.run()))
    print("\n== Figure 4 =="); print(fig4.to_text(fig4.run()))
    print("\n== Calibration =="); print(calibration.to_text(calibration.anchors()))
    print("\n== Figure 7 =="); print(fig7.to_text(fig7.run(n_objects=100_000)))
    print("\n== Table 2 =="); print(table2.to_text(table2.run(n_objects=40_000)))
    w1 = tradeoff.run(W1_SETTING, n_objects=4000, n_requests=25)
    print("\n== Figure 9 (W1) =="); print(tradeoff.to_text(w1))
    w2 = tradeoff.run(W2_SETTING, n_objects=30_000, n_requests=15)
    print("\n== Figure 10 (W2) =="); print(tradeoff.to_text(w2))
    print("\n== Table 3 (from the same runs) ==")
    print(table3.to_text(w1)); print(); print(table3.to_text(w2))
    print("\n== Headline =="); print(headline.to_text(headline.run(w1=w1, w2=w2)))
    print("\n== Figure 11 (W1) ==")
    print(fig11_fig12.to_text(fig11_fig12.run(W1_SETTING, n_objects=1500,
                                              n_probes=20)))
    print("\n== Figure 12 (W2) ==")
    print(fig11_fig12.to_text(fig11_fig12.run(W2_SETTING, n_objects=10_000,
                                              n_probes=20)))
    print("\n== Figure 13 ==")
    print(fig13.to_text(fig13.run(n_objects=1500, n_requests=25)))
    print("\n== Figure 14 (W1) ==")
    print(fig14.to_text(fig14.run(W1_SETTING, n_objects=6000), W1_SETTING))
    print("\n== Figure 14 (W2) ==")
    print(fig14.to_text(fig14.run(W2_SETTING, n_objects=20_000), W2_SETTING))
    print("\n== Breakdown W1 ==")
    print(breakdown.to_text(breakdown.run(W1_SETTING, n_objects=12_000),
                            W1_SETTING))
    print("\n== Breakdown W2 ==")
    print(breakdown.to_text(breakdown.run(W2_SETTING, n_objects=25_000),
                            W2_SETTING))
    print("\n== Range access (W1) ==")
    print(range_access.to_text(range_access.run(n_objects=1500, n_requests=30)))
    print("\n== Table 4 =="); print(table4.to_text(table4.run(n_objects=600)))
    print("\n== Table 5 ==")
    print(table5.to_text(table5.run(n_objects=1500, n_requests=15)))
    print("\n== Ablations =="); print(ablations.to_text(W1_SETTING))
    prio = ablations.io_priority_ablation(n_objects=1200, n_requests=12)
    print(f"\nIO priority: degraded {prio.degraded_ms_with_priority:.0f}ms "
          f"(priority lanes) vs {prio.degraded_ms_without_priority:.0f}ms "
          f"(ablated)")
    print("\n== Durability ==")
    print(durability.to_text(durability.run(tradeoff_result=w1)))
    print(f"\n[total wall time {time.time() - t0:.0f}s]")


if __name__ == "__main__":
    main()

"""Whole-program driver: passes, incremental cache, baseline, SARIF.

``run_whole_program`` is the engine behind ``simlint --whole-program``:

1. hash every source file and consult the **run cache** — an identical
   (engine, select, file-hash set) run replays its recorded findings with
   zero re-analysis;
2. run the per-file tier-1 rules, reusing the **per-file cache** for any
   file whose content hash is unchanged;
3. build the project call graph once and run the three whole-program
   passes over it: determinism taint (:mod:`repro.analysis.taint`),
   cooperative-process races (:mod:`repro.analysis.races`) and
   interprocedural grant escape (:mod:`repro.analysis.summaries`);
4. honor ``# simlint: disable=`` comments for every finding, exactly as
   the per-file tier does.

The module also implements the **baseline** workflow (fingerprints that
survive line-number drift, so legacy findings can be frozen while new
ones gate CI) and the ``sarif`` / ``github`` output formats used by the
CI job.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import Project
from repro.analysis.linter import (
    Violation,
    iter_python_files,
    lint_source,
)
from repro.analysis.races import RacePass
from repro.analysis.summaries import GrantEscapePass, GrantSummaries
from repro.analysis.taint import TaintPass

#: Bumping this invalidates every cache entry and baseline engine match.
ENGINE_VERSION = "simlint-2.0"

#: Whole-program rule descriptors: (id, pass, summary).  The per-file
#: rules live in :data:`repro.analysis.rules.ALL_RULES`; these families
#: only exist at whole-program scope.
WHOLE_PROGRAM_RULES: tuple = (
    ("DET701", "determinism-taint",
     "nondeterministic value reaches event scheduling or a resource "
     "request priority"),
    ("DET702", "determinism-taint",
     "nondeterministic value reaches a metric label"),
    ("DET703", "determinism-taint",
     "nondeterministic value reaches scenario parameters"),
    ("RACE801", "race-detection",
     "snapshot of concurrently-written state used across an unprotected "
     "yield (check-then-act)"),
    ("RACE802", "race-detection",
     "cross-yield compose/restore write pair on concurrently-written "
     "state"),
    ("RES301", "grant-escape",
     "interprocedural lift: leak through helpers that neither release "
     "nor take ownership"),
    ("RES302", "grant-escape",
     "interprocedural lift: grant held across a wait despite helper "
     "calls"),
    ("FLT501", "grant-escape",
     "interprocedural lift: repair-path grant handed to a helper that "
     "waits on it unprotected"),
)


@dataclass
class PassTiming:
    """Wall-clock and outcome of one analysis stage."""

    name: str
    seconds: float
    findings: int
    cached: bool = False


@dataclass
class WholeProgramStats:
    files_total: int = 0
    files_reanalysed: int = 0     # per-file lints actually executed
    run_cache_hit: bool = False
    passes: list[PassTiming] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"files: {self.files_total} "
                 f"({self.files_reanalysed} re-analysed, "
                 f"run cache {'hit' if self.run_cache_hit else 'miss'})"]
        for p in self.passes:
            tag = "cached" if p.cached else f"{p.seconds * 1000:7.1f} ms"
            lines.append(f"  {p.name:<22} {tag:>10}  "
                         f"{p.findings} finding(s)")
        return "\n".join(lines)


@dataclass
class WholeProgramRun:
    """Findings plus bookkeeping of one whole-program analysis."""

    findings: list[Violation]
    stats: WholeProgramStats


# ----------------------------------------------------------------------
# serialization helpers
# ----------------------------------------------------------------------
def _to_dict(v: Violation) -> dict:
    return {"rule": v.rule, "path": v.path, "line": v.line,
            "col": v.col, "message": v.message}


def _from_dict(d: dict) -> Violation:
    return Violation(d["rule"], d["path"], d["line"], d["col"],
                     d["message"])


def _digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def run_whole_program(paths, select=None, cache_dir="results/lintcache",
                      use_cache: bool = True) -> WholeProgramRun:
    """Run tier-1 rules plus the whole-program passes over ``paths``."""
    selected = {r.upper() for r in select} if select is not None else None
    sel_key = ",".join(sorted(selected)) if selected is not None else "*"
    files = iter_python_files(paths)
    sources: dict[str, str] = {}
    for f in files:
        sources[str(f)] = Path(f).read_text(encoding="utf-8")
    hashes = {path: _digest(src) for path, src in sources.items()}

    stats = WholeProgramStats(files_total=len(files))
    cache = _Cache(cache_dir) if use_cache else None
    run_key = hashlib.sha256(repr(
        (ENGINE_VERSION, sel_key, sorted(hashes.items()))
    ).encode("utf-8")).hexdigest()

    if cache is not None:
        cached_run = cache.load_run(run_key)
        if cached_run is not None:
            stats.run_cache_hit = True
            findings = [_from_dict(d) for d in cached_run["findings"]]
            for p in cached_run["passes"]:
                stats.passes.append(PassTiming(p["name"], 0.0,
                                               p["findings"], cached=True))
            return WholeProgramRun(findings, stats)

    # -- tier 1: per-file rules through the per-file cache ---------------
    t0 = time.perf_counter()
    tier1: list[Violation] = []
    file_cache = cache.load_files() if cache is not None else {}
    for path, src in sources.items():
        key = f"{hashes[path]}:{sel_key}"
        entry = file_cache.get(key)
        if entry is not None and entry["path"] == path:
            tier1.extend(_from_dict(d) for d in entry["violations"])
            continue
        violations = lint_source(src, path, select)
        stats.files_reanalysed += 1
        tier1.extend(violations)
        file_cache[key] = {"path": path,
                           "violations": [_to_dict(v) for v in violations]}
    stats.passes.append(PassTiming("per-file rules",
                                   time.perf_counter() - t0, len(tier1)))

    # -- whole-program: one project, three passes ------------------------
    t0 = time.perf_counter()
    project = Project()
    for path, src in sources.items():
        project.add_source(src, path)
    project.link()
    stats.passes.append(PassTiming("call graph",
                                   time.perf_counter() - t0, 0))

    wp: list[Violation] = []
    for name, runner in (
            ("determinism taint", lambda: TaintPass(project).run()),
            ("race detection", lambda: RacePass(project).run()),
            ("grant escape", lambda: GrantEscapePass(project).run())):
        t0 = time.perf_counter()
        found = _filter(project, runner(), selected)
        stats.passes.append(PassTiming(name, time.perf_counter() - t0,
                                       len(found)))
        wp.extend(found)

    findings = tier1 + wp
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    if cache is not None:
        cache.save_files(file_cache)
        cache.save_run(run_key, {
            "engine": ENGINE_VERSION,
            "findings": [_to_dict(v) for v in findings],
            "passes": [{"name": p.name, "findings": p.findings}
                       for p in stats.passes]})
    return WholeProgramRun(findings, stats)


def _filter(project: Project, violations, selected) -> list[Violation]:
    """Apply ``--select`` and suppression comments to pass findings."""
    by_path = {mod.path: mod.suppressions
               for mod in project.modules.values()}
    out = []
    for v in violations:
        if selected is not None and v.rule not in selected:
            continue
        sup = by_path.get(v.path)
        if sup is not None and sup.is_suppressed(v.rule, v.line):
            continue
        out.append(v)
    return out


class _Cache:
    """Content-hash caches under ``results/lintcache/``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _read(self, name: str):
        try:
            return json.loads((self.root / name).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def _write(self, name: str, payload) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / name).write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8")

    def load_run(self, key: str):
        data = self._read(f"run-{key}.json")
        if data is not None and data.get("engine") == ENGINE_VERSION:
            return data
        return None

    def save_run(self, key: str, payload: dict) -> None:
        self._write(f"run-{key}.json", payload)

    def load_files(self) -> dict:
        data = self._read("files.json")
        if isinstance(data, dict) \
                and data.get("engine") == ENGINE_VERSION:
            return data.get("entries", {})
        return {}

    def save_files(self, entries: dict) -> None:
        self._write("files.json",
                    {"engine": ENGINE_VERSION, "entries": entries})


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------
def _line_text(sources: dict, v: Violation) -> str:
    src = sources.get(v.path)
    if src is None:
        try:
            src = Path(v.path).read_text(encoding="utf-8")
        except OSError:
            src = ""
        sources[v.path] = src
    lines = src.splitlines()
    if 1 <= v.line <= len(lines):
        return lines[v.line - 1].strip()
    return ""


def fingerprints(findings, sources: dict | None = None) -> list[str]:
    """One stable fingerprint per finding, aligned with ``findings``.

    ``sha1(rule|path|stripped source line|occurrence)`` — independent of
    line *numbers*, so unrelated edits above a legacy finding do not
    unbaseline it; the occurrence index disambiguates identical lines.
    """
    sources = {} if sources is None else sources
    counts: dict = {}
    out = []
    for v in findings:
        text = _line_text(sources, v)
        base = f"{v.rule}|{v.path}|{text}"
        idx = counts.get(base, 0)
        counts[base] = idx + 1
        out.append(hashlib.sha1(f"{base}|{idx}".encode("utf-8")).hexdigest())
    return out


def write_baseline(findings, path: str | Path,
                   sources: dict | None = None) -> int:
    """Freeze the given findings into a baseline file; returns the count."""
    prints = sorted(fingerprints(findings, sources))
    payload = {"engine": ENGINE_VERSION, "version": 1,
               "fingerprints": prints}
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return len(prints)


def apply_baseline(findings, baseline_path: str | Path,
                   sources: dict | None = None):
    """Split findings into (new, baselined) against a baseline file."""
    try:
        data = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
        known = set(data.get("fingerprints", ()))
    except (OSError, ValueError):
        known = set()
    new, baselined = [], []
    for v, fp in zip(findings, fingerprints(findings, sources)):
        (baselined if fp in known else new).append(v)
    return new, baselined


# ----------------------------------------------------------------------
# output formats
# ----------------------------------------------------------------------
def to_sarif(findings) -> str:
    """SARIF 2.1.0, serialized deterministically (byte-identical for
    identical findings)."""
    from repro.analysis.rules import ALL_RULES

    rule_meta = {r.id: r.summary for r in ALL_RULES}
    for rid, _pass, summary in WHOLE_PROGRAM_RULES:
        rule_meta.setdefault(rid, summary)
    used = sorted({v.rule for v in findings})
    rules = [{"id": rid,
              "shortDescription": {"text": rule_meta.get(rid, rid)}}
             for rid in used]
    results = [{
        "ruleId": v.rule,
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": v.path.replace("\\", "/")},
                "region": {"startLine": v.line,
                           "startColumn": max(v.col, 0) + 1},
            }}],
    } for v in findings]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "simlint",
                                "version": ENGINE_VERSION,
                                "rules": rules}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _escape_property(text: str) -> str:
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_data(text: str) -> str:
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def to_github(findings) -> str:
    """GitHub Actions workflow commands: one ``::error`` annotation per
    finding, rendered on the PR diff by the CI job."""
    lines = []
    for v in findings:
        lines.append(
            f"::error file={_escape_property(v.path)},line={v.line},"
            f"col={max(v.col, 0) + 1},"
            f"title=simlint {v.rule}::{_escape_data(v.message)}")
    return "\n".join(lines) + ("\n" if lines else "")
"""simlint rule definitions.

Rule IDs are stable and documented in README.md ("Static analysis &
invariants"):

======  ============================================================
SIM101  wall-clock call in a deterministic layer
SIM102  nondeterministic RNG (module-level ``random``, unseeded
        ``default_rng()``, legacy ``np.random.*`` globals)
SIM103  iteration over an unordered set display/call (autofixable:
        wrap in ``sorted(...)``)
GEN201  bare ``yield`` in a process generator
GEN202  process generator yields a non-event literal
GEN203  discarded return value of a fire-and-forget process
RES301  resource grant not released on every path
RES302  grant held across a sim wait without try/finally protection
LAY401  import layering violation
LAY402  mutable default argument
FLT501  repair-path wait on a fault-injectable resource grant without
        timeout/cancellation handling (normal-read service routines
        are allow-listed)
OBS601  per-event metric registry lookup (``.counter(...)`` /
        ``.gauge(...)`` / ``.histogram(...)``) inside a loop of a
        process generator; hoist the handle before the loop
======  ============================================================

Every rule applies to a set of *layers* (``repro`` subpackages).  The
deterministic layers — everything whose behaviour feeds simulated results —
are ``sim``, ``cluster``, ``core``, ``trace``, ``codes``, ``gf`` and
``reliability``; the experiment CLI may use wall-clock time for progress
reporting but must still seed every RNG.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.cfg import analyse_function
from repro.analysis.linter import Fix, Violation

#: Layers whose behaviour determines simulated numbers.
DETERMINISTIC_LAYERS = frozenset(
    {"sim", "cluster", "core", "trace", "codes", "gf", "faults",
     "reliability", "placement", "traffic"})

#: Layers where process generators live.
PROCESS_LAYERS = frozenset({"sim", "cluster", "core", "faults"})

#: Allowed intra-``repro`` imports per layer (the architecture DAG).
LAYER_DEPS: dict[str, frozenset] = {
    "": frozenset({"", "sim", "gf", "codes", "core", "trace", "obs",
                   "cluster", "faults", "reliability"}),
    "sim": frozenset({"sim"}),
    "gf": frozenset({"gf"}),
    "codes": frozenset({"codes", "gf"}),
    "core": frozenset({"core", "codes", "gf"}),
    "trace": frozenset({"trace"}),
    "obs": frozenset({"obs"}),
    # The fleet durability engine runs trials on the sim engine, reuses
    # the fault-plan generators, and enumerates PGs through the cluster
    # shape/placement registry; the analytic chain stays dependency-free.
    "reliability": frozenset({"reliability", "sim", "faults", "cluster",
                              "placement"}),
    # Fault plans/injectors touch only the engine and device fault state.
    "faults": frozenset({"faults", "sim"}),
    # Placement policies see only the cluster *shape* types
    # (repro.cluster.topology) — never disks, networks, or runtimes.
    "placement": frozenset({"placement", "cluster"}),
    # Traffic generation is pure sampling over numpy generators; the
    # serving side (repro.cluster.qos) lives in cluster, so the arrow
    # points cluster-ward only from the layers above.
    "traffic": frozenset({"traffic"}),
    "cluster": frozenset({"cluster", "codes", "core", "faults", "gf", "obs",
                          "placement", "sim", "trace"}),
    "analysis": frozenset({"analysis", "codes", "gf", "obs", "sim"}),
    # The runner orchestrates observers and invariant checks but never the
    # simulation itself; "" is the top-level package (for __version__).
    "runner": frozenset({"runner", "obs", "analysis", ""}),
    "experiments": frozenset({"experiments", "analysis", "cluster", "codes",
                              "core", "faults", "gf", "obs", "placement",
                              "reliability", "runner", "sim", "trace",
                              "traffic"}),
    # The benchmark harness drives everything below it but nothing imports
    # bench back; it sits beside experiments at the top of the DAG.  It may
    # time the analysis engine too (simlint cold/warm benchmarks).
    "bench": frozenset({"analysis", "bench", "cluster", "codes", "core",
                        "experiments", "gf", "obs", "placement",
                        "reliability", "runner", "sim", "traffic"}),
}

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.localtime", "time.gmtime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

_LEGACY_NP_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "uniform", "normal",
    "lognormal", "exponential", "poisson", "binomial", "bytes",
})

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
     "Counter", "deque"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: id, summary, layer scoping, and the AST check."""

    id: str = ""
    summary: str = ""
    autofixable: bool = False
    layers: frozenset | None = None  # None: every layer, even outside repro
    #: How the rule reasons: "syntactic" (pattern over one AST) or
    #: "cfg" (control-flow walk of one function).  Whole-program passes
    #: live outside this registry (see repro.analysis.wholeprogram).
    scope: str = "syntactic"

    def applies_to(self, layer: str | None) -> bool:
        if self.layers is None:
            return True
        return layer in self.layers

    def check(self, tree: ast.Module, source: str,
              path: str) -> Iterable[Violation]:
        raise NotImplementedError


class WallClockRule(Rule):
    id = "SIM101"
    summary = ("wall-clock time in a deterministic layer skews simulated "
               "results; use env.now or accept time as a parameter")
    layers = DETERMINISTIC_LAYERS

    def check(self, tree, source, path):
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"call to wall clock `{name}()` in a deterministic "
                        "layer; simulated time must come from `env.now`")


class NondeterministicRngRule(Rule):
    id = "SIM102"
    summary = ("module-level/unseeded RNG breaks run-to-run reproducibility; "
               "thread a seeded Generator/Random through instead")
    layers = DETERMINISTIC_LAYERS | {"experiments"}

    def check(self, tree, source, path):
        has_random_import = any(
            isinstance(n, ast.Import) and any(a.name == "random"
                                              for a in n.names)
            for n in ast.walk(tree))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            if has_random_import and name.startswith("random.") \
                    and name.count(".") == 1:
                attr = name.split(".", 1)[1]
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield Violation(
                            self.id, path, node.lineno, node.col_offset,
                            "unseeded `random.Random()`; pass the per-run "
                            "seed so identical seeds give identical results")
                else:
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"module-level `{name}()` uses the shared global "
                        "RNG; use the per-run seeded instance")
            if name in ("np.random.default_rng", "numpy.random.default_rng") \
                    and not node.args and not node.keywords:
                yield Violation(
                    self.id, path, node.lineno, node.col_offset,
                    "`default_rng()` without a seed draws OS entropy; pass "
                    "the per-run seed")
            if name is not None and name.count(".") == 2:
                head, mid, attr = name.split(".")
                if head in ("np", "numpy") and mid == "random" \
                        and attr in _LEGACY_NP_RANDOM:
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"legacy `{name}()` uses numpy's global RNG state; "
                        "use a seeded `np.random.Generator`")


class SetIterationRule(Rule):
    id = "SIM103"
    summary = ("iterating an unordered set feeds nondeterministic order "
               "into event scheduling; wrap in sorted(...)")
    autofixable = True
    layers = PROCESS_LAYERS

    def check(self, tree, source, path):
        iters: list[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if self._is_set_expr(it):
                segment = ast.get_source_segment(source, it)
                fix = None
                if segment is not None:
                    fix = Fix(it.lineno, it.col_offset, it.end_lineno,
                              it.end_col_offset, f"sorted({segment})")
                yield Violation(
                    self.id, path, it.lineno, it.col_offset,
                    "iteration over an unordered set; wrap in `sorted(...)` "
                    "so event scheduling order is deterministic", fix=fix)

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))


def _collect_process_generators(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Generator functions used as simulation processes.

    A function is a process generator if its name is passed to some
    ``*.process(f(...))`` call in this module, or if it yields an obvious
    event construction (``*.timeout(...)``, ``*.process(...)``,
    ``*.all_of(...)``).
    """
    process_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "process" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Call):
                if isinstance(arg.func, ast.Name):
                    process_names.add(arg.func.id)
                elif isinstance(arg.func, ast.Attribute):
                    process_names.add(arg.func.attr)
    out: dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        yields = [n for n in ast.walk(node)
                  if isinstance(n, (ast.Yield, ast.YieldFrom))]
        if not yields:
            continue
        if node.name in process_names:
            out[node.name] = node
            continue
        for y in yields:
            value = getattr(y, "value", None)
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Attribute) \
                    and value.func.attr in ("timeout", "process", "all_of"):
                out[node.name] = node
                break
    return out


class BareYieldRule(Rule):
    id = "GEN201"
    summary = "process generators must yield events, never a bare `yield`"
    layers = PROCESS_LAYERS

    def check(self, tree, source, path):
        for fn in _collect_process_generators(tree).values():
            for node in ast.walk(fn):
                if isinstance(node, ast.Yield) and node.value is None:
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"bare `yield` in process generator "
                        f"`{fn.name}`; the engine requires an event")


class NonEventYieldRule(Rule):
    id = "GEN202"
    summary = "process generators must yield events, not plain values"
    layers = PROCESS_LAYERS

    def check(self, tree, source, path):
        for fn in _collect_process_generators(tree).values():
            for node in ast.walk(fn):
                if isinstance(node, ast.Yield) and isinstance(
                        node.value, (ast.Constant, ast.List, ast.Tuple,
                                     ast.Dict, ast.Set, ast.JoinedStr)):
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"process generator `{fn.name}` yields a literal, "
                        "not an event; the engine will raise at runtime")


class DiscardedProcessReturnRule(Rule):
    id = "GEN203"
    summary = ("a fire-and-forget `env.process(f())` discards `f`'s return "
               "value; await the Process event to receive it")
    layers = PROCESS_LAYERS

    def check(self, tree, source, path):
        returning: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not any(isinstance(n, (ast.Yield, ast.YieldFrom))
                       for n in ast.walk(node)):
                continue
            for n in ast.walk(node):
                if isinstance(n, ast.Return) and n.value is not None \
                        and not (isinstance(n.value, ast.Constant)
                                 and n.value.value is None):
                    returning.add(node.name)
        if not returning:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if isinstance(call.func, ast.Attribute) \
                        and call.func.attr == "process" and call.args \
                        and isinstance(call.args[0], ast.Call) \
                        and isinstance(call.args[0].func, ast.Name) \
                        and call.args[0].func.id in returning:
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"return value of process generator "
                        f"`{call.args[0].func.id}` is discarded; assign the "
                        "Process event and yield it to receive the value")


class ResourceReleaseRule(Rule):
    id = "RES301"
    summary = "every resource grant must be released on every path"
    layers = None  # resource usage can appear anywhere
    scope = "cfg"

    def check(self, tree, source, path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            for finding in analyse_function(node):
                line = finding.site.stmt.lineno
                for exit_line in finding.leak_exits:
                    yield Violation(
                        self.id, path, line, finding.site.stmt.col_offset,
                        f"`{finding.site.var}` acquired here is not released "
                        f"on the path exiting at line {exit_line}; release "
                        "in a try/finally or use `with`")


class UnprotectedWaitRule(Rule):
    id = "RES302"
    summary = ("grants held across sim waits need try/finally so injected "
               "faults cannot leak them")
    layers = None
    scope = "cfg"

    def check(self, tree, source, path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            for finding in analyse_function(node):
                for wait_line in finding.unprotected_waits:
                    yield Violation(
                        self.id, path, wait_line, 0,
                        f"grant `{finding.site.var}` (line "
                        f"{finding.site.stmt.lineno}) held across this "
                        "`yield` without try/finally; a fault during the "
                        "wait leaks the grant")


#: Function-name fragments that mark repair-path code — the code fault
#: injection interrupts (hedge timeouts, mid-repair crashes).
_REPAIR_PATH_MARKERS = ("repair", "recover", "rebuild", "regenerat",
                        "decode", "fallback", "hedge")

#: Normal-read service routines: fault injection never interrupts a plain
#: foreground read mid-wait, so a raw grant wait is fine there even when
#: the function name would otherwise look repair-flavoured.
_NORMAL_READ_ALLOWLIST = frozenset({"_batch_read", "_normal_read_proc"})


class HedgelessRepairWaitRule(Rule):
    id = "FLT501"
    summary = ("repair-path code must not wait on a fault-injectable "
               "resource grant without timeout/cancellation handling")
    layers = frozenset({"cluster", "faults"})
    scope = "cfg"

    def check(self, tree, source, path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name in _NORMAL_READ_ALLOWLIST:
                continue
            lowered = node.name.lower()
            if not any(m in lowered for m in _REPAIR_PATH_MARKERS):
                continue
            tracked = self._request_vars(node)
            if tracked:
                yield from self._scan(node.body, tracked, False, path,
                                      node.name)

    @staticmethod
    def _request_vars(fn: ast.FunctionDef) -> set[str]:
        """Variables bound to raw ``*.request(...)`` calls (a with-managed
        request cancels itself on exit, so withitems are not tracked)."""
        out: set[str] = set()
        for n in ast.walk(fn):
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Call) \
                    and isinstance(n.value.func, ast.Attribute) \
                    and n.value.func.attr == "request":
                out.update(t.id for t in n.targets
                           if isinstance(t, ast.Name))
        return out

    def _scan(self, stmts, tracked: set[str], protected: bool, path: str,
              fn_name: str) -> Iterable[Violation]:
        """Statement walk tracking try/finally-or-except protection.

        Does not descend into nested function definitions — a nested
        generator is scoped by its own name on the outer walk.
        """
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Try):
                inner = protected or self._try_cancels(stmt, tracked)
                yield from self._scan(stmt.body, tracked, inner, path,
                                      fn_name)
                for handler in stmt.handlers:
                    yield from self._scan(handler.body, tracked, protected,
                                          path, fn_name)
                yield from self._scan(stmt.orelse, tracked, protected,
                                      path, fn_name)
                yield from self._scan(stmt.finalbody, tracked, protected,
                                      path, fn_name)
                continue
            if not protected:
                for var, line, col in self._grant_waits(stmt, tracked):
                    yield Violation(
                        self.id, path, line, col,
                        f"repair-path `{fn_name}` waits on resource grant "
                        f"`{var}` with no timeout/cancellation handling; an "
                        "injected fault interrupting the wait strands the "
                        "queued request — use `with ...request(...)` or "
                        "cancel it in try/finally")
            for body in ("body", "orelse", "finalbody"):
                yield from self._scan(getattr(stmt, body, []), tracked,
                                      protected, path, fn_name)

    @staticmethod
    def _grant_waits(stmt: ast.stmt, tracked: set[str]):
        """``yield <tracked-name>`` expressions in one statement, skipping
        nested function subtrees."""
        stack = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Yield) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in tracked:
                yield node.value.id, node.lineno, node.col_offset
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _try_cancels(node: ast.Try, tracked: set[str]) -> bool:
        """Whether the try's finally/except cleans up a tracked request
        (``req.cancel()`` or ``*.release(req)``)."""
        cleanup = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        for stmt in cleanup:
            for n in ast.walk(stmt):
                if not (isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)):
                    continue
                if n.func.attr == "cancel" \
                        and isinstance(n.func.value, ast.Name) \
                        and n.func.value.id in tracked:
                    return True
                if n.func.attr == "release" and any(
                        isinstance(a, ast.Name) and a.id in tracked
                        for a in n.args):
                    return True
        return False


class LayeringRule(Rule):
    id = "LAY401"
    summary = "intra-repro imports must follow the architecture DAG"
    layers = frozenset(LAYER_DEPS)

    def check(self, tree, source, path):
        from repro.analysis.linter import layer_of

        layer = layer_of(path)
        allowed = LAYER_DEPS.get(layer)
        if allowed is None:
            return
        for node in ast.walk(tree):
            targets: list[tuple[str, ast.stmt]] = []
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                targets.append((node.module, node))
            elif isinstance(node, ast.Import):
                targets.extend((a.name, node) for a in node.names)
            for module, stmt in targets:
                parts = module.split(".")
                if parts[0] != "repro":
                    continue
                target = parts[1] if len(parts) > 1 else ""
                if target not in allowed:
                    yield Violation(
                        self.id, path, stmt.lineno, stmt.col_offset,
                        f"layer `{layer or 'repro'}` must not import "
                        f"`{module}` (allowed: "
                        f"{', '.join(sorted(x for x in allowed if x)) or 'none'})")


class MutableDefaultRule(Rule):
    id = "LAY402"
    summary = "mutable default arguments are shared across calls"
    layers = None

    def check(self, tree, source, path):
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Violation(
                        self.id, path, default.lineno, default.col_offset,
                        f"mutable default argument in `{name}`; default to "
                        "None and construct inside the body")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CONSTRUCTORS)


#: Registry accessor methods that hash labels and consult a dict per call.
_REGISTRY_LOOKUPS = frozenset({"counter", "gauge", "histogram"})


def _scoped_nodes(node: ast.AST) -> Iterable[ast.AST]:
    """Every node beneath ``node`` without entering nested functions."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class HotLoopMetricLookupRule(Rule):
    id = "OBS601"
    summary = ("metric registry lookups inside process-generator loops must "
               "be hoisted to pre-bound handles")
    layers = frozenset({"sim", "cluster", "faults"})

    def check(self, tree, source, path):
        seen: set[tuple[int, int]] = set()
        for fn in ast.walk(tree):
            if not isinstance(fn, ast.FunctionDef):
                continue
            own = list(_scoped_nodes(fn))
            if not any(isinstance(n, (ast.Yield, ast.YieldFrom))
                       for n in own):
                continue  # not a process generator: one-shot cost is fine
            for loop in own:
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in _scoped_nodes(loop):
                    if not (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in _REGISTRY_LOOKUPS):
                        continue
                    chain = _dotted(node.func.value)
                    if chain is None:
                        continue
                    parts = chain.lower().split(".")
                    if "tracer" in parts:
                        continue  # tracer.counter tracks, not the registry
                    if not any("metrics" in p or p == "obs" for p in parts):
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue  # nested loops see the same call twice
                    seen.add(key)
                    yield Violation(
                        self.id, path, node.lineno, node.col_offset,
                        f"`{chain}.{node.func.attr}(...)` inside a loop of "
                        f"process generator `{fn.name}` looks the metric up "
                        "per iteration; hoist the handle before the loop")


ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(), NondeterministicRngRule(), SetIterationRule(),
    BareYieldRule(), NonEventYieldRule(), DiscardedProcessReturnRule(),
    ResourceReleaseRule(), UnprotectedWaitRule(),
    LayeringRule(), MutableDefaultRule(), HedgelessRepairWaitRule(),
    HotLoopMetricLookupRule(),
)

"""Control-flow walk for resource acquire/release pairing (RES301/RES302).

The analysis is a path-sensitive abstract interpretation over a function's
statements.  For each acquire site (``req = X.request(...)`` or
``.acquire(...)``) the tracked request walks a tiny state machine:

    NONE --request()--> PENDING --yield req--> OPEN --release(req)--> CLOSED

* **RES301** fires when any path reaches a function exit (fall-through,
  ``return`` or ``raise``) with the request still PENDING or OPEN — the
  grant (or queued waiter) leaks.
* **RES302** fires when an OPEN grant is held across a ``yield`` (a sim
  wait) that is not protected by a ``try``/``finally`` releasing it or a
  ``with`` block — a fault injected during the wait would leak the grant.

Ownership escapes end the analysis conservatively: returning the request,
passing it to a call other than ``release``/``cancel``, aliasing or storing
it all mark the request CLOSED (someone else is now responsible), which
keeps the rule free of false positives on the resource layer itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

ACQUIRE_METHODS = frozenset({"request", "acquire"})
RELEASE_METHODS = frozenset({"release", "cancel"})

# Abstract states of the tracked request.
PENDING = "pending"   # requested, not yet granted
OPEN = "open"         # granted, not yet released
CLOSED = "closed"     # released / cancelled / ownership escaped


@dataclass(frozen=True)
class AcquireSite:
    """One ``var = <recv>.request(...)`` statement inside a function."""

    var: str
    stmt: ast.stmt
    call: ast.Call
    managed: bool  # acquired as a `with` context manager


@dataclass
class LeakFinding:
    """Outcome of analysing one acquire site."""

    site: AcquireSite
    leak_exits: list[int] = field(default_factory=list)      # RES301 lines
    unprotected_waits: list[int] = field(default_factory=list)  # RES302 lines


def _own_statements(fn: ast.AST):
    """Every statement inside ``fn`` but outside nested function defs."""
    todo = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        todo.extend(ast.iter_child_nodes(node))


def find_acquire_sites(fn: ast.FunctionDef) -> list[AcquireSite]:
    """Acquire sites assigned to a simple name inside this function."""
    sites: list[AcquireSite] = []
    for stmt in _own_statements(fn):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and _is_acquire_call(stmt.value):
            sites.append(AcquireSite(stmt.targets[0].id, stmt, stmt.value,
                                     managed=False))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if _is_acquire_call(item.context_expr) and \
                        isinstance(item.optional_vars, ast.Name):
                    sites.append(AcquireSite(item.optional_vars.id, stmt,
                                             item.context_expr, managed=True))
    return sites


def _is_acquire_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ACQUIRE_METHODS)


def _names_in(node: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


class _Walker:
    """Walks one function body tracking one acquire site.

    ``escape_oracle(call, var)`` — when provided — decides whether passing
    the tracked request to that call transfers ownership (``True``, the
    intraprocedural default) or leaves this function responsible
    (``False``: the resolved callee neither releases nor re-escapes it).
    """

    def __init__(self, site: AcquireSite, fn: ast.FunctionDef,
                 escape_oracle=None):
        self.site = site
        self.fn = fn
        self.escape_oracle = escape_oracle
        self.finding = LeakFinding(site)
        self._loop_breaks: list[set[str]] = []

    # ------------------------------------------------------------------
    def run(self) -> LeakFinding:
        states = self._walk_body(self.fn.body, {None}, protected=False)
        live = {s for s in states if s in (PENDING, OPEN)}
        if live:
            last = self.fn.body[-1]
            self._record_leak(getattr(last, "end_lineno", last.lineno))
        return self.finding

    def _record_leak(self, line: int) -> None:
        if line not in self.finding.leak_exits:
            self.finding.leak_exits.append(line)

    def _record_wait(self, line: int) -> None:
        if line not in self.finding.unprotected_waits:
            self.finding.unprotected_waits.append(line)

    # ------------------------------------------------------------------
    def _walk_body(self, stmts, states: set, protected: bool) -> set:
        """Returns the possible states at fall-through of ``stmts``.

        An empty returned set means no path falls through (all paths
        return, raise, break or continue).
        """
        for stmt in stmts:
            if not states:
                return states
            states = self._walk_stmt(stmt, states, protected)
        return states

    def _walk_stmt(self, stmt, states: set, protected: bool) -> set:
        var = self.site.var

        if stmt is self.site.stmt and not self.site.managed:
            return {PENDING}

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested function capturing the request takes ownership.
            if _names_in(stmt, var):
                return {CLOSED}
            return states

        if isinstance(stmt, ast.Return):
            if stmt.value is not None and _names_in(stmt.value, var):
                return set()  # ownership returned to the caller
            self._exit(states, protected, stmt.lineno)
            return set()

        if isinstance(stmt, ast.Raise):
            self._exit(states, protected, stmt.lineno)
            return set()

        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_breaks:
                # A releasing finally enclosing this statement runs before
                # control transfers, so the grant is not carried along.
                self._loop_breaks[-1] |= {CLOSED} if protected else states
            return set()

        if isinstance(stmt, ast.If):
            out = self._walk_body(stmt.body, set(states), protected)
            out |= self._walk_body(stmt.orelse, set(states), protected)
            return out

        if isinstance(stmt, (ast.For, ast.While)):
            return self._walk_loop(stmt, states, protected)

        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, states, protected)

        if isinstance(stmt, ast.With):
            if stmt is self.site.stmt and self.site.managed:
                # `with X.request() as req:` — released by __exit__ on
                # every path, including faults; body runs with the grant.
                self._walk_body(stmt.body, {OPEN}, protected=True)
                return {CLOSED}
            states = self._scan_expr_stmt(stmt, states, protected,
                                          exprs=[i.context_expr
                                                 for i in stmt.items])
            return self._walk_body(stmt.body, states, protected)

        # Simple statements: scan the expression tree for events.
        return self._scan_expr_stmt(stmt, states, protected)

    # ------------------------------------------------------------------
    def _exit(self, states: set, protected: bool, line: int) -> None:
        """A function exit: leak unless protected by a releasing finally."""
        if protected:
            return
        if any(s in (PENDING, OPEN) for s in states):
            self._record_leak(line)

    def _walk_loop(self, stmt, states: set, protected: bool) -> set:
        self._loop_breaks.append(set())
        if isinstance(stmt, ast.For):
            states = self._scan_expr_stmt(stmt, states, protected,
                                          exprs=[stmt.iter])
        elif stmt.test is not None:
            states = self._scan_expr_stmt(stmt, states, protected,
                                          exprs=[stmt.test])
        seen = set(states)
        frontier = set(states)
        for _ in range(4):  # tiny fixpoint: the domain has three values
            out = self._walk_body(stmt.body, set(frontier), protected)
            if out <= seen:
                break
            seen |= out
            frontier = out
        breaks = self._loop_breaks.pop()
        infinite = (isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
        fall = set() if infinite else set(seen)
        fall = self._walk_body(stmt.orelse, fall, protected) if stmt.orelse \
            else fall
        return fall | breaks

    def _walk_try(self, stmt: ast.Try, states: set, protected: bool) -> set:
        releases_here = any(self._stmt_releases(s) for s in stmt.finalbody)
        inner_protected = protected or releases_here
        ft_body = self._walk_body(stmt.body, set(states), inner_protected)
        # A handler can be entered from any point in the body: approximate
        # its input as everything observable at the body's boundaries.
        handler_in = set(states) | ft_body
        ft = set(ft_body)
        for handler in stmt.handlers:
            ft |= self._walk_body(handler.body, set(handler_in),
                                  inner_protected)
        if stmt.orelse:
            ft = self._walk_body(stmt.orelse, ft, inner_protected)
        if stmt.finalbody:
            ft = self._walk_body(stmt.finalbody, ft if ft else set(states),
                                 protected)
        return ft

    def _stmt_releases(self, stmt: ast.stmt) -> bool:
        """Whether a statement (sub)tree releases/cancels the tracked var."""
        for node in ast.walk(stmt):
            if self._is_release_call(node):
                return True
        return False

    def _is_release_call(self, node: ast.AST) -> bool:
        var = self.site.var
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in RELEASE_METHODS):
            return False
        # recv.release(var) or var.release()
        if any(isinstance(a, ast.Name) and a.id == var for a in node.args):
            return True
        return isinstance(func.value, ast.Name) and func.value.id == var

    # ------------------------------------------------------------------
    def _scan_expr_stmt(self, stmt, states: set, protected: bool,
                        exprs: list | None = None) -> set:
        """Apply the events of one simple statement to the state set."""
        var = self.site.var
        nodes = []
        if exprs is None:
            nodes = list(ast.walk(stmt))
        else:
            for e in exprs:
                nodes.extend(ast.walk(e))

        released = any(self._is_release_call(n) for n in nodes)
        grant_yield = any(isinstance(n, ast.Yield)
                          and isinstance(n.value, ast.Name)
                          and n.value.id == var for n in nodes)
        other_yield = any(isinstance(n, (ast.Yield, ast.YieldFrom))
                          and not (isinstance(n, ast.Yield)
                                   and isinstance(n.value, ast.Name)
                                   and n.value.id == var)
                          for n in nodes)
        escaped = self._escapes(nodes)

        out = set()
        for state in states:
            s = state
            if s == PENDING and grant_yield:
                s = OPEN
            if s == OPEN and other_yield and not protected:
                self._record_wait(stmt.lineno)
            if released or escaped:
                s = CLOSED
            out.add(s)
        return out

    def _escapes(self, nodes) -> bool:
        """Ownership escape: the bare request used outside grant/release."""
        var = self.site.var
        for node in nodes:
            if isinstance(node, ast.Call) and not self._is_release_call(node):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == var:
                        if self.escape_oracle is None \
                                or self.escape_oracle(node, var):
                            return True
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Name) and node.value.id == var:
                    return True  # aliased
                for target in node.targets:
                    if not isinstance(target, ast.Name) and \
                            _names_in(target, var):
                        return True  # stored into a container/attribute
            if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                if any(isinstance(e, ast.Name) and e.id == var
                       for e in ast.iter_child_nodes(node)):
                    return True
        return False


def analyse_function(fn: ast.FunctionDef,
                     escape_oracle=None) -> list[LeakFinding]:
    """Run the acquire/release analysis on every acquire site of ``fn``."""
    findings = []
    for site in find_acquire_sites(fn):
        if site.managed:
            continue  # `with` releases on every path by construction
        findings.append(_Walker(site, fn, escape_oracle).run())
    return findings


# ----------------------------------------------------------------------
# Yield-interval scaffolding (shared with the whole-program race pass)
# ----------------------------------------------------------------------
def is_request_with(stmt: ast.With) -> bool:
    """Whether a ``with`` statement acquires a resource grant — the *owning
    grant* that exempts the yields inside it from race reporting."""
    return any(_is_acquire_call(item.context_expr) for item in stmt.items)


class IntervalWalker:
    """Statement walk of one generator body with yield-*interval*
    bookkeeping.

    A process generator's execution splits into intervals separated by its
    yields: within one interval the process runs atomically (the engine is
    cooperative), across a yield arbitrary other processes interleave.
    This base class provides the shared walk order used by the race pass
    (:mod:`repro.analysis.races`):

    * loop bodies are walked **twice**, so state written late in an
      iteration meets uses early in the next one (cross-iteration pairs);
    * branch bodies are walked in sequence — an over-approximation of the
      path union, which only ever *adds* crossings;
    * ``with <resource>.request(...)`` bodies run with ``protected`` depth
      raised: their yield boundaries are flagged as grant-protected.

    Subclasses implement :meth:`visit_expr` (expression events: reads,
    yields, spawns) and :meth:`visit_assign` (writes), and call
    :meth:`boundary` when they meet a yield.
    """

    def __init__(self) -> None:
        self.interval = 0
        #: One entry per yield boundary: True when grant-protected.
        self.yield_flags: list[bool] = []
        self._protect_depth = 0

    # -- bookkeeping ----------------------------------------------------
    def boundary(self) -> None:
        """Record one yield: close the current interval."""
        self.yield_flags.append(self._protect_depth > 0)
        self.interval += 1

    def crossed_unprotected(self, since_interval: int) -> bool:
        """Whether an unprotected yield separates ``since_interval`` from
        the current interval."""
        return any(not protected
                   for protected in self.yield_flags[since_interval:])

    # -- subclass hooks -------------------------------------------------
    def visit_expr(self, expr: ast.expr) -> None:
        raise NotImplementedError

    def visit_assign(self, stmt: ast.stmt) -> None:
        raise NotImplementedError

    def visit_for_target(self, stmt: ast.For) -> None:
        """Hook: the loop variable binding (default: nothing)."""

    def visit_with_vars(self, stmt: ast.With) -> None:
        """Hook: ``as`` bindings of a with statement (default: nothing)."""

    def visit_nested_def(self, stmt: ast.stmt) -> None:
        """Hook: nested function/class definition (default: skipped)."""

    # -- the walk -------------------------------------------------------
    def walk_body(self, stmts) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self.visit_nested_def(stmt)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self.visit_assign(stmt)
            return
        if isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.visit_expr(stmt.exc)
            return
        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.visit_expr(stmt.test)
            for _ in range(2):
                self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self.visit_expr(stmt.iter)
            self.visit_for_target(stmt)
            for _ in range(2):
                self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            protected = is_request_with(stmt)
            for item in stmt.items:
                self.visit_expr(item.context_expr)
            self.visit_with_vars(stmt)
            if protected:
                self._protect_depth += 1
            self.walk_body(stmt.body)
            if protected:
                self._protect_depth -= 1
            return
        # Remaining simple statements (pass, del, assert, import, ...):
        # visit any embedded expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.visit_expr(child)

"""simlint: DES-aware static analysis + runtime invariants for this repo.

The package has two halves:

* **Static analysis** (``python -m repro.analysis src/``): an AST-based
  linter whose rules encode the properties the discrete-event simulator and
  the codec stack rely on but ordinary tests do not guard — determinism
  (no wall clock, no unseeded RNG, no iteration over unordered sets that
  feeds event scheduling), process-generator hygiene, resource
  acquire/release pairing by CFG walk, and import layering.  Rules are
  suppressible per line with ``# simlint: disable=RULE`` and some are
  autofixable (``--fix``).

* **Runtime invariants** (:mod:`repro.analysis.invariants`): an opt-in
  :class:`InvariantChecker` hooked through the :mod:`repro.obs` observer —
  byte-conservation checks on every repair profile the simulator consumes,
  a monotonic sim-clock assertion on event scheduling, and an end-of-run
  audit that no disk/NIC grant leaked.  Enabled by the experiment CLI's
  ``--check-invariants`` flag.
"""

from repro.analysis.linter import (
    LintResult,
    Violation,
    layer_of,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    attach_invariant_checker,
)

__all__ = [
    "ALL_RULES",
    "InvariantChecker",
    "InvariantViolation",
    "LintResult",
    "Rule",
    "Violation",
    "attach_invariant_checker",
    "layer_of",
    "lint_file",
    "lint_paths",
    "lint_source",
]

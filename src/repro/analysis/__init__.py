"""simlint: DES-aware static analysis + runtime invariants for this repo.

The package has three halves:

* **Per-file static analysis** (``python -m repro.analysis src/``): an
  AST-based linter whose rules encode the properties the discrete-event
  simulator and the codec stack rely on but ordinary tests do not guard —
  determinism (no wall clock, no unseeded RNG, no iteration over unordered
  sets that feeds event scheduling), process-generator hygiene, resource
  acquire/release pairing by CFG walk, and import layering.  Rules are
  suppressible per line with ``# simlint: disable=RULE`` and some are
  autofixable (``--fix``).

* **Whole-program analysis** (``--whole-program``): a project symbol
  table and call graph (:mod:`repro.analysis.callgraph`) feeding three
  interprocedural passes — determinism taint with function summaries
  (:mod:`repro.analysis.taint`), cooperative-process race detection over
  yield intervals (:mod:`repro.analysis.races`) and grant-escape
  summaries that lift the resource rules across helper calls
  (:mod:`repro.analysis.summaries`).  The driver
  (:mod:`repro.analysis.wholeprogram`) adds a content-hash incremental
  cache, a baseline workflow, and SARIF / GitHub-annotation output.

* **Runtime invariants** (:mod:`repro.analysis.invariants`): an opt-in
  :class:`InvariantChecker` hooked through the :mod:`repro.obs` observer —
  byte-conservation checks on every repair profile the simulator consumes,
  a monotonic sim-clock assertion on event scheduling, and an end-of-run
  audit that no disk/NIC grant leaked.  Enabled by the experiment CLI's
  ``--check-invariants`` flag.
"""

from repro.analysis.linter import (
    LintResult,
    Violation,
    layer_of,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    attach_invariant_checker,
)

__all__ = [
    "ALL_RULES",
    "InvariantChecker",
    "InvariantViolation",
    "LintResult",
    "Rule",
    "Violation",
    "attach_invariant_checker",
    "layer_of",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_whole_program",
]


def run_whole_program(paths, **kwargs):
    """Convenience re-export; see :mod:`repro.analysis.wholeprogram`."""
    from repro.analysis.wholeprogram import run_whole_program as _run

    return _run(paths, **kwargs)
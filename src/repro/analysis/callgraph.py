"""Project-wide symbol table and call graph for whole-program passes.

The per-function rules in :mod:`repro.analysis.rules` see one module at a
time; the whole-program passes (determinism taint, cooperative-process race
detection, interprocedural grant-escape) need to know *who calls whom*
across the project.  This module parses every file once, builds a symbol
table of functions/methods/classes keyed by dotted qualname, and resolves
call sites to candidate callees:

* ``name(...)``            — lexically enclosing defs, then module scope,
  then ``from m import name`` targets;
* ``self.meth(...)``       — the enclosing class, then its project-resolvable
  bases (``cls.meth`` likewise);
* ``mod.func(...)``        — through ``import``/``from`` aliases;
* ``obj.meth(...)``        — unknown receiver: every project method of that
  name, provided the candidate set is small (``AMBIG_LIMIT``), so one
  badly-named helper cannot smear taint over the whole graph.

Resolution is deliberately *syntactic* — no type inference.  Passes must
treat an empty candidate list as "unknown callee" and pick their own
conservative default (taint drops it, grant-escape keeps today's
ownership-escape semantics).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.linter import Suppressions, iter_python_files, layer_of

#: An unknown-receiver method call resolves only when at most this many
#: project functions share the method name.
AMBIG_LIMIT = 6


def own_nodes(fn: ast.AST):
    """Every AST node beneath ``fn`` without entering nested functions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class FunctionInfo:
    """One function or method definition anywhere in the project."""

    qualname: str                 # "repro.cluster.rcstor.RCStor._batch_read"
    name: str
    node: ast.FunctionDef
    module: "ModuleInfo"
    class_name: str | None = None      # enclosing class, if a method
    parent: "FunctionInfo | None" = None  # lexically enclosing function
    is_generator: bool = False
    is_process: bool = False           # spawned via *.process(...) somewhere

    #: Parameter names in positional order (posonly + args; ``self``/``cls``
    #: of methods included so indices line up with ``ast.Call`` receivers).
    params: list[str] = field(default_factory=list)
    kwonly: list[str] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.module.path

    @property
    def layer(self) -> str | None:
        return self.module.layer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fn {self.qualname}>"


@dataclass
class ClassInfo:
    """One class definition: its methods and project-resolvable bases."""

    qualname: str
    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)  # raw dotted names


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str                     # dotted module name ("repro.sim.engine")
    path: str
    tree: ast.Module
    source: str
    layer: str | None
    #: ``import x.y as z`` -> {"z": "x.y"}; plain ``import x.y`` -> {"x": "x"}.
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: ``from m import f as g`` -> {"g": ("m", "f")}.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    suppressions: Suppressions | None = None


@dataclass(frozen=True)
class CallSite:
    """One resolved (or unresolved) call expression inside a function."""

    caller: FunctionInfo
    call: ast.Call
    callees: tuple[FunctionInfo, ...]   # empty: unknown callee
    in_loop: bool = False    # lexically inside a loop of the caller


@dataclass(frozen=True)
class SpawnSite:
    """One ``*.process(gen(...))`` call: a new cooperative process."""

    caller: FunctionInfo
    call: ast.Call
    target: FunctionInfo | None
    in_loop: bool    # lexically inside a loop of the spawning function


def _module_name(path: Path, root_hint: str = "repro") -> str:
    """Dotted module name for a file; rooted at the ``repro`` package when
    the path goes through one, else the relative parts joined."""
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for i, part in enumerate(parts):
        if part == root_hint:
            return ".".join(parts[i:])
    # Outside any repro package (test fixture trees): keep it short but
    # unique enough — the last two components.
    return ".".join(parts[-2:]) if len(parts) >= 2 else ".".join(parts)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Project:
    """The whole-program symbol table + call graph.

    Build once per run (:meth:`load`), then ask for :attr:`functions`,
    :meth:`call_sites`, :meth:`callers_of`, :attr:`spawn_sites`, and
    :meth:`resolve_call`.
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}       # by dotted name
        self.functions: dict[str, FunctionInfo] = {}   # by qualname
        self.classes: dict[str, ClassInfo] = {}        # by qualname
        self._method_index: dict[str, list[FunctionInfo]] = {}
        self._call_sites: list[CallSite] | None = None
        self._callers: dict[str, list[CallSite]] | None = None
        self.spawn_sites: list[SpawnSite] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths) -> "Project":
        """Parse every ``.py`` file under ``paths`` and link the graph."""
        project = cls()
        for file in iter_python_files(paths):
            source = file.read_text(encoding="utf-8")
            project.add_source(source, file)
        project.link()
        return project

    def add_source(self, source: str, path: str | Path) -> ModuleInfo | None:
        """Parse one file into the symbol table (no linking yet)."""
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return None  # the per-file linter reports E999 for these
        mod = ModuleInfo(name=_module_name(path), path=str(path), tree=tree,
                         source=source, layer=layer_of(path),
                         suppressions=Suppressions(source))
        self._collect_imports(mod)
        self._collect_defs(mod, tree.body, prefix=mod.name, parent=None,
                           class_info=None)
        self.modules[mod.name] = mod
        return mod

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    mod.import_aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:  # relative import: resolve against mod.name
                    parts = mod.name.split(".")
                    parts = parts[:len(parts) - node.level + 1]
                    base = ".".join(parts[:-1] + [node.module]) \
                        if parts else node.module
                for alias in node.names:
                    mod.from_imports[alias.asname or alias.name] = \
                        (base, alias.name)

    def _collect_defs(self, mod: ModuleInfo, body, prefix: str,
                      parent: FunctionInfo | None,
                      class_info: ClassInfo | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                args = node.args
                params = [a.arg for a in args.posonlyargs + args.args]
                info = FunctionInfo(
                    qualname=qual, name=node.name, node=node, module=mod,
                    class_name=class_info.name if class_info else None,
                    parent=parent, params=params,
                    kwonly=[a.arg for a in args.kwonlyargs],
                    is_generator=any(
                        isinstance(n, (ast.Yield, ast.YieldFrom))
                        for n in own_nodes(node)))
                self.functions[qual] = info
                if class_info is not None:
                    class_info.methods[node.name] = info
                    self._method_index.setdefault(node.name, []).append(info)
                elif parent is None:
                    mod.functions[node.name] = info
                self._collect_defs(mod, node.body, qual, info, None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}.{node.name}"
                cinfo = ClassInfo(
                    qualname=qual, name=node.name, node=node, module=mod,
                    base_names=[d for d in map(_dotted, node.bases)
                                if d is not None])
                self.classes[qual] = cinfo
                mod.classes.setdefault(node.name, cinfo)
                self._collect_defs(mod, node.body, qual, parent, cinfo)
            elif isinstance(node, (ast.If, ast.Try)):
                # TYPE_CHECKING guards and import fallbacks still define.
                for sub in (getattr(node, "body", []),
                            getattr(node, "orelse", []),
                            getattr(node, "finalbody", [])):
                    self._collect_defs(mod, sub, prefix, parent, class_info)
                for handler in getattr(node, "handlers", []):
                    self._collect_defs(mod, handler.body, prefix, parent,
                                       class_info)

    def link(self) -> None:
        """Resolve calls/spawns after every module has been added."""
        self._call_sites = []
        self._callers = {}
        self.spawn_sites = []
        for fn in self.functions.values():
            self._link_function(fn)
        for site in self._call_sites:
            for callee in site.callees:
                self._callers.setdefault(callee.qualname, []).append(site)
        self._mark_processes()

    def _link_function(self, fn: FunctionInfo) -> None:
        loop_spans: list[tuple[int, int]] = [
            (n.lineno, n.end_lineno or n.lineno)
            for n in own_nodes(fn.node) if isinstance(n, (ast.For, ast.While))]

        def in_loop(node: ast.AST) -> bool:
            return any(lo <= node.lineno <= hi for lo, hi in loop_spans)

        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callees = tuple(self.resolve_call(fn, node))
            self._call_sites.append(
                CallSite(fn, node, callees, in_loop=in_loop(node)))
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "process" and node.args:
                target = self._spawn_target(fn, node.args[0])
                self.spawn_sites.append(
                    SpawnSite(fn, node, target, in_loop=in_loop(node)))

    def _spawn_target(self, fn: FunctionInfo,
                      arg: ast.expr) -> FunctionInfo | None:
        """The generator function behind ``env.process(<arg>)``."""
        if isinstance(arg, ast.Call):
            candidates = self.resolve_call(fn, arg)
            return candidates[0] if len(candidates) == 1 else None
        # A pre-built generator object (env.process(gen_obj)): untrackable.
        return None

    def _mark_processes(self) -> None:
        for site in self.spawn_sites:
            if site.target is not None:
                site.target.is_process = True
        # Yield-shape fallback, as in the per-file rules: a generator that
        # yields obvious event constructions is a process even if we never
        # saw its spawn site.
        for fn in self.functions.values():
            if fn.is_process or not fn.is_generator:
                continue
            for n in own_nodes(fn.node):
                value = getattr(n, "value", None) \
                    if isinstance(n, (ast.Yield, ast.YieldFrom)) else None
                if isinstance(value, ast.Call) \
                        and isinstance(value.func, ast.Attribute) \
                        and value.func.attr in ("timeout", "process",
                                                "all_of", "any_of"):
                    fn.is_process = True
                    break

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def call_sites(self) -> list[CallSite]:
        assert self._call_sites is not None, "call link() first"
        return self._call_sites

    def callers_of(self, fn: FunctionInfo) -> list[CallSite]:
        assert self._callers is not None, "call link() first"
        return self._callers.get(fn.qualname, [])

    def class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.class_name is None:
            return None
        return self.classes.get(
            fn.qualname.rsplit(".", 1)[0])

    def methods_named(self, name: str) -> list[FunctionInfo]:
        return self._method_index.get(name, [])

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> list[FunctionInfo]:
        """Candidate callees for one call expression (possibly empty)."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(caller, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(caller, func)
        return []

    def _resolve_name(self, caller: FunctionInfo,
                      name: str) -> list[FunctionInfo]:
        # Lexically enclosing defs (closures) — innermost first.
        scope = caller
        while scope is not None:
            nested = scope.qualname + "." + name
            if nested in self.functions:
                return [self.functions[nested]]
            scope = scope.parent
        mod = caller.module
        if name in mod.functions:
            return [mod.functions[name]]
        if name in mod.classes:
            return self._constructor(mod.classes[name])
        if name in mod.from_imports:
            src_mod, orig = mod.from_imports[name]
            target = self.modules.get(src_mod)
            if target is not None:
                if orig in target.functions:
                    return [target.functions[orig]]
                if orig in target.classes:
                    return self._constructor(target.classes[orig])
            # ``from repro.sim import Environment`` re-exported via a
            # package __init__: chase one level of re-export.
            pkg = self.modules.get(src_mod)
            if pkg is not None and orig in pkg.from_imports:
                deeper, orig2 = pkg.from_imports[orig]
                target = self.modules.get(deeper)
                if target is not None and orig2 in target.functions:
                    return [target.functions[orig2]]
                if target is not None and orig2 in target.classes:
                    return self._constructor(target.classes[orig2])
        return []

    def _resolve_attribute(self, caller: FunctionInfo,
                           func: ast.Attribute) -> list[FunctionInfo]:
        attr = func.attr
        base = _dotted(func.value)
        if base in ("self", "cls") and caller.class_name is not None:
            found = self._resolve_method(self.class_of(caller), attr)
            if found:
                return found
            return []
        if base is not None:
            mod = caller.module
            # mod_alias.func — through import aliases.
            head = base.split(".")[0]
            if head in mod.import_aliases:
                dotted = mod.import_aliases[head] + base[len(head):]
                target = self.modules.get(dotted)
                if target is not None:
                    if attr in target.functions:
                        return [target.functions[attr]]
                    if attr in target.classes:
                        return self._constructor(target.classes[attr])
            if base in mod.from_imports:
                # ``from repro import sim; sim.run(...)`` or an imported
                # class used as a namespace: ClassName.method.
                src_mod, orig = mod.from_imports[base]
                dotted = f"{src_mod}.{orig}"
                target = self.modules.get(dotted)
                if target is not None and attr in target.functions:
                    return [target.functions[attr]]
                cinfo = self._find_class(mod, base)
                if cinfo is not None:
                    return self._resolve_method(cinfo, attr)
            if base in mod.classes:
                return self._resolve_method(mod.classes[base], attr)
        # Unknown receiver: fall back to the project-wide method index.
        candidates = self.methods_named(attr)
        if 0 < len(candidates) <= AMBIG_LIMIT:
            return list(candidates)
        return []

    def _resolve_method(self, cinfo: ClassInfo | None,
                        name: str) -> list[FunctionInfo]:
        seen: set[str] = set()
        while cinfo is not None and cinfo.qualname not in seen:
            seen.add(cinfo.qualname)
            if name in cinfo.methods:
                return [cinfo.methods[name]]
            cinfo = self._first_base(cinfo)
        return []

    def _first_base(self, cinfo: ClassInfo) -> ClassInfo | None:
        for base in cinfo.base_names:
            found = self._find_class(cinfo.module, base)
            if found is not None:
                return found
        return None

    def _find_class(self, mod: ModuleInfo, name: str) -> ClassInfo | None:
        """Resolve a (possibly dotted/imported) class name from ``mod``."""
        head = name.split(".")[0]
        if name in mod.classes:
            return mod.classes[name]
        if head in mod.from_imports:
            src_mod, orig = mod.from_imports[head]
            target = self.modules.get(src_mod)
            if target is not None and orig in target.classes:
                return target.classes[orig]
            pkg = self.modules.get(src_mod)
            if pkg is not None and orig in pkg.from_imports:
                deeper, orig2 = pkg.from_imports[orig]
                target = self.modules.get(deeper)
                if target is not None and orig2 in target.classes:
                    return target.classes[orig2]
        if "." in name and head in mod.import_aliases:
            dotted = mod.import_aliases[head] + name[len(head):]
            mod_name, _, cls_name = dotted.rpartition(".")
            target = self.modules.get(mod_name)
            if target is not None and cls_name in target.classes:
                return target.classes[cls_name]
        return None

    def _constructor(self, cinfo: ClassInfo) -> list[FunctionInfo]:
        init = self._resolve_method(cinfo, "__init__")
        return init

    # ------------------------------------------------------------------
    # argument mapping
    # ------------------------------------------------------------------
    @staticmethod
    def map_arguments(callee: FunctionInfo,
                      call: ast.Call) -> list[tuple[int, ast.expr]]:
        """(param_index, argument_expr) pairs for one call of ``callee``.

        Methods called through a receiver expression get their ``self``
        slot (index 0) skipped, so indices always name ``callee.params``
        entries.  ``*args``/``**kwargs`` forwarding is ignored.
        """
        offset = 1 if callee.class_name is not None and callee.params \
            and callee.params[0] in ("self", "cls") else 0
        pairs: list[tuple[int, ast.expr]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            idx = i + offset
            if idx < len(callee.params):
                pairs.append((idx, arg))
        names = {p: i for i, p in enumerate(callee.params)}
        kw_names = {p: len(callee.params) + i
                    for i, p in enumerate(callee.kwonly)}
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if kw.arg in names:
                pairs.append((names[kw.arg], kw.value))
            elif kw.arg in kw_names:
                pairs.append((kw_names[kw.arg], kw.value))
        return pairs

"""Cooperative-process race detection (RACE801/RACE802).

The DES engine is cooperative: a process runs atomically between yields,
so single-interval read-modify-writes can never race.  What *does* race —
and surfaces only as a mysterious bit-identity break when the event
schedule shifts — is state observed on one side of a yield and acted on
on the other:

* **RACE801 — stale snapshot**: a local variable snapshots shared mutable
  state (an attribute some concurrently-live process writes), an
  unprotected yield passes, and the stale snapshot is then *used*.  A
  crash that lands during the wait is invisible to the decision made from
  the snapshot (check-then-act).
* **RACE802 — cross-yield write pair**: one process lineage writes a
  shared location, yields, then writes it again with an operand captured
  before the first write (an inverse-restore, a delayed publish).  With a
  second writer interleaved between the two halves, the compose/invert
  pair nests improperly and the location never returns to its intended
  value.

Model
-----
Each *extent* is one process generator, linearized with its resolved
callees inlined (``yield from`` helpers run inline; plain calls to
non-generators run inline; callees in the ``sim``/``obs`` layers are
engine primitives and stay opaque).  ``env.process(child(...))`` forks a
*strand*: the child's events inherit the parent's bindings but run after
an implicit unprotected yield — exactly how a spawned process interleaves.

Shared locations are attribute names; one is *concurrently written* when
two different process extents write it, or a single multiply-spawnable
extent does.  A closure variable mutated by a nested function that
*escapes* (is passed around as a value — the callback-registration
idiom) is shared too: the callback fires from whatever extent triggers
it, so every reader races with it.  Shared-ness follows bare-name
arguments through calls and spawns.  Yields inside a ``with <resource>.request(...)`` block are
grant-protected and exempt (the owning-grant idiom).  Writes whose
right-hand side is rebuilt in the current interval (``x.f = fresh()``)
and commutative counters (``+=``/``-=``) are never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import (
    FunctionInfo,
    Project,
    _dotted,
    own_nodes,
)
from repro.analysis.cfg import IntervalWalker
from repro.analysis.linter import Violation

#: Layers whose callees are engine/observer primitives: kept opaque (their
#: internal attribute writes are synchronization, not shared app state).
_OPAQUE_LAYERS = frozenset({"sim", "obs"})

#: Mutating container methods: a call through an attribute receiver is a
#: write to that attribute's object.
_MUTATORS = frozenset({
    "add", "remove", "discard", "append", "appendleft", "extend", "insert",
    "pop", "popleft", "update", "clear", "setdefault", "sort", "reverse",
})

#: Augmented ops flagged for RACE802 when their operand is stale.
#: Commutative-group counters (+=, -=, |=, &=, ^=) are conventional and
#: interleave safely; multiplicative/positional ops do not.
_NONCOMMUTATIVE = (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
                   ast.LShift, ast.RShift, ast.MatMult)

#: Constructors establish object identity before any process can observe
#: it; their attribute writes are initialization, not shared-state racing.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Builtins whose single-argument call materializes the elements of its
#: argument — reading a shared collection through one of these is a
#: snapshot, same as a comprehension over it.
_COPIERS = frozenset({"set", "frozenset", "list", "tuple", "sorted", "dict"})

_MAX_INLINE_DEPTH = 6
_MAX_STRANDS = 64


@dataclass
class _Snap:
    """A local variable holding a snapshot of shared mutable state."""

    interval: int
    attrs: frozenset
    line: int
    reported: bool = False


@dataclass
class _Write:
    """One recorded write to a shared location."""

    interval: int
    line: int
    path: str


class RacePass:
    """Run the cooperative-process race analysis over a project."""

    def __init__(self, project: Project):
        self.project = project
        self.concurrent_attrs: dict[str, set] = {}   # attr -> writer extents
        self.many: set = set()                       # multiply-spawnable
        self.shared_locals: set = set()              # (owner_qual, name)
        self._bound_cache: dict[str, frozenset] = {}
        self.violations: list[Violation] = []
        self._seen: set = set()

    # ------------------------------------------------------------------
    def run(self) -> list[Violation]:
        self._compute_concurrency()
        self._compute_shared_locals()
        for fn in self.project.functions.values():
            if fn.is_process:
                strand = _Strand(self, fn)
                strand.bind_params(fn, closure=False)
                strand.walk_function(fn)
        self.violations.sort(key=lambda v: (v.path, v.line, v.rule))
        return self.violations

    def report(self, rule: str, path: str, line: int, col: int,
               message: str) -> None:
        key = (rule, path, line)
        if key not in self._seen:
            self._seen.add(key)
            self.violations.append(Violation(rule, path, line, col, message))

    # ------------------------------------------------------------------
    # which attributes are concurrently written
    # ------------------------------------------------------------------
    def _compute_concurrency(self) -> None:
        self._compute_many()
        direct: dict[str, set] = {}
        for fn in self.project.functions.values():
            if fn.layer in _OPAQUE_LAYERS or fn.name in _INIT_METHODS:
                continue
            attrs = _direct_attr_writes(fn.node)
            if attrs:
                direct[fn.qualname] = attrs
        writers: dict[str, set] = {}
        for fn in self.project.functions.values():
            if not fn.is_process:
                continue
            for reached in self._reachable(fn):
                for attr in direct.get(reached, ()):
                    writers.setdefault(attr, set()).add(fn.qualname)
        self.concurrent_attrs = {
            attr: extents for attr, extents in writers.items()
            if len(extents) >= 2
            or any(e in self.many for e in extents)}

    def _reachable(self, fn: FunctionInfo) -> set:
        out = {fn.qualname}
        todo = [fn]
        by_caller: dict[str, list] = {}
        for site in self.project.call_sites():
            by_caller.setdefault(site.caller.qualname, []).append(site)
        while todo:
            cur = todo.pop()
            for site in by_caller.get(cur.qualname, ()):
                for callee in site.callees:
                    if callee.layer in _OPAQUE_LAYERS:
                        continue
                    if callee.qualname not in out:
                        out.add(callee.qualname)
                        todo.append(callee)
        return out

    def _compute_shared_locals(self) -> None:
        """Closure variables mutated by escaping nested functions.

        When a nested function writes a variable of an enclosing scope and
        is itself passed around as a value (``faults.on_disk_failure(cb)``),
        the write fires from whatever process triggers the callback — the
        variable is shared state for every strand that can read it."""
        for g in self.project.functions.values():
            if g.parent is None:
                continue
            written = self._enclosing_writes(g)
            if written and self._escapes(g):
                for name in written:
                    scope = g.parent
                    while scope is not None:
                        if name in self.bound_names(scope):
                            self.shared_locals.add((scope.qualname, name))
                            break
                        scope = scope.parent

    def _enclosing_writes(self, g: FunctionInfo) -> set:
        """Names of enclosing scopes that ``g`` mutates."""
        local = self.bound_names(g)
        out: set = set()
        for node in own_nodes(g.node):
            if isinstance(node, ast.Nonlocal):
                out.update(node.names)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id not in local:
                out.add(node.func.value.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id not in local:
                        out.add(target.value.id)
        return out

    def _escapes(self, g: FunctionInfo) -> bool:
        """Whether ``g`` is referenced as a value (not just called)."""
        inside = set()
        for node in ast.walk(g.node):
            inside.add(id(node))
        called: set = set()
        for node in ast.walk(g.module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called.add(id(node.func))
        for node in ast.walk(g.module.tree):
            if isinstance(node, ast.Name) and node.id == g.name \
                    and isinstance(node.ctx, ast.Load) \
                    and id(node) not in inside \
                    and id(node) not in called:
                return True
        return False

    def _compute_many(self) -> None:
        """Multiply-invoked functions and multiply-spawnable processes."""
        multi_invoked: set = set()
        for _ in range(len(self.project.modules) + 2):
            changed = False
            for site in self.project.call_sites():
                hot = site.in_loop \
                    or site.caller.qualname in multi_invoked
                if not hot:
                    continue
                for callee in site.callees:
                    if callee.qualname not in multi_invoked:
                        multi_invoked.add(callee.qualname)
                        changed = True
            if not changed:
                break
        spawns: dict[str, list] = {}
        for site in self.project.spawn_sites:
            if site.target is not None:
                spawns.setdefault(site.target.qualname, []).append(site)
        for qual, sites in spawns.items():
            if len(sites) >= 2 or any(
                    s.in_loop or s.caller.qualname in multi_invoked
                    for s in sites):
                self.many.add(qual)

    # ------------------------------------------------------------------
    def bound_names(self, fn: FunctionInfo) -> frozenset:
        cached = self._bound_cache.get(fn.qualname)
        if cached is not None:
            return cached
        names = set(fn.params) | set(fn.kwonly)
        node = fn.node
        if node.args.vararg:
            names.add(node.args.vararg.arg)
        if node.args.kwarg:
            names.add(node.args.kwarg.arg)
        for n in own_nodes(node):
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                names.add(n.id)
            elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                pass
        for n in ast.walk(node):
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and n is not node:
                names.add(n.name)
        out = frozenset(names)
        self._bound_cache[fn.qualname] = out
        return out

    def resolve_key(self, fn: FunctionInfo, name: str):
        """(owner_qualname, name) for a variable visible in ``fn``;
        ``None`` when it is a module global / builtin."""
        scope = fn
        while scope is not None:
            if name in self.bound_names(scope):
                return (scope.qualname, name)
            scope = scope.parent
        return None


def _direct_attr_writes(fn: ast.AST) -> set:
    """Attribute names written (assigned, augmented, or mutated through a
    container method) directly in one function body."""
    out: set = set()
    for node in own_nodes(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _attr_target(target, out)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            _attr_target(node.target, out)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS \
                and isinstance(node.func.value, ast.Attribute):
            out.add(node.func.value.attr)
    return out


def _attr_target(target: ast.expr, out: set) -> None:
    if isinstance(target, ast.Attribute):
        out.add(target.attr)
    elif isinstance(target, ast.Subscript) \
            and isinstance(target.value, ast.Attribute):
        out.add(target.value.attr)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _attr_target(elt, out)


def _lexical_attr_reads(expr: ast.expr) -> set:
    """Attribute names loaded lexically in one expression."""
    out: set = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            out.add(node.attr)
    return out


#: Accessor methods that return a *contained live object* rather than a
#: value derived from the container's current contents.
_ACCESSORS = frozenset({"get", "setdefault"})


def _is_live_alias(expr: ast.expr) -> bool:
    """True when *expr* evaluates to the shared object itself (or a live
    sub-object of it) rather than a value computed *from* it.

    ``x = self.shared`` or ``x = self.shared.setdefault(k, [])`` bind an
    alias — later reads through ``x`` see current state, so they are not
    stale snapshots.  By contrast a comprehension, a copier call or any
    arithmetic over the shared state materialises a value that freezes at
    bind time, which is exactly what RACE801 tracks.
    """
    if isinstance(expr, ast.Attribute):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in _ACCESSORS:
        return True
    return False


def _operand_names(expr: ast.expr) -> set:
    """Name loads in an expression, excluding callables: the *values* the
    expression is built from.  ``f(x)`` contributes ``x`` but not ``f``;
    ``env.event()`` contributes nothing (fresh result)."""
    out: set = set()
    skip: set = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            for sub in ast.walk(node.func):
                skip.add(id(sub))
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and id(node) not in skip:
            out.add(node.id)
    return out


class _Strand(IntervalWalker):
    """One linearized execution strand of a process extent."""

    def __init__(self, owner: RacePass, root: FunctionInfo,
                 parent: "_Strand | None" = None):
        super().__init__()
        self.owner = owner
        self.root = root
        self.fn_stack: list[FunctionInfo] = []
        self.inline_stack: list[str] = []
        if parent is not None:
            self.interval = parent.interval
            self.yield_flags = list(parent.yield_flags)
            self.binds = dict(parent.binds)
            self.snaps = dict(parent.snaps)
            self.shared_alias = set(parent.shared_alias)
            self.writes = {loc: list(ws)
                           for loc, ws in parent.writes.items()}
            self.strand_count = parent.strand_count
            self.inline_stack = list(parent.inline_stack)
        else:
            self.binds: dict = {}       # (owner_qual, name) -> bind interval
            self.snaps: dict = {}       # (owner_qual, name) -> _Snap
            self.shared_alias: set = set()  # keys aliasing shared locals
            self.writes: dict = {}      # attr -> [_Write, ...]
            self.strand_count = [0]

    # -- scope helpers --------------------------------------------------
    @property
    def fn(self) -> FunctionInfo:
        return self.fn_stack[-1]

    def bind_params(self, fn: FunctionInfo, closure: bool) -> None:
        for name in list(fn.params) + list(fn.kwonly):
            key = (fn.qualname, name)
            self.binds[key] = self.interval
            self.snaps.pop(key, None)
            self.shared_alias.discard(key)
        del closure

    def _pass_args(self, callee: FunctionInfo, call: ast.Call,
                   into: "_Strand") -> None:
        """Carry snapshot/shared status of bare-name arguments onto the
        callee's parameters (evaluated in *this* strand's scope)."""
        for idx, arg in Project.map_arguments(callee, call):
            if not isinstance(arg, ast.Name):
                continue
            if idx < len(callee.params):
                pname = callee.params[idx]
            else:
                pname = callee.kwonly[idx - len(callee.params)]
            src = self._key(arg.id)
            if src is None:
                continue
            dst = (callee.qualname, pname)
            if src in self.snaps:
                into.snaps[dst] = self.snaps[src]
            if src in self.owner.shared_locals or src in self.shared_alias:
                into.shared_alias.add(dst)

    def walk_function(self, fn: FunctionInfo) -> None:
        self.fn_stack.append(fn)
        self.inline_stack.append(fn.qualname)
        try:
            self.walk_body(fn.node.body)
        finally:
            self.inline_stack.pop()
            self.fn_stack.pop()

    def _key(self, name: str):
        return self.owner.resolve_key(self.fn, name)

    def _is_shared_name(self, name: str) -> bool:
        key = self._key(name)
        return key is not None and (key in self.owner.shared_locals
                                    or key in self.shared_alias)

    def _shared_name_reads(self, value: ast.expr) -> set:
        """Shared closure collections whose *elements* this expression
        materializes: comprehension iteration or a copier builtin.  A mere
        membership test or ``len()`` reads the live collection and is not
        a snapshot."""
        out: set = set()
        for node in ast.walk(value):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for gen in node.generators:
                    if isinstance(gen.iter, ast.Name) \
                            and self._is_shared_name(gen.iter.id):
                        out.add(gen.iter.id)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _COPIERS and node.args \
                    and isinstance(node.args[0], ast.Name) \
                    and self._is_shared_name(node.args[0].id):
                out.add(node.args[0].id)
        return out

    def _bind_interval(self, name: str) -> int:
        key = self._key(name)
        if key is None:
            return 0  # module global: treat as bound at extent start
        # Unbound-in-walk closure names were captured before this strand
        # started running: stale across any yield.
        return self.binds.get(key, -1)

    # -- IntervalWalker hooks -------------------------------------------
    def visit_expr(self, expr: ast.expr) -> None:
        self._eval(expr)

    def visit_for_target(self, stmt: ast.For) -> None:
        self._bind_target_names(stmt.target)

    def visit_with_vars(self, stmt: ast.With) -> None:
        for item in stmt.items:
            if item.optional_vars is not None:
                self._bind_target_names(item.optional_vars)

    def visit_assign(self, stmt) -> None:
        value = getattr(stmt, "value", None)
        if value is not None:
            self._eval(value)
        shared_attrs = frozenset()
        if value is not None and not _is_live_alias(value):
            shared_attrs = frozenset(
                (_lexical_attr_reads(value) & set(self.owner.concurrent_attrs))
                | self._shared_name_reads(value))
        if isinstance(stmt, ast.AugAssign):
            self._write_target(stmt.target, stmt, value, op=stmt.op)
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            self._assign_target(target, stmt, value, shared_attrs)

    # -- assignment handling --------------------------------------------
    def _assign_target(self, target, stmt, value, shared_attrs) -> None:
        if isinstance(target, ast.Name):
            key = self._key(target.id) or (self.fn.qualname, target.id)
            self.binds[key] = self.interval
            self.snaps.pop(key, None)
            self.shared_alias.discard(key)
            if isinstance(value, ast.Name):
                # Bare-name alias: the new name carries whatever shared
                # status / staleness the old one had.
                src = self._key(value.id)
                if src is not None:
                    if src in self.snaps:
                        self.snaps[key] = self.snaps[src]
                    if self._is_shared_name(value.id):
                        self.shared_alias.add(key)
            if shared_attrs:
                self.snaps[key] = _Snap(self.interval, shared_attrs,
                                        stmt.lineno)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, stmt, value, shared_attrs)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, stmt, value, shared_attrs)
            return
        self._write_target(target, stmt, value, op=None)

    def _write_target(self, target, stmt, value, op) -> None:
        """A write through an attribute/subscript: RACE802 candidate."""
        if isinstance(target, ast.Name):
            # Augmented assign to a local: a use plus a rebind.
            self._use_name(target.id, target)
            key = self._key(target.id) or (self.fn.qualname, target.id)
            self.binds.setdefault(key, self.interval)
            return
        loc = self._loc_of(target)
        if loc is None:
            return
        self._record_write(loc, stmt, value, op)

    def _loc_of(self, target) -> str | None:
        """The shared-location name a write lands on, or None if the
        target is rooted at a variable bound inside this strand (a
        per-instance object can't race with itself)."""
        if isinstance(target, ast.Attribute):
            return target.attr
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                return base.attr
            if isinstance(base, ast.Name):
                key = self._key(base.id)
                if key is not None and key in self.binds \
                        and not self._is_param(key):
                    return None  # strand-local container
                return base.id
        return None

    def _is_param(self, key) -> bool:
        qual, name = key
        fn = self.owner.project.functions.get(qual)
        return fn is not None and (name in fn.params or name in fn.kwonly)

    def _record_write(self, loc: str, stmt, value, op) -> None:
        prior = self.writes.setdefault(loc, [])
        if self._op_flagged(op, value) and loc in self.owner.concurrent_attrs:
            stale = self._stale_operands(value, prior)
            if stale is not None:
                name, w1 = stale
                self.owner.report(
                    "RACE802", self.fn.path, stmt.lineno, stmt.col_offset,
                    f"`{loc}` is written here from `{name}`, captured "
                    f"before the write at line {w1.line} and at least one "
                    "unprotected yield ago; with concurrent writers the "
                    "compose/restore pair nests improperly — recompute "
                    "from current state or hold the owning grant "
                    f"(writers: {self._writer_names(loc)})")
        prior.append(_Write(self.interval, stmt.lineno, self.fn.path))

    def _op_flagged(self, op, value) -> bool:
        # Plain assignments publish a fresh value — overwriting is the
        # *intent*, so only compose/invert augmented ops are candidates.
        return op is not None and value is not None \
            and isinstance(op, _NONCOMMUTATIVE)

    def _stale_operands(self, value, prior):
        """A (name, earlier_write) pair proving the RHS was captured at or
        before a previous write with an unprotected yield since."""
        if value is None:
            return None
        for name in sorted(_operand_names(value)):
            bound = self._bind_interval(name)
            for w1 in prior:
                if bound <= w1.interval < self.interval \
                        and self.crossed_unprotected(w1.interval):
                    return name, w1
        return None

    def _writer_names(self, loc: str) -> str:
        extents = sorted(self.owner.concurrent_attrs.get(loc, ()))
        short = [q.rsplit(".", 1)[-1] for q in extents[:3]]
        return ", ".join(short) + ("…" if len(extents) > 3 else "")

    def _bind_target_names(self, target) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                key = self._key(node.id) or (self.fn.qualname, node.id)
                self.binds[key] = self.interval
                self.snaps.pop(key, None)

    # -- expression events ----------------------------------------------
    def _use_name(self, name: str, node) -> None:
        key = self._key(name)
        if key is None:
            return
        snap = self.snaps.get(key)
        if snap is None or snap.reported:
            return
        if self.crossed_unprotected(snap.interval):
            snap.reported = True
            attrs = ", ".join(f"`{a}`" for a in sorted(snap.attrs))
            self.owner.report(
                "RACE801", self.fn.path, node.lineno, node.col_offset,
                f"`{name}` snapshots shared state ({attrs}) at line "
                f"{snap.line}, before an unprotected yield; by this use "
                "the snapshot may be stale — recompute it after the wait "
                "or hold the owning grant across it")

    def _eval(self, node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._use_name(node.id, node)
            return
        if isinstance(node, ast.Attribute):
            self._eval(node.value)
            return
        if isinstance(node, ast.Call):
            self._eval_call(node)
            return
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value)
            self.boundary()
            return
        if isinstance(node, ast.YieldFrom):
            self._eval_yield_from(node)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                self._eval(gen.iter)
                self._bind_target_names(gen.target)
                for cond in gen.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                self._eval(node.key)
                self._eval(node.value)
            else:
                self._eval(node.elt)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.NamedExpr):
            self._eval(node.value)
            self._bind_target_names(node.target)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)

    # -- calls: mutators, spawns, inlining ------------------------------
    def _eval_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            self._eval(func.value)
        for arg in call.args:
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "process"
                    and arg is call.args[0] and isinstance(arg, ast.Call)):
                self._eval(arg)
        for kw in call.keywords:
            self._eval(kw.value)

        # Mutating method through an attribute receiver: a write.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS \
                and isinstance(func.value, ast.Attribute):
            loc = func.value.attr
            self.writes.setdefault(loc, []).append(
                _Write(self.interval, call.lineno, self.fn.path))

        # Spawn: fork a strand for the child process.
        if isinstance(func, ast.Attribute) and func.attr == "process" \
                and call.args and isinstance(call.args[0], ast.Call):
            inner = call.args[0]
            for arg in inner.args:
                self._eval(arg)
            for kw in inner.keywords:
                self._eval(kw.value)
            target = self._resolve_single(inner)
            if target is not None and target.is_generator:
                self._fork(target, inner)
            return

        callee = self._resolve_single(call)
        if callee is not None and not callee.is_generator:
            self._inline(callee, call)

    def _eval_yield_from(self, node: ast.YieldFrom) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            callee = self._resolve_single(value)
            if isinstance(value.func, ast.Attribute):
                self._eval(value.func.value)
            for arg in value.args:
                self._eval(arg)
            for kw in value.keywords:
                self._eval(kw.value)
            if callee is not None and callee.is_generator:
                self._inline(callee, value)
                return
        else:
            self._eval(value)
        # Unresolvable delegation: assume at least one yield inside.
        self.boundary()

    def _resolve_single(self, call: ast.Call) -> FunctionInfo | None:
        candidates = self.owner.project.resolve_call(self.fn, call)
        return candidates[0] if len(candidates) == 1 else None

    def _inlinable(self, callee: FunctionInfo) -> bool:
        return (callee.layer not in _OPAQUE_LAYERS
                and callee.qualname not in self.inline_stack
                and len(self.inline_stack) < _MAX_INLINE_DEPTH)

    def _inline(self, callee: FunctionInfo, call: ast.Call) -> None:
        if not self._inlinable(callee):
            if callee.is_generator:
                self.boundary()  # opaque generator: it will yield
            return
        self.bind_params(callee, closure=False)
        self._pass_args(callee, call, self)
        self.walk_function(callee)

    def _fork(self, target: FunctionInfo, call: ast.Call) -> None:
        if not self._inlinable(target) \
                or self.strand_count[0] >= _MAX_STRANDS:
            return
        self.strand_count[0] += 1
        child = _Strand(self.owner, self.root, parent=self)
        child.bind_params(target, closure=False)
        self._pass_args(target, call, child)
        # The child starts running only after the engine schedules it: an
        # implicit unprotected yield separates the spawn from its body.
        child._protect_depth = 0
        child.yield_flags.append(False)
        child.interval += 1
        child.walk_function(target)
"""Whole-program determinism taint (DET701/702/703).

SIM101/SIM102 flag a nondeterminism *source* at the call site, but only in
layers where any source is already forbidden.  This pass instead follows
the tainted **value** through assignments, containers, returns and calls
until it reaches a **sink** that feeds simulated behaviour — at which point
the laundering helper chain is irrelevant and the finding is real in any
layer:

* DET701 — tainted value reaches event scheduling (``*.timeout(...)``,
  ``*.schedule(...)``) or a resource request priority (``*.request(...)``);
* DET702 — tainted value reaches a metric name or label
  (``metrics.counter/gauge/histogram(...)`` arguments);
* DET703 — tainted value reaches scenario parameters (``Scenario(...)``).

Two taint kinds flow through the lattice:

* ``value`` — wall clock (``time.time``, ``perf_counter``, ...), unseeded
  RNG, ``os.environ``/``os.getenv``, ``id()``;
* ``order`` — iteration order of an unordered ``set``/``frozenset``.
  Order-insensitive aggregations (``sorted``, ``len``, ``sum``, ``min``,
  ``max``, ``any``, ``all``) sanitize *order* taint and only that: no
  amount of arithmetic launders a wall-clock read.

Function summaries (taint returned, params copied to the return value,
params flowing into a sink) are computed to fixpoint over the call graph,
so ``schedule_at(jitter())`` is caught even when ``jitter()`` hides
``time.time()`` two layers down.  Unresolved calls conservatively pass
their argument taint through to their result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    Project,
    _dotted,
    own_nodes,
)
from repro.analysis.linter import Violation
from repro.analysis.rules import _WALL_CLOCK_CALLS

#: kind -> human label.  Kinds are "value", "order", or ("param", index).
Taint = dict

_ORDER_SANITIZERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"})

_RANDOM_GLOBALS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "normalvariate",
    "betavariate", "paretovariate", "lognormvariate", "triangular",
    "getrandbits", "randbytes",
})

#: Sink method names -> (rule, sink description).
_SCHED_SINKS = {
    "timeout": ("DET701", "event scheduling (timeout delay)"),
    "schedule": ("DET701", "event scheduling"),
    "request": ("DET701", "resource request priority"),
}
_METRIC_SINKS = frozenset({"counter", "gauge", "histogram"})

#: Container methods whose argument taints the receiver.
_CONTAINER_WRITES = frozenset(
    {"append", "add", "insert", "extend", "update", "setdefault",
     "appendleft", "push"})


def _merge(*taints: Taint) -> Taint:
    out: Taint = {}
    for t in taints:
        for kind, label in t.items():
            out.setdefault(kind, label)
    return out


def _real(taint: Taint) -> Taint:
    return {k: v for k, v in taint.items() if isinstance(k, str)}


def _symbolic(taint: Taint):
    return [(k[1], v) for k, v in taint.items() if isinstance(k, tuple)]


@dataclass
class FnSummary:
    """Interprocedural taint behaviour of one function."""

    returns: Taint = field(default_factory=dict)       # real kinds only
    param_to_return: set = field(default_factory=set)  # param indices
    #: (param_index, rule, sink description, where) — a tainted argument
    #: at this position eventually reaches a sink inside (or below) this
    #: function.
    param_sinks: list = field(default_factory=list)

    def key(self):
        return (tuple(sorted(self.returns)),
                tuple(sorted(self.param_to_return)),
                tuple(sorted((i, r, s) for i, r, s, _ in self.param_sinks)))


class TaintPass:
    """Run the determinism-taint analysis over a linked :class:`Project`."""

    MAX_ROUNDS = 8

    def __init__(self, project: Project):
        self.project = project
        self.summaries: dict[str, FnSummary] = {}

    # ------------------------------------------------------------------
    def run(self) -> list[Violation]:
        for qual in self.project.functions:
            self.summaries[qual] = FnSummary()
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for fn in self.project.functions.values():
                summary, _ = self._analyse(fn, report=False)
                if summary.key() != self.summaries[fn.qualname].key():
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        violations: list[Violation] = []
        seen: set[tuple] = set()
        for fn in self.project.functions.values():
            _, found = self._analyse(fn, report=True)
            for v in found:
                key = (v.rule, v.path, v.line, v.col, v.message)
                if key not in seen:
                    seen.add(key)
                    violations.append(v)
        return violations

    # ------------------------------------------------------------------
    def _analyse(self, fn: FunctionInfo, report: bool):
        walker = _FnWalker(self, fn, report)
        walker.walk()
        return walker.summary, walker.violations


class _FnWalker:
    """Forward taint walk of one function body.

    Branch bodies are walked in sequence against one shared environment;
    since taint only ever grows, the result over-approximates the union of
    paths.  Loop bodies are walked twice so taint created late in an
    iteration reaches uses early in the next one.
    """

    def __init__(self, owner: TaintPass, fn: FunctionInfo, report: bool):
        self.owner = owner
        self.fn = fn
        self.report = report
        self.summary = FnSummary()
        self.violations: list[Violation] = []
        self.env: dict[str, Taint] = {}
        for i, name in enumerate(fn.params):
            self.env[name] = {("param", i): name}
        for j, name in enumerate(fn.kwonly):
            self.env[name] = {("param", len(fn.params) + j): name}

    # -- statement walk ------------------------------------------------
    def walk(self) -> None:
        self._walk_body(self.fn.node.body)

    def _walk_body(self, stmts) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are separate FunctionInfos
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                self.summary.returns = _merge(self.summary.returns,
                                              _real(taint))
                for idx, _ in _symbolic(taint):
                    self.summary.param_to_return.add(idx)
            return
        if isinstance(stmt, ast.For):
            self._bind_target(stmt.target, self._iter_taint(stmt.iter))
            for _ in range(2):
                self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, taint)
            self._walk_body(stmt.body)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        # Everything else (pass, import, global, ...) carries no taint,
        # but nested expressions may still contain sinks.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._eval(node)

    def _assign(self, stmt) -> None:
        value = getattr(stmt, "value", None)
        taint = self._eval(value) if value is not None else {}
        if isinstance(stmt, ast.AugAssign):
            taint = _merge(taint, self._eval_load(stmt.target))
            self._bind_target(stmt.target, taint)
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            self._bind_target(target, taint)

    def _bind_target(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dict(taint)
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if dotted is not None:
                self.env[dotted] = _merge(self.env.get(dotted, {}), taint)
        elif isinstance(target, ast.Subscript):
            # Storing a tainted element taints the whole container.
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = _merge(self.env.get(base.id, {}), taint)
            else:
                dotted = _dotted(base)
                if dotted is not None:
                    self.env[dotted] = _merge(self.env.get(dotted, {}), taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint)

    # -- expression evaluation -----------------------------------------
    def _eval_load(self, node: ast.expr) -> Taint:
        """Taint of an expression read without re-triggering sinks."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, {})
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            stored = self.env.get(dotted, {}) if dotted else {}
            return _merge(stored, self._eval_load(node.value))
        if isinstance(node, ast.Subscript):
            return self._eval_load(node.value)
        return {}

    def _eval(self, node: ast.expr | None) -> Taint:
        if node is None:
            return {}
        if isinstance(node, ast.Name):
            return self.env.get(node.id, {})
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted == "os.environ":
                return {"value": "`os.environ`"}
            stored = self.env.get(dotted, {}) if dotted else {}
            return _merge(stored, self._eval(node.value))
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            self._eval(node.slice)
            return base
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.BinOp,)):
            return _merge(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return _merge(*[self._eval(v) for v in node.values])
        if isinstance(node, ast.Compare):
            return _merge(self._eval(node.left),
                          *[self._eval(c) for c in node.comparators])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _merge(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _merge(*[self._eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self._eval(k) for k in node.keys if k is not None]
            parts += [self._eval(v) for v in node.values]
            return _merge(*parts) if parts else {}
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comp(node)
        if isinstance(node, ast.JoinedStr):
            return _merge(*[self._eval(v) for v in node.values]) \
                if node.values else {}
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._eval(node.value)
            return {}
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._bind_target(node.target, taint)
            return taint
        return {}

    def _eval_comp(self, node) -> Taint:
        taint: Taint = {}
        for gen in node.generators:
            self._bind_target(gen.target, self._iter_taint(gen.iter))
            for cond in gen.ifs:
                self._eval(cond)
        if isinstance(node, ast.DictComp):
            taint = _merge(self._eval(node.key), self._eval(node.value))
        else:
            taint = self._eval(node.elt)
        return taint

    def _iter_taint(self, it: ast.expr) -> Taint:
        """Taint a loop variable picks up from its iterable."""
        taint = dict(self._eval(it))
        if self._is_set_expr(it):
            taint.setdefault("order", "set iteration order")
        return taint

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    # -- calls: sources, sanitizers, sinks, summaries ------------------
    def _eval_call(self, call: ast.Call) -> Taint:
        arg_taints = [self._eval(a) for a in call.args]
        kw_taints = [self._eval(kw.value) for kw in call.keywords]
        all_args = _merge(*(arg_taints + kw_taints)) \
            if (arg_taints or kw_taints) else {}
        dotted = _dotted(call.func)

        source = self._source_taint(call, dotted)
        if source:
            return _merge(source, all_args)

        if isinstance(call.func, ast.Name) \
                and call.func.id in _ORDER_SANITIZERS:
            return {k: v for k, v in all_args.items() if k != "order"}

        self._check_sinks(call, dotted, arg_taints, kw_taints)

        callees = self.owner.project.resolve_call(self.fn, call)
        if callees:
            taint_by_expr = {id(a): t for a, t in zip(call.args, arg_taints)}
            taint_by_expr.update(
                {id(kw.value): t for kw, t in zip(call.keywords, kw_taints)})
            out: Taint = {}
            for callee in callees:
                summary = self.owner.summaries.get(callee.qualname)
                if summary is None:
                    continue
                out = _merge(out, dict(summary.returns))
                pairs = Project.map_arguments(callee, call)
                for idx, arg in pairs:
                    arg_taint = taint_by_expr.get(id(arg), {})
                    if not arg_taint:
                        continue
                    if idx in summary.param_to_return:
                        out = _merge(out, arg_taint)
                    for (p_idx, rule, sink, where) in summary.param_sinks:
                        if p_idx != idx:
                            continue
                        self._sink_hit(
                            rule, call, arg_taint,
                            f"{sink} inside `{callee.qualname}` ({where})")
            return out

        # Unknown callee: taint flows through (arguments and receiver).
        recv = self._eval(call.func.value) \
            if isinstance(call.func, ast.Attribute) else {}
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in _CONTAINER_WRITES \
                and isinstance(call.func.value, ast.Name) and all_args:
            name = call.func.value.id
            self.env[name] = _merge(self.env.get(name, {}), all_args)
        return _merge(all_args, recv)

    def _source_taint(self, call: ast.Call, dotted: str | None) -> Taint:
        if dotted in _WALL_CLOCK_CALLS:
            return {"value": f"`{dotted}()`"}
        if dotted == "os.getenv":
            return {"value": "`os.getenv()`"}
        if isinstance(call.func, ast.Name) and call.func.id == "id":
            return {"value": "`id()`"}
        if dotted is not None and dotted.startswith("random.") \
                and dotted.count(".") == 1:
            attr = dotted.split(".", 1)[1]
            if attr in _RANDOM_GLOBALS:
                return {"value": f"global RNG `{dotted}()`"}
            if attr == "Random" and not call.args and not call.keywords:
                return {"value": "unseeded `random.Random()`"}
        if dotted in ("np.random.default_rng", "numpy.random.default_rng") \
                and not call.args and not call.keywords:
            return {"value": "unseeded `default_rng()`"}
        return {}

    def _check_sinks(self, call: ast.Call, dotted: str | None,
                     arg_taints, kw_taints) -> None:
        rule_sink = self._sink_of(call, dotted)
        if rule_sink is None:
            return
        rule, sink = rule_sink
        for taint, arg in zip(arg_taints, call.args):
            if taint:
                self._sink_hit(rule, arg, taint, sink)
        for taint, kw in zip(kw_taints, call.keywords):
            if taint:
                self._sink_hit(rule, kw.value, taint, sink)

    def _sink_of(self, call: ast.Call,
                 dotted: str | None) -> tuple[str, str] | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SCHED_SINKS:
                return _SCHED_SINKS[func.attr]
            if func.attr in _METRIC_SINKS:
                chain = _dotted(func.value)
                parts = chain.lower().split(".") if chain else []
                if any("metric" in p or "registry" in p or p == "obs"
                       for p in parts):
                    return ("DET702", f"metric name/label "
                                      f"(`{chain}.{func.attr}`)")
            if func.attr == "Scenario":
                return ("DET703", "scenario parameters")
        elif isinstance(func, ast.Name) and func.id == "Scenario":
            return ("DET703", "scenario parameters")
        return None

    def _sink_hit(self, rule: str, node: ast.AST, taint: Taint,
                  sink: str) -> None:
        real = _real(taint)
        if real:
            if self.report:
                kind = next(iter(sorted(real)))
                self.violations.append(Violation(
                    rule, self.fn.path, node.lineno, node.col_offset,
                    f"nondeterministic {kind} from {real[kind]} reaches "
                    f"{sink}; thread a seeded/deterministic value instead "
                    f"(in `{self.fn.qualname}`)"))
        for idx, pname in _symbolic(taint):
            entry = (idx, rule, sink, f"arg `{pname}`")
            if entry not in self.summary.param_sinks:
                self.summary.param_sinks.append(entry)

"""The simlint command line (``python -m repro.analysis`` / ``simlint``).

Exit status: 0 when every checked file is clean, 1 when violations remain
(after ``--fix``, only unfixed violations count), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.analysis.linter import apply_fixes, iter_python_files, lint_file
from repro.analysis.rules import ALL_RULES


def _list_rules() -> str:
    lines = ["simlint rules (suppress with `# simlint: disable=ID`):", ""]
    for rule in ALL_RULES:
        fix = "  [autofix]" if rule.autofixable else ""
        lines.append(f"  {rule.id}{fix}")
        lines.append(f"      {rule.summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="DES-aware static analysis for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical autofixes in place")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = args.select.split(",") if args.select else None
    files = iter_python_files(args.paths)
    if not files:
        print(f"simlint: no python files under {args.paths}", file=sys.stderr)
        return 2

    remaining = []
    fixed = 0
    for path in files:
        violations = lint_file(path, select)
        if args.fix and any(v.fix for v in violations):
            fixed += apply_fixes(path, violations)
            violations = lint_file(path, select)  # re-lint the fixed file
        remaining.extend(violations)

    for violation in remaining:
        print(violation.format())
    if fixed:
        print(f"simlint: fixed {fixed} violation(s)")
    if remaining:
        by_rule = Counter(v.rule for v in remaining)
        summary = ", ".join(f"{r}×{n}" for r, n in sorted(by_rule.items()))
        print(f"simlint: {len(remaining)} violation(s) in "
              f"{len(files)} file(s) ({summary})")
        return 1
    print(f"simlint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The simlint command line (``python -m repro.analysis`` / ``simlint``).

Two tiers share one entry point:

* the default **per-file** run — the twelve syntactic/CFG rules, with
  ``--fix`` autofixes;
* ``--whole-program`` — per-file rules *plus* the project-wide passes
  (determinism taint, cooperative-process races, interprocedural grant
  escape), with the incremental cache, ``--baseline`` workflow and the
  ``sarif`` / ``github`` output formats used by CI.

Exit status: 0 when every checked file is clean (or every finding is
baselined), 1 when violations remain (after ``--fix``, only unfixed
violations count), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.analysis.linter import apply_fixes, iter_python_files, lint_file
from repro.analysis.rules import ALL_RULES


def _list_rules() -> str:
    from repro.analysis.wholeprogram import WHOLE_PROGRAM_RULES

    scope_names = {"syntactic": "syntactic, single AST",
                   "cfg": "CFG-based, single function"}
    lines = ["simlint rules (suppress any with `# simlint: disable=ID`):"]
    for scope in ("syntactic", "cfg"):
        lines.append("")
        lines.append(f"Per-file rules ({scope_names[scope]}):")
        for rule in ALL_RULES:
            if rule.scope != scope:
                continue
            fix = "  [autofix]" if rule.autofixable else ""
            lines.append(f"  {rule.id}{fix}")
            lines.append(f"      {rule.summary}")
    lines.append("")
    lines.append("Whole-program passes (`--whole-program`):")
    by_pass: dict[str, list] = {}
    for rid, pass_name, summary in WHOLE_PROGRAM_RULES:
        by_pass.setdefault(pass_name, []).append((rid, summary))
    for pass_name in sorted(by_pass):
        lines.append(f"  [{pass_name}]")
        for rid, summary in by_pass[pass_name]:
            lines.append(f"  {rid}")
            lines.append(f"      {summary}")
    return "\n".join(lines)


def _per_file_main(args, select) -> int:
    files = iter_python_files(args.paths)
    if not files:
        print(f"simlint: no python files under {args.paths}", file=sys.stderr)
        return 2

    remaining = []
    fixed = 0
    for path in files:
        violations = lint_file(path, select)
        if args.fix and any(v.fix for v in violations):
            fixed += apply_fixes(path, violations)
            violations = lint_file(path, select)  # re-lint the fixed file
        remaining.extend(violations)

    for violation in remaining:
        print(violation.format())
    if fixed:
        print(f"simlint: fixed {fixed} violation(s)")
    if remaining:
        by_rule = Counter(v.rule for v in remaining)
        summary = ", ".join(f"{r}×{n}" for r, n in sorted(by_rule.items()))
        print(f"simlint: {len(remaining)} violation(s) in "
              f"{len(files)} file(s) ({summary})")
        return 1
    print(f"simlint: {len(files)} file(s) clean")
    return 0


def _whole_program_main(args, select) -> int:
    from repro.analysis.wholeprogram import (
        apply_baseline,
        run_whole_program,
        to_github,
        to_sarif,
        write_baseline,
    )

    run = run_whole_program(args.paths, select=select,
                            cache_dir=args.cache_dir,
                            use_cache=not args.no_cache)
    findings = run.findings
    baselined: list = []

    if args.write_baseline:
        n = write_baseline(findings, args.write_baseline)
        print(f"simlint: baseline of {n} finding(s) written to "
              f"{args.write_baseline}")
        return 0
    if args.baseline:
        findings, baselined = apply_baseline(findings, args.baseline)

    if args.format == "sarif":
        sys.stdout.write(to_sarif(findings))
    elif args.format == "github":
        sys.stdout.write(to_github(findings))
    else:
        for violation in findings:
            print(violation.format())

    if args.stats:
        print(run.stats.format(), file=sys.stderr)

    if findings:
        if args.format == "text":
            by_rule = Counter(v.rule for v in findings)
            summary = ", ".join(f"{r}×{n}"
                                for r, n in sorted(by_rule.items()))
            note = f" ({len(baselined)} baselined)" if baselined else ""
            print(f"simlint: {len(findings)} violation(s) in "
                  f"{run.stats.files_total} file(s) ({summary}){note}")
        return 1
    if args.format == "text":
        note = f" ({len(baselined)} baselined)" if baselined else ""
        print(f"simlint: {run.stats.files_total} file(s) clean{note}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="DES-aware static analysis for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical autofixes in place")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--whole-program", action="store_true",
                        help="also run the project-wide passes (taint, "
                             "races, grant escape)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings fingerprinted in FILE")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="freeze current findings into FILE and exit")
    parser.add_argument("--format", choices=("text", "sarif", "github"),
                        default="text",
                        help="output format for --whole-program runs")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass timing and cache statistics")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default="results/lintcache",
                        help="incremental cache directory "
                             "(default: results/lintcache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="analyse everything from scratch")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = args.select.split(",") if args.select else None
    if not args.whole_program:
        for flag, name in ((args.baseline, "--baseline"),
                           (args.write_baseline, "--write-baseline"),
                           (args.stats, "--stats")):
            if flag:
                parser.error(f"{name} requires --whole-program")
        if args.format != "text":
            parser.error("--format requires --whole-program")
        return _per_file_main(args, select)

    if args.fix:
        parser.error("--fix cannot be combined with --whole-program")
    return _whole_program_main(args, select)


if __name__ == "__main__":
    sys.exit(main())
"""Interprocedural grant-responsibility summaries (RES/FLT lift).

The intraprocedural grant analysis (:mod:`repro.analysis.cfg`) closes a
tracked request the moment it is passed to *any* call: someone else is now
responsible.  That keeps the per-file tier free of false positives, but it
also means a helper that merely *reads* the request — or worse, waits on
it — launders the grant out of sight.

This module computes per-function **parameter summaries** over the project
call graph, with a fixpoint for helper chains:

* ``releases`` — parameter indices the function releases or cancels on
  some path (directly, or by forwarding to a releasing callee);
* ``escapes`` — indices the function re-escapes (stores, returns, aliases,
  or forwards to an unresolved call): responsibility genuinely moves on;
* ``waits`` — indices the function waits on raw (``yield p``) without
  timeout/cancellation protection, directly or transitively.

Two whole-program checks consume them:

* **RES301/RES302 lift** — the acquire/release walk re-runs with an
  *escape oracle*: passing the request to a resolved callee that neither
  releases nor re-escapes it is no longer an ownership transfer, so leaks
  across helper calls surface.  Only findings the intraprocedural tier
  missed are reported.
* **FLT501 lift** — a repair-path function that hands its raw request to
  a helper whose parameter is in ``waits`` is flagged at the call site:
  the wait happens out of line, but an injected fault still strands the
  queued request.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionInfo, Project, own_nodes
from repro.analysis.cfg import (
    RELEASE_METHODS,
    analyse_function,
)
from repro.analysis.linter import Violation
from repro.analysis.rules import _NORMAL_READ_ALLOWLIST, _REPAIR_PATH_MARKERS

_MAX_ROUNDS = 12


@dataclass
class ParamSummary:
    """What one function does with each of its parameters."""

    releases: set = field(default_factory=set)
    escapes: set = field(default_factory=set)
    waits: set = field(default_factory=set)

    def key(self):
        return (frozenset(self.releases), frozenset(self.escapes),
                frozenset(self.waits))


@dataclass
class _Forward:
    """One call site forwarding a parameter to a callee parameter."""

    param: int
    callees: tuple
    callee_param: int
    protected: bool


class GrantSummaries:
    """Fixpoint computation of per-function parameter summaries."""

    def __init__(self, project: Project):
        self.project = project
        self.summaries: dict[str, ParamSummary] = {}
        self._forwards: dict[str, list[_Forward]] = {}

    def run(self) -> "GrantSummaries":
        for fn in self.project.functions.values():
            self._collect_direct(fn)
        for _ in range(_MAX_ROUNDS):
            if not self._propagate():
                break
        return self

    # ------------------------------------------------------------------
    def summary_of(self, qualname: str) -> ParamSummary | None:
        return self.summaries.get(qualname)

    def transfers(self, callees, param_idx: int) -> bool:
        """Whether handing a grant to ``param_idx`` of these resolved
        callees moves responsibility out of the caller."""
        for callee in callees:
            s = self.summaries.get(callee.qualname)
            if s is None:
                return True
            if param_idx in s.releases or param_idx in s.escapes:
                return True
        return False

    def waits_on(self, callees, param_idx: int) -> bool:
        return any(param_idx in self.summaries.get(c.qualname,
                                                   ParamSummary()).waits
                   for c in callees)

    # ------------------------------------------------------------------
    def _collect_direct(self, fn: FunctionInfo) -> None:
        summary = ParamSummary()
        params = {name: i for i, name in enumerate(fn.params)}
        for i, name in enumerate(fn.kwonly):
            params[name] = len(fn.params) + i
        collector = _DirectCollector(self, fn, params, summary)
        collector.walk(fn.node.body, protected=False)
        self.summaries[fn.qualname] = summary
        self._forwards[fn.qualname] = collector.forwards

    def _propagate(self) -> bool:
        changed = False
        for qual, forwards in self._forwards.items():
            summary = self.summaries[qual]
            before = summary.key()
            for fwd in forwards:
                if not fwd.callees:
                    summary.escapes.add(fwd.param)
                    continue
                if self.transfers(fwd.callees, fwd.callee_param):
                    if any(fwd.callee_param
                           in self.summaries.get(c.qualname,
                                                 ParamSummary()).releases
                           for c in fwd.callees):
                        summary.releases.add(fwd.param)
                    else:
                        summary.escapes.add(fwd.param)
                if not fwd.protected and \
                        self.waits_on(fwd.callees, fwd.callee_param):
                    summary.waits.add(fwd.param)
            if summary.key() != before:
                changed = True
        return changed


class _DirectCollector:
    """One statement walk of a function recording parameter events.

    Tracks try/finally-or-except *protection* the same way the FLT501
    rule does: inside a try whose cleanup cancels/releases the parameter,
    waits on it are handled."""

    def __init__(self, owner: GrantSummaries, fn: FunctionInfo,
                 params: dict, summary: ParamSummary):
        self.owner = owner
        self.fn = fn
        self.params = params
        self.summary = summary
        self.forwards: list[_Forward] = []

    # ------------------------------------------------------------------
    def walk(self, stmts, protected: bool) -> None:
        for stmt in stmts:
            self._stmt(stmt, protected)

    def _stmt(self, stmt: ast.stmt, protected: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Capturing a param in a nested def moves responsibility.
            for name, idx in self.params.items():
                if _names_loaded(stmt, name):
                    self.summary.escapes.add(idx)
            return
        if isinstance(stmt, ast.Try):
            inner = protected or self._try_cleans(stmt)
            self.walk(stmt.body, inner)
            for handler in stmt.handlers:
                self.walk(handler.body, protected)
            self.walk(stmt.orelse, protected)
            self.walk(stmt.finalbody, protected)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escaping_names(stmt.value)
                self._expr_events(stmt.value, protected)
            return
        if isinstance(stmt, ast.If):
            self._expr_events(stmt.test, protected)
            self.walk(stmt.body, protected)
            self.walk(stmt.orelse, protected)
            return
        if isinstance(stmt, ast.While):
            self._expr_events(stmt.test, protected)
            self.walk(stmt.body, protected)
            self.walk(stmt.orelse, protected)
            return
        if isinstance(stmt, ast.For):
            self._expr_events(stmt.iter, protected)
            self.walk(stmt.body, protected)
            self.walk(stmt.orelse, protected)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr_events(item.context_expr, protected)
            self.walk(stmt.body, protected)
            return
        self._expr_events(stmt, protected)

    def _try_cleans(self, node: ast.Try) -> bool:
        cleanup = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        for stmt in cleanup:
            for n in ast.walk(stmt):
                if isinstance(n, ast.Call) \
                        and isinstance(n.func, ast.Attribute) \
                        and n.func.attr in RELEASE_METHODS:
                    if isinstance(n.func.value, ast.Name) \
                            and n.func.value.id in self.params:
                        return True
                    if any(isinstance(a, ast.Name) and a.id in self.params
                           for a in n.args):
                        return True
        return False

    # ------------------------------------------------------------------
    def _expr_events(self, root, protected: bool) -> None:
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Yield) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in self.params:
                if not protected:
                    self.summary.waits.add(self.params[node.value.id])
            elif isinstance(node, ast.Call):
                self._call_events(node, protected)
            elif isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Name) \
                        and node.value.id in self.params:
                    self.summary.escapes.add(self.params[node.value.id])
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        self._escaping_names(target)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                self._escaping_names(node, shallow=True)

    def _call_events(self, call: ast.Call, protected: bool) -> None:
        func = call.func
        # Direct release: `p.release()` / `p.cancel()` / `recv.release(p)`.
        if isinstance(func, ast.Attribute) and func.attr in RELEASE_METHODS:
            if isinstance(func.value, ast.Name) \
                    and func.value.id in self.params:
                self.summary.releases.add(self.params[func.value.id])
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id in self.params:
                    self.summary.releases.add(self.params[arg.id])
            return
        passed = [(pos, arg) for pos, arg in enumerate(call.args)
                  if isinstance(arg, ast.Name) and arg.id in self.params]
        passed_kw = [(kw.arg, kw.value) for kw in call.keywords
                     if kw.arg is not None
                     and isinstance(kw.value, ast.Name)
                     and kw.value.id in self.params]
        if not passed and not passed_kw:
            return
        callees = tuple(self.owner.project.resolve_call(self.fn, call))
        for _, arg in passed + passed_kw:
            param = self.params[arg.id]
            if not callees:
                self.summary.escapes.add(param)
                continue
            mapped = [idx for idx, expr in
                      Project.map_arguments(callees[0], call)
                      if expr is arg]
            if not mapped:
                self.summary.escapes.add(param)
                continue
            self.forwards.append(_Forward(param, callees, mapped[0],
                                          protected))

    def _escaping_names(self, node, shallow: bool = False) -> None:
        if shallow:
            for n in ast.iter_child_nodes(node):
                if isinstance(n, ast.Name) and n.id in self.params:
                    self.summary.escapes.add(self.params[n.id])
            return
        # `p.attr` is a read of the grant, not an escape of it; a bare
        # `p` (returned, stored, packed in a container) transfers it.
        reads = {id(n.value) for n in ast.walk(node)
                 if isinstance(n, ast.Attribute)
                 and isinstance(n.value, ast.Name)}
        for n in ast.walk(node):
            if isinstance(n, ast.Name) and n.id in self.params \
                    and id(n) not in reads:
                self.summary.escapes.add(self.params[n.id])


def _names_loaded(tree, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(tree))


# ----------------------------------------------------------------------
# Whole-program checks built on the summaries
# ----------------------------------------------------------------------
class GrantEscapePass:
    """Summary-aware RES301/RES302 re-check plus the FLT501 lift."""

    def __init__(self, project: Project,
                 summaries: GrantSummaries | None = None):
        self.project = project
        self.summaries = summaries if summaries is not None \
            else GrantSummaries(project).run()

    def run(self) -> list[Violation]:
        out: list[Violation] = []
        for fn in self.project.functions.values():
            out.extend(self._lifted_res(fn))
            out.extend(self._lifted_flt(fn))
        out.sort(key=lambda v: (v.path, v.line, v.rule))
        return out

    # ------------------------------------------------------------------
    def _oracle(self, fn: FunctionInfo):
        def escape(call: ast.Call, var: str) -> bool:
            callees = self.project.resolve_call(fn, call)
            if not callees:
                return True  # unresolved: assume ownership transfer
            mapped = [idx for idx, expr in
                      Project.map_arguments(callees[0], call)
                      if isinstance(expr, ast.Name) and expr.id == var]
            if not mapped:
                return True  # *args forwarding etc.
            return self.summaries.transfers(callees, mapped[0])
        return escape

    def _lifted_res(self, fn: FunctionInfo):
        base_findings = analyse_function(fn.node)
        base: set = set()
        for f in base_findings:
            base.update(("RES301", line) for line in f.leak_exits)
            base.update(("RES302", line) for line in f.unprotected_waits)
        for finding in analyse_function(fn.node, self._oracle(fn)):
            line = finding.site.stmt.lineno
            for exit_line in finding.leak_exits:
                if ("RES301", exit_line) in base:
                    continue
                yield Violation(
                    "RES301", fn.path, line, finding.site.stmt.col_offset,
                    f"`{finding.site.var}` acquired here is not released on "
                    f"the path exiting at line {exit_line}: the helpers it "
                    "is passed to neither release nor take ownership of it "
                    f"(in `{fn.qualname}`)")
            for wait_line in finding.unprotected_waits:
                if ("RES302", wait_line) in base:
                    continue
                yield Violation(
                    "RES302", fn.path, wait_line, 0,
                    f"grant `{finding.site.var}` (line "
                    f"{finding.site.stmt.lineno}) is still held across this "
                    "`yield`: the helper it is passed to neither releases "
                    f"nor takes ownership of it (in `{fn.qualname}`)")

    # ------------------------------------------------------------------
    def _lifted_flt(self, fn: FunctionInfo):
        if fn.layer not in ("cluster", "faults"):
            return
        if fn.name in _NORMAL_READ_ALLOWLIST:
            return
        lowered = fn.name.lower()
        if not any(m in lowered for m in _REPAIR_PATH_MARKERS):
            return
        request_vars = {
            t.id for n in own_nodes(fn.node)
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Call)
            and isinstance(n.value.func, ast.Attribute)
            and n.value.func.attr == "request"
            for t in n.targets if isinstance(t, ast.Name)}
        if not request_vars:
            return
        yield from self._flt_scan(fn, fn.node.body, request_vars,
                                  protected=False)

    def _flt_scan(self, fn: FunctionInfo, stmts, tracked: set,
                  protected: bool):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Try):
                inner = protected or self._try_cancels(stmt, tracked)
                yield from self._flt_scan(fn, stmt.body, tracked, inner)
                for handler in stmt.handlers:
                    yield from self._flt_scan(fn, handler.body, tracked,
                                              protected)
                yield from self._flt_scan(fn, stmt.orelse, tracked,
                                          protected)
                yield from self._flt_scan(fn, stmt.finalbody, tracked,
                                          protected)
                continue
            if not protected:
                if isinstance(stmt, (ast.If, ast.While)):
                    yield from self._flt_calls(fn, stmt.test, tracked)
                elif isinstance(stmt, ast.For):
                    yield from self._flt_calls(fn, stmt.iter, tracked)
                elif isinstance(stmt, ast.With):
                    for item in stmt.items:
                        yield from self._flt_calls(fn, item.context_expr,
                                                   tracked)
                else:
                    yield from self._flt_calls(fn, stmt, tracked)
            for body in ("body", "orelse", "finalbody"):
                yield from self._flt_scan(fn, getattr(stmt, body, []),
                                          tracked, protected)

    def _flt_calls(self, fn: FunctionInfo, stmt: ast.stmt, tracked: set):
        stack = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                for arg in node.args:
                    if not (isinstance(arg, ast.Name) and arg.id in tracked):
                        continue
                    callees = self.project.resolve_call(fn, node)
                    if not callees:
                        continue
                    mapped = [idx for idx, expr in
                              Project.map_arguments(callees[0], node)
                              if expr is arg]
                    if mapped and self.summaries.waits_on(callees,
                                                          mapped[0]):
                        names = ", ".join(sorted(
                            c.name for c in callees)[:3])
                        yield Violation(
                            "FLT501", fn.path, node.lineno,
                            node.col_offset,
                            f"repair-path `{fn.name}` hands grant "
                            f"`{arg.id}` to `{names}` which waits on it "
                            "with no timeout/cancellation handling; an "
                            "injected fault interrupting that wait "
                            "strands the queued request")
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _try_cancels(node: ast.Try, tracked: set) -> bool:
        cleanup = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        for stmt in cleanup:
            for n in ast.walk(stmt):
                if not (isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)):
                    continue
                if n.func.attr in RELEASE_METHODS:
                    if isinstance(n.func.value, ast.Name) \
                            and n.func.value.id in tracked:
                        return True
                    if any(isinstance(a, ast.Name) and a.id in tracked
                           for a in n.args):
                        return True
        return False
"""Linter driver: file walking, layer mapping, suppressions, reporting.

A *layer* is the ``repro`` subpackage a file belongs to (``sim``,
``cluster``, ``codes``, ...); rules scope themselves to layers, so the
wall-clock rule fires inside the simulator but not in the experiment CLI
(whose ``time.time()`` progress timer is legitimate).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Fix:
    """A mechanical source rewrite: replace [line, col)..(end_line, end_col)."""

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fix: Fix | None = None

    def format(self) -> str:
        """``path:line:col: RULE message`` (the CLI's output line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintResult:
    """Violations plus bookkeeping for one lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


#: ``# simlint: disable=RULE1,RULE2`` (line scope) /
#: ``# simlint: disable-file=RULE1,RULE2`` (whole file).
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


class Suppressions:
    """Per-line and per-file rule suppressions parsed from comments."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            rules = {r.strip().upper() for r in m.group("rules").split(",")}
            if m.group("file"):
                self.file_wide |= rules
            else:
                self.by_line.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether the rule is disabled at the given line."""
        if rule in self.file_wide or "ALL" in self.file_wide:
            return True
        at_line = self.by_line.get(line, ())
        return rule in at_line or "ALL" in at_line


def layer_of(path: str | Path) -> str | None:
    """The ``repro`` subpackage a path belongs to (``None`` outside repro).

    ``src/repro/sim/engine.py`` -> ``"sim"``; ``src/repro/__init__.py`` ->
    ``""`` (package root); ``tools/foo.py`` -> ``None``.
    """
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro":
            rest = parts[i + 1:]
            if not rest or (len(rest) == 1 and rest[0].endswith(".py")):
                return ""
            # The placement-policy package is its own layer: it sits
            # below cluster (which imports it) and must not reach back
            # into the rest of the cluster machinery.
            if rest[0] == "cluster" and len(rest) > 2 \
                    and rest[1] == "placement":
                return "placement"
            return rest[0]
    return None


def lint_source(source: str, path: str | Path,
                select: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string as if it lived at ``path``."""
    from repro.analysis.rules import ALL_RULES

    path = str(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation("E999", path, exc.lineno or 1, exc.offset or 0,
                          f"syntax error: {exc.msg}")]
    layer = layer_of(path)
    suppressions = Suppressions(source)
    selected = {r.upper() for r in select} if select is not None else None
    out: list[Violation] = []
    for rule in ALL_RULES:
        if selected is not None and rule.id not in selected:
            continue
        if not rule.applies_to(layer):
            continue
        for violation in rule.check(tree, source, path):
            if not suppressions.is_suppressed(violation.rule, violation.line):
                out.append(violation)
    out.sort(key=lambda v: (v.line, v.col, v.rule))
    return out


def lint_file(path: str | Path,
              select: Iterable[str] | None = None) -> list[Violation]:
    """Lint one file on disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path, select)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None) -> LintResult:
    """Lint every ``.py`` file under the given paths."""
    result = LintResult()
    for f in iter_python_files(paths):
        result.violations.extend(lint_file(f, select))
        result.files_checked += 1
    return result


def apply_fixes(path: str | Path, violations: list[Violation]) -> int:
    """Apply the autofixes among ``violations`` to ``path`` in place.

    Fixes are applied bottom-up so earlier offsets stay valid; returns the
    number of fixes applied.
    """
    fixes = [v.fix for v in violations if v.fix is not None
             and str(v.path) == str(path)]
    if not fixes:
        return 0
    lines = Path(path).read_text(encoding="utf-8").splitlines(keepends=True)
    for fix in sorted(fixes, key=lambda f: (f.line, f.col), reverse=True):
        if fix.line != fix.end_line:
            # Multi-line spans: splice the raw region.
            head = lines[fix.line - 1][:fix.col]
            tail = lines[fix.end_line - 1][fix.end_col:]
            lines[fix.line - 1:fix.end_line] = [head + fix.replacement + tail]
        else:
            text = lines[fix.line - 1]
            lines[fix.line - 1] = (text[:fix.col] + fix.replacement
                                   + text[fix.end_col:])
    Path(path).write_text("".join(lines), encoding="utf-8")
    return len(fixes)

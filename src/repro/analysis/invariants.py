"""Runtime invariant checking, hooked through the :mod:`repro.obs` observer.

Three invariant families, all opt-in (``--check-invariants`` on the
experiment CLI, or :func:`attach_invariant_checker` in code):

* **Monotonic sim clock** — every event the engine schedules must land at
  or after ``env.now``.  Wired through ``EngineHooks.on_schedule``.
* **Resource grant conservation** — every :class:`~repro.sim.Resource`
  created under the observer registers itself; at the end of each
  measurement (``_Runtime.finalize``) no grant may still be held and no
  waiter may still be queued.  Environments running open-ended background
  load (the "busy" experiments) are exempted, since their foreground
  generators legitimately hold grants when the measured work completes.
* **Repair byte conservation** — every repair profile the simulator
  consumes is checked against the theoretical repair bandwidth of its code:
  ``k * chunk`` for RS-style any-k repairs and ``chunk * (n-1)/r`` for
  Clay's optimal d = n-1 repair, with a generic fall-back to the code's own
  byte-exact :meth:`repair_plan`.  :meth:`verify_codec_roundtrip` checks the
  literal property on real bytes: repairing from exactly the planned reads
  reproduces the lost chunk.

Violations raise :class:`InvariantViolation` immediately — a skewed number
must fail the run, not decorate a report.
"""

from __future__ import annotations

import numpy as np


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulator or codec stack was broken."""


class InvariantChecker:
    """Collects hooks and performs the runtime invariant checks."""

    #: Relative tolerance on repair byte conservation; profiles are exact
    #: up to sub-packetization rounding, absorbed by the absolute slack.
    rel_tolerance = 1e-6

    def __init__(self):
        self.resources: list = []
        self._exempt_envs: set[int] = set()
        self._expected_cache: dict[tuple[int, int, int], int] = {}
        self.stats = {
            "schedule_checks": 0,
            "profile_checks": 0,
            "resources_registered": 0,
            "resources_audited": 0,
            "codec_roundtrips": 0,
            "task_conservation_checks": 0,
        }

    # ------------------------------------------------------------------
    # Engine: monotonic sim clock
    # ------------------------------------------------------------------
    def on_schedule(self, when: float, event) -> None:
        """Every scheduled event must not land before the current time."""
        self.stats["schedule_checks"] += 1
        now = event.env.now
        if when < now:
            raise InvariantViolation(
                f"event {type(event).__name__} scheduled at t={when!r}, "
                f"before the current sim time t={now!r}: the sim clock "
                "would run backwards")

    # ------------------------------------------------------------------
    # Resources: grant conservation
    # ------------------------------------------------------------------
    def register_resource(self, resource) -> None:
        """Track a resource for the end-of-run leak audit."""
        self.resources.append(resource)
        self.stats["resources_registered"] += 1

    def exempt_env(self, env) -> None:
        """Exclude an environment running open-ended background load."""
        self._exempt_envs.add(id(env))

    def audit_env(self, env) -> None:
        """End-of-measurement audit: no grant held, no waiter queued."""
        if id(env) in self._exempt_envs:
            return
        for resource in self.resources:
            if resource.env is not env:
                continue
            self.stats["resources_audited"] += 1
            if resource.in_use != 0:
                raise InvariantViolation(
                    f"resource leak: {self._describe(resource)} still holds "
                    f"{resource.in_use} grant(s) at the end of the run")
            if resource.queue_length != 0:
                raise InvariantViolation(
                    f"resource leak: {self._describe(resource)} still has "
                    f"{resource.queue_length} queued waiter(s) at the end "
                    "of the run")

    @staticmethod
    def _describe(resource) -> str:
        kind = getattr(resource, "_kind", None) or type(resource).__name__
        return f"{kind} (capacity {resource.capacity})"

    # ------------------------------------------------------------------
    # Codec: repair byte conservation
    # ------------------------------------------------------------------
    def expected_repair_bytes(self, code, failed_role: int,
                              chunk_size: int) -> int:
        """Theoretical helper-read bytes to repair one chunk.

        Closed forms for the two codes the acceptance criteria name; any
        other code is measured against its own byte-exact repair plan.
        """
        key = (id(code), failed_role, chunk_size)
        cached = self._expected_cache.get(key)
        if cached is not None:
            return cached
        kind = type(code).__name__
        if kind == "RSCode":
            expected = code.k * chunk_size
        elif kind == "ClayCode":
            # d = n - 1 helpers, each reading chunk/(d - k + 1) bytes.
            d = code.n - 1
            expected = d * chunk_size // (d - code.k + 1)
        else:
            expected = code.repair_plan(failed_role,
                                        chunk_size).total_read_bytes
        self._expected_cache[key] = expected
        return expected

    def check_repair_profile(self, code, profile) -> None:
        """A repair profile must read exactly the theoretical bandwidth."""
        self.stats["profile_checks"] += 1
        if profile.output_bytes != profile.chunk_size:
            raise InvariantViolation(
                f"repair profile for {code.name} role "
                f"{profile.failed_role} outputs {profile.output_bytes} "
                f"bytes for a {profile.chunk_size}-byte chunk")
        expected = self.expected_repair_bytes(code, profile.failed_role,
                                              profile.chunk_size)
        total = profile.total_read_bytes
        slack = max(self.rel_tolerance * expected, code.alpha * code.n)
        if abs(total - expected) > slack:
            raise InvariantViolation(
                f"repair byte conservation broken for {code.name} role "
                f"{profile.failed_role}, chunk {profile.chunk_size}: "
                f"helpers read {total} bytes, theory says {expected} "
                f"(±{slack:.0f})")

    def check_decode_profile(self, profile, n_helpers: int) -> None:
        """A full-decode (multi-failure) profile reads whole chunks from
        each of its helpers — nothing more, nothing less."""
        self.stats["profile_checks"] += 1
        expected = n_helpers * profile.chunk_size
        if profile.total_read_bytes != expected:
            raise InvariantViolation(
                f"decode profile for role {profile.failed_role} reads "
                f"{profile.total_read_bytes} bytes from {n_helpers} "
                f"helpers of {profile.chunk_size}-byte chunks; expected "
                f"{expected}")

    # ------------------------------------------------------------------
    # Recovery: task conservation
    # ------------------------------------------------------------------
    def check_task_conservation(self, meta: dict) -> None:
        """Every recovery task must end completed, requeued (and then
        re-run), or explicitly abandoned — never silently lost.

        A requeue outcome re-enqueues exactly one instance, so requeues
        cancel out of the books and conservation is
        ``completed + abandoned == n_tasks``.  Checked at the end of every
        recovery run (fault-injected or not).
        """
        self.stats["task_conservation_checks"] += 1
        completed = meta.get("tasks_completed", 0)
        abandoned = meta.get("tasks_abandoned", 0)
        if completed + abandoned != meta["n_tasks"]:
            raise InvariantViolation(
                f"recovery task conservation broken: {completed} completed "
                f"+ {abandoned} abandoned != {meta['n_tasks']} queued "
                f"(requeued {meta.get('tasks_requeued', 0)}) — task(s) "
                "were silently lost")

    def verify_codec_roundtrip(self, code, chunk_size: int,
                               seed: int = 0) -> None:
        """Byte-level conservation on real data: encode a stripe, erase
        each node in turn, repair from exactly the planned bytes, and
        require bit-identical recovery (plus a full multi-erasure decode).
        """
        from repro.codes.base import extract_reads

        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 256, chunk_size, dtype=np.uint8)
                for _ in range(code.k)]
        stripe = code.encode_stripe(data)
        chunks = dict(enumerate(stripe))
        for failed in range(code.n):
            plan = code.repair_plan(failed, chunk_size)
            reads = extract_reads(plan, chunks)
            read_bytes = sum(arr.shape[0] for arr in reads.values())
            if read_bytes != plan.total_read_bytes:
                raise InvariantViolation(
                    f"{code.name}: extracted {read_bytes} bytes but the "
                    f"plan names {plan.total_read_bytes}")
            repaired = code.repair(failed, reads, chunk_size)
            if not np.array_equal(repaired, stripe[failed]):
                raise InvariantViolation(
                    f"{code.name}: repair of role {failed} from planned "
                    "bytes does not reproduce the lost chunk")
        erased = list(range(code.r))
        available = {i: c for i, c in chunks.items() if i not in set(erased)}
        decoded = code.decode(available, erased, chunk_size)
        for node in erased:
            if not np.array_equal(decoded[node], stripe[node]):
                raise InvariantViolation(
                    f"{code.name}: decode does not reproduce chunk {node}")
        self.stats["codec_roundtrips"] += 1

    # ------------------------------------------------------------------
    def report(self) -> str:
        """One-line human summary of everything checked."""
        s = self.stats
        return ("invariants OK: "
                f"{s['profile_checks']} repair-profile checks, "
                f"{s['schedule_checks']} schedule checks, "
                f"{s['resources_audited']} resources audited "
                f"({s['resources_registered']} registered), "
                f"{s['codec_roundtrips']} codec round-trips, "
                f"{s['task_conservation_checks']} task-conservation "
                "checks, 0 leaked grants, 0 lost tasks")


def attach_invariant_checker(obs) -> InvariantChecker:
    """Create an :class:`InvariantChecker` and hook it into an observer.

    Instrumented code reaches the checker via ``obs.invariants`` (resources
    register at construction, runtimes audit at finalize) and engine
    scheduling via ``obs.engine_hooks.invariants``.
    """
    checker = InvariantChecker()
    obs.invariants = checker
    obs.engine_hooks.invariants = checker
    return checker

"""Open-loop arrival processes: Poisson and diurnal-modulated rates.

The paper's "busy" experiments (§6.2) run a *closed* loop — 15 x 8 client
threads that each issue the next read when the previous one returns — so
offered load can never exceed service capacity and queueing delay is
invisible.  Serving real traffic is *open loop*: requests arrive on their
own clock whether or not the system has finished the previous ones, and
tail latency explodes as the arrival rate approaches saturation.  These
processes generate such arrival streams.

Every process is a pure function of the :class:`numpy.random.Generator`
it is handed: two generators seeded identically produce byte-identical
streams, which is what lets the scenario runner replay traffic schedules
bit-for-bit across ``--jobs`` values and cache hits.

* :class:`PoissonArrivals` — a homogeneous Poisson process of the given
  rate, sampled exactly (a Poisson count over the horizon, then ordered
  uniforms) rather than by summing exponentials, so generating a
  million-request hour is two vectorized draws, not a Python loop.
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose
  rate follows a day/night sinusoid, sampled by thinning a homogeneous
  envelope at the peak rate.  The thinning keeps per-arrival draws
  aligned with arrival times, so the stream stays a pure function of the
  seed regardless of how many arrivals survive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")

    def mean_arrivals(self, duration: float) -> float:
        """Expected number of arrivals over ``duration`` seconds."""
        return self.rate * duration

    def times(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        """Sorted arrival timestamps in ``[0, duration)``.

        Exact sampling: conditioned on the total count, the arrival times
        of a Poisson process are ordered uniforms over the horizon.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        n = int(rng.poisson(self.rate * duration))
        return np.sort(rng.uniform(0.0, duration, size=n))


@dataclass(frozen=True)
class DiurnalArrivals:
    """Non-homogeneous Poisson arrivals with a day/night sinusoid.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t /
    period + phase))`` — ``rate`` is the *mean* rate, the peak is
    ``rate * (1 + amplitude)``.  ``amplitude`` must stay below 1 so the
    rate never goes negative.
    """

    rate: float
    amplitude: float = 0.5
    period: float = 86_400.0
    phase: float = 0.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, t: float | np.ndarray) -> float | np.ndarray:
        """The instantaneous arrival rate at time ``t``."""
        return self.rate * (1.0 + self.amplitude
                            * np.sin(2.0 * np.pi * t / self.period
                                     + self.phase))

    def mean_arrivals(self, duration: float) -> float:
        """Expected number of arrivals over ``duration`` seconds.

        The integral of the sinusoidal rate over the horizon (closed
        form, so schedule builders can size buffers without sampling).
        """
        w = 2.0 * np.pi / self.period
        integral = duration - (np.cos(w * duration + self.phase)
                               - np.cos(self.phase)) * self.amplitude / w
        return float(self.rate * integral)

    def times(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        """Sorted arrival timestamps in ``[0, duration)`` by thinning.

        A homogeneous envelope at the peak rate is sampled exactly, then
        each candidate survives with probability ``rate(t) / peak`` —
        one uniform per candidate, drawn in candidate-time order.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        peak = self.rate * (1.0 + self.amplitude)
        n = int(rng.poisson(peak * duration))
        candidates = np.sort(rng.uniform(0.0, duration, size=n))
        keep = rng.random(n) * peak < self.rate_at(candidates)
        return candidates[keep]

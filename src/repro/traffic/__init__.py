"""Open-loop traffic generation with multi-tenant QoS.

The paper's closed-loop client threads (§6.2) cap offered load at
service capacity; this package generates *open-loop* arrival streams —
Poisson or diurnal-modulated rates, Zipf object popularity — so the
latency-SLO-vs-recovery-speed frontier of each scheme becomes
measurable.  Everything is a pure function of a ``SeedSequence``-derived
generator, preserving the runner's bit-identity discipline.
"""

from repro.traffic.arrivals import DiurnalArrivals, PoissonArrivals
from repro.traffic.popularity import ZipfPopularity
from repro.traffic.schedule import TrafficSchedule, arrival_process, \
    build_schedule
from repro.traffic.tenants import BATCH_LANE, DEFAULT_TENANTS, \
    INTERACTIVE_LANE, SloSummary, TenantSpec, summarize_slo, validate_tenants

__all__ = [
    "PoissonArrivals",
    "DiurnalArrivals",
    "ZipfPopularity",
    "TrafficSchedule",
    "arrival_process",
    "build_schedule",
    "TenantSpec",
    "SloSummary",
    "summarize_slo",
    "validate_tenants",
    "DEFAULT_TENANTS",
    "INTERACTIVE_LANE",
    "BATCH_LANE",
]

"""Multi-tenant QoS: tenant specs, priority lanes, and SLO read-outs.

A tenant is a share of the open-loop arrival stream with a service
class: the *lane* maps onto the per-disk priority queues (§5.1's IO
scheduling — lane 0 is foreground, lane 1 queues with background
recovery I/O), the *SLO* is the per-request latency bound the tenant's
percentile tracking is judged against, and *hedge* says whether the
tenant's degraded reads may fan out backup helper reads.

Specs are JSON-round-trippable so they can ride in scenario parameters
(the runner hashes params into cache keys and seeds).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Disk-queue lanes (mirrors repro.cluster.disk priorities without
#: importing across layers: 0 = foreground, 1 = background).
INTERACTIVE_LANE = 0
BATCH_LANE = 1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: arrival share, priority lane, SLO, hedging policy."""

    name: str
    share: float            # fraction of the total arrival rate
    lane: int = INTERACTIVE_LANE
    slo_ms: float = 200.0   # per-request latency objective
    hedge: bool = True      # degraded reads may race backup helper legs

    def __post_init__(self):
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"tenant {self.name!r}: share must be in (0, 1]")
        if self.lane not in (INTERACTIVE_LANE, BATCH_LANE):
            raise ValueError(f"tenant {self.name!r}: unknown lane {self.lane}")
        if self.slo_ms <= 0:
            raise ValueError(f"tenant {self.name!r}: SLO must be positive")

    def to_doc(self) -> dict:
        """JSON-safe form (scenario parameters must round-trip)."""
        return {"name": self.name, "share": self.share, "lane": self.lane,
                "slo_ms": self.slo_ms, "hedge": self.hedge}

    @classmethod
    def from_doc(cls, doc: dict) -> "TenantSpec":
        return cls(name=doc["name"], share=doc["share"], lane=doc["lane"],
                   slo_ms=doc["slo_ms"], hedge=doc["hedge"])


#: The default three-class mix: latency-sensitive interactive traffic,
#: ordinary foreground requests with a looser bound, and a batch tenant
#: that queues behind recovery I/O and never hedges.
DEFAULT_TENANTS: tuple[TenantSpec, ...] = (
    TenantSpec("interactive", share=0.5, lane=INTERACTIVE_LANE,
               slo_ms=250.0, hedge=True),
    TenantSpec("standard", share=0.3, lane=INTERACTIVE_LANE,
               slo_ms=1000.0, hedge=True),
    TenantSpec("batch", share=0.2, lane=BATCH_LANE,
               slo_ms=8000.0, hedge=False),
)


def validate_tenants(tenants: tuple[TenantSpec, ...]) -> None:
    """Reject empty mixes, duplicate names, and shares not summing to 1."""
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    total = sum(t.share for t in tenants)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"tenant shares sum to {total:g}, expected 1")


@dataclass(frozen=True)
class SloSummary:
    """Per-tenant percentile read-out against the tenant's SLO."""

    tenant: str
    lane: int
    slo_ms: float
    n_requests: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    attainment: float       # fraction of requests inside the SLO
    n_degraded: int
    degraded_p99_ms: float


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of a pre-sorted list (0.0 if empty)."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize_slo(spec: TenantSpec, latencies: list[float],
                  degraded: list[float]) -> SloSummary:
    """Fold one tenant's request latencies (seconds) into an SLO summary."""
    ordered = sorted(latencies)
    slo_s = spec.slo_ms / 1000.0
    inside = sum(1 for t in latencies if t <= slo_s)
    return SloSummary(
        tenant=spec.name, lane=spec.lane, slo_ms=spec.slo_ms,
        n_requests=len(latencies),
        p50_ms=1000.0 * _percentile(ordered, 0.50),
        p95_ms=1000.0 * _percentile(ordered, 0.95),
        p99_ms=1000.0 * _percentile(ordered, 0.99),
        attainment=inside / len(latencies) if latencies else 0.0,
        n_degraded=len(degraded),
        degraded_p99_ms=1000.0 * _percentile(sorted(degraded), 0.99))

"""Zipf object popularity over a stored-object population.

Object *sizes* come from the Figure-7 trace generator
(:class:`repro.trace.AliTraceModel` and the W1/W2 workloads); which
objects the traffic actually *reads* follows a Zipf law — a handful of
hot objects take most of the requests, a long tail is almost cold.  Rank
is decoupled from ingest order (and therefore from size) by a seeded
permutation: the hottest object is a uniformly random one, not object 0.

Sampling inverts the cumulative weight table with a binary search, so
drawing a million-request stream is one vectorized call.
"""

from __future__ import annotations

import numpy as np


class ZipfPopularity:
    """Zipf(``alpha``) popularity over ``n_objects`` stored objects.

    ``alpha = 0`` degenerates to uniform popularity; web/storage traces
    commonly fit 0.7–1.1.  ``rank_of[i]`` is the popularity rank of
    object ``i`` (0 = hottest) under the seeded permutation drawn from
    ``rng`` at construction.
    """

    def __init__(self, n_objects: int, alpha: float,
                 rng: np.random.Generator):
        if n_objects < 1:
            raise ValueError("need at least one object")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n_objects = n_objects
        self.alpha = alpha
        #: object index at each rank: ``by_rank[0]`` is the hottest object.
        self.by_rank = rng.permutation(n_objects)
        weights = (1.0 + np.arange(n_objects)) ** -alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def weight_of_rank(self, rank: int) -> float:
        """The probability mass of the object at ``rank``."""
        lo = self._cdf[rank - 1] if rank else 0.0
        return float(self._cdf[rank] - lo)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` object indices by popularity (vectorized)."""
        ranks = np.searchsorted(self._cdf, rng.random(n), side="right")
        return self.by_rank[ranks]

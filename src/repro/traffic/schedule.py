"""Deterministic traffic schedules: who arrives when, asking for what.

A :class:`TrafficSchedule` is the fully materialised input of one
open-loop serving run: sorted arrival timestamps plus, per arrival, the
issuing tenant and the target object index.  Building one is pure
sampling — no simulation state — so a schedule is a function of
``(tenants, arrival process, popularity, seed)`` alone and can be
rebuilt bit-for-bit in any worker process.

Seeding follows the runner's ``SeedSequence`` discipline: the root seed
spawns one child for the popularity permutation and one per tenant, so

* every tenant's stream is independent of how many other tenants exist
  (adding a tenant never perturbs another tenant's draws), and
* the merged schedule is byte-identical however the build is scheduled.

Ties in arrival time break by tenant position — stable, so the merge
itself is deterministic too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.arrivals import DiurnalArrivals, PoissonArrivals
from repro.traffic.popularity import ZipfPopularity
from repro.traffic.tenants import TenantSpec, validate_tenants


@dataclass(frozen=True)
class TrafficSchedule:
    """A merged open-loop arrival stream over one object population."""

    tenants: tuple[TenantSpec, ...]
    duration: float
    times: np.ndarray       # float64, sorted ascending
    tenant_ids: np.ndarray  # int64, index into ``tenants``
    object_ids: np.ndarray  # int64, index into the served object list

    @property
    def n_requests(self) -> int:
        return int(self.times.size)

    @property
    def offered_rate(self) -> float:
        """Realised arrivals per second over the horizon."""
        return self.n_requests / self.duration if self.duration else 0.0

    def per_tenant_counts(self) -> dict[str, int]:
        """Arrival counts keyed by tenant name."""
        counts = np.bincount(self.tenant_ids, minlength=len(self.tenants))
        return {t.name: int(counts[i]) for i, t in enumerate(self.tenants)}


def arrival_process(kind: str, rate: float, *, diurnal_amplitude: float = 0.5,
                    diurnal_period: float | None = None,
                    duration: float | None = None):
    """The arrival process named by ``kind`` at mean ``rate`` per second.

    ``diurnal`` defaults its period to the horizon, so a short simulated
    window still sweeps one full peak-trough cycle.
    """
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "diurnal":
        period = diurnal_period if diurnal_period is not None \
            else (duration if duration else 86_400.0)
        return DiurnalArrivals(rate, amplitude=diurnal_amplitude,
                               period=period)
    raise ValueError(f"unknown arrival process {kind!r}")


def build_schedule(tenants: tuple[TenantSpec, ...], rate: float,
                   duration: float, n_objects: int, seed,
                   kind: str = "poisson", zipf_alpha: float = 0.9,
                   ) -> TrafficSchedule:
    """Materialise the merged arrival stream for one serving run.

    ``seed`` is an int or a :class:`numpy.random.SeedSequence`; every
    stochastic choice below derives from it and nothing else.
    """
    validate_tenants(tenants)
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    ss = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    pop_ss, *tenant_ss = ss.spawn(1 + len(tenants))
    popularity = ZipfPopularity(n_objects, zipf_alpha,
                                np.random.default_rng(pop_ss))
    all_times: list[np.ndarray] = []
    all_tenants: list[np.ndarray] = []
    all_objects: list[np.ndarray] = []
    for i, tenant in enumerate(tenants):
        rng = np.random.default_rng(tenant_ss[i])
        process = arrival_process(kind, rate * tenant.share,
                                  duration=duration)
        times = process.times(rng, duration)
        all_times.append(times)
        all_tenants.append(np.full(times.size, i, dtype=np.int64))
        all_objects.append(popularity.sample(rng, times.size)
                           .astype(np.int64))
    times = np.concatenate(all_times)
    tenant_ids = np.concatenate(all_tenants)
    object_ids = np.concatenate(all_objects)
    # Stable merge: sort by (time, tenant position).
    order = np.lexsort((tenant_ids, times))
    return TrafficSchedule(tenants=tuple(tenants), duration=float(duration),
                           times=times[order], tenant_ids=tenant_ids[order],
                           object_ids=object_ids[order])

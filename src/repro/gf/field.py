"""Scalar and vectorized GF(2^8) arithmetic.

The module precomputes three lookup tables at import time:

* ``EXP``/``LOG`` — discrete exponential/logarithm with respect to the
  primitive element 2,
* ``MUL_TABLE`` — the full 256x256 multiplication table, which makes
  vectorized multiplication a single fancy-indexing operation, and
* ``INV_TABLE`` — multiplicative inverses.

All public functions accept Python ints or ``numpy`` arrays of ``uint8`` and
broadcast like the corresponding numpy operators.
"""

from __future__ import annotations

import numpy as np

#: The field size.
GF_ORDER = 256

#: x^8 + x^4 + x^3 + x^2 + 1, the conventional RS primitive polynomial.
PRIMITIVE_POLY = 0x11D

#: 2 generates the multiplicative group under this polynomial.
PRIMITIVE_ELEMENT = 2


def _build_log_exp() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so that EXP[log(a) + log(b)] never needs a modulo.
    exp[255:510] = exp[:255]
    return exp, log


EXP, LOG = _build_log_exp()


def _build_mul_table() -> np.ndarray:
    a = np.arange(256)
    log_sum = LOG[a][:, None] + LOG[a][None, :]
    table = EXP[log_sum].copy()
    table[0, :] = 0
    table[:, 0] = 0
    return table


MUL_TABLE = _build_mul_table()

INV_TABLE = np.zeros(256, dtype=np.uint8)
INV_TABLE[1:] = EXP[255 - LOG[np.arange(1, 256)]]


def gf_add(a, b):
    """Field addition (XOR). Accepts ints or uint8 arrays."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) ^ int(b)
    return np.bitwise_xor(a, b)


def gf_mul(a, b):
    """Field multiplication; broadcasts over numpy arrays."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(MUL_TABLE[a, b])
    return MUL_TABLE[a, b]


def gf_inv(a):
    """Multiplicative inverse. Raises ZeroDivisionError on 0."""
    if isinstance(a, (int, np.integer)):
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(INV_TABLE[a])
    a = np.asarray(a)
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return INV_TABLE[a]


def gf_div(a, b):
    """Field division ``a / b``."""
    return gf_mul(a, gf_inv(b))


def gf_pow(a: int, n: int) -> int:
    """Scalar exponentiation ``a**n`` (n may be any integer; a != 0 for n<0)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    e = (LOG[a] * n) % 255
    return int(EXP[e])


def gf_mul_bytes(coeff: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by the scalar ``coeff``.

    This is the inner loop of all codecs: one row of the multiplication
    table acts as a 256-entry substitution box applied with fancy indexing.
    """
    if coeff == 0:
        return np.zeros_like(data)
    if coeff == 1:
        return data.copy()
    return MUL_TABLE[coeff][data]


def gf_xor_mul_into(acc: np.ndarray, coeff: int, data: np.ndarray) -> None:
    """In-place ``acc ^= coeff * data`` over byte buffers (codec hot path)."""
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(acc, data, out=acc)
    else:
        np.bitwise_xor(acc, MUL_TABLE[coeff][data], out=acc)

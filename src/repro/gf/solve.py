"""Symbolic linear-system solving over GF(2^8).

The Clay code's single-node repair (see :mod:`repro.codes.clay`) is most
cleanly expressed as a linear system whose unknowns are uncoupled sub-chunks
and whose right-hand side is a linear function of the sub-chunks actually
read from surviving nodes.  This module row-reduces such a system *once*
(symbolically, i.e. with the inputs kept as formal symbols) and produces a
"solution matrix" R with ``unknowns = R @ inputs`` that can then be applied
to arbitrarily long byte buffers.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import INV_TABLE, MUL_TABLE


class UnderdeterminedSystemError(ValueError):
    """Raised when the system does not determine all requested unknowns."""

    def __init__(self, undetermined: list[int]):
        self.undetermined = undetermined
        super().__init__(f"{len(undetermined)} unknowns undetermined: "
                         f"{undetermined[:10]}{'...' if len(undetermined) > 10 else ''}")


class GFLinearSystem:
    """Accumulates GF(256) equations ``sum(c_j * u_j) = sum(d_i * s_i)``.

    ``u`` are unknowns (indexed 0..n_unknowns-1) and ``s`` are formal input
    symbols (indexed 0..n_inputs-1).  Call :meth:`solve` to obtain the
    (n_unknowns x n_inputs) matrix expressing every unknown in terms of the
    inputs.
    """

    def __init__(self, n_unknowns: int, n_inputs: int):
        if n_unknowns <= 0 or n_inputs <= 0:
            raise ValueError("system dimensions must be positive")
        self.n_unknowns = n_unknowns
        self.n_inputs = n_inputs
        self._rows: list[np.ndarray] = []

    def add_equation(self, unknown_coeffs: dict[int, int],
                     input_coeffs: dict[int, int]) -> None:
        """Add one equation; coefficient dicts map index -> GF element."""
        row = np.zeros(self.n_unknowns + self.n_inputs, dtype=np.uint8)
        for j, c in unknown_coeffs.items():
            if not 0 <= j < self.n_unknowns:
                raise IndexError(f"unknown index {j} out of range")
            row[j] ^= np.uint8(c)
        for i, c in input_coeffs.items():
            if not 0 <= i < self.n_inputs:
                raise IndexError(f"input index {i} out of range")
            row[self.n_unknowns + i] ^= np.uint8(c)
        self._rows.append(row)

    @property
    def n_equations(self) -> int:
        """Number of equations added so far."""
        return len(self._rows)

    def solve(self, required: list[int] | None = None) -> np.ndarray:
        """Row-reduce and return R (n_unknowns x n_inputs) with u = R @ s.

        ``required`` limits which unknowns must be determined; rows of R for
        undetermined-but-not-required unknowns are zero.  Redundant equations
        are tolerated (they reduce to consistency rows and are dropped).
        """
        if not self._rows:
            raise ValueError("no equations")
        m = np.stack(self._rows)
        n = self.n_unknowns
        pivot_of_col: dict[int, int] = {}
        rank = 0
        for col in range(n):
            if rank == m.shape[0]:
                break
            candidates = np.nonzero(m[rank:, col])[0]
            if candidates.size == 0:
                continue
            pivot = rank + int(candidates[0])
            if pivot != rank:
                m[[rank, pivot]] = m[[pivot, rank]]
            inv = INV_TABLE[m[rank, col]]
            m[rank] = MUL_TABLE[inv][m[rank]]
            factors = m[:, col].copy()
            factors[rank] = 0
            m ^= MUL_TABLE[factors[:, None], m[rank][None, :]]
            pivot_of_col[col] = rank
            rank += 1

        wanted = range(n) if required is None else required
        undetermined = [j for j in wanted if j not in pivot_of_col]
        if undetermined:
            raise UnderdeterminedSystemError(undetermined)

        solution = np.zeros((n, self.n_inputs), dtype=np.uint8)
        for col, row in pivot_of_col.items():
            # After full elimination the pivot row reads u_col = rhs part.
            # Any residual coefficients on non-pivot unknown columns would
            # mean u_col depends on a free variable; required unknowns were
            # checked above, and free variables only ever pair with other
            # free variables, so pivot rows of determined unknowns are clean
            # whenever every unknown they touch is determined.
            lhs = m[row, :n].copy()
            lhs[col] = 0
            if np.any(lhs):
                # u_col is entangled with free unknowns: only acceptable if
                # the caller did not require it.
                if required is None or col in required:
                    raise UnderdeterminedSystemError([col])
                continue
            solution[col] = m[row, n:]
        return solution

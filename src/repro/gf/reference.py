"""Pure-Python reference GF(2^8) arithmetic — the oracle for the fast path.

Every kernel in :mod:`repro.gf.field` and :mod:`repro.gf.matrix` is
table-driven (log/antilog and full multiplication tables indexed with numpy
fancy indexing).  This module implements the same field *from first
principles* — carry-less polynomial multiplication reduced modulo
:data:`~repro.gf.field.PRIMITIVE_POLY`, square-and-multiply exponentiation,
and schoolbook Gauss-Jordan over plain Python lists — with no tables and no
numpy.  It is deliberately slow and obvious: the hypothesis property suite
(``tests/gf/test_reference_properties.py``) checks the vectorized kernels
element-for-element against these functions on random matrices, which is
what lets the optimized path evolve without risking silent corruption.

Nothing in the package's production paths imports this module; it exists
for tests and for auditability.
"""

from __future__ import annotations

from repro.gf.field import GF_ORDER, PRIMITIVE_POLY


def mul(a: int, b: int) -> int:
    """Carry-less multiply mod the primitive polynomial (Russian peasant)."""
    if not 0 <= a < GF_ORDER or not 0 <= b < GF_ORDER:
        raise ValueError(f"operands must be field elements, got {a}, {b}")
    out = 0
    while b:
        if b & 1:
            out ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= PRIMITIVE_POLY
    return out


def pow_(a: int, n: int) -> int:
    """Exponentiation by squaring; n may be negative for a != 0."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    n %= GF_ORDER - 1  # the multiplicative group has order 255
    out = 1
    base = a
    while n:
        if n & 1:
            out = mul(out, base)
        base = mul(base, base)
        n >>= 1
    return out


def inv(a: int) -> int:
    """Multiplicative inverse via Fermat: a^(2^8 - 2)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return pow_(a, GF_ORDER - 2)


def mat_mul(a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
    """Schoolbook matrix product over GF(256) on plain lists."""
    if not a or not b or len(a[0]) != len(b):
        raise ValueError("incompatible shapes")
    cols = len(b[0])
    shared = len(b)
    out = []
    for row in a:
        out_row = []
        for j in range(cols):
            acc = 0
            for l in range(shared):
                acc ^= mul(row[l], b[l][j])
            out_row.append(acc)
        out.append(out_row)
    return out


def mat_vec(a: list[list[int]], x: list[int]) -> list[int]:
    """Matrix-vector product over GF(256) on plain lists."""
    out = []
    for row in a:
        acc = 0
        for coeff, val in zip(row, x, strict=True):
            acc ^= mul(coeff, val)
        out.append(acc)
    return out


def mat_inv(a: list[list[int]]) -> list[list[int]]:
    """Gauss-Jordan inverse on plain lists; raises ValueError if singular."""
    n = len(a)
    if any(len(row) != n for row in a):
        raise ValueError("matrix is not square")
    m = [list(row) + [int(i == j) for j in range(n)]
         for i, row in enumerate(a)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if m[r][col]), None)
        if pivot is None:
            raise ValueError(f"singular at column {col}")
        if pivot != col:
            m[col], m[pivot] = m[pivot], m[col]
        scale = inv(m[col][col])
        m[col] = [mul(scale, v) for v in m[col]]
        for r in range(n):
            if r == col or not m[r][col]:
                continue
            factor = m[r][col]
            m[r] = [v ^ mul(factor, p) for v, p in zip(m[r], m[col])]
    return [row[n:] for row in m]


def vandermonde(rows: int, points: list[int]) -> list[list[int]]:
    """Reference Vandermonde construction V[i][j] = points[j]**i."""
    if len(set(points)) != len(points):
        raise ValueError("Vandermonde points must be distinct")
    return [[pow_(x, i) for x in points] for i in range(rows)]


def cauchy_matrix(xs: list[int], ys: list[int]) -> list[list[int]]:
    """Reference Cauchy construction C[i][j] = 1 / (xs[i] + ys[j])."""
    if set(xs) & set(ys):
        raise ValueError("Cauchy xs and ys must be disjoint")
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("Cauchy points must be distinct")
    return [[inv(x ^ y) for y in ys] for x in xs]

"""Galois-field GF(2^8) arithmetic substrate.

Everything in :mod:`repro.codes` is built on the primitives here: scalar and
vectorized field arithmetic (:mod:`repro.gf.field`), dense matrix algebra
(:mod:`repro.gf.matrix`), and a symbolic linear-system solver used by the Clay
code's single-node repair (:mod:`repro.gf.solve`).

The field is GF(256) with the primitive polynomial ``x^8+x^4+x^3+x^2+1``
(0x11D), the conventional choice of Reed-Solomon implementations such as
jerasure and ISA-L.
"""

from repro.gf.field import (
    GF_ORDER,
    PRIMITIVE_ELEMENT,
    PRIMITIVE_POLY,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    gf_xor_mul_into,
)
from repro.gf.matrix import (
    SingularMatrixError,
    cauchy_matrix,
    mat_inv,
    mat_mul,
    mat_rank,
    mat_vec,
    systematic_generator,
    vandermonde,
)
from repro.gf.solve import GFLinearSystem, UnderdeterminedSystemError

__all__ = [
    "GF_ORDER",
    "PRIMITIVE_ELEMENT",
    "PRIMITIVE_POLY",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_mul_bytes",
    "gf_pow",
    "gf_xor_mul_into",
    "SingularMatrixError",
    "cauchy_matrix",
    "mat_inv",
    "mat_mul",
    "mat_rank",
    "mat_vec",
    "systematic_generator",
    "vandermonde",
    "GFLinearSystem",
    "UnderdeterminedSystemError",
]

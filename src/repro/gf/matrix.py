"""Dense matrix algebra over GF(2^8).

Matrices are plain ``numpy.uint8`` 2-D arrays. The routines here are the
building blocks for erasure-code generator matrices: multiplication,
Gauss-Jordan inversion, rank, and the classic Vandermonde/Cauchy
constructions whose square submatrices are always invertible.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import EXP, INV_TABLE, LOG, MUL_TABLE


class SingularMatrixError(ValueError):
    """Raised when asked to invert a singular matrix over GF(256)."""


def _as_gf(a) -> np.ndarray:
    arr = np.asarray(a, dtype=np.uint8)
    return arr


def mat_mul(a, b) -> np.ndarray:
    """Matrix product over GF(256).

    Computed as an XOR-reduction of the elementwise multiplication table
    lookups, vectorized across the shared dimension.
    """
    a = _as_gf(a)
    b = _as_gf(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    # products[i, j, l] = a[i, l] * b[l, j]
    products = MUL_TABLE[a[:, :, None], b[None, :, :]]
    return np.bitwise_xor.reduce(products, axis=1)


def mat_vec(a, x) -> np.ndarray:
    """Matrix-vector product over GF(256)."""
    a = _as_gf(a)
    x = _as_gf(x)
    if x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {x.shape}")
    return np.bitwise_xor.reduce(MUL_TABLE[a, x[None, :]], axis=1)


def mat_identity(n: int) -> np.ndarray:
    """Identity matrix over GF(256)."""
    return np.eye(n, dtype=np.uint8)


def _eliminate(m: np.ndarray, pivot_row: int, col: int) -> None:
    """Scale the pivot row to 1 and clear ``col`` in every other row."""
    inv = INV_TABLE[m[pivot_row, col]]
    m[pivot_row] = MUL_TABLE[inv][m[pivot_row]]
    factors = m[:, col].copy()
    factors[pivot_row] = 0
    m ^= MUL_TABLE[factors[:, None], m[pivot_row][None, :]]


def mat_inv(a) -> np.ndarray:
    """Gauss-Jordan inverse over GF(256)."""
    a = _as_gf(a)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError(f"matrix is not square: {a.shape}")
    m = np.concatenate([a.copy(), mat_identity(n)], axis=1)
    for col in range(n):
        pivot_candidates = np.nonzero(m[col:, col])[0]
        if pivot_candidates.size == 0:
            raise SingularMatrixError(f"singular at column {col}")
        pivot = col + int(pivot_candidates[0])
        if pivot != col:
            m[[col, pivot]] = m[[pivot, col]]
        _eliminate(m, col, col)
    return m[:, n:].copy()


def mat_rank(a) -> int:
    """Rank over GF(256) via row reduction."""
    m = _as_gf(a).copy()
    rows, cols = m.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_candidates = np.nonzero(m[rank:, col])[0]
        if pivot_candidates.size == 0:
            continue
        pivot = rank + int(pivot_candidates[0])
        if pivot != rank:
            m[[rank, pivot]] = m[[pivot, rank]]
        _eliminate(m, rank, col)
        rank += 1
    return rank


def vandermonde(rows: int, points: list[int] | np.ndarray) -> np.ndarray:
    """``rows`` x ``len(points)`` Vandermonde matrix V[i, j] = points[j]**i.

    If the evaluation points are distinct and non-zero, every ``rows`` x
    ``rows`` submatrix is invertible, which makes V a valid parity-check
    matrix of an MDS code.
    """
    points = list(points)
    if len(set(points)) != len(points):
        raise ValueError("Vandermonde points must be distinct")
    pts = np.asarray(points, dtype=np.int64)
    # x**i = EXP[(log x * i) mod 255] for x != 0 — one outer product over
    # the log table instead of rows*cols Python-level gf_pow calls.
    exponents = (LOG[pts][None, :] * np.arange(rows, dtype=np.int64)[:, None]) % 255
    out = EXP[exponents].copy()
    zero = pts == 0  # LOG[0] is a placeholder: patch 0**i columns by hand
    if zero.any():
        out[:, zero] = 0
        if rows:
            out[0, zero] = 1  # 0**0 == 1
    return out


def cauchy_matrix(xs: list[int], ys: list[int]) -> np.ndarray:
    """Cauchy matrix C[i, j] = 1 / (xs[i] + ys[j]).

    Requires all ``xs[i] + ys[j] != 0`` (i.e. xs and ys disjoint) and
    elements within xs / ys distinct; then every square submatrix is
    invertible.
    """
    if set(xs) & set(ys):
        raise ValueError("Cauchy xs and ys must be disjoint")
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("Cauchy points must be distinct")
    sums = np.bitwise_xor.outer(np.asarray(xs, dtype=np.int64),
                                np.asarray(ys, dtype=np.int64))
    return INV_TABLE[sums].copy()


def systematic_generator(k: int, r: int) -> np.ndarray:
    """Systematic ``(k+r) x k`` generator matrix ``[I; P]`` of an MDS code.

    P is a Cauchy block, so any k rows of the result are linearly
    independent -- the defining property of an (k+r, k) MDS code.
    """
    if k + r > 256:
        raise ValueError("k + r must not exceed the field size 256")
    xs = list(range(k, k + r))
    ys = list(range(k))
    parity = cauchy_matrix(xs, ys)
    return np.concatenate([mat_identity(k), parity], axis=0)

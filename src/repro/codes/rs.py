"""Systematic Reed-Solomon code RS(k, r).

The baseline of the paper (Figure 1b, Table 1): MDS, sub-packetization 1,
and the costliest repair — any single failure reads ``k`` *full* chunks.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.codes.base import ReadSegment, RepairPlan, ScalarLinearCode
from repro.gf.matrix import systematic_generator


class RSCode(ScalarLinearCode):
    """Cauchy-based systematic Reed-Solomon code."""

    def __init__(self, k: int, r: int):
        if k <= 0 or r <= 0:
            raise ValueError("k and r must be positive")
        super().__init__(systematic_generator(k, r), k, r)

    @property
    def is_mds(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"RS({self.k},{self.r})"

    def repair_plan(self, failed: int, chunk_size: int) -> RepairPlan:
        """Read k full chunks from the first k surviving nodes."""
        self._check_chunk_size(chunk_size)
        if not 0 <= failed < self.n:
            raise ValueError(f"node {failed} out of range")
        helpers = [i for i in range(self.n) if i != failed][: self.k]
        segments = [ReadSegment(node, 0, chunk_size) for node in helpers]
        return RepairPlan((failed,), chunk_size, segments)

    def repair(self, failed: int, reads: Mapping[int, np.ndarray],
               chunk_size: int) -> np.ndarray:
        plan = self.repair_plan(failed, chunk_size)
        available = {node: reads[node] for node in plan.helper_nodes}
        return self.decode(available, [failed], chunk_size)[failed]

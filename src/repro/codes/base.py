"""Erasure-code abstractions shared by all codes in :mod:`repro.codes`.

Terminology (matching the paper):

* A *stripe* is one unit of encoding: ``n = k + r`` *chunks*, one per node,
  each ``chunk_size`` bytes.  Nodes ``0..k-1`` hold data, ``k..n-1`` parity.
* Vector codes (Clay, Hitchhiker) divide each chunk into ``alpha``
  *sub-chunks*; scalar codes have ``alpha == 1``.
* A :class:`RepairPlan` names exactly which byte ranges a repair must read
  from which surviving nodes.  The storage simulator consumes plans (it never
  moves real bytes); the codecs also honour them, and the test-suite verifies
  that repairs succeed when given *only* the planned bytes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.gf.matrix import mat_rank
from repro.gf.solve import GFLinearSystem


class DecodeError(ValueError):
    """Raised when an erasure pattern is not decodable by this code."""


@dataclass(frozen=True, order=True)
class ReadSegment:
    """A contiguous byte range to read from one node's chunk."""

    node: int
    offset: int
    length: int

    def __post_init__(self):
        if self.length <= 0 or self.offset < 0 or self.node < 0:
            raise ValueError(f"invalid segment {self}")

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class RepairPlan:
    """The exact I/O needed to repair ``failed`` nodes of one stripe.

    ``segments`` is the complete list of reads; the plan exposes the derived
    quantities the paper reasons about: total read traffic, per-node traffic,
    and per-node I/O (seek) counts after coalescing adjacent ranges.
    """

    failed: tuple[int, ...]
    chunk_size: int
    segments: list[ReadSegment] = field(default_factory=list)

    def __post_init__(self):
        for seg in self.segments:
            if seg.node in self.failed:
                raise ValueError(f"plan reads from failed node {seg.node}")
            if seg.end > self.chunk_size:
                raise ValueError(f"segment {seg} exceeds chunk size {self.chunk_size}")

    @property
    def helper_nodes(self) -> list[int]:
        """Sorted helper node indices."""
        return sorted({s.node for s in self.segments})

    @property
    def total_read_bytes(self) -> int:
        """Total bytes read across all helpers."""
        return sum(s.length for s in self.segments)

    def read_bytes_per_node(self) -> dict[int, int]:
        """Bytes read per helper node."""
        out: dict[int, int] = {}
        for s in self.segments:
            out[s.node] = out.get(s.node, 0) + s.length
        return out

    def segments_for_node(self, node: int) -> list[ReadSegment]:
        """This node's read segments, in offset order."""
        return sorted(s for s in self.segments if s.node == node)

    def coalesced(self) -> "RepairPlan":
        """Merge adjacent/overlapping ranges per node (what a disk sees)."""
        merged: list[ReadSegment] = []
        for node in self.helper_nodes:
            run_start = run_end = None
            for seg in self.segments_for_node(node):
                if run_start is None:
                    run_start, run_end = seg.offset, seg.end
                elif seg.offset <= run_end:
                    run_end = max(run_end, seg.end)
                else:
                    merged.append(ReadSegment(node, run_start, run_end - run_start))
                    run_start, run_end = seg.offset, seg.end
            if run_start is not None:
                merged.append(ReadSegment(node, run_start, run_end - run_start))
        return RepairPlan(self.failed, self.chunk_size, merged)

    def io_count_per_node(self) -> dict[int, int]:
        """Discontinuous reads per node (fragmentation metric, Fig. 2)."""
        out: dict[int, int] = {}
        for s in self.coalesced().segments:
            out[s.node] = out.get(s.node, 0) + 1
        return out

    def read_traffic_ratio(self) -> float:
        """Bytes read divided by bytes repaired (Table 1's `Read traffic`)."""
        return self.total_read_bytes / (len(self.failed) * self.chunk_size)


def extract_reads(plan: RepairPlan, chunks: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
    """Slice full chunks down to exactly the bytes a plan requests.

    Returns, per helper node, the concatenation of its planned segments in
    offset order — the wire format accepted by ``ErasureCode.repair``.
    """
    out: dict[int, np.ndarray] = {}
    for node in plan.helper_nodes:
        parts = [chunks[node][s.offset:s.end] for s in plan.segments_for_node(node)]
        out[node] = np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)
    return out


class ErasureCode(ABC):
    """Common interface of RS / LRC / Hitchhiker / Clay codes.

    All byte buffers are 1-D ``numpy.uint8`` arrays of length ``chunk_size``;
    ``chunk_size`` must be a multiple of :attr:`alpha`.
    """

    #: number of data nodes
    k: int
    #: number of parity nodes
    r: int
    #: sub-packetization level (1 for scalar codes)
    alpha: int = 1

    @property
    def n(self) -> int:
        """Total nodes/disks in the stripe (k + r)."""
        return self.k + self.r

    @property
    def storage_overhead(self) -> float:
        """Raw bytes stored per data byte (1.4 for all (10,4)-style codes)."""
        return self.n / self.k

    @property
    @abstractmethod
    def is_mds(self) -> bool:
        """Whether any r-subset of node failures is tolerated."""

    @property
    def name(self) -> str:
        return f"{type(self).__name__}({self.k},{self.r})"

    def _check_chunk(self, chunk: np.ndarray, chunk_size: int) -> None:
        if chunk.dtype != np.uint8 or chunk.ndim != 1 or chunk.shape[0] != chunk_size:
            raise ValueError(
                f"chunks must be 1-D uint8 arrays of {chunk_size} bytes, "
                f"got {chunk.dtype} shape {chunk.shape}")

    def _check_chunk_size(self, chunk_size: int) -> None:
        if chunk_size <= 0 or chunk_size % self.alpha:
            raise ValueError(
                f"chunk_size {chunk_size} must be a positive multiple of alpha={self.alpha}")

    @abstractmethod
    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``r`` parity chunks from ``k`` data chunks."""

    @abstractmethod
    def decode(self, available: Mapping[int, np.ndarray], erased: Sequence[int],
               chunk_size: int) -> dict[int, np.ndarray]:
        """Recover the chunks of ``erased`` nodes from available chunks."""

    @abstractmethod
    def repair_plan(self, failed: int, chunk_size: int) -> RepairPlan:
        """The byte ranges needed to repair a single failed node."""

    @abstractmethod
    def repair(self, failed: int, reads: Mapping[int, np.ndarray],
               chunk_size: int) -> np.ndarray:
        """Repair ``failed`` from exactly the bytes named by its plan.

        ``reads[node]`` is the concatenation (in offset order) of the planned
        segments of that node, as produced by :func:`extract_reads`.
        """

    # ------------------------------------------------------------------
    # Derived metrics (Table 1)
    # ------------------------------------------------------------------
    def repair_read_ratio(self, failed: int, chunk_size: int | None = None) -> float:
        size = chunk_size if chunk_size is not None else self.alpha
        return self.repair_plan(failed, size).read_traffic_ratio()

    def average_repair_read_ratio(self, chunk_size: int | None = None) -> float:
        """Mean single-failure read-traffic ratio over all n nodes."""
        return float(np.mean([self.repair_read_ratio(i, chunk_size) for i in range(self.n)]))

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """All ``n`` chunks of the stripe (systematic: data first)."""
        return list(data_chunks) + self.encode(data_chunks)


class ScalarLinearCode(ErasureCode):
    """A linear code defined by a systematic ``n x k`` generator matrix.

    Provides generic encode/decode; subclasses supply the matrix and repair
    strategy.  Decoding solves the subsystem of available rows and raises
    :class:`DecodeError` when the pattern is unrecoverable (possible for
    non-MDS codes such as LRC).
    """

    #: bound on the per-instance solution-matrix LRU; with n <= 256 nodes the
    #: single-failure patterns a simulation replays fit comfortably.
    SOLUTION_CACHE_SIZE = 128

    def __init__(self, generator: np.ndarray, k: int, r: int):
        if generator.shape != (k + r, k):
            raise ValueError(f"generator must be {(k + r, k)}, got {generator.shape}")
        if not np.array_equal(generator[:k], np.eye(k, dtype=np.uint8)):
            raise ValueError("generator must be systematic ([I; P])")
        self.generator = generator.astype(np.uint8)
        self.k = k
        self.r = r
        self._solution_cache: OrderedDict[tuple[int, ...], np.ndarray] = \
            OrderedDict()

    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        from repro.gf.field import gf_xor_mul_into

        if len(data_chunks) != self.k:
            raise ValueError(f"need {self.k} data chunks, got {len(data_chunks)}")
        chunk_size = data_chunks[0].shape[0]
        for c in data_chunks:
            self._check_chunk(c, chunk_size)
        parities = []
        for i in range(self.k, self.n):
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for j in range(self.k):
                gf_xor_mul_into(acc, int(self.generator[i, j]), data_chunks[j])
            parities.append(acc)
        return parities

    def decode(self, available: Mapping[int, np.ndarray], erased: Sequence[int],
               chunk_size: int) -> dict[int, np.ndarray]:
        from repro.gf.field import gf_xor_mul_into

        self._check_chunk_size(chunk_size)
        erased = sorted(set(erased))
        usable = sorted(set(available) - set(erased))
        for node in usable:
            self._check_chunk(available[node], chunk_size)
        data = self._solve_data(
            {node: available[node] for node in usable}, chunk_size)
        out: dict[int, np.ndarray] = {}
        for node in erased:
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for j in range(self.k):
                gf_xor_mul_into(acc, int(self.generator[node, j]), data[j])
            out[node] = acc
        return out

    def solution_matrix(self, nodes: Sequence[int]) -> np.ndarray:
        """The ``k x len(nodes)`` matrix R with ``data = R @ chunks[nodes]``.

        ``nodes`` must be sorted surviving-node indices.  Row reduction only
        depends on the erasure pattern, not on the chunk payloads, so the
        result is memoized in a bounded per-instance LRU — a simulation
        replaying the same single-disk failure decodes thousands of stripes
        with one pattern, and the Gauss-Jordan pass dominated decode time.
        Callers must treat the returned array as read-only.
        """
        from repro.gf.solve import UnderdeterminedSystemError

        key = tuple(nodes)
        cache = self._solution_cache
        solution = cache.get(key)
        if solution is not None:
            cache.move_to_end(key)
            return solution
        nodes = list(key)
        rank = mat_rank(self.generator[nodes])
        if rank < self.k:
            raise DecodeError(
                f"erasure pattern not decodable: available nodes {nodes} "
                f"span rank {rank} < k={self.k}")
        system = GFLinearSystem(self.k, len(nodes))
        for idx, node in enumerate(nodes):
            system.add_equation(
                {j: int(self.generator[node, j]) for j in range(self.k)
                 if self.generator[node, j]},
                {idx: 1})
        try:
            solution = system.solve()
        except UnderdeterminedSystemError as exc:  # pragma: no cover - guarded by rank
            raise DecodeError(str(exc)) from exc
        cache[key] = solution
        if len(cache) > self.SOLUTION_CACHE_SIZE:
            cache.popitem(last=False)
        return solution

    def _solve_data(self, available: Mapping[int, np.ndarray],
                    chunk_size: int) -> list[np.ndarray]:
        """Recover the k data chunks from any decodable set of chunks."""
        from repro.gf.field import gf_xor_mul_into

        nodes = sorted(available)
        solution = self.solution_matrix(nodes)
        data = []
        for j in range(self.k):
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for idx, node in enumerate(nodes):
                gf_xor_mul_into(acc, int(solution[j, idx]), available[node])
            data.append(acc)
        return data

    def decodable(self, erased: Sequence[int]) -> bool:
        """Whether the given erasure pattern can be recovered."""
        alive = [i for i in range(self.n) if i not in set(erased)]
        return mat_rank(self.generator[alive]) == self.k

"""Clay codes (Vajha et al., FAST'18) — coupled-layer MSR codes.

This is a complete construction, not a model: encode, decode of any
``<= r`` erasures, and repair-optimal single-node recovery all operate on
real bytes and are exercised by the test-suite.

Construction recap
------------------
Take ``q = r`` and ``t = ceil(n / q)``; nodes live on a ``q x t`` grid
(slots), with ``q*t - n`` *virtual* (shortened) slots whose stored chunks are
identically zero.  Each chunk consists of ``alpha = q**t`` sub-chunks indexed
by ``z = (z_0, ..., z_{t-1})`` in ``Z_q^t``.  A virtual *uncoupled* array U
is related to the stored *coupled* array C by a pairwise reversible
transform: the vertex ``(x, y, z)`` with ``z_y != x`` is paired with
``(z_y, y, z(y -> x))`` and

    C(x, y, z) = U(x, y, z) + gamma * U(z_y, y, z(y -> x)),

while diagonal vertices (``z_y == x``) satisfy ``C = U``.  In the uncoupled
domain every layer (fixed z) is a codeword of a scalar (q*t, q*t - q) MDS
code.  The transform matrix ``[[1, gamma], [gamma, 1]]`` is invertible over
GF(256) whenever ``gamma not in {0, 1}``.

Decoding uses the paper's sequential *intersection score* schedule, and
single-node repair reads only the ``beta = alpha / q`` layers whose
``y0``-th digit equals the failed column position ``x0`` — from all
``d = n - 1`` survivors, giving the optimal repair traffic
``(n-1)/q`` chunks (3.25 for Clay(10,4); Table 1).

Sub-chunks are stored in the order ``sum(z_y * q**(t-1-y))``, which makes
the repair reads of a column-``y`` node fall into ``q**y`` contiguous runs of
``q**(t-1-y)`` sub-chunks — exactly the four fragmentation cases of the
paper's Figure 2.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

import numpy as np

from repro.codes.base import (
    DecodeError,
    ErasureCode,
    ReadSegment,
    RepairPlan,
)
from repro.gf.field import gf_inv, gf_mul, gf_xor_mul_into
from repro.gf.matrix import mat_inv, vandermonde
from repro.gf.solve import GFLinearSystem


class ClayCode(ErasureCode):
    """Clay (coupled-layer) MSR code with ``d = n - 1`` helpers."""

    def __init__(self, k: int, r: int, gamma: int = 2):
        if k <= 0 or r <= 1:
            raise ValueError("Clay needs k >= 1 and r >= 2")
        if gamma in (0, 1):
            raise ValueError("gamma must not be 0 or 1 (transform must invert)")
        self.k = k
        self.r = r
        self.q = r
        self.t = -(-self.n // self.q)  # ceil
        self.num_slots = self.q * self.t
        self.alpha = self.q ** self.t
        self.beta = self.alpha // self.q
        self.gamma = gamma
        #: helpers contacted during single-node repair
        self.d = self.n - 1
        self._pair_inv = gf_inv(1 ^ gf_mul(gamma, gamma))  # (1 + gamma^2)^-1
        #: parity-check of the per-layer scalar MDS code over all slots
        self._H = vandermonde(self.q, list(range(1, self.num_slots + 1)))
        #: all layers in storage order; layer y-digit z[y] weighs q**(t-1-y)
        self._layers: list[tuple[int, ...]] = list(product(range(self.q), repeat=self.t))
        self._layer_index = {z: i for i, z in enumerate(self._layers)}
        self._repair_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    def slot_xy(self, slot: int) -> tuple[int, int]:
        """Grid coordinates (x = row-in-column, y = column) of a slot."""
        return slot % self.q, slot // self.q

    def xy_slot(self, x: int, y: int) -> int:
        return x + self.q * y

    def is_virtual(self, slot: int) -> bool:
        """Shortened slots store identically-zero chunks."""
        return slot >= self.n

    def companion(self, slot: int, z: tuple[int, ...]) -> tuple[int, tuple[int, ...]] | None:
        """Paired (slot, layer) of vertex ``(slot, z)``; None on the diagonal."""
        x, y = self.slot_xy(slot)
        if z[y] == x:
            return None
        other = self.xy_slot(z[y], y)
        z_other = z[:y] + (x,) + z[y + 1:]
        return other, z_other

    @property
    def is_mds(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"Clay({self.k},{self.r})"

    def repair_layer_indices(self, failed: int) -> list[int]:
        """Storage indices of the beta layers read to repair ``failed``."""
        x0, y0 = self.slot_xy(failed)
        return [i for i, z in enumerate(self._layers) if z[y0] == x0]

    # ------------------------------------------------------------------
    # Pairwise transforms (operate on (L,)-byte vectors)
    # ------------------------------------------------------------------
    def _couple(self, u_own: np.ndarray, u_comp: np.ndarray) -> np.ndarray:
        """C = U_own + gamma * U_companion."""
        out = u_own.copy()
        gf_xor_mul_into(out, self.gamma, u_comp)
        return out

    def _decouple_cc(self, c_own: np.ndarray, c_comp: np.ndarray) -> np.ndarray:
        """U_own from the two coupled values of a pair."""
        mixed = c_own.copy()
        gf_xor_mul_into(mixed, self.gamma, c_comp)
        out = np.zeros_like(mixed)
        gf_xor_mul_into(out, self._pair_inv, mixed)
        return out

    def _decouple_cu(self, c_own: np.ndarray, u_comp: np.ndarray) -> np.ndarray:
        """U_own from own coupled value and companion's uncoupled value."""
        out = c_own.copy()
        gf_xor_mul_into(out, self.gamma, u_comp)
        return out

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        if len(data_chunks) != self.k:
            raise ValueError(f"need {self.k} data chunks, got {len(data_chunks)}")
        chunk_size = data_chunks[0].shape[0]
        self._check_chunk_size(chunk_size)
        for c in data_chunks:
            self._check_chunk(c, chunk_size)
        available = {i: data_chunks[i] for i in range(self.k)}
        parity_nodes = list(range(self.k, self.n))
        decoded = self.decode(available, parity_nodes, chunk_size)
        return [decoded[i] for i in parity_nodes]

    def _intersection_score(self, z: tuple[int, ...], erased: set[int]) -> int:
        return sum(1 for y in range(self.t) if self.xy_slot(z[y], y) in erased)

    def decode(self, available: Mapping[int, np.ndarray], erased: Sequence[int],
               chunk_size: int) -> dict[int, np.ndarray]:
        self._check_chunk_size(chunk_size)
        erased_set = set(erased)
        if len(erased_set) > self.r:
            raise DecodeError(f"cannot decode {len(erased_set)} > r={self.r} erasures")
        for node in erased_set:
            if not 0 <= node < self.n:
                raise DecodeError(f"erased node {node} out of range")
        needed = [i for i in range(self.n) if i not in erased_set]
        missing = [i for i in needed if i not in available]
        if missing:
            raise DecodeError(f"decode requires all surviving chunks; missing {missing}")
        sub = chunk_size // self.alpha

        # Stored (coupled) arrays: (alpha, sub) per slot; virtual slots zero.
        c_arr: list[np.ndarray | None] = []
        for slot in range(self.num_slots):
            if slot in erased_set:
                c_arr.append(np.zeros((self.alpha, sub), dtype=np.uint8))
            elif self.is_virtual(slot):
                c_arr.append(np.zeros((self.alpha, sub), dtype=np.uint8))
            else:
                chunk = available[slot]
                self._check_chunk(chunk, chunk_size)
                c_arr.append(chunk.reshape(self.alpha, sub))
        u_arr = [np.zeros((self.alpha, sub), dtype=np.uint8) for _ in range(self.num_slots)]

        order = sorted(range(self.alpha),
                       key=lambda zi: self._intersection_score(self._layers[zi], erased_set))
        erased_sorted = sorted(erased_set)
        inv_sub = None
        if erased_sorted:
            cols = self._H[:len(erased_sorted), erased_sorted]
            inv_sub = mat_inv(cols)

        for zi in order:
            z = self._layers[zi]
            for slot in range(self.num_slots):
                if slot in erased_set:
                    continue
                comp = self.companion(slot, z)
                if comp is None:
                    u_arr[slot][zi] = c_arr[slot][zi]
                    continue
                comp_slot, comp_z = comp
                comp_zi = self._layer_index[comp_z]
                if comp_slot in erased_set:
                    # Companion layer has strictly lower score: already solved.
                    u_arr[slot][zi] = self._decouple_cu(
                        c_arr[slot][zi], u_arr[comp_slot][comp_zi])
                else:
                    u_arr[slot][zi] = self._decouple_cc(
                        c_arr[slot][zi], c_arr[comp_slot][comp_zi])
            if not erased_sorted:
                continue
            # MDS-solve this layer in the uncoupled domain.
            e = len(erased_sorted)
            rhs = np.zeros((e, sub), dtype=np.uint8)
            for j in range(e):
                for slot in range(self.num_slots):
                    if slot not in erased_set:
                        gf_xor_mul_into(rhs[j], int(self._H[j, slot]), u_arr[slot][zi])
            for row, slot in enumerate(erased_sorted):
                acc = np.zeros(sub, dtype=np.uint8)
                for j in range(e):
                    gf_xor_mul_into(acc, int(inv_sub[row, j]), rhs[j])
                u_arr[slot][zi] = acc

        # Re-couple the erased slots.
        out: dict[int, np.ndarray] = {}
        for slot in erased_sorted:
            c_out = np.zeros((self.alpha, sub), dtype=np.uint8)
            for zi, z in enumerate(self._layers):
                comp = self.companion(slot, z)
                if comp is None:
                    c_out[zi] = u_arr[slot][zi]
                else:
                    comp_slot, comp_z = comp
                    c_out[zi] = self._couple(
                        u_arr[slot][zi], u_arr[comp_slot][self._layer_index[comp_z]])
            out[slot] = c_out.reshape(-1)
        return out

    # ------------------------------------------------------------------
    # Optimal single-node repair
    # ------------------------------------------------------------------
    def repair_plan(self, failed: int, chunk_size: int) -> RepairPlan:
        self._check_chunk_size(chunk_size)
        if not 0 <= failed < self.n:
            raise ValueError(f"node {failed} out of range")
        sub = chunk_size // self.alpha
        indices = self.repair_layer_indices(failed)
        # Merge consecutive storage indices into contiguous runs.
        runs: list[tuple[int, int]] = []
        start = prev = indices[0]
        for zi in indices[1:]:
            if zi == prev + 1:
                prev = zi
                continue
            runs.append((start, prev - start + 1))
            start = prev = zi
        runs.append((start, prev - start + 1))
        segments = []
        for node in range(self.n):
            if node == failed:
                continue
            for run_start, run_len in runs:
                segments.append(ReadSegment(node, run_start * sub, run_len * sub))
        return RepairPlan((failed,), chunk_size, segments)

    def _column_slots(self, y0: int) -> list[int]:
        return [self.xy_slot(x, y0) for x in range(self.q)]

    def _repair_solution(self, failed: int) -> np.ndarray:
        """Cached solve matrix for the repair linear system of ``failed``.

        Unknowns (count 2*alpha - beta):
          * ``x * beta + pos`` — U of column slot (x, y0) in repair layer pos,
            for all x (x = x0 is the failed node's own U = C there);
          * ``q * beta + npos`` — U of the failed slot in non-repair layer npos.
        Inputs (count beta * (num_slots - 1)):
          * U of every non-column slot in every repair layer (computed from
            the reads via pairwise decoupling), then
          * C of every surviving column slot in every repair layer.
        """
        if failed in self._repair_cache:
            return self._repair_cache[failed]
        x0, y0 = self.slot_xy(failed)
        q, beta = self.q, self.beta
        repair = self.repair_layer_indices(failed)
        repair_pos = {zi: p for p, zi in enumerate(repair)}
        non_repair = [zi for zi in range(self.alpha) if zi not in repair_pos]
        non_repair_pos = {zi: p for p, zi in enumerate(non_repair)}
        col = self._column_slots(y0)
        non_col = [s for s in range(self.num_slots) if s not in col]
        non_col_rank = {s: i for i, s in enumerate(non_col)}
        col_helpers = [s for s in col if s != failed]
        col_rank = {s: i for i, s in enumerate(col_helpers)}
        n_unknowns = q * beta + (self.alpha - beta)
        n_inputs = beta * len(non_col) + beta * len(col_helpers)
        c_input_base = beta * len(non_col)

        def uid_col(x: int, pos: int) -> int:
            return x * beta + pos

        def uid_failed_nr(npos: int) -> int:
            return q * beta + npos

        system = GFLinearSystem(n_unknowns, n_inputs)
        for zi in repair:
            z = self._layers[zi]
            pos = repair_pos[zi]
            # Parity checks of this layer in the uncoupled domain.
            for j in range(q):
                unknowns: dict[int, int] = {}
                inputs: dict[int, int] = {}
                for slot in range(self.num_slots):
                    coeff = int(self._H[j, slot])
                    if not coeff:
                        continue
                    x, y = self.slot_xy(slot)
                    if y == y0:
                        key = uid_col(x, pos)
                        unknowns[key] = unknowns.get(key, 0) ^ coeff
                    else:
                        key = non_col_rank[slot] * beta + pos
                        inputs[key] = inputs.get(key, 0) ^ coeff
                system.add_equation(unknowns, inputs)
            # Pairwise coupling of surviving column slots with the failed
            # node's non-repair-layer sub-chunks:
            #   C(x, y0, z) = U(x, y0, z) + gamma * U(failed, z(y0 -> x)).
            for x in range(q):
                if x == x0:
                    continue
                slot = self.xy_slot(x, y0)
                z_comp = z[:y0] + (x,) + z[y0 + 1:]
                npos = non_repair_pos[self._layer_index[z_comp]]
                unknowns = {uid_col(x, pos): 1, uid_failed_nr(npos): self.gamma}
                inputs = {}
                if not self.is_virtual(slot):
                    inputs[c_input_base + col_rank[slot] * beta + pos] = 1
                system.add_equation(unknowns, inputs)
        solution = system.solve()
        self._repair_cache[failed] = solution
        return solution

    def repair(self, failed: int, reads: Mapping[int, np.ndarray],
               chunk_size: int) -> np.ndarray:
        """Repair ``failed`` from the beta repair-layer sub-chunks of each of
        the d = n-1 survivors (wire format of :func:`extract_reads`)."""
        from repro.gf.field import MUL_TABLE

        self._check_chunk_size(chunk_size)
        sub = chunk_size // self.alpha
        x0, y0 = self.slot_xy(failed)
        q, beta = self.q, self.beta
        repair = self.repair_layer_indices(failed)
        repair_pos = {zi: p for p, zi in enumerate(repair)}
        non_repair = [zi for zi in range(self.alpha) if zi not in repair_pos]
        col = self._column_slots(y0)
        non_col = [s for s in range(self.num_slots) if s not in col]
        col_helpers = [s for s in col if s != failed]

        # Per-slot coupled data restricted to the repair layers.
        c_read: list[np.ndarray] = []
        for slot in range(self.num_slots):
            if slot == failed or self.is_virtual(slot) or slot not in reads:
                c_read.append(np.zeros((beta, sub), dtype=np.uint8))
            else:
                c_read.append(reads[slot].reshape(beta, sub))

        # Step 1: decouple every non-column slot inside the repair layers.
        inputs = np.zeros((beta * len(non_col) + beta * len(col_helpers), sub),
                          dtype=np.uint8)
        for rank, slot in enumerate(non_col):
            for pos, zi in enumerate(repair):
                z = self._layers[zi]
                comp = self.companion(slot, z)
                if comp is None:
                    inputs[rank * beta + pos] = c_read[slot][pos]
                else:
                    comp_slot, comp_z = comp
                    comp_pos = repair_pos[self._layer_index[comp_z]]
                    inputs[rank * beta + pos] = self._decouple_cc(
                        c_read[slot][pos], c_read[comp_slot][comp_pos])
        base = beta * len(non_col)
        for rank, slot in enumerate(col_helpers):
            inputs[base + rank * beta:base + (rank + 1) * beta] = c_read[slot]

        # Step 2: apply the cached solve matrix.
        solution = self._repair_solution(failed)
        unknowns = np.zeros((solution.shape[0], sub), dtype=np.uint8)
        for i in range(solution.shape[0]):
            row = solution[i]
            nz = np.nonzero(row)[0]
            if nz.size:
                unknowns[i] = np.bitwise_xor.reduce(
                    MUL_TABLE[row[nz][:, None], inputs[nz]], axis=0)

        # Step 3: assemble the lost coupled chunk.
        out = np.zeros((self.alpha, sub), dtype=np.uint8)
        for pos, zi in enumerate(repair):
            out[zi] = unknowns[x0 * beta + pos]  # diagonal: C = U
        non_repair_pos = {zi: p for p, zi in enumerate(non_repair)}
        for zi in non_repair:
            z = self._layers[zi]
            x = z[y0]
            z_comp = z[:y0] + (x0,) + z[y0 + 1:]
            comp_pos = repair_pos[self._layer_index[z_comp]]
            u_failed = unknowns[q * beta + non_repair_pos[zi]]
            u_comp = unknowns[x * beta + comp_pos]
            out[zi] = self._couple(u_failed, u_comp)
        return out.reshape(-1)

"""Hitchhiker-XOR (Rashmi et al., SIGCOMM'14).

A non-optimal regenerating code used as a baseline in the paper's Figures 9
and 10 ("HH").  Each chunk is split into two sub-chunks (alpha = 2), forming
two RS substripes ``a`` and ``b``; the second substripe's parities 2..r are
"piggybacked" with XORs of first-substripe data from disjoint groups.  Repair
of a data node then reads the full ``b`` substripe minus one, a single
piggybacked parity sub-chunk, and the group's ``a`` sub-chunks — about 65%
of RS repair traffic for (10,4) — while staying MDS.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.codes.base import (
    DecodeError,
    ErasureCode,
    ReadSegment,
    RepairPlan,
)
from repro.codes.rs import RSCode
from repro.gf.field import gf_xor_mul_into
from repro.gf.matrix import mat_rank
from repro.gf.solve import GFLinearSystem, UnderdeterminedSystemError


def _make_groups(k: int, r: int) -> list[list[int]]:
    """Partition data nodes into r-1 near-equal groups for parities 2..r."""
    n_groups = r - 1
    base = k // n_groups
    extra = k % n_groups
    groups = []
    start = 0
    for g in range(n_groups):
        size = base + (1 if g >= n_groups - extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


class HitchhikerCode(ErasureCode):
    """Hitchhiker-XOR over a Cauchy RS(k, r) base code."""

    alpha = 2

    def __init__(self, k: int, r: int):
        if r < 2:
            raise ValueError("Hitchhiker needs r >= 2 (parities 2..r carry piggybacks)")
        self.k = k
        self.r = r
        self._rs = RSCode(k, r)
        #: groups[j] lists the data nodes piggybacked onto parity j+2.
        self.groups = _make_groups(k, r)
        self._symbol_rows = self._build_symbol_rows()

    @property
    def is_mds(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"Hitchhiker({self.k},{self.r})"

    def group_of(self, data_node: int) -> int:
        """Piggyback group index of a data node."""
        for g, members in enumerate(self.groups):
            if data_node in members:
                return g
        raise ValueError(f"{data_node} is not a data node")

    # ------------------------------------------------------------------
    # Symbol-level linear structure (for generic decode)
    # ------------------------------------------------------------------
    def _build_symbol_rows(self) -> np.ndarray:
        """(2n x 2k) matrix mapping data symbols (a_0..a_k-1, b_0..b_k-1)
        to stored symbols (node 0 sub 0, node 0 sub 1, node 1 sub 0, ...)."""
        k, r = self.k, self.r
        parity = self._rs.generator[k:]
        rows = np.zeros((2 * (k + r), 2 * k), dtype=np.uint8)
        for i in range(k):
            rows[2 * i, i] = 1          # a_i
            rows[2 * i + 1, k + i] = 1  # b_i
        for j in range(r):
            node = k + j
            rows[2 * node, :k] = parity[j]          # f_{j+1}(a)
            rows[2 * node + 1, k:] = parity[j]      # f_{j+1}(b) ...
            if j >= 1:                              # ... plus the piggyback
                for member in self.groups[j - 1]:
                    rows[2 * node + 1, member] ^= 1
        return rows

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def _split(self, chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        half = chunk.shape[0] // 2
        return chunk[:half], chunk[half:]

    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        if len(data_chunks) != self.k:
            raise ValueError(f"need {self.k} data chunks, got {len(data_chunks)}")
        chunk_size = data_chunks[0].shape[0]
        self._check_chunk_size(chunk_size)
        for c in data_chunks:
            self._check_chunk(c, chunk_size)
        a = [self._split(c)[0] for c in data_chunks]
        b = [self._split(c)[1] for c in data_chunks]
        fa = self._rs.encode(a)
        fb = self._rs.encode(b)
        parities = []
        for j in range(self.r):
            second = fb[j].copy()
            if j >= 1:
                for member in self.groups[j - 1]:
                    np.bitwise_xor(second, a[member], out=second)
            parities.append(np.concatenate([fa[j], second]))
        return parities

    def decode(self, available: Mapping[int, np.ndarray], erased: Sequence[int],
               chunk_size: int) -> dict[int, np.ndarray]:
        self._check_chunk_size(chunk_size)
        half = chunk_size // 2
        erased = sorted(set(erased))
        usable = sorted(set(available) - set(erased))
        symbol_ids = [2 * node + s for node in usable for s in (0, 1)]
        rows = self._symbol_rows[symbol_ids]
        if mat_rank(rows) < 2 * self.k:
            raise DecodeError(f"erasure pattern {erased} not decodable")
        system = GFLinearSystem(2 * self.k, len(symbol_ids))
        for idx, sym in enumerate(symbol_ids):
            system.add_equation(
                {j: int(self._symbol_rows[sym, j]) for j in range(2 * self.k)
                 if self._symbol_rows[sym, j]},
                {idx: 1})
        try:
            solution = system.solve()
        except UnderdeterminedSystemError as exc:  # pragma: no cover
            raise DecodeError(str(exc)) from exc
        inputs = []
        for node in usable:
            self._check_chunk(available[node], chunk_size)
            inputs.append(available[node][:half])
            inputs.append(available[node][half:])
        data_syms = []
        for j in range(2 * self.k):
            acc = np.zeros(half, dtype=np.uint8)
            for idx in range(len(symbol_ids)):
                gf_xor_mul_into(acc, int(solution[j, idx]), inputs[idx])
            data_syms.append(acc)
        out: dict[int, np.ndarray] = {}
        for node in erased:
            chunk = np.zeros(chunk_size, dtype=np.uint8)
            for s in (0, 1):
                row = self._symbol_rows[2 * node + s]
                acc = chunk[s * half:(s + 1) * half]
                for j in range(2 * self.k):
                    gf_xor_mul_into(acc, int(row[j]), data_syms[j])
            out[node] = chunk
        return out

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair_plan(self, failed: int, chunk_size: int) -> RepairPlan:
        self._check_chunk_size(chunk_size)
        if not 0 <= failed < self.n:
            raise ValueError(f"node {failed} out of range")
        half = chunk_size // 2
        if failed >= self.k:
            # Parity repair falls back to full RS-style re-encode.
            segments = [ReadSegment(node, 0, chunk_size) for node in range(self.k)]
            return RepairPlan((failed,), chunk_size, segments)
        group = self.group_of(failed)
        segments = []
        for node in range(self.k):
            if node == failed:
                continue
            segments.append(ReadSegment(node, half, half))   # b_l
            if node in self.groups[group]:
                segments.append(ReadSegment(node, 0, half))  # a_l of the group
        segments.append(ReadSegment(self.k, half, half))      # f_1(b)
        segments.append(ReadSegment(self.k + group + 1, half, half))  # piggybacked g
        return RepairPlan((failed,), chunk_size, segments)

    def repair(self, failed: int, reads: Mapping[int, np.ndarray],
               chunk_size: int) -> np.ndarray:
        half = chunk_size // 2
        if failed >= self.k:
            data = [reads[node] for node in range(self.k)]
            return self.encode(data)[failed - self.k]
        group = self.group_of(failed)
        # Unpack the wire format: group members sent [a_l, b_l] (offset
        # order), other data nodes sent just [b_l].
        b_avail: dict[int, np.ndarray] = {}
        a_group: dict[int, np.ndarray] = {}
        for node in range(self.k):
            if node == failed:
                continue
            if node in self.groups[group]:
                a_group[node] = reads[node][:half]
                b_avail[node] = reads[node][half:]
            else:
                b_avail[node] = reads[node][:half]
        b_avail[self.k] = reads[self.k]              # f_1(b)
        piggy = reads[self.k + group + 1]            # f_{g+2}(b) + XOR(a_group)
        # 1. Decode the b substripe from k of its symbols.
        b_data = self._rs._solve_data(b_avail, half)
        b_failed = b_data[failed]
        # 2. Peel the piggyback to recover a_failed.
        fb = np.zeros(half, dtype=np.uint8)
        prow = self._rs.generator[self.k + group + 1]
        for j in range(self.k):
            gf_xor_mul_into(fb, int(prow[j]), b_data[j])
        a_failed = piggy ^ fb
        for node, a_val in a_group.items():
            np.bitwise_xor(a_failed, a_val, out=a_failed)
        return np.concatenate([a_failed, b_failed])

"""Codes with local regeneration (§8; Kamath et al., ISIT'13).

The paper's discussion notes that LRC's *locality* and regenerating codes'
*bandwidth optimality* compose: build each local group as its own small
regenerating (Clay) code and add RS global parities across all data.  A
single failure then repairs *within its group* at the group's MSR-optimal
traffic — both fewer helpers (locality, good across data centers) and
fewer bytes (regeneration).  This module implements that composition on
real bytes, reusing :class:`~repro.codes.clay.ClayCode` and
:class:`~repro.codes.rs.RSCode`.

Layout of a stripe (``k`` data, ``l`` groups, ``local_r`` local parities
per group, ``g`` globals)::

    [group 0 data][group 1 data]...[group 0 locals][group 1 locals]...[globals]

Single-failure repair:

* data or local-parity node -> Clay repair inside its group:
  reads ``(k/l + local_r - 1) / local_r`` chunks from group members only;
* global parity -> re-encode from the k data nodes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.codes.base import (
    DecodeError,
    ErasureCode,
    ReadSegment,
    RepairPlan,
)
from repro.codes.clay import ClayCode
from repro.codes.rs import RSCode


class LocalRegeneratingCode(ErasureCode):
    """LRC whose local groups are Clay (MSR) codes."""

    def __init__(self, k: int, l: int, local_r: int, g: int):
        if k <= 0 or l <= 0 or local_r < 2 or g < 0:
            raise ValueError("invalid parameters (local_r >= 2 for Clay groups)")
        if k % l:
            raise ValueError(f"k={k} must divide into l={l} equal groups")
        self.k = k
        self.l = l
        self.local_r = local_r
        self.g = g
        self.group_k = k // l
        self.local = ClayCode(self.group_k, local_r)
        self.globals_code = RSCode(k, g) if g else None
        #: r in the ErasureCode sense: all non-data nodes.
        self.r = l * local_r + g
        self.alpha = self.local.alpha

    @property
    def is_mds(self) -> bool:
        """Never MDS: local groups cannot absorb arbitrary failure mixes."""
        return False

    @property
    def name(self) -> str:
        return f"LocalClay({self.k},{self.l}x{self.local_r},+{self.g})"

    # ------------------------------------------------------------------
    # Node geometry
    # ------------------------------------------------------------------
    def group_of(self, node: int) -> int | None:
        """Group index of a node; None for global parities."""
        if node < self.k:
            return node // self.group_k
        if node < self.k + self.l * self.local_r:
            return (node - self.k) // self.local_r
        return None

    def group_nodes(self, group: int) -> list[int]:
        """All nodes of one group: its data then its local parities."""
        data = list(range(group * self.group_k, (group + 1) * self.group_k))
        base = self.k + group * self.local_r
        return data + list(range(base, base + self.local_r))

    def _group_role(self, node: int, group: int) -> int:
        """Code-node index of ``node`` inside its group's Clay code."""
        members = self.group_nodes(group)
        return members.index(node)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, data_chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Local Clay parities per group, then RS global parities."""
        if len(data_chunks) != self.k:
            raise ValueError(f"need {self.k} data chunks, got {len(data_chunks)}")
        chunk_size = data_chunks[0].shape[0]
        self._check_chunk_size(chunk_size)
        parities: list[np.ndarray] = []
        for group in range(self.l):
            group_data = data_chunks[group * self.group_k:
                                     (group + 1) * self.group_k]
            parities.extend(self.local.encode(list(group_data)))
        if self.globals_code:
            parities.extend(self.globals_code.encode(list(data_chunks)))
        return parities

    def decode(self, available: Mapping[int, np.ndarray], erased: Sequence[int],
               chunk_size: int) -> dict[int, np.ndarray]:
        """Local decode where groups can self-heal; globals mop up the rest.

        Handles every pattern with <= local_r failures per group, plus
        patterns where the residual data losses (after local healing) are
        covered by the g globals.
        """
        self._check_chunk_size(chunk_size)
        erased_set = set(erased)
        chunks: dict[int, np.ndarray] = dict(available)
        out: dict[int, np.ndarray] = {}

        # Pass 1: groups with <= local_r losses heal locally.
        deferred_groups: list[int] = []
        for group in range(self.l):
            members = self.group_nodes(group)
            lost = [m for m in members if m in erased_set]
            if not lost:
                continue
            if len(lost) > self.local_r:
                deferred_groups.append(group)
                continue
            local_avail = {self._group_role(m, group): chunks[m]
                           for m in members if m not in erased_set}
            local_erased = [self._group_role(m, group) for m in lost]
            decoded = self.local.decode(local_avail, local_erased, chunk_size)
            for m in lost:
                value = decoded[self._group_role(m, group)]
                chunks[m] = value
                out[m] = value

        # Pass 2: a group beyond its locals needs the globals.
        if deferred_groups:
            if not self.globals_code:
                raise DecodeError("group lost more than local_r and no globals")
            lost_data = [m for grp in deferred_groups
                         for m in self.group_nodes(grp)
                         if m in erased_set and m < self.k]
            glob_avail = {i: chunks[i] for i in range(self.k)
                          if i in chunks and i not in erased_set}
            for j in range(self.g):
                node = self.k + self.l * self.local_r + j
                if node in chunks and node not in erased_set:
                    glob_avail[self.k + j] = chunks[node]
            decoded = self.globals_code.decode(
                glob_avail, [m for m in lost_data], chunk_size)
            for m in lost_data:
                chunks[m] = decoded[m]
                out[m] = decoded[m]
            # Re-encode the deferred groups' local parities.
            for grp in deferred_groups:
                group_data = [chunks[m] for m in self.group_nodes(grp)
                              if m < self.k]
                local_parities = self.local.encode(group_data)
                base = self.k + grp * self.local_r
                for idx, parity in enumerate(local_parities):
                    node = base + idx
                    chunks[node] = parity
                    if node in erased_set:
                        out[node] = parity

        # Global parities lost?
        lost_globals = [m for m in erased_set
                        if m >= self.k + self.l * self.local_r]
        if lost_globals:
            data = [chunks[i] for i in range(self.k)]
            fresh = self.globals_code.encode(data)
            for m in lost_globals:
                out[m] = fresh[m - self.k - self.l * self.local_r]

        missing = erased_set - set(out)
        if missing:
            raise DecodeError(f"pattern not handled: {sorted(missing)}")
        return out

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair_plan(self, failed: int, chunk_size: int) -> RepairPlan:
        """Group-local MSR repair; globals re-encode from the data."""
        self._check_chunk_size(chunk_size)
        if not 0 <= failed < self.n:
            raise ValueError(f"node {failed} out of range")
        group = self.group_of(failed)
        if group is None:
            segments = [ReadSegment(node, 0, chunk_size)
                        for node in range(self.k)]
            return RepairPlan((failed,), chunk_size, segments)
        members = self.group_nodes(group)
        role = self._group_role(failed, group)
        local_plan = self.local.repair_plan(role, chunk_size)
        segments = [ReadSegment(members[s.node], s.offset, s.length)
                    for s in local_plan.segments]
        return RepairPlan((failed,), chunk_size, segments)

    def repair(self, failed: int, reads: Mapping[int, np.ndarray],
               chunk_size: int) -> np.ndarray:
        """Repair from exactly the planned bytes (local Clay or global RS)."""
        group = self.group_of(failed)
        if group is None:
            data = [reads[node] for node in range(self.k)]
            return self.globals_code.encode(data)[
                failed - self.k - self.l * self.local_r]
        members = self.group_nodes(group)
        role = self._group_role(failed, group)
        local_reads = {self._group_role(m, group): reads[m]
                       for m in members if m in reads}
        return self.local.repair(role, local_reads, chunk_size)

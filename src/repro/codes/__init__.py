"""Erasure codes: RS, LRC, Hitchhiker, and Clay (MSR).

All codes share the :class:`~repro.codes.base.ErasureCode` interface —
encode/decode/repair on real byte buffers plus :class:`RepairPlan` metadata
describing exactly which byte ranges a repair reads (consumed by the storage
simulator for I/O modelling).
"""

from repro.codes.base import (
    DecodeError,
    ErasureCode,
    ReadSegment,
    RepairPlan,
    ScalarLinearCode,
    extract_reads,
)
from repro.codes.clay import ClayCode
from repro.codes.hitchhiker import HitchhikerCode
from repro.codes.local_regenerating import LocalRegeneratingCode
from repro.codes.lrc import LRCCode
from repro.codes.product_matrix import ProductMatrixMBR
from repro.codes.rs import RSCode

__all__ = [
    "DecodeError",
    "ErasureCode",
    "ReadSegment",
    "RepairPlan",
    "ScalarLinearCode",
    "extract_reads",
    "ClayCode",
    "HitchhikerCode",
    "LRCCode",
    "LocalRegeneratingCode",
    "ProductMatrixMBR",
    "RSCode",
]

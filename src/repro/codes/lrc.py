"""Local Reconstruction Codes, Azure-style LRC(k, l, g).

``k`` data nodes are split into ``l`` equal local groups; each group gets one
XOR local parity, and ``g`` global parities are Cauchy combinations of all
data (Figure 1c).  LRC trades reliability for repair locality: a data-node
failure reads only its group (k/l + 1 nodes' worth), but the code is not MDS
— some (l+g)-failure patterns are unrecoverable.

For LRC(10,2,2) this reproduces Table 1: average read traffic
(12*5 + 2*10) / 14 = 5.71.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.codes.base import ReadSegment, RepairPlan, ScalarLinearCode
from repro.gf.matrix import cauchy_matrix


def _lrc_generator(k: int, l: int, g: int) -> np.ndarray:
    rows = np.zeros((k + l + g, k), dtype=np.uint8)
    rows[:k] = np.eye(k, dtype=np.uint8)
    group_size = k // l
    for group in range(l):
        rows[k + group, group * group_size:(group + 1) * group_size] = 1
    # Global parities: Cauchy rows guarantee joint independence with the
    # identity rows; combined with the XOR locals this recovers every
    # pattern of <= g+1 failures and most larger recoverable patterns.
    rows[k + l:] = cauchy_matrix(list(range(k, k + g)), list(range(k)))
    return rows


class LRCCode(ScalarLinearCode):
    """Azure-style Local Reconstruction Code."""

    def __init__(self, k: int, l: int, g: int):
        if k <= 0 or l <= 0 or g < 0:
            raise ValueError("invalid LRC parameters")
        if k % l:
            raise ValueError(f"k={k} must divide into l={l} equal groups")
        self.l = l
        self.g = g
        self.group_size = k // l
        super().__init__(_lrc_generator(k, l, g), k, l + g)

    @property
    def is_mds(self) -> bool:
        return False

    @property
    def name(self) -> str:
        return f"LRC({self.k},{self.l},{self.g})"

    def group_of(self, node: int) -> int | None:
        """Local group of a node; ``None`` for global parities."""
        if node < self.k:
            return node // self.group_size
        if node < self.k + self.l:
            return node - self.k
        return None

    def group_members(self, group: int) -> list[int]:
        """Data nodes plus the local parity of one group."""
        base = group * self.group_size
        return list(range(base, base + self.group_size)) + [self.k + group]

    def repair_plan(self, failed: int, chunk_size: int) -> RepairPlan:
        """Data/local-parity failures read the group; globals read all data."""
        self._check_chunk_size(chunk_size)
        if not 0 <= failed < self.n:
            raise ValueError(f"node {failed} out of range")
        group = self.group_of(failed)
        if group is None:
            helpers = list(range(self.k))
        else:
            helpers = [m for m in self.group_members(group) if m != failed]
        segments = [ReadSegment(node, 0, chunk_size) for node in helpers]
        return RepairPlan((failed,), chunk_size, segments)

    def repair(self, failed: int, reads: Mapping[int, np.ndarray],
               chunk_size: int) -> np.ndarray:
        from repro.gf.field import gf_xor_mul_into

        group = self.group_of(failed)
        if group is None:
            # Global parity: re-encode from all data chunks.
            acc = np.zeros(chunk_size, dtype=np.uint8)
            for j in range(self.k):
                gf_xor_mul_into(acc, int(self.generator[failed, j]), reads[j])
            return acc
        # Within a group, the XOR of all members (data + local parity) is the
        # missing one.
        acc = np.zeros(chunk_size, dtype=np.uint8)
        for member in self.group_members(group):
            if member != failed:
                np.bitwise_xor(acc, reads[member], out=acc)
        return acc

"""Product-matrix MBR codes (Rashmi, Shah, Kumar — IEEE IT 2011).

The paper's §2.2 situates Clay among regenerating codes: MSR codes sit at
the minimum-storage corner of the storage/repair-bandwidth trade-off, MBR
(Minimum Bandwidth Regenerating) codes at the minimum-bandwidth corner.
This module implements the classic product-matrix MBR construction for any
``k <= d <= n-1`` — primarily to let the benchmarks quantify the trade-off
the paper's choice of an MSR code implies.

Construction
------------
``B = k*d - k*(k-1)/2`` message symbols fill a symmetric ``d x d`` matrix

    M = [[S, T],
         [T^t, 0]]

(S: k x k symmetric, T: k x (d-k)).  With an ``n x d`` Vandermonde encoding
matrix Ψ (rows ψ_i), node i stores the ``alpha = d`` symbols ``ψ_i^t M``.

* **Repair** of node f: every helper j sends the *single* symbol
  ``ψ_j^t M ψ_f``; any d such symbols give ``M ψ_f`` by inverting the
  corresponding Ψ submatrix, and — M being symmetric — that *is* the lost
  chunk.  Total repair traffic = α symbols: exactly the data lost
  (repair-by-transfer, β = 1).
* **Reconstruction** from any k nodes: their rows give ``[Φ S + Δ T^t,
  Φ T]``; invert Φ to peel T, then S.

Unlike the systematic codes in this package, MBR stores ``n*d / B > n/k``
raw bytes per data byte — the price of minimum repair bandwidth.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.codes.base import DecodeError
from repro.gf.field import gf_xor_mul_into
from repro.gf.matrix import mat_inv, vandermonde


class ProductMatrixMBR:
    """Minimum Bandwidth Regenerating code over GF(256)."""

    def __init__(self, n: int, k: int, d: int | None = None):
        if d is None:
            d = n - 1
        if not 1 <= k <= d <= n - 1:
            raise ValueError(f"need 1 <= k <= d <= n-1, got k={k}, d={d}, n={n}")
        if n > 255:
            raise ValueError("n must fit distinct non-zero field points")
        self.n = n
        self.k = k
        self.d = d
        self.alpha = d
        self.beta = 1
        #: number of message symbols per stripe
        self.B = k * d - k * (k - 1) // 2
        # Vandermonde rows: any d rows independent; any k rows of the first
        # k columns independent.
        self.psi = vandermonde(d, list(range(1, n + 1))).T.copy()  # n x d
        self._message_map = self._build_message_map()

    # ------------------------------------------------------------------
    # Message layout
    # ------------------------------------------------------------------
    def _build_message_map(self) -> np.ndarray:
        """(d x d) matrix of message-symbol indices; -1 marks the zero block."""
        k, d = self.k, self.d
        idx = np.full((d, d), -1, dtype=np.int64)
        s = 0
        for i in range(k):          # symmetric S block
            for j in range(i, k):
                idx[i, j] = idx[j, i] = s
                s += 1
        for i in range(k):          # T and T^t blocks
            for j in range(k, d):
                idx[i, j] = idx[j, i] = s
                s += 1
        assert s == self.B
        return idx

    @property
    def storage_overhead(self) -> float:
        """Raw bytes stored per data byte (> n/k: the MBR price)."""
        return self.n * self.d / self.B

    @property
    def repair_traffic_symbols(self) -> int:
        """Symbols read over the network to repair one node (= alpha)."""
        return self.d * self.beta

    @property
    def name(self) -> str:
        return f"PM-MBR({self.n},{self.k},{self.d})"

    # ------------------------------------------------------------------
    # Core stream algebra
    # ------------------------------------------------------------------
    def _check_data(self, data: np.ndarray) -> int:
        if data.dtype != np.uint8 or data.ndim != 1 or data.size % self.B:
            raise ValueError(
                f"data must be uint8 with length a multiple of B={self.B}")
        return data.size // self.B

    def encode(self, data: np.ndarray) -> list[np.ndarray]:
        """All n stored chunks (each ``alpha * L`` bytes) of one stripe."""
        length = self._check_data(data)
        streams = data.reshape(self.B, length)
        out = []
        for node in range(self.n):
            chunk = np.zeros((self.d, length), dtype=np.uint8)
            for col in range(self.d):
                for row in range(self.d):
                    sym = self._message_map[row, col]
                    if sym >= 0:
                        gf_xor_mul_into(chunk[col], int(self.psi[node, row]),
                                        streams[sym])
            out.append(chunk.reshape(-1))
        return out

    def decode(self, chunks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Recover the message from any k stored chunks."""
        nodes = sorted(chunks)[: self.k]
        if len(nodes) < self.k:
            raise DecodeError(f"need {self.k} chunks, got {len(nodes)}")
        length = chunks[nodes[0]].size // self.d
        rows = np.zeros((self.k, self.d, length), dtype=np.uint8)
        for r, node in enumerate(nodes):
            chunk = chunks[node]
            if chunk.size != self.d * length:
                raise DecodeError("inconsistent chunk sizes")
            rows[r] = chunk.reshape(self.d, length)
        phi = self.psi[nodes, : self.k]          # k x k
        delta = self.psi[nodes, self.k:]         # k x (d-k)
        phi_inv = mat_inv(phi)
        # T = phi^-1 @ second block.
        t_block = self._coeff_stream_mul(phi_inv, rows[:, self.k:, :])
        # S = phi^-1 @ (first block - delta @ T^t).
        first = rows[:, : self.k, :].copy()
        if self.d > self.k:
            t_transpose = t_block.transpose(1, 0, 2)
            correction = self._coeff_stream_mul(delta, t_transpose)
            np.bitwise_xor(first, correction, out=first)
        s_block = self._coeff_stream_mul(phi_inv, first)
        out = np.zeros((self.B, length), dtype=np.uint8)
        for i in range(self.k):
            for j in range(i, self.k):
                out[self._message_map[i, j]] = s_block[i, j - 0]
        for i in range(self.k):
            for j in range(self.k, self.d):
                out[self._message_map[i, j]] = t_block[i, j - self.k]
        return out.reshape(-1)

    @staticmethod
    def _coeff_stream_mul(coeffs: np.ndarray, streams: np.ndarray) -> np.ndarray:
        """(a x b) GF matrix times (b x c x L) stream tensor -> (a x c x L)."""
        a, b = coeffs.shape
        _b, c, length = streams.shape
        out = np.zeros((a, c, length), dtype=np.uint8)
        for i in range(a):
            for m in range(b):
                coeff = int(coeffs[i, m])
                if coeff:
                    for j in range(c):
                        gf_xor_mul_into(out[i, j], coeff, streams[m, j])
        return out

    # ------------------------------------------------------------------
    # Repair (beta = 1)
    # ------------------------------------------------------------------
    def helper_symbol(self, helper: int, failed: int,
                      helper_chunk: np.ndarray) -> np.ndarray:
        """The single symbol-stream helper sends: ``ψ_h^t M ψ_f``."""
        length = helper_chunk.size // self.d
        stored = helper_chunk.reshape(self.d, length)
        out = np.zeros(length, dtype=np.uint8)
        for c in range(self.d):
            gf_xor_mul_into(out, int(self.psi[failed, c]), stored[c])
        return out

    def repair(self, failed: int,
               helper_symbols: Mapping[int, np.ndarray]) -> np.ndarray:
        """Rebuild the failed chunk from d helper symbols."""
        helpers = sorted(helper_symbols)[: self.d]
        if len(helpers) < self.d:
            raise DecodeError(f"need {self.d} helper symbols, got {len(helpers)}")
        if failed in helpers:
            raise DecodeError("failed node cannot help itself")
        length = helper_symbols[helpers[0]].size
        psi_sub = self.psi[helpers]              # d x d
        inv = mat_inv(psi_sub)
        received = np.stack([helper_symbols[h] for h in helpers])
        # M ψ_f = Ψ_H^-1 @ received; symmetry makes it the lost chunk.
        chunk = np.zeros((self.d, length), dtype=np.uint8)
        for i in range(self.d):
            for m in range(self.d):
                gf_xor_mul_into(chunk[i], int(inv[i, m]), received[m])
        return chunk.reshape(-1)

"""Ablations of the design decisions DESIGN.md calls out.

Each function isolates one mechanism the paper argues for:

* :func:`two_pass_vs_greedy` — Algorithm 1's second pass vs naive
  largest-first partitioning (§4.3: bounded adjacent-chunk ratios enable
  pipelining),
* :func:`front_cut_ablation` — RS-coded small-size-buckets vs padding the
  front into a regenerating chunk (§4.1: read amplification),
* :func:`io_priority_ablation` — §5.1's priority lanes: degraded-read
  latency while recovery runs, with recovery at background vs foreground
  priority,
* :func:`global_weight_sweep` — §5.1's weighted recovery admission,
* :func:`pg_count_sweep` — recovery parallelism from placement groups,
* :func:`ecpipe_network_model` — ECPipe's pipelined-repair speedup in a
  network-bound regime (§7, Li et al. ATC'17).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.disk import BACKGROUND, FOREGROUND
from repro.core.ecpipe import ecpipe_repair_time, speedup, star_repair_time
from repro.core.layouts import GeometricLayout
from repro.core.partitioning import GeometricPartitioner, greedy_partition
from repro.core.pipeline import PipelineStep, degraded_read_time
from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    setting_by_name,
)
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows

KB = 1 << 10
MB = 1 << 20


# ----------------------------------------------------------------------
# 1. Algorithm 1's two-pass scan vs greedy largest-first
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitioningAblation:
    mean_adjacent_ratio_two_pass: float
    mean_adjacent_ratio_greedy: float
    mean_degraded_ms_two_pass: float
    mean_degraded_ms_greedy: float
    mean_chunks_two_pass: float
    mean_chunks_greedy: float


def _pipeline_time(part, repair_bw: float, client_bw: float) -> float:
    steps = []
    if part.front:
        steps.append(PipelineStep(part.front / repair_bw,
                                  part.front / client_bw))
    steps += [PipelineStep(c.size / repair_bw, c.size / client_bw)
              for c in part.chunks()]
    return degraded_read_time(steps)


def two_pass_vs_greedy(setting: WorkloadSetting = W1_SETTING,
                       n_objects: int = 2000, repair_bw: float = 90 * MB,
                       client_bw: float = 125 * MB,
                       seed: int = 0) -> PartitioningAblation:
    s0 = setting.geo_default_s0
    sizes = sample_workload(setting, n_objects, seed)
    partitioner = GeometricPartitioner(s0, 2, setting.max_chunk_size)
    ratios_tp, ratios_gr, times_tp, times_gr = [], [], [], []
    chunks_tp = chunks_gr = 0
    for size in sizes:
        two_pass = partitioner.partition(int(size))
        greedy = greedy_partition(int(size), s0, 2, setting.max_chunk_size)
        ratios_tp.append(two_pass.max_adjacent_ratio)
        ratios_gr.append(greedy.max_adjacent_ratio)
        times_tp.append(_pipeline_time(two_pass, repair_bw, client_bw))
        times_gr.append(_pipeline_time(greedy, repair_bw, client_bw))
        chunks_tp += two_pass.n_chunks
        chunks_gr += greedy.n_chunks
    return PartitioningAblation(
        float(np.mean(ratios_tp)), float(np.mean(ratios_gr)),
        1000 * float(np.mean(times_tp)), 1000 * float(np.mean(times_gr)),
        chunks_tp / n_objects, chunks_gr / n_objects)


# ----------------------------------------------------------------------
# 2. Front cut vs padding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrontCutAblation:
    read_amplification_with_cut: float
    read_amplification_without_cut: float
    capacity_overhead_without_cut: float  # padded bytes / data bytes


def front_cut_ablation(setting: WorkloadSetting = W1_SETTING,
                       n_objects: int = 2000, seed: int = 0) -> FrontCutAblation:
    s0 = setting.geo_default_s0
    sizes = sample_workload(setting, n_objects, seed)
    with_cut = GeometricLayout(s0, 2, setting.max_chunk_size, front_cut=True)
    without = GeometricLayout(s0, 2, setting.max_chunk_size, front_cut=False)
    amp_with, amp_without, stored, data = [], [], 0, 0
    for size in sizes:
        size = int(size)
        amp_with.append(with_cut.place(size).read_amplification)
        placement = without.place(size)
        amp_without.append(placement.read_amplification)
        stored += sum(c.stored_bytes for c in placement.chunks)
        data += size
    return FrontCutAblation(float(np.mean(amp_with)),
                            float(np.mean(amp_without)),
                            stored / data - 1.0)


# ----------------------------------------------------------------------
# 3. IO priority lanes during recovery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PriorityAblation:
    degraded_ms_with_priority: float
    degraded_ms_without_priority: float
    recovery_s_with_priority: float
    recovery_s_without_priority: float


def io_priority_ablation(setting: WorkloadSetting = W1_SETTING,
                         n_objects: int = 1200, n_requests: int = 12,
                         scheme: str | None = None,
                         seed: int = 0) -> PriorityAblation:
    scheme = scheme or f"Geo-{'4M' if setting.name == 'W1' else '128K'}"
    sizes = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    system = build_system(scheme, setting, config)
    system.ingest(sizes)
    targets = request_size_targets(setting, sizes, n_requests, seed + 1)
    requests = nearest_candidates(system.catalog.objects, targets)
    with_prio, rep_bg = system.measure_degraded_reads_during_recovery(
        requests, failed_disk=0, recovery_priority=BACKGROUND, seed=seed)
    without, rep_fg = system.measure_degraded_reads_during_recovery(
        requests, failed_disk=0, recovery_priority=FOREGROUND, seed=seed)
    return PriorityAblation(
        1000 * float(np.mean([r.total_time for r in with_prio])),
        1000 * float(np.mean([r.total_time for r in without])),
        rep_bg.makespan, rep_fg.makespan)


# ----------------------------------------------------------------------
# 4. Global recovery weight sweep
# ----------------------------------------------------------------------
def global_weight_sweep(setting: WorkloadSetting = W1_SETTING,
                        weights: tuple[int, ...] = (16, 64, 256, 512, 1024),
                        n_objects: int = 1500, scheme: str | None = None,
                        seed: int = 0) -> list[tuple[int, float]]:
    """(weight_limit, recovery makespan) pairs — concurrency saturates."""
    scheme = scheme or f"Geo-{'4M' if setting.name == 'W1' else '128K'}"
    sizes = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    system = build_system(scheme, setting, config)
    system.ingest(sizes)
    return [(w, system.run_recovery(0, weight_limit=w).makespan)
            for w in weights]


# ----------------------------------------------------------------------
# 5. Placement-group count sweep
# ----------------------------------------------------------------------
def pg_count_sweep(setting: WorkloadSetting = W1_SETTING,
                   pg_counts: tuple[int, ...] = (8, 32, 96, 160),
                   n_objects: int = 1500, scheme: str | None = None,
                   seed: int = 0) -> list[tuple[int, float]]:
    """(n_pgs, recovery rate) — more PGs recruit more disks (§5.1)."""
    scheme = scheme or f"Geo-{'4M' if setting.name == 'W1' else '128K'}"
    sizes = sample_workload(setting, n_objects, seed)
    out = []
    for n_pgs in pg_counts:
        config = replace(cluster_config(setting, n_objects), n_pgs=n_pgs)
        system = build_system(scheme, setting, config)
        system.ingest(sizes)
        report = system.run_recovery(0)
        out.append((n_pgs, report.recovery_rate))
    return out


# ----------------------------------------------------------------------
# 6. MSR vs MBR: the regenerating-code trade-off behind choosing Clay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegeneratingTradeoffRow:
    code: str
    storage_overhead: float
    repair_traffic_per_lost_byte: float
    sub_packetization: int


def msr_vs_mbr_tradeoff(k: int = 10, r: int = 4) -> list[RegeneratingTradeoffRow]:
    """Why the paper picks an MSR code (§2.2, §7): MBR repairs with
    minimum bandwidth but pays >n/k storage; MSR (Clay) keeps MDS storage
    with near-minimum repair; RS pays k× repair."""
    from repro.codes import ClayCode, ProductMatrixMBR, RSCode

    n = k + r
    rs = RSCode(k, r)
    clay = ClayCode(k, r)
    mbr = ProductMatrixMBR(n, k, n - 1)
    return [
        RegeneratingTradeoffRow(rs.name, rs.storage_overhead,
                                rs.average_repair_read_ratio(64), rs.alpha),
        RegeneratingTradeoffRow(clay.name, clay.storage_overhead,
                                clay.average_repair_read_ratio(clay.alpha),
                                clay.alpha),
        RegeneratingTradeoffRow(mbr.name, mbr.storage_overhead,
                                mbr.repair_traffic_symbols / mbr.alpha,
                                mbr.alpha),
    ]


# ----------------------------------------------------------------------
# 7. ECPipe network model
# ----------------------------------------------------------------------
def ecpipe_network_model(strip_size: int = 64 * MB, k: int = 10,
                         link_gbps: float = 1.0,
                         packet_sizes: tuple[int, ...] = (32 * KB, 256 * KB,
                                                          4 * MB, 64 * MB),
                         ) -> list[tuple[int, float, float, float]]:
    """(packet, star_s, ecpipe_s, speedup) rows in a network-bound regime."""
    bw = link_gbps * 125 * MB
    rows = []
    for packet in packet_sizes:
        rows.append((packet,
                     star_repair_time(strip_size, k, bw),
                     ecpipe_repair_time(strip_size, k, bw, packet),
                     speedup(strip_size, k, bw, packet)))
    return rows


def to_text(setting: WorkloadSetting = W1_SETTING, seed: int = 0) -> str:
    """Run the cheap ablations and render a combined report."""
    part = two_pass_vs_greedy(setting, n_objects=600, seed=seed)
    front = front_cut_ablation(setting, n_objects=600, seed=seed)
    ecp = [{"packet": p, "star_s": s, "ecpipe_s": e, "speedup": sp}
           for p, s, e, sp in ecpipe_network_model()]
    return render_report(part, front, ecp, msr_vs_mbr_tradeoff())


def render_report(part: PartitioningAblation, front: FrontCutAblation,
                  ecp: list[dict],
                  msr: list[RegeneratingTradeoffRow]) -> str:
    """Pure rendering of the combined ablation report."""
    sections = [
        "Two-pass scan vs greedy partitioning:",
        format_table(
            ["Variant", "Max adj. ratio", "Degraded (ms)", "Chunks/obj"],
            [["Algorithm 1", round(part.mean_adjacent_ratio_two_pass, 2),
              round(part.mean_degraded_ms_two_pass), round(part.mean_chunks_two_pass, 1)],
             ["Greedy", round(part.mean_adjacent_ratio_greedy, 2),
              round(part.mean_degraded_ms_greedy), round(part.mean_chunks_greedy, 1)]]),
        "\nFront cut vs padding:",
        format_table(
            ["Variant", "Read amplification", "Capacity overhead"],
            [["RS front cut", round(front.read_amplification_with_cut, 3), "0%"],
             ["Padded front", round(front.read_amplification_without_cut, 3),
              f"{front.capacity_overhead_without_cut * 100:.1f}%"]]),
        "\nECPipe at 1 Gbps links (64 MB strip, k=10):",
        format_table(
            ["Packet", "Star (s)", "ECPipe (s)", "Speedup"],
            [[f"{r['packet'] // KB}KB" if r['packet'] < MB
              else f"{r['packet'] // MB}MB",
              round(r['star_s'], 2), round(r['ecpipe_s'], 2),
              f"{r['speedup']:.1f}x"] for r in ecp]),
        "\nRegenerating-code trade-off (why the paper picks MSR):",
        format_table(
            ["Code", "Storage", "Repair traffic / lost byte", "alpha"],
            [[t.code, f"{t.storage_overhead * 100:.0f}%",
              round(t.repair_traffic_per_lost_byte, 2), t.sub_packetization]
             for t in msr]),
    ]
    return "\n".join(sections)


def priority_table(prio: PriorityAblation) -> str:
    """The CLI's io-priority addendum to the combined report."""
    return "IO priority lanes during recovery:\n" + format_table(
        ["Recovery priority", "Degraded (ms)"],
        [["background (RCStor)", round(prio.degraded_ms_with_priority)],
         ["foreground (ablated)", round(prio.degraded_ms_without_priority)]])


def compute_partitioning(setting: str = "W1", n_objects: int = 600,
                         seed: int = 0) -> dict:
    """Scenario compute: the two-pass vs greedy comparison."""
    row = two_pass_vs_greedy(setting_by_name(setting), n_objects=n_objects,
                             seed=seed)
    return {"rows": rows_of([row])}


def compute_front_cut(setting: str = "W1", n_objects: int = 600,
                      seed: int = 0) -> dict:
    """Scenario compute: front cut vs padded front."""
    row = front_cut_ablation(setting_by_name(setting), n_objects=n_objects,
                             seed=seed)
    return {"rows": rows_of([row])}


def compute_ecpipe() -> dict:
    """Scenario compute: the analytic ECPipe network model."""
    return {"rows": [{"packet": p, "star_s": s, "ecpipe_s": e, "speedup": sp}
                     for p, s, e, sp in ecpipe_network_model()]}


def compute_msr_mbr() -> dict:
    """Scenario compute: the MSR/MBR/RS storage-repair trade-off."""
    return {"rows": rows_of(msr_vs_mbr_tradeoff())}


def compute_io_priority(setting: str = "W1", n_objects: int = 1000,
                        seed: int = 0) -> dict:
    """Scenario compute: degraded reads during recovery, both lanes."""
    row = io_priority_ablation(setting_by_name(setting), n_objects=n_objects,
                               seed=seed)
    return {"rows": rows_of([row])}


def scenarios(setting: str = "W1",
              n_objects: int | None = None) -> list[Scenario]:
    """One unit per ablation (the DES one dominates the wall-clock)."""
    return [
        scenario(compute_partitioning, name="two-pass", setting=setting,
                 n_objects=n_objects if n_objects is not None else 600),
        scenario(compute_front_cut, name="front-cut", setting=setting,
                 n_objects=n_objects if n_objects is not None else 600),
        scenario(compute_ecpipe, name="ecpipe", seeded=False),
        scenario(compute_msr_mbr, name="msr-mbr", seeded=False),
        scenario(compute_io_priority, name="io-priority", setting=setting,
                 n_objects=n_objects if n_objects is not None else 1000),
    ]


def render(results: list[ExperimentResult]) -> str:
    by_name = {r.name.rsplit("/", 1)[-1]: r for r in results}
    part = typed_rows([by_name["two-pass"]], PartitioningAblation)[0]
    front = typed_rows([by_name["front-cut"]], FrontCutAblation)[0]
    prio = typed_rows([by_name["io-priority"]], PriorityAblation)[0]
    return (render_report(part, front, by_name["ecpipe"].rows,
                          typed_rows([by_name["msr-mbr"]],
                                     RegeneratingTradeoffRow))
            + "\n\n" + priority_table(prio))


def local_regeneration_tradeoff() -> list[RegeneratingTradeoffRow]:
    """§8: composing LRC over Clay buys locality at a storage premium."""
    from repro.codes import ClayCode, LocalRegeneratingCode

    flat = ClayCode(8, 2)
    local = LocalRegeneratingCode(k=8, l=2, local_r=2, g=2)
    chunk_flat = flat.alpha
    chunk_local = local.alpha
    return [
        RegeneratingTradeoffRow(flat.name, flat.storage_overhead,
                                flat.average_repair_read_ratio(chunk_flat),
                                flat.alpha),
        RegeneratingTradeoffRow(
            local.name, local.storage_overhead,
            float(sum(local.repair_plan(f, chunk_local).read_traffic_ratio()
                      for f in range(local.k)) / local.k),
            local.alpha),
    ]

"""Table 4 — comparison of range degraded reads across layouts.

Quantifies the paper's qualitative rows by computing, for a sample of
degraded range reads, the data each layout must *read or repair* relative
to the requested range and to the object:

* Geometric — only chunks overlapping the range (< object size);
* Contiguous — every touched grid chunk, possibly exceeding the object;
* Stripe-Max — the full stripe row, i.e. the whole object's worth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ContiguousLayout, GeometricLayout, StripeMaxLayout
from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    format_table,
    sample_workload,
    setting_by_name,
)
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows

MB = 1 << 20


@dataclass(frozen=True)
class RangeComparisonRow:
    layout: str
    mean_read_over_range: float   # bytes touched per requested byte
    mean_read_over_object: float  # bytes touched per object byte
    can_exceed_object: bool
    pipelining: str


def _touched_bytes(layout_name, placement, offset, length, object_size):
    """Bytes that must be produced to serve [offset, offset+length)."""
    if layout_name == "Stripe-Max":
        # Any missing strip forces a whole-row rebuild.
        return object_size
    touched = 0
    pos = 0
    for chunk in placement.chunks:
        lo, hi = pos, pos + chunk.data_bytes
        if lo < offset + length and hi > offset:
            touched += chunk.stored_bytes
        pos = hi
    return touched


def run(setting: WorkloadSetting = W1_SETTING, n_objects: int = 400,
        seed: int = 0) -> list[RangeComparisonRow]:
    """Run the experiment; returns its result rows."""
    s0 = setting.geo_default_s0
    layouts = [
        ("Geometric", GeometricLayout(s0, 2, setting.max_chunk_size)),
        ("Contiguous", ContiguousLayout(setting.contiguous_variants[0])),
        ("Stripe-Max", StripeMaxLayout(10)),
    ]
    sizes = sample_workload(setting, n_objects, seed)
    rng = np.random.default_rng(seed + 1)
    rows = []
    for name, layout in layouts:
        over_range = []
        over_object = []
        exceed = False
        offset_acc = 0
        for size in sizes:
            size = int(size)
            length = max(1, int(rng.uniform(0, 1) * size))
            offset = int(rng.uniform(0, size - length))
            if name == "Contiguous":
                placement = layout.place(size, start_offset=offset_acc)
                offset_acc += size
            else:
                placement = layout.place(size)
            touched = _touched_bytes(name, placement, offset, length, size)
            over_range.append(touched / length)
            over_object.append(touched / size)
            if touched > size:
                exceed = True
        rows.append(RangeComparisonRow(
            layout=name,
            mean_read_over_range=float(np.mean(over_range)),
            mean_read_over_object=float(np.mean(over_object)),
            can_exceed_object=exceed,
            pipelining={"Geometric": "Sometimes", "Contiguous": "Sometimes",
                        "Stripe-Max": "No"}[name],
        ))
    return rows


def to_text(rows: list[RangeComparisonRow]) -> str:
    """Render the result as a paper-style text table."""
    def classify(r):
        if r.layout == "Stripe-Max":
            return "Equal to object size"
        if r.can_exceed_object:
            return "Possibly larger than object size"
        return "Less than object size"

    return format_table(
        ["Layout", "Read size", "x range", "x object", "Pipelining"],
        [[r.layout, classify(r), round(r.mean_read_over_range, 2),
          round(r.mean_read_over_object, 2), r.pipelining] for r in rows])


def compute(setting: str = "W1", n_objects: int = 400, seed: int = 0) -> dict:
    """Scenario compute: all three layout rows (one cheap analytic pass)."""
    rows = run(setting_by_name(setting), n_objects=n_objects, seed=seed)
    return {"rows": rows_of(rows)}


def scenarios(setting: str = "W1",
              n_objects: int | None = None) -> list[Scenario]:
    return [scenario(compute, name="range-comparison", setting=setting,
                     n_objects=n_objects if n_objects is not None else 500)]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, RangeComparisonRow))

"""traffic-frontier: latency-SLO vs recovery-speed under open-loop load.

The paper's busy experiments fix client concurrency (closed loop), so
offered load can never exceed capacity and the latency cost of repair
interference stays bounded by construction.  This experiment serves an
*open-loop* arrival stream — Poisson arrivals, Zipf object popularity
over the Figure-7 object population, a three-class tenant mix on the
§5.1 priority lanes — while one failed disk recovers under a swept
global repair weight.  Each cell reports, per tenant, the percentile
latencies against the tenant's SLO next to the recovery makespan of the
same run: the latency-SLO-vs-recovery-speed frontier of each scheme.

The sweep crosses arrival rate (comfortable vs near-saturation) with
repair-queue weight (polite vs aggressive recovery) and with hedging
on/off, so three effects are visible in one grid: open-loop tails
exploding with rate, aggressive recovery buying makespan with foreground
p99, and hedged degraded reads clawing tail latency back without
touching the repair weight.

Every cell of one repetition shares a seed group, so all schemes,
weights and hedging settings face literally the same arrival stream and
popularity map — the comparison is over policies, never over draws.

Not part of ``python -m repro.experiments all`` (that set is pinned
byte-for-byte by ``results/expected_all_300.json.gz``; open-loop serving
was added later and would perturb the fixture).  Run it as
``python -m repro.experiments traffic-frontier [--arrival-rate R1,R2]
[--tenants N] [--hedge-ms MS]``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.qos import serve_open_loop
from repro.experiments.common import (
    build_system,
    cluster_config,
    format_table,
    sample_workload,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)
from repro.traffic import (
    DEFAULT_TENANTS,
    TenantSpec,
    build_schedule,
    summarize_slo,
    validate_tenants,
)

#: Geometric partitioning vs the scalar baseline on the striped layout.
SCHEMES = ("Geo-4M", "RS")

#: Mean arrivals per second: comfortable vs near-saturation for the W1
#: population (large objects; the hot end of the Zipf map saturates its
#: disks around a few hundred requests per second).
RATES = (40.0, 160.0)

#: Global recovery weight caps (§5.1): polite vs aggressive repair.  At
#: W1 smoke scale a recovered disk's tasks total ~8-10 weight units per
#: server, so the sweep brackets that: weight 1 serialises each server's
#: recovery reads (one task at a time, via the weight_used == 0 escape)
#: while 512 — the production default — admits the whole backlog at once.
WEIGHTS = (1, 512)

#: Hedge timeout for tenants that allow hedged degraded reads.
DEFAULT_HEDGE_MS = 200.0

DEFAULT_DURATION = 6.0
DEFAULT_ZIPF_ALPHA = 0.9

#: The default tenant mix with SLOs scaled to W1's large objects (a mean
#: read is hundreds of milliseconds idle; the stock defaults target
#: small-object latencies and would render attainment as all-zero).
TENANT_SLO_MS = {"interactive": 2_000.0, "standard": 8_000.0,
                 "batch": 30_000.0}


def frontier_tenants(n_tenants: int | None = None) -> tuple[TenantSpec, ...]:
    """The experiment's tenant mix: the first ``n_tenants`` presets of
    :data:`~repro.traffic.DEFAULT_TENANTS` (shares renormalised), with
    SLOs rescaled for W1 object sizes."""
    presets = DEFAULT_TENANTS
    if n_tenants is not None:
        if not 1 <= n_tenants <= len(presets):
            raise ValueError(f"--tenants must be 1..{len(presets)}")
        presets = presets[:n_tenants]
    total = sum(t.share for t in presets)
    specs = tuple(replace(t, share=t.share / total,
                          slo_ms=TENANT_SLO_MS.get(t.name, t.slo_ms))
                  for t in presets)
    validate_tenants(specs)
    return specs


@dataclass(frozen=True)
class FrontierRow:
    """One tenant's SLO read-out at one (scheme, rate, weight, hedge)
    cell, alongside the cell's recovery outcome."""

    scheme: str
    arrival_rate: float
    repair_weight: int
    hedged: bool
    tenant: str
    lane: int
    slo_ms: float
    n_requests: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    attainment: float
    n_degraded: int
    degraded_p99_ms: float
    # Cell-level (identical across a cell's tenant rows):
    hedges_fired: int
    hedge_wins: int
    recovery_makespan_s: float
    recovery_rate_mbps: float
    offered_requests: int
    drain_time_s: float


def busiest_disk(system) -> int:
    """The disk whose failure degrades the most objects (lowest id wins
    ties) — deterministic, and guarantees the degraded path is exercised
    even for single-disk layouts at small object counts."""
    best, best_count = 0, -1
    for disk in range(system.config.n_disks):
        count = len(system.degraded_read_candidates(disk))
        if count > best_count:
            best, best_count = disk, count
    return best


def compute_cell(scheme: str, arrival_rate: float, repair_weight: int,
                 hedged: bool, tenants: tuple, n_objects: int = 300,
                 duration: float = DEFAULT_DURATION,
                 hedge_ms: float = DEFAULT_HEDGE_MS,
                 zipf_alpha: float = DEFAULT_ZIPF_ALPHA,
                 seed: int = 0) -> dict:
    """Scenario compute: one open-loop serving run at one grid cell."""
    specs = tuple(TenantSpec.from_doc(doc) for doc in tenants)
    ws = setting_by_name("W1")
    system = build_system(scheme, ws, cluster_config(ws, n_objects,
                                                     client_gbps=10.0))
    objects = system.ingest(sample_workload(ws, n_objects, seed))
    schedule = build_schedule(specs, rate=arrival_rate, duration=duration,
                              n_objects=len(objects), seed=seed,
                              zipf_alpha=zipf_alpha)
    report = serve_open_loop(
        system, objects, schedule.times, schedule.tenant_ids,
        schedule.object_ids,
        tuple((t.name, t.lane, t.hedge) for t in specs),
        failed_disk=busiest_disk(system), weight_limit=repair_weight,
        hedge_s=hedge_ms / 1000.0 if hedged else None, seed=seed + 1)
    recovery = report.recovery
    rows = []
    for spec in specs:
        slo = summarize_slo(spec, report.latencies[spec.name],
                            report.degraded[spec.name])
        rows.append(FrontierRow(
            scheme=scheme, arrival_rate=arrival_rate,
            repair_weight=repair_weight, hedged=hedged,
            tenant=slo.tenant, lane=slo.lane, slo_ms=slo.slo_ms,
            n_requests=slo.n_requests, p50_ms=slo.p50_ms,
            p95_ms=slo.p95_ms, p99_ms=slo.p99_ms,
            attainment=slo.attainment, n_degraded=slo.n_degraded,
            degraded_p99_ms=slo.degraded_p99_ms,
            hedges_fired=report.hedges_fired,
            hedge_wins=report.hedge_wins,
            recovery_makespan_s=recovery.makespan,
            recovery_rate_mbps=recovery.recovery_rate / (1 << 20),
            offered_requests=report.n_requests,
            drain_time_s=report.drain_time))
    return {"rows": rows_of(rows),
            "meta": {"n_degraded_candidates": report.n_degraded,
                     "mean_arrivals": schedule.n_requests / duration}}


def scenarios(n_objects: int | None = None,
              rates: tuple[float, ...] | None = None,
              n_tenants: int | None = None,
              hedge_ms: float | None = None,
              duration: float | None = None) -> list[Scenario]:
    n = n_objects if n_objects is not None else 300
    rs = tuple(rates) if rates else RATES
    hs = hedge_ms if hedge_ms is not None else DEFAULT_HEDGE_MS
    dur = duration if duration is not None else DEFAULT_DURATION
    tenants = tuple(t.to_doc() for t in frontier_tenants(n_tenants))
    # One seed group for the whole grid: every scheme, rate, weight and
    # hedge setting faces the same workload, popularity map and arrival
    # draws; the group id mentions none of the swept axes, so widening
    # the sweep never perturbs existing cells.
    group = canonical_json(["traffic-frontier", n, dur, tenants])
    return [
        scenario(compute_cell,
                 name=f"{s}/r{rate:g}/w{weight}/"
                      f"{'hedged' if hedged else 'unhedged'}",
                 seed_group=group, scheme=s, arrival_rate=rate,
                 repair_weight=weight, hedged=hedged, tenants=tenants,
                 n_objects=n, duration=dur, hedge_ms=hs)
        for s in SCHEMES for rate in rs for weight in WEIGHTS
        for hedged in (False, True)]


def render(results: list[ExperimentResult]) -> str:
    rows = typed_rows(results, FrontierRow)
    rows.sort(key=lambda r: (
        SCHEMES.index(r.scheme) if r.scheme in SCHEMES else len(SCHEMES),
        r.arrival_rate, r.repair_weight, r.hedged, r.lane, r.tenant))
    out = []
    for r in rows:
        out.append([
            r.scheme, f"{r.arrival_rate:g}", r.repair_weight,
            "yes" if r.hedged else "no", r.tenant,
            r.n_requests, f"{r.p50_ms:.0f}", f"{r.p99_ms:.0f}",
            f"{r.attainment:.2f}", r.n_degraded,
            f"{r.degraded_p99_ms:.0f}", r.hedges_fired, r.hedge_wins,
            f"{r.recovery_makespan_s:.2f}"])
    table = format_table(
        ["Scheme", "Rate/s", "Weight", "Hedge", "Tenant", "Reqs",
         "p50 (ms)", "p99 (ms)", "SLO att.", "Degr",
         "Degr p99 (ms)", "Hedges", "Wins", "Recovery (s)"],
        out)
    return (table + "\n\nOpen-loop arrivals: tails grow with rate as "
            "queueing becomes real.  Higher repair weight shortens "
            "recovery at a foreground-latency cost; hedged degraded "
            "reads trim degraded p99 without touching the repair "
            "weight.")

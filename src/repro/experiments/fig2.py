"""Figure 2 — Repair patterns of a chunk for Clay(10,4).

For each failed disk, the sub-chunks read from every helper form q**y
contiguous runs of q**(t-1-y) sub-chunks (cases 1-4: blocks of 64/16/4/1).
Regenerated directly from the code's byte-exact repair plans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import ClayCode
from repro.experiments.common import format_table
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows


@dataclass(frozen=True)
class CaseRow:
    case: int
    failed_nodes: list[int]
    runs_per_helper: int
    run_length_subchunks: int
    subchunks_read_per_helper: int
    read_fraction: float


def run(k: int = 10, r: int = 4) -> list[CaseRow]:
    """Run the experiment; returns its result rows."""
    code = ClayCode(k, r)
    chunk = code.alpha  # one byte per sub-chunk
    rows = []
    for case in range(code.t):
        nodes = [n for n in range(code.n) if code.slot_xy(n)[1] == case]
        if not nodes:
            continue
        plan = code.repair_plan(nodes[0], chunk).coalesced()
        helper = plan.helper_nodes[0]
        segs = plan.segments_for_node(helper)
        rows.append(CaseRow(
            case=case + 1,
            failed_nodes=nodes,
            runs_per_helper=len(segs),
            run_length_subchunks=segs[0].length,
            subchunks_read_per_helper=sum(s.length for s in segs),
            read_fraction=sum(s.length for s in segs) / code.alpha,
        ))
    return rows


def to_text(rows: list[CaseRow]) -> str:
    """Render the result as a paper-style text table."""
    def node_names(nodes):
        return ",".join(f"D{n + 1}" if n < 10 else f"P{n - 9}" for n in nodes)

    return format_table(
        ["Case", "Failed disks", "Runs/helper", "Run length", "Read/helper",
         "Fraction"],
        [[r.case, node_names(r.failed_nodes), r.runs_per_helper,
          r.run_length_subchunks, r.subchunks_read_per_helper,
          round(r.read_fraction, 3)] for r in rows])


def compute(k: int = 10, r: int = 4) -> dict:
    """Scenario compute: the Clay repair-pattern cases (deterministic)."""
    return {"rows": rows_of(run(k=k, r=r))}


def scenarios(k: int = 10, r: int = 4) -> list[Scenario]:
    return [scenario(compute, name="repair-patterns", seeded=False, k=k, r=r)]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, CaseRow))


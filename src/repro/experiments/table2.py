"""Table 2 — workload descriptions.

Regenerates the W1/W2 summary statistics from the synthetic samplers and
reports them against the published values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import W1_SETTING, W2_SETTING, format_table
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows
from repro.trace import RequestSampler

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class WorkloadRow:
    name: str
    min_size: int
    max_size: int
    mean_object_size: float
    mean_request_size: float
    n_objects: int
    total_capacity: float
    paper_mean_object: float
    paper_mean_request: float


def run(n_objects: int = 40_000, seed: int = 0) -> list[WorkloadRow]:
    """Run the experiment; returns its result rows."""
    rows = []
    for setting in (W1_SETTING, W2_SETTING):
        w = setting.workload
        sizes = w.sample_sizes(np.random.default_rng(seed), n_objects)
        sampler = RequestSampler(sizes.astype(np.float64), w.mean_request_size)
        rows.append(WorkloadRow(
            name=w.name,
            min_size=int(sizes.min()), max_size=int(sizes.max()),
            mean_object_size=float(sizes.mean()),
            mean_request_size=sampler.mean_request_size,
            n_objects=n_objects,
            total_capacity=float(sizes.sum()),
            paper_mean_object=w.mean_object_size,
            paper_mean_request=w.mean_request_size,
        ))
    return rows


def to_text(rows: list[WorkloadRow]) -> str:
    """Render the result as a paper-style text table."""
    def fmt(x):
        if x >= GB:
            return f"{x / GB:.1f}GB"
        if x >= MB:
            return f"{x / MB:.1f}MB"
        return f"{x / KB:.1f}KB"

    return format_table(
        ["Workload", "Size range", "Avg object (paper)", "Avg request (paper)",
         "#Objects", "Capacity"],
        [[r.name, f"{fmt(r.min_size)}~{fmt(r.max_size)}",
          f"{fmt(r.mean_object_size)} ({fmt(r.paper_mean_object)})",
          f"{fmt(r.mean_request_size)} ({fmt(r.paper_mean_request)})",
          r.n_objects, fmt(r.total_capacity)] for r in rows])


def compute(n_objects: int = 40_000, seed: int = 0) -> dict:
    """Scenario compute: the Table 2 workload statistics."""
    return {"rows": rows_of(run(n_objects=n_objects, seed=seed))}


def scenarios(n_objects: int | None = None) -> list[Scenario]:
    return [scenario(compute, name="workloads",
                     n_objects=n_objects if n_objects is not None else 30_000)]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, WorkloadRow))


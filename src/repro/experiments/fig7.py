"""Figure 7 — trace byte-CDFs (capacity and read traffic).

Generated from the synthetic Alibaba-like trace model; the published
anchors are checked: capacity is dominated by objects above 4 MB (>97.7%),
and read traffic skews right of capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import format_table
from repro.runner import ExperimentResult, Scenario, scenario
from repro.trace import AliTraceModel, RequestSampler, byte_cdf

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass
class TraceCdfs:
    grid: np.ndarray
    capacity_cdf: np.ndarray
    read_traffic_cdf: np.ndarray
    capacity_above_4mb: float


def run(n_objects: int = 100_000, seed: int = 0, points: int = 21) -> TraceCdfs:
    """Run the experiment; returns its result rows."""
    model = AliTraceModel()
    rng = np.random.default_rng(seed)
    sizes = model.sample_sizes(rng, n_objects)
    grid = np.geomspace(4 * KB, 4 * GB, points)
    _, capacity = byte_cdf(sizes, grid=grid)
    # Read traffic: weight each object's bytes by its request rate.
    sampler = RequestSampler(sizes.astype(np.float64), theta=0.25)
    weights = sampler._weights * len(sizes)
    _, traffic = byte_cdf(sizes, grid=grid, weights=weights)
    return TraceCdfs(grid, capacity, traffic,
                     model.capacity_share_above(sizes, 4 * MB))


def to_text(result: TraceCdfs) -> str:
    """Render the result as a paper-style text table."""
    def fmt_size(x):
        if x >= GB:
            return f"{x / GB:.0f}G"
        if x >= MB:
            return f"{x / MB:.0f}M"
        return f"{x / KB:.0f}K"

    rows = [[fmt_size(g), f"{c * 100:.1f}%", f"{t * 100:.1f}%"]
            for g, c, t in zip(result.grid, result.capacity_cdf,
                               result.read_traffic_cdf)]
    table = format_table(["Object size", "Capacity CDF", "Read traffic CDF"], rows)
    return (table + f"\n\nCapacity in objects > 4MB: "
            f"{result.capacity_above_4mb * 100:.1f}% (paper: > 97.7%)")


def compute(n_objects: int = 100_000, points: int = 21, seed: int = 0) -> dict:
    """Scenario compute: the byte-CDF grid as one row per grid point."""
    result = run(n_objects=n_objects, seed=seed, points=points)
    rows = [{"size": float(g), "capacity_cdf": float(c),
             "read_traffic_cdf": float(t)}
            for g, c, t in zip(result.grid, result.capacity_cdf,
                               result.read_traffic_cdf)]
    return {"rows": rows,
            "meta": {"capacity_above_4mb": result.capacity_above_4mb}}


def scenarios(n_objects: int | None = None) -> list[Scenario]:
    return [scenario(compute, name="trace-cdf",
                     n_objects=n_objects if n_objects is not None else 60_000)]


def render(results: list[ExperimentResult]) -> str:
    rows = [row for r in results for row in r.rows]
    result = TraceCdfs(
        grid=np.array([r["size"] for r in rows]),
        capacity_cdf=np.array([r["capacity_cdf"] for r in rows]),
        read_traffic_cdf=np.array([r["read_traffic_cdf"] for r in rows]),
        capacity_above_4mb=results[0].meta["capacity_above_4mb"])
    return to_text(result)

"""Table 3 — disk and network bandwidth (MB/s) during recovery.

Derived from the same recovery runs as Figures 9/10: average bytes moved
per disk (reads + writes) and received per node over the recovery makespan.
"""

from __future__ import annotations

from repro.experiments import tradeoff
from repro.experiments.common import WorkloadSetting, format_table
from repro.experiments.tradeoff import TradeoffResult, run as run_tradeoff
from repro.runner import ExperimentResult, Scenario

MB = 1 << 20


def run(setting: WorkloadSetting, n_objects: int | None = None,
        schemes: list[str] | None = None, seed: int = 0) -> TradeoffResult:
    """Run the experiment; returns its result rows."""
    return run_tradeoff(setting, n_objects=n_objects, schemes=schemes,
                        include_busy=False, n_requests=4, seed=seed)


def to_text(result: TradeoffResult) -> str:
    """Render the result as a paper-style text table."""
    rows = [[r.scheme, round(r.disk_bandwidth / MB, 1),
             round(r.network_bandwidth / MB, 1)] for r in result.results]
    return (f"[{result.setting_name}]\n"
            + format_table(["Scheme", "Disk (MB/s)", "Network (MB/s)"], rows))


def scenarios(setting: str, n_objects: int | None = None,
              schemes: list[str] | None = None) -> list[Scenario]:
    """Same recovery grid as Figures 9/10, but without busy reruns."""
    return tradeoff.scenarios(setting, n_objects=n_objects, n_requests=4,
                              schemes=schemes, include_busy=False)


def render(results: list[ExperimentResult]) -> str:
    return to_text(tradeoff.from_results(results))

"""Table 5 — layout comparison summary.

The paper's closing table, regenerated from measurements: chunk-size class,
pipelining efficiency (measured on degraded reads), read amplification
(from placements), and recovery disk throughput class (from the tradeoff
runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)

MB = 1 << 20


@dataclass(frozen=True)
class LayoutSummaryRow:
    layout: str
    chunk_size_class: str
    pipelining_efficiency: float
    read_amplification: float
    recovery_disk_bandwidth: float


def _scheme_for(layout_name: str, setting: WorkloadSetting) -> str:
    return {
        "Geometric": f"Geo-{'4M' if setting.name == 'W1' else '128K'}",
        "Stripe": "Stripe",
        "Contiguous": f"Con-{'64M' if setting.name == 'W1' else '512K'}",
    }[layout_name]


LAYOUT_NAMES = ("Geometric", "Stripe", "Contiguous")


def _measure_layout(layout_name: str, setting: WorkloadSetting,
                    n_objects: int, n_requests: int,
                    seed: int) -> LayoutSummaryRow:
    """One summary row.  The workload sample and request targets depend
    only on (setting, n_objects, seed), so per-layout units reproduce the
    monolithic loop exactly."""
    sizes = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    targets = request_size_targets(setting, sizes, n_requests, seed + 1)
    system = build_system(_scheme_for(layout_name, setting), setting, config)
    system.ingest(sizes)
    requests = nearest_candidates(system.catalog.objects, targets)
    degraded = system.measure_degraded_reads(requests, None)
    efficiency = float(np.mean(
        [1.0 - r.total_time / (r.repair_time + r.transfer_time)
         for r in degraded if r.repair_time + r.transfer_time > 0]))
    amplification = float(np.mean(
        [system.catalog.placement_of(o, 0).read_amplification
         for o in requests]))
    report = system.run_recovery(0)
    if layout_name == "Geometric":
        chunk_class = "Small -> Large"
    elif layout_name == "Stripe":
        chunk_class = "Small"
    else:
        chunk_class = "Large"
    return LayoutSummaryRow(
        layout=layout_name,
        chunk_size_class=chunk_class,
        pipelining_efficiency=efficiency,
        read_amplification=amplification,
        recovery_disk_bandwidth=report.disk_bandwidth,
    )


def run(setting: WorkloadSetting = W1_SETTING, n_objects: int = 1200,
        n_requests: int = 15, seed: int = 0) -> list[LayoutSummaryRow]:
    """Run the experiment; returns its result rows."""
    return [_measure_layout(name, setting, n_objects, n_requests, seed)
            for name in LAYOUT_NAMES]


def to_text(rows: list[LayoutSummaryRow]) -> str:
    """Render the result as a paper-style text table."""
    def pipe_label(e):
        return "Efficient" if e > 0.2 else ("Medium" if e > 0.05 else
                                            "Not efficient")

    def amp_label(a):
        return "No" if a < 1.05 else ("Medium" if a < 2 else "Severe")

    bw_values = sorted(r.recovery_disk_bandwidth for r in rows)

    def bw_label(b):
        if b >= bw_values[-1] * 0.99:
            return "High"
        if b <= bw_values[0] * 1.01:
            return "Low"
        return "Medium"

    return format_table(
        ["Layout", "Chunk size", "Pipelining", "Read amplification",
         "Disk throughput for recovery"],
        [[r.layout, r.chunk_size_class,
          f"{pipe_label(r.pipelining_efficiency)} ({r.pipelining_efficiency * 100:.0f}%)",
          f"{amp_label(r.read_amplification)} ({r.read_amplification:.2f}x)",
          f"{bw_label(r.recovery_disk_bandwidth)} "
          f"({r.recovery_disk_bandwidth / MB:.0f} MB/s)"] for r in rows])


def compute_layout(layout: str, setting: str = "W1", n_objects: int = 1200,
                   n_requests: int = 15, seed: int = 0) -> dict:
    """Scenario compute: one layout's summary row."""
    row = _measure_layout(layout, setting_by_name(setting), n_objects,
                          n_requests, seed)
    return {"rows": rows_of([row])}


def scenarios(setting: str = "W1",
              n_objects: int | None = None) -> list[Scenario]:
    n = n_objects if n_objects is not None else 1200
    group = canonical_json(["table5", setting, n])
    return [scenario(compute_layout, name=name.lower(), seed_group=group,
                     layout=name, setting=setting, n_objects=n)
            for name in LAYOUT_NAMES]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, LayoutSummaryRow))

"""Table 5 — layout comparison summary.

The paper's closing table, regenerated from measurements: chunk-size class,
pipelining efficiency (measured on degraded reads), read amplification
(from placements), and recovery disk throughput class (from the tradeoff
runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
)

MB = 1 << 20


@dataclass(frozen=True)
class LayoutSummaryRow:
    layout: str
    chunk_size_class: str
    pipelining_efficiency: float
    read_amplification: float
    recovery_disk_bandwidth: float


def run(setting: WorkloadSetting = W1_SETTING, n_objects: int = 1200,
        n_requests: int = 15, seed: int = 0) -> list[LayoutSummaryRow]:
    """Run the experiment; returns its result rows."""
    schemes = {
        "Geometric": f"Geo-{'4M' if setting.name == 'W1' else '128K'}",
        "Stripe": "Stripe",
        "Contiguous": f"Con-{'64M' if setting.name == 'W1' else '512K'}",
    }
    sizes = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    targets = request_size_targets(setting, sizes, n_requests, seed + 1)
    rows = []
    for layout_name, scheme in schemes.items():
        system = build_system(scheme, setting, config)
        system.ingest(sizes)
        requests = nearest_candidates(system.catalog.objects, targets)
        degraded = system.measure_degraded_reads(requests, None)
        efficiency = float(np.mean(
            [1.0 - r.total_time / (r.repair_time + r.transfer_time)
             for r in degraded if r.repair_time + r.transfer_time > 0]))
        amplification = float(np.mean(
            [system.catalog.placement_of(o, 0).read_amplification
             for o in requests]))
        report = system.run_recovery(0)
        if layout_name == "Geometric":
            chunk_class = "Small -> Large"
        elif layout_name == "Stripe":
            chunk_class = "Small"
        else:
            chunk_class = "Large"
        rows.append(LayoutSummaryRow(
            layout=layout_name,
            chunk_size_class=chunk_class,
            pipelining_efficiency=efficiency,
            read_amplification=amplification,
            recovery_disk_bandwidth=report.disk_bandwidth,
        ))
    return rows


def to_text(rows: list[LayoutSummaryRow]) -> str:
    """Render the result as a paper-style text table."""
    def pipe_label(e):
        return "Efficient" if e > 0.2 else ("Medium" if e > 0.05 else
                                            "Not efficient")

    def amp_label(a):
        return "No" if a < 1.05 else ("Medium" if a < 2 else "Severe")

    bw_values = sorted(r.recovery_disk_bandwidth for r in rows)

    def bw_label(b):
        if b >= bw_values[-1] * 0.99:
            return "High"
        if b <= bw_values[0] * 1.01:
            return "Low"
        return "Medium"

    return format_table(
        ["Layout", "Chunk size", "Pipelining", "Read amplification",
         "Disk throughput for recovery"],
        [[r.layout, r.chunk_size_class,
          f"{pipe_label(r.pipelining_efficiency)} ({r.pipelining_efficiency * 100:.0f}%)",
          f"{amp_label(r.read_amplification)} ({r.read_amplification:.2f}x)",
          f"{bw_label(r.recovery_disk_bandwidth)} "
          f"({r.recovery_disk_bandwidth / MB:.0f} MB/s)"] for r in rows])

"""§6.2 headline claims.

* W1: Clay+Geo recovers at ~1.73 GB/s — 1.85x RS, 1.30x LRC;
* W1: average degraded read time ~1.02x normal read time;
* W2: Clay+Geo recovery 2.01x RS.

Ratios are computed per *byte repaired* so that small bookkeeping
differences in per-scheme parity estimates cancel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import tradeoff
from repro.experiments.common import W1_SETTING, W2_SETTING, format_table
from repro.experiments.tradeoff import TradeoffResult, run as run_tradeoff
from repro.runner import ExperimentResult, Scenario

GB = 1 << 30


@dataclass
class HeadlineResult:
    w1_recovery_rate: float         # bytes/s
    w1_vs_rs: float                 # per-byte recovery speedup over RS
    w1_vs_lrc: float
    w2_vs_rs: float
    degraded_over_normal: float     # W1, Geo default scheme, idle


def _per_byte(result: TradeoffResult, scheme: str) -> float:
    r = result.by_scheme(scheme)
    return r.recovery_time / r.repaired_bytes


def run(w1: TradeoffResult | None = None, w2: TradeoffResult | None = None,
        n_objects_w1: int = 3000, n_objects_w2: int = 40_000,
        seed: int = 0) -> HeadlineResult:
    """Run the experiment; returns its result rows."""
    geo_w1 = "Geo-4M"
    geo_w2 = "Geo-128K"
    if w1 is None:
        w1 = run_tradeoff(W1_SETTING, n_objects=n_objects_w1, include_busy=False,
                          schemes=[geo_w1, "RS", "LRC"], seed=seed)
    if w2 is None:
        w2 = run_tradeoff(W2_SETTING, n_objects=n_objects_w2, include_busy=False,
                          schemes=[geo_w2, "RS"], seed=seed)
    geo = w1.by_scheme(geo_w1)
    return HeadlineResult(
        w1_recovery_rate=geo.recovery_rate,
        w1_vs_rs=_per_byte(w1, "RS") / _per_byte(w1, geo_w1),
        w1_vs_lrc=_per_byte(w1, "LRC") / _per_byte(w1, geo_w1),
        w2_vs_rs=_per_byte(w2, "RS") / _per_byte(w2, geo_w2),
        degraded_over_normal=geo.degraded_ms / geo.normal_ms,
    )


def to_text(r: HeadlineResult) -> str:
    """Render the result as a paper-style text table."""
    rows = [
        ["W1 Clay+Geo recovery rate", f"{r.w1_recovery_rate / GB:.2f} GB/s",
         "1.73 GB/s"],
        ["W1 recovery speedup vs RS", f"{r.w1_vs_rs:.2f}x", "1.85x"],
        ["W1 recovery speedup vs LRC", f"{r.w1_vs_lrc:.2f}x", "1.30x"],
        ["W2 recovery speedup vs RS", f"{r.w2_vs_rs:.2f}x", "2.01x"],
        ["W1 degraded read / normal read", f"{r.degraded_over_normal:.2f}x",
         "1.02x"],
    ]
    return format_table(["Metric", "Measured", "Paper"], rows)


def scenarios(n_objects_w1: int | None = None,
              n_objects_w2: int | None = None) -> list[Scenario]:
    """The W1 and W2 tradeoff units the headline ratios derive from.

    These are :func:`tradeoff.compute_scheme` units, so a prior ``fig9`` /
    ``fig10`` run at matching scale serves them straight from cache.
    """
    w1 = tradeoff.scenarios(
        "W1", n_objects=n_objects_w1 if n_objects_w1 is not None else 3000,
        schemes=["Geo-4M", "RS", "LRC"], include_busy=False)
    w2 = tradeoff.scenarios(
        "W2", n_objects=n_objects_w2 if n_objects_w2 is not None else 40_000,
        schemes=["Geo-128K", "RS"], include_busy=False)
    return ([s.prefixed("w1") for s in w1] + [s.prefixed("w2") for s in w2])


def render(results: list[ExperimentResult]) -> str:
    by_setting: dict[str, list[ExperimentResult]] = {}
    for r in results:
        by_setting.setdefault(r.meta["setting"], []).append(r)
    w1 = tradeoff.from_results(by_setting["W1"])
    w2 = tradeoff.from_results(by_setting["W2"])
    return to_text(run(w1=w1, w2=w2))

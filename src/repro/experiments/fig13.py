"""Figure 13 — pipelining benefit by client bandwidth.

Average transfer, repair, and degraded-read time of the default Geometric
scheme at 1/2/4 Gbps client links.  The degraded read time should track the
transfer time when the client link is slow and the repair time when it is
fast, with pipelining saving 23.4-35.9% versus unpipelined repair+transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)


@dataclass(frozen=True)
class BandwidthRow:
    client_gbps: float
    transfer_ms: float
    repair_ms: float
    degraded_ms: float
    pipelining_saving: float  # 1 - degraded / (repair + transfer)


def run(setting: WorkloadSetting = W1_SETTING,
        bandwidths: tuple[float, ...] = (1.0, 2.0, 4.0),
        scheme: str | None = None, n_objects: int = 1500,
        n_requests: int = 25, seed: int = 0) -> list[BandwidthRow]:
    """Run the experiment; returns its result rows."""
    scheme = scheme or f"Geo-{'4M' if setting.name == 'W1' else '128K'}"
    sizes = sample_workload(setting, n_objects, seed)
    targets = request_size_targets(setting, sizes, n_requests, seed + 1)
    rows: list[BandwidthRow] = []
    for gbps in bandwidths:
        config = cluster_config(setting, n_objects, client_gbps=gbps)
        system = build_system(scheme, setting, config)
        system.ingest(sizes)
        requests = nearest_candidates(system.catalog.objects, targets)
        results = system.measure_degraded_reads(requests, None)
        transfer = float(np.mean([r.transfer_time for r in results]))
        repair = float(np.mean([r.repair_time for r in results]))
        total = float(np.mean([r.total_time for r in results]))
        rows.append(BandwidthRow(
            client_gbps=gbps,
            transfer_ms=1000 * transfer,
            repair_ms=1000 * repair,
            degraded_ms=1000 * total,
            pipelining_saving=1.0 - total / (repair + transfer)
            if repair + transfer else 0.0,
        ))
    return rows


def to_text(rows: list[BandwidthRow]) -> str:
    """Render the result as a paper-style text table."""
    return format_table(
        ["Client bw", "Transfer (ms)", "Repair (ms)", "Degraded (ms)",
         "Pipelining saving"],
        [[f"{r.client_gbps:.0f}Gbps", round(r.transfer_ms), round(r.repair_ms),
          round(r.degraded_ms), f"{r.pipelining_saving * 100:.1f}%"]
         for r in rows])


def compute_bandwidth(setting: str, gbps: float, n_objects: int = 1500,
                      n_requests: int = 25, seed: int = 0) -> dict:
    """Scenario compute: one client-bandwidth grid point."""
    rows = run(setting_by_name(setting), bandwidths=(gbps,),
               n_objects=n_objects, n_requests=n_requests, seed=seed)
    return {"rows": rows_of(rows)}


def scenarios(setting: str = "W1", n_objects: int | None = None,
              bandwidths: tuple[float, ...] = (1.0, 2.0, 4.0)) -> list[Scenario]:
    n = n_objects if n_objects is not None else 1500
    group = canonical_json(["fig13", setting, n])
    return [scenario(compute_bandwidth, name=f"{gbps:.0f}gbps",
                     seed_group=group, setting=setting, gbps=gbps, n_objects=n)
            for gbps in bandwidths]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, BandwidthRow))

"""Chaos experiments: repair behaviour under injected faults.

Two experiments built on :mod:`repro.faults`:

* **chaos-tail** — degraded-read tail latency (p50/p99) versus straggler
  severity, across schemes.  Pipelined schemes (Geometric/Contiguous)
  funnel every chunk repair through the straggling helpers, so their p99
  degrades with severity until the hedge timeout starts routing retries
  around the slow disks; striped schemes show the same effect through
  their batched reads.
* **chaos-recovery** — the recovery timeline when a second disk of an
  affected placement group dies at 50% progress.  Affected tasks escalate
  to the multi-failure decode path; the report's requeue / escalate /
  abandon counters and the task-conservation invariant show that no task
  is lost.

Both accept an explicit fault plan (CLI ``--faults plan.json``), and
chaos-tail's straggler grid can be overridden with ``--straggler``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    setting_by_name,
)
from repro.faults import FaultEvent, FaultPlan
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)

#: Schemes contrasted under chaos: pipelined repair (Geometric,
#: Contiguous) versus striped rebuilds (Stripe = Clay, RS).
TAIL_SCHEMES = ("Geo-4M", "Con-64M", "Stripe", "RS")
RECOVERY_SCHEMES = ("Geo-4M", "Con-64M", "Stripe", "RS")

#: Straggler slow-factors swept by chaos-tail (1 = fault-free baseline).
STRAGGLER_FACTORS = (1.0, 4.0, 16.0)

#: Hedge timeout armed for faulted measurements, in seconds.  Roughly 4x
#: the W1 p50 helper-read time: rarely fires fault-free, quickly routes
#: around a 4x straggler.
HELPER_TIMEOUT = 0.05


@dataclass(frozen=True)
class TailRow:
    scheme: str
    straggler_factor: float
    p50_ms: float
    p99_ms: float
    hedged: bool


@dataclass(frozen=True)
class SecondFailureRow:
    scheme: str
    makespan_s: float
    baseline_s: float  # same recovery without the second failure
    slowdown: float
    tasks_escalated: int
    tasks_requeued: int
    tasks_abandoned: int


def _tail_plan(config, factor: float, seed: int,
               faults: dict | None) -> FaultPlan:
    """The fault plan for one chaos-tail grid point."""
    if faults is not None:
        return FaultPlan.from_doc(faults)
    if factor <= 1.0:
        return FaultPlan()
    return FaultPlan.random_stragglers(
        config.n_disks, fraction=0.1, factor=factor, seed=seed + 17,
        helper_timeout=HELPER_TIMEOUT)


def compute_tail(setting: str, scheme: str, factor: float,
                 n_objects: int = 1000, n_requests: int = 40,
                 faults: dict | None = None, seed: int = 0) -> dict:
    """Scenario compute: one (scheme, straggler severity) grid point."""
    ws = setting_by_name(setting)
    sizes = sample_workload(ws, n_objects, seed)
    targets = request_size_targets(ws, sizes, n_requests, seed + 1)
    config = cluster_config(ws, n_objects)
    system = build_system(scheme, ws, config)
    system.ingest(sizes)
    requests = nearest_candidates(system.catalog.objects, targets)
    plan = _tail_plan(config, factor, seed, faults)
    results = system.measure_degraded_reads(requests, None, seed=seed + 2,
                                            faults=plan)
    times_ms = 1000 * np.array([r.total_time for r in results])
    row = TailRow(
        scheme=scheme,
        straggler_factor=factor,
        p50_ms=float(np.percentile(times_ms, 50)),
        p99_ms=float(np.percentile(times_ms, 99)),
        hedged=plan.helper_timeout is not None,
    )
    return {"rows": rows_of([row])}


#: Per-server weight cap used by chaos-recovery.  The default global cap
#: dispatches every task up front at these scales, so a mid-run failure
#: would find nothing queued; throttling keeps the queue populated until
#: the second failure lands — the regime the escalation path is for.
RECOVERY_WEIGHT_LIMIT = 8


def _pg_buddy(system, disk: int) -> int:
    """The disk sharing the most placement groups with ``disk`` — a second
    failure there hits the largest share of recovery tasks."""
    shared = Counter(d for pg in system.cluster.pgs if disk in pg
                     for d in pg.disk_ids if d != disk)
    return max(sorted(shared), key=shared.__getitem__)


def compute_second_failure(setting: str, scheme: str, n_objects: int = 1000,
                           faults: dict | None = None,
                           seed: int = 0) -> dict:
    """Scenario compute: recovery of disk 0 with a second failure at 50%
    progress (a PG-sharing disk, so tasks actually escalate)."""
    ws = setting_by_name(setting)
    sizes = sample_workload(ws, n_objects, seed)
    config = cluster_config(ws, n_objects)
    system = build_system(scheme, ws, config)
    system.ingest(sizes)
    failed_disk = 0
    baseline = system.run_recovery(failed_disk, seed=seed + 1,
                                   weight_limit=RECOVERY_WEIGHT_LIMIT)
    if faults is not None:
        plan = FaultPlan.from_doc(faults)
    else:
        # Crash the heaviest PG-sharing buddy halfway through the
        # baseline timeline: a timed event, so it lands mid-read even for
        # schemes whose completed-weight progress is back-loaded.
        plan = FaultPlan(events=(
            FaultEvent("disk_crash", at=0.5 * baseline.makespan,
                       disk=_pg_buddy(system, failed_disk)),))
    report = system.run_recovery(failed_disk, seed=seed + 1,
                                 weight_limit=RECOVERY_WEIGHT_LIMIT,
                                 faults=plan)
    row = SecondFailureRow(
        scheme=scheme,
        makespan_s=report.makespan,
        baseline_s=baseline.makespan,
        slowdown=(report.makespan / baseline.makespan
                  if baseline.makespan else 0.0),
        tasks_escalated=report.tasks_escalated,
        tasks_requeued=report.tasks_requeued,
        tasks_abandoned=report.tasks_abandoned,
    )
    return {"rows": rows_of([row])}


def tail_scenarios(setting: str = "W1", n_objects: int | None = None,
                   n_requests: int | None = None,
                   factors: tuple[float, ...] | None = None,
                   faults: dict | None = None) -> list[Scenario]:
    n = n_objects if n_objects is not None else 1000
    reqs = n_requests if n_requests is not None else 40
    grid = factors if factors is not None else STRAGGLER_FACTORS
    group = canonical_json(["chaos-tail", setting, n, reqs])
    return [scenario(compute_tail, name=f"{s}@x{f:g}", seed_group=group,
                     setting=setting, scheme=s, factor=f, n_objects=n,
                     n_requests=reqs, faults=faults)
            for s in TAIL_SCHEMES for f in grid]


def second_failure_scenarios(setting: str = "W1",
                             n_objects: int | None = None,
                             faults: dict | None = None) -> list[Scenario]:
    n = n_objects if n_objects is not None else 1000
    group = canonical_json(["chaos-recovery", setting, n])
    return [scenario(compute_second_failure, name=s, seed_group=group,
                     setting=setting, scheme=s, n_objects=n, faults=faults)
            for s in RECOVERY_SCHEMES]


def render_tail(results: list[ExperimentResult]) -> str:
    rows = typed_rows(results, TailRow)
    return format_table(
        ["Scheme", "Straggler", "p50 (ms)", "p99 (ms)", "Hedged"],
        [[r.scheme,
          "none" if r.straggler_factor <= 1.0 else f"x{r.straggler_factor:g}",
          round(r.p50_ms), round(r.p99_ms),
          "yes" if r.hedged else "no"]
         for r in rows])


def render_second_failure(results: list[ExperimentResult]) -> str:
    rows = typed_rows(results, SecondFailureRow)
    return format_table(
        ["Scheme", "Makespan (s)", "Baseline (s)", "Slowdown",
         "Escalated", "Requeued", "Abandoned"],
        [[r.scheme, f"{r.makespan_s:.2f}", f"{r.baseline_s:.2f}",
          f"{r.slowdown:.2f}x", r.tasks_escalated, r.tasks_requeued,
          r.tasks_abandoned]
         for r in rows])

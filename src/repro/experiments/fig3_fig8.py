"""Figures 3 and 8 — the pipelining illustrations, computed.

Figure 3 contrasts RS (byte-granular repair: transfer starts immediately)
with a regenerating code at one large chunk (transfer blocked by the whole
repair).  Figure 8 shows Geometric Partitioning's two regimes: repair
faster than transfer (perfect overlap) and repair slower (bounded
blocking).  Both are rendered from the same pipeline model the simulator
uses, so the illustrations are *measured*, not drawn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import GeometricPartitioner
from repro.core.pipeline import (
    PipelineStep,
    degraded_read_time,
    pipeline_timeline,
    unpipelined_read_time,
)

MB = 1 << 20
CLIENT_BW = 125 * MB


@dataclass(frozen=True)
class PipelineCase:
    name: str
    chunk_sizes: list[int]
    repair_bw: float
    total_ms: float
    serial_ms: float
    saving: float
    timeline: list


def _case(name: str, chunk_sizes: list[int], repair_bw: float) -> PipelineCase:
    steps = [PipelineStep(size / repair_bw, size / CLIENT_BW,
                          f"{size // MB}MB") for size in chunk_sizes]
    total = degraded_read_time(steps)
    serial = unpipelined_read_time(steps)
    return PipelineCase(name, chunk_sizes, repair_bw, 1000 * total,
                        1000 * serial, 1.0 - total / serial,
                        pipeline_timeline(steps))


def run(object_size: int = 64 * MB, s0: int = 4 * MB) -> list[PipelineCase]:
    """Run the experiment; returns its result rows."""
    geometric = [c.size for c in
                 GeometricPartitioner(s0, 2).partition(object_size).chunks()]
    fine = [256 * 1024] * (object_size // (256 * 1024))
    return [
        # Figure 3: RS repairs at byte/strip granularity vs one huge chunk.
        _case("Fig3: RS (fine-grained)", fine, 200 * MB),
        _case("Fig3: regenerating, one chunk", [object_size], 200 * MB),
        # Figure 8: geometric chunks, repair faster / slower than transfer.
        _case("Fig8 case 1: repair outpaces transfer", geometric, 250 * MB),
        _case("Fig8 case 2: transfer blocked by repair", geometric, 80 * MB),
    ]


def to_text(cases: list[PipelineCase]) -> str:
    """Render the result as a paper-style text table."""
    lines = []
    scale = max(c.total_ms for c in cases)
    for case in cases:
        lines.append(f"{case.name}: {case.total_ms:.0f} ms "
                     f"(unpipelined {case.serial_ms:.0f} ms, "
                     f"saves {case.saving * 100:.0f}%)")
        if len(case.timeline) <= 8:
            for step in case.timeline:
                r0 = int(50 * step.repair_start * 1000 / scale)
                r1 = max(r0 + 1, int(50 * step.repair_end * 1000 / scale))
                t1 = max(r1 + 1, int(50 * step.transfer_end * 1000 / scale))
                bar = " " * r0 + "R" * (r1 - r0) + "t" * (t1 - r1)
                lines.append(f"    {step.label:>6s} |{bar}")
        lines.append("")
    return "\n".join(lines)

"""§6.3 "Degraded Read Time for Range Access" (and Table 4's measurements).

Random offset, uniformly-distributed length (mean = half the object), on
degraded objects.  Paper: Geo-4M range reads take 67.6% of Con-16M's time
and 55.3% of Stripe-Max's on W1; 68.1% / 66.2% on W2 (for Geo-128K vs
Con-128K / Stripe-Max).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    build_system,
    cluster_config,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    format_table,
    setting_by_name,
)
from repro.runner import ExperimentResult, Scenario, canonical_json, scenario

MB = 1 << 20


@dataclass(frozen=True)
class RangeRow:
    scheme: str
    mean_range_ms: float
    ratio_to_geo: float
    mean_range_ms_busy: float
    ratio_to_geo_busy: float


def default_schemes(setting: WorkloadSetting) -> list[str]:
    """The scheme labels this experiment compares."""
    geo = f"Geo-{'4M' if setting.name == 'W1' else '128K'}"
    con = f"Con-{'16M' if setting.name == 'W1' else '128K'}"
    return [geo, con, "Stripe-Max"]


def _measure_scheme(scheme: str, setting: WorkloadSetting, n_objects: int,
                    n_requests: int, seed: int) -> tuple[float, float]:
    """Mean idle/busy range degraded-read time (s) for one scheme.

    The range sample depends only on (setting, n_objects, n_requests,
    seed), so per-scheme units reproduce the monolithic loop exactly.
    """
    sizes = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    targets = request_size_targets(setting, sizes, n_requests, seed + 1)
    rng = np.random.default_rng(seed + 2)
    range_fracs = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in targets]
    system = build_system(scheme, setting, config)
    system.ingest(sizes)
    requests = nearest_candidates(system.catalog.objects, targets)
    ranges = []
    for obj, (f_len, f_off) in zip(requests, range_fracs):
        length = max(1, int(f_len * obj.size))
        offset = int(f_off * (obj.size - length))
        ranges.append((offset, length))
    results = system.measure_degraded_reads(requests, None, ranges=ranges)
    busy = system.measure_degraded_reads(requests, None, ranges=ranges,
                                         busy=True, seed=seed + 3)
    return (float(np.mean([r.total_time for r in results])),
            float(np.mean([r.total_time for r in busy])))


def _rows_from_means(schemes: list[str], means: dict[str, float],
                     means_busy: dict[str, float]) -> list[RangeRow]:
    geo = schemes[0]
    return [RangeRow(s, 1000 * means[s], means[geo] / means[s],
                     1000 * means_busy[s], means_busy[geo] / means_busy[s])
            for s in schemes]


def run(setting: WorkloadSetting = W1_SETTING,
        schemes: list[str] | None = None, n_objects: int = 1500,
        n_requests: int = 30, seed: int = 0) -> list[RangeRow]:
    """Run the experiment; returns its result rows."""
    schemes = schemes or default_schemes(setting)
    means: dict[str, float] = {}
    means_busy: dict[str, float] = {}
    for scheme in schemes:
        means[scheme], means_busy[scheme] = _measure_scheme(
            scheme, setting, n_objects, n_requests, seed)
    return _rows_from_means(schemes, means, means_busy)


def to_text(rows: list[RangeRow]) -> str:
    """Render the result as a paper-style text table."""
    return format_table(
        ["Scheme", "Idle (ms)", "Geo as % (idle)", "Busy (ms)",
         "Geo as % (busy)"],
        [[r.scheme, round(r.mean_range_ms, 2), f"{r.ratio_to_geo * 100:.1f}%",
          round(r.mean_range_ms_busy, 2), f"{r.ratio_to_geo_busy * 100:.1f}%"]
         for r in rows])


def compute_scheme(setting: str, scheme: str, n_objects: int = 1500,
                   n_requests: int = 30, seed: int = 0) -> dict:
    """Scenario compute: one scheme's raw idle/busy means (seconds).

    Ratios against the Geo baseline are cross-unit and therefore computed
    in :func:`render`, not here.
    """
    mean, mean_busy = _measure_scheme(scheme, setting_by_name(setting),
                                      n_objects, n_requests, seed)
    return {"rows": [{"scheme": scheme, "mean_s": mean,
                      "mean_busy_s": mean_busy}]}


def scenarios(setting: str = "W1", n_objects: int | None = None,
              schemes: list[str] | None = None) -> list[Scenario]:
    names = schemes or default_schemes(setting_by_name(setting))
    n = n_objects if n_objects is not None else 1200
    group = canonical_json(["range_access", setting, n])
    return [scenario(compute_scheme, name=s, seed_group=group,
                     setting=setting, scheme=s, n_objects=n)
            for s in names]


def render(results: list[ExperimentResult]) -> str:
    schemes = [r.rows[0]["scheme"] for r in results]
    means = {r.rows[0]["scheme"]: r.rows[0]["mean_s"] for r in results}
    means_busy = {r.rows[0]["scheme"]: r.rows[0]["mean_busy_s"]
                  for r in results}
    return to_text(_rows_from_means(schemes, means, means_busy))

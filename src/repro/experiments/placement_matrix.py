"""placement-matrix: placement policy × scheme under an oversubscribed fabric.

The paper's testbed is one rack where "the network is not the bottleneck
for recovery"; at fleet scale repair competes for ToR uplinks and an
oversubscribed aggregation layer, and *where stripes live* decides how
much repair traffic crosses racks.  This experiment runs each placement
policy (:mod:`repro.cluster.placement`) against representative schemes on
a 32-node, 8-rack cluster with 4:1 oversubscription and measures:

* degraded-read latency (p50/p99) — the client-visible cost,
* full-disk recovery makespan and rate — the durability-restoring path,
* cross-rack repair traffic (aggregation-link and ToR bytes) — the fleet
  constraint the policies trade against.

``rack_aware`` packs each stripe into the fewest racks its per-rack chunk
cap allows, so most helper reads stay behind one ToR and its aggregated
repair bytes undercut ``flat_random``, which scatters helpers over nearly
every rack.  ``copyset`` keeps flat-style spans but a far smaller set of
fatal failure combinations.

Not part of ``python -m repro.experiments all`` (that set is pinned
byte-for-byte by ``results/expected_all_300.json.gz``); run it as
``python -m repro.experiments placement-matrix [--policies a,b]``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.common import (
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)

MB = 1 << 20

#: Pipelined regenerating repair vs the classic RS rebuild.
SCHEMES = ("Geo-4M", "RS")

#: Every registered policy, in presentation order.
POLICIES = ("flat_random", "rack_aware", "copyset")

#: The tiered testbed: 8 racks of 4 nodes, 10 Gbps ToR uplinks, and an
#: aggregation layer oversubscribed 4:1 (agg capacity = 20 Gbps for 80
#: Gbps of ToR uplink) — the regime where cross-rack bytes are scarce.
N_RACKS = 8
NODES_PER_RACK = 4
TOR_GBPS = 10.0
OVERSUBSCRIPTION = 4.0


@dataclass(frozen=True)
class PlacementRow:
    scheme: str
    policy: str
    rack_span_mean: float    # mean racks touched per PG
    read_p50_ms: float
    read_p99_ms: float
    recovery_s: float
    recovery_rate_mbs: float
    repaired_mb: float
    cross_rack_mb: float     # bytes through the aggregation link
    tor_mb: float            # bytes through ToR uplinks


def tiered_config(setting, n_objects: int, policy: str):
    """The W-setting cluster rescaled onto the tiered 32-node testbed."""
    base = cluster_config(setting, n_objects)
    return replace(base, n_nodes=2 * base.n_nodes, n_racks=N_RACKS,
                   nodes_per_rack=NODES_PER_RACK, tor_gbps=TOR_GBPS,
                   oversubscription=OVERSUBSCRIPTION, placement=policy)


def compute_placement(setting: str, scheme: str, policy: str,
                      n_objects: int = 600, n_requests: int = 20,
                      seed: int = 0) -> dict:
    """Scenario compute: one (scheme, policy) grid point."""
    ws = setting_by_name(setting)
    sizes = sample_workload(ws, n_objects, seed)
    targets = request_size_targets(ws, sizes, n_requests, seed + 1)
    config = tiered_config(ws, n_objects, policy)
    system = build_system(scheme, ws, config)
    system.ingest(sizes)
    requests = nearest_candidates(system.catalog.objects, targets)
    results = system.measure_degraded_reads(requests, None, seed=seed + 2)
    times_ms = 1000 * np.array([r.total_time for r in results])
    report = system.run_recovery(0, seed=seed + 3)
    spans = [system.cluster.rack_span(pg) for pg in system.cluster.pgs]
    row = PlacementRow(
        scheme=scheme,
        policy=policy,
        rack_span_mean=float(np.mean(spans)),
        read_p50_ms=float(np.percentile(times_ms, 50)),
        read_p99_ms=float(np.percentile(times_ms, 99)),
        recovery_s=report.makespan,
        recovery_rate_mbs=report.recovery_rate / MB,
        repaired_mb=report.repaired_bytes / MB,
        cross_rack_mb=report.cross_rack_bytes / MB,
        tor_mb=report.tor_bytes / MB,
    )
    return {"rows": rows_of([row])}


def scenarios(setting: str = "W1", n_objects: int | None = None,
              n_requests: int | None = None,
              policies: tuple[str, ...] | None = None) -> list[Scenario]:
    n = n_objects if n_objects is not None else 600
    reqs = n_requests if n_requests is not None else 20
    pols = tuple(policies) if policies else POLICIES
    group = canonical_json(["placement-matrix", setting, n, reqs])
    return [scenario(compute_placement, name=f"{s}/{p}", seed_group=group,
                     setting=setting, scheme=s, policy=p,
                     n_objects=n, n_requests=reqs)
            for s in SCHEMES for p in pols]


def render(results: list[ExperimentResult]) -> str:
    rows = typed_rows(results, PlacementRow)
    return format_table(
        ["Scheme", "Policy", "Racks/PG", "p50 (ms)", "p99 (ms)",
         "Recovery (s)", "Rate (MB/s)", "Repaired (MB)", "Cross-rack (MB)",
         "ToR (MB)"],
        [[r.scheme, r.policy, f"{r.rack_span_mean:.1f}",
          round(r.read_p50_ms), round(r.read_p99_ms),
          f"{r.recovery_s:.2f}", round(r.recovery_rate_mbs),
          round(r.repaired_mb), round(r.cross_rack_mb), round(r.tor_mb)]
         for r in rows])

"""Figures 9 and 10 — recovery time vs degraded read time, all schemes.

The paper's central result: for each scheme, one recovery run (turn off a
disk, recover every affected PG at maximal concurrency) and a batch of
degraded reads sampled from the request distribution, idle and busy.
Figure 9 is ``run(W1_SETTING)``; Figure 10 is ``run(W2_SETTING)``.
Table 3's disk/network bandwidths and the §6.2 headline ratios are derived
from the same results (:mod:`repro.experiments.table3`,
:mod:`repro.experiments.headline`).

Capacity is scaled down for tractability; recovery times are reported both
as simulated and rescaled to the paper's per-disk capacity (recovery time
is linear in per-disk bytes at fixed task concurrency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    nearest_candidates,
    request_size_targets,
    sample_workload,
    scale_to_paper,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)

MB = 1 << 20


@dataclass
class SchemeResult:
    """One point of the Figure 9/10 scatter plus its Table 3 row."""

    scheme: str
    recovery_time: float
    recovery_time_busy: float | None
    recovery_time_paper_scale: float
    recovery_rate: float
    repaired_bytes: int
    degraded_ms: float
    degraded_ms_busy: float | None
    normal_ms: float
    disk_bandwidth: float
    network_bandwidth: float


@dataclass
class TradeoffResult:
    setting_name: str
    n_objects: int
    total_bytes: int
    results: list[SchemeResult]

    def by_scheme(self, name: str) -> SchemeResult:
        """Result row for one scheme label; raises KeyError if absent."""
        for r in self.results:
            if r.scheme == name:
                return r
        raise KeyError(name)


def run(setting: WorkloadSetting, n_objects: int | None = None,
        n_requests: int = 30, schemes: list[str] | None = None,
        include_busy: bool = True, failed_disk: int = 0,
        seed: int = 0) -> TradeoffResult:
    """Run the experiment; returns its result rows."""
    if n_objects is None:
        n_objects = 4000 if setting.name == "W1" else 60_000
    sizes = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    targets = request_size_targets(setting, sizes, n_requests, seed + 2)
    results: list[SchemeResult] = []
    for scheme in (schemes or setting.scheme_names):
        system = build_system(scheme, setting, config)
        system.ingest(sizes)
        report = system.run_recovery(failed_disk)
        busy_report = (system.run_recovery(failed_disk, busy=True, seed=seed + 1)
                       if include_busy else None)
        # Sample requests over the whole population and fail each target's
        # own disk: size-unbiased at any scale (see measure_degraded_reads).
        requests = nearest_candidates(system.catalog.objects, targets)
        degraded = system.measure_degraded_reads(requests, None)
        degraded_busy = (system.measure_degraded_reads(
            requests, None, busy=True, seed=seed + 3)
            if include_busy else None)
        normal = system.measure_normal_reads(requests)
        bytes_per_disk = report.repaired_bytes
        results.append(SchemeResult(
            scheme=scheme,
            recovery_time=report.makespan,
            recovery_time_busy=busy_report.makespan if busy_report else None,
            recovery_time_paper_scale=scale_to_paper(
                report.makespan, setting, bytes_per_disk),
            recovery_rate=report.recovery_rate,
            repaired_bytes=report.repaired_bytes,
            degraded_ms=1000 * float(np.mean([r.total_time for r in degraded])),
            degraded_ms_busy=(1000 * float(np.mean(
                [r.total_time for r in degraded_busy]))
                if degraded_busy else None),
            normal_ms=1000 * float(np.mean(normal)),
            disk_bandwidth=report.disk_bandwidth,
            network_bandwidth=report.network_bandwidth,
        ))
    return TradeoffResult(setting.name, n_objects, int(sizes.sum()), results)


def compute_scheme(setting: str, scheme: str, n_objects: int | None = None,
                   n_requests: int = 30, include_busy: bool = True,
                   failed_disk: int = 0, seed: int = 0) -> dict:
    """Scenario compute: one scheme's grid point as JSON-safe rows.

    The workload sample and request targets depend only on (setting,
    n_objects, seed), so per-scheme units reproduce exactly the rows of a
    monolithic ``run()`` over the same scheme list.
    """
    result = run(setting_by_name(setting), n_objects=n_objects,
                 n_requests=n_requests, schemes=[scheme],
                 include_busy=include_busy, failed_disk=failed_disk,
                 seed=seed)
    return {"rows": rows_of(result.results),
            "meta": {"setting": result.setting_name,
                     "n_objects": result.n_objects,
                     "total_bytes": result.total_bytes}}


def scenarios(setting: str, n_objects: int | None = None,
              n_requests: int = 30, schemes: list[str] | None = None,
              include_busy: bool = True) -> list[Scenario]:
    """One scenario unit per scheme of the Figure 9/10 grid.

    All units share a seed group: every scheme must draw the *same*
    workload sample and request targets to be comparable, and the group
    id never mentions the scheme list, so adding a scheme leaves every
    other scheme's rows untouched.
    """
    names = schemes or setting_by_name(setting).scheme_names
    group = canonical_json(["tradeoff", setting, n_objects, n_requests])
    return [scenario(compute_scheme, name=s, seed_group=group,
                     setting=setting, scheme=s,
                     n_objects=n_objects, n_requests=n_requests,
                     include_busy=include_busy)
            for s in names]


def from_results(results: list[ExperimentResult]) -> TradeoffResult:
    """Rebuild the typed result from per-scheme runner rows."""
    if not results:
        raise ValueError("no tradeoff results to combine")
    meta = results[0].meta
    return TradeoffResult(meta["setting"], meta["n_objects"],
                          meta["total_bytes"],
                          typed_rows(results, SchemeResult))


def render(results: list[ExperimentResult]) -> str:
    """Pure rendering of per-scheme runner results."""
    return to_text(from_results(results))


def to_text(result: TradeoffResult) -> str:
    """Render the result as a paper-style text table."""
    headers = ["Scheme", "Recovery(s)", "Recovery@paper(s)", "Degraded(ms)",
               "Normal(ms)", "Rate(MB/s)"]
    include_busy = any(r.recovery_time_busy is not None for r in result.results)
    if include_busy:
        headers[2:2] = ["RecoveryBusy(s)"]
        headers.insert(5, "DegradedBusy(ms)")
    rows = []
    for r in result.results:
        row = [r.scheme, round(r.recovery_time, 1)]
        if include_busy:
            row.append(round(r.recovery_time_busy, 1))
        row += [round(r.recovery_time_paper_scale), round(r.degraded_ms)]
        if include_busy:
            row.append(round(r.degraded_ms_busy))
        row += [round(r.normal_ms), round(r.recovery_rate / MB)]
        rows.append(row)
    title = f"[{result.setting_name}] {result.n_objects} objects, " \
            f"{result.total_bytes / (1 << 30):.1f} GiB"
    return title + "\n" + format_table(headers, rows)

"""Figure 14 — average chunk size under different common ratios q.

Average chunk size (partitioned bytes / chunk count, §6.3) of Geo-4M on W1
and Geo-128K on W2 for q = 1..10.  The paper finds the peak at q = 2 or 3,
motivating the default q = 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import GeometricPartitioner
from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    format_table,
    sample_workload,
    setting_by_name,
)
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows

KB = 1 << 10
MB = 1 << 20


@dataclass(frozen=True)
class QPoint:
    q: int
    average_chunk_size: float


def average_chunk_size(sizes, s0: int, q: int, max_chunk_size: int) -> float:
    """Mean regenerating-code chunk size (bytes)."""
    partitioner = GeometricPartitioner(s0, q, max_chunk_size)
    total = chunks = 0
    for size in sizes:
        part = partitioner.partition(int(size))
        total += part.partitioned_bytes
        chunks += part.n_chunks
    return total / chunks if chunks else 0.0


def run(setting: WorkloadSetting = W1_SETTING, s0: int | None = None,
        qs: tuple[int, ...] = tuple(range(1, 11)),
        n_objects: int = 4000, seed: int = 0) -> list[QPoint]:
    """Run the experiment; returns its result rows."""
    s0 = s0 or setting.geo_default_s0
    sizes = sample_workload(setting, n_objects, seed)
    return [QPoint(q, average_chunk_size(sizes, s0, q, setting.max_chunk_size))
            for q in qs]


def best_q(points: list[QPoint]) -> int:
    """The q maximising average chunk size."""
    return max(points, key=lambda p: p.average_chunk_size).q


def to_text(points: list[QPoint], setting: WorkloadSetting = W1_SETTING) -> str:
    """Render the result as a paper-style text table."""
    unit, label = (MB, "MB") if setting.name == "W1" else (KB, "KB")
    table = format_table(
        ["q", f"Average chunk size ({label})"],
        [[p.q, round(p.average_chunk_size / unit, 1)] for p in points])
    return table + f"\n\nPeak at q={best_q(points)} (paper: 2 or 3)"


def compute(setting: str = "W1", n_objects: int = 4000, seed: int = 0) -> dict:
    """Scenario compute: the q sweep for one workload setting."""
    points = run(setting_by_name(setting), n_objects=n_objects, seed=seed)
    return {"rows": rows_of(points), "meta": {"setting": setting}}


def scenarios(setting: str = "W1",
              n_objects: int | None = None) -> list[Scenario]:
    return [scenario(compute, name="q-sweep", setting=setting,
                     n_objects=n_objects if n_objects is not None else 5000)]


def render(results: list[ExperimentResult]) -> str:
    setting = setting_by_name(results[0].meta["setting"])
    return to_text(typed_rows(results, QPoint), setting)

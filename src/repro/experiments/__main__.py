"""Command-line runner: regenerate any of the paper's tables and figures.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig4
    python -m repro.experiments fig9  --n-objects 4000
    python -m repro.experiments fig10 --n-objects 30000
    python -m repro.experiments ablations
    python -m repro.experiments all          # everything (several minutes)
"""

from __future__ import annotations

import argparse
import sys
import time


def _w(args):
    from repro.experiments.common import W1_SETTING, W2_SETTING

    return W2_SETTING if args.workload == "W2" else W1_SETTING


def run_table1(args):
    from repro.experiments import table1

    return table1.to_text(table1.run())


def run_table2(args):
    from repro.experiments import table2

    return table2.to_text(table2.run(n_objects=args.n_objects or 30_000))


def run_fig2(args):
    from repro.experiments import fig2

    return fig2.to_text(fig2.run())


def run_fig4(args):
    from repro.experiments import calibration, fig4

    return (fig4.to_text(fig4.run()) + "\n\n"
            + calibration.to_text(calibration.anchors()))


def run_fig7(args):
    from repro.experiments import fig7

    return fig7.to_text(fig7.run(n_objects=args.n_objects or 60_000))


def run_fig9(args):
    from repro.experiments import tradeoff
    from repro.experiments.common import W1_SETTING

    return tradeoff.to_text(tradeoff.run(
        W1_SETTING, n_objects=args.n_objects, n_requests=args.n_requests))


def run_fig10(args):
    from repro.experiments import tradeoff
    from repro.experiments.common import W2_SETTING

    return tradeoff.to_text(tradeoff.run(
        W2_SETTING, n_objects=args.n_objects, n_requests=args.n_requests))


def run_table3(args):
    from repro.experiments import table3

    return table3.to_text(table3.run(_w(args), n_objects=args.n_objects))


def run_fig11(args):
    from repro.experiments import fig11_fig12
    from repro.experiments.common import W1_SETTING

    return fig11_fig12.to_text(fig11_fig12.run(
        W1_SETTING, n_objects=args.n_objects or 1500))


def run_fig12(args):
    from repro.experiments import fig11_fig12
    from repro.experiments.common import W2_SETTING

    return fig11_fig12.to_text(fig11_fig12.run(
        W2_SETTING, n_objects=args.n_objects or 8000))


def run_fig13(args):
    from repro.experiments import fig13

    return fig13.to_text(fig13.run(n_objects=args.n_objects or 1500))


def run_fig14(args):
    from repro.experiments import fig14

    setting = _w(args)
    return fig14.to_text(fig14.run(
        setting, n_objects=args.n_objects or 5000), setting)


def run_breakdown(args):
    from repro.experiments import breakdown

    setting = _w(args)
    return breakdown.to_text(breakdown.run(
        setting, n_objects=args.n_objects or 12_000), setting)


def run_range(args):
    from repro.experiments import range_access

    return range_access.to_text(range_access.run(
        n_objects=args.n_objects or 1200))


def run_table4(args):
    from repro.experiments import table4

    return table4.to_text(table4.run(n_objects=args.n_objects or 500))


def run_table5(args):
    from repro.experiments import table5

    return table5.to_text(table5.run(n_objects=args.n_objects or 1200))


def run_headline(args):
    from repro.experiments import headline

    return headline.to_text(headline.run(
        n_objects_w1=args.n_objects or 3000,
        n_objects_w2=(args.n_objects or 3000) * 10))


def run_durability(args):
    from repro.experiments import durability

    return durability.to_text(durability.run(
        n_objects=args.n_objects or 2000))


def run_ablations(args):
    from repro.experiments import ablations
    from repro.experiments.common import format_table

    text = ablations.to_text(_w(args))
    prio = ablations.io_priority_ablation(n_objects=args.n_objects or 1000)
    text += "\n\nIO priority lanes during recovery:\n" + format_table(
        ["Recovery priority", "Degraded (ms)"],
        [["background (RCStor)", round(prio.degraded_ms_with_priority)],
         ["foreground (ablated)", round(prio.degraded_ms_without_priority)]])
    return text


EXPERIMENTS = {
    "table1": run_table1, "table2": run_table2, "table3": run_table3,
    "table4": run_table4, "table5": run_table5,
    "fig2": run_fig2, "fig4": run_fig4, "fig7": run_fig7,
    "fig9": run_fig9, "fig10": run_fig10, "fig11": run_fig11,
    "fig12": run_fig12, "fig13": run_fig13, "fig14": run_fig14,
    "breakdown": run_breakdown, "range": run_range,
    "headline": run_headline, "ablations": run_ablations,
    "durability": run_durability,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of the CLI runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--n-objects", type=int, default=None,
                        help="workload scale (defaults are per-experiment)")
    parser.add_argument("--n-requests", type=int, default=20,
                        help="degraded-read sample size")
    parser.add_argument("--workload", choices=["W1", "W2"], default="W1",
                        help="workload for workload-parametric experiments")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome/Perfetto trace-event JSON of "
                             "every simulation the experiment runs")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics summary (utilization, "
                             "queue waits) after the experiment")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run with the repro.analysis invariant checker "
                             "armed: monotonic sim clock, codec byte "
                             "conservation, end-of-run resource-leak audit")
    args = parser.parse_args(argv)

    obs = None
    checker = None
    if args.trace or args.metrics or args.check_invariants:
        from repro.experiments.common import enable_observability

        obs = enable_observability()
        if args.check_invariants:
            from repro.analysis import attach_invariant_checker

            checker = attach_invariant_checker(obs)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            t0 = time.time()
            print(f"===== {name} =====")
            print(EXPERIMENTS[name](args))
            print(f"[{time.time() - t0:.1f}s]\n")
    finally:
        if obs is not None:
            from repro.experiments.common import finish_observability

            report = finish_observability(obs, trace_path=args.trace,
                                          metrics=args.metrics)
            if report:
                print(report)
            if checker is not None:
                print(checker.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())

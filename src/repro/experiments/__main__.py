"""Command-line runner: regenerate any of the paper's tables and figures.

Every experiment is a list of :class:`~repro.runner.Scenario` units plus a
pure ``render()``; this CLI assembles the requested units, hands them to
:func:`repro.runner.run_scenarios` (parallel with ``--jobs``, cached under
``results/cache/`` unless ``--no-cache``), and renders the results.  Rows
are bit-identical for any ``--jobs`` value and across cache hits.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig9  --n-objects 4000
    python -m repro.experiments all --jobs 4          # parallel fan-out
    python -m repro.experiments all --jobs 4          # second run: cached
    python -m repro.experiments fig10 --seed 7 --json # machine-readable
    python -m repro.experiments all --bench-out BENCH_experiments.json
    python -m repro.experiments fig13 --timeline --report fig13.html
    python -m repro.experiments all --profile            # wall-clock flame
    python -m repro.experiments chaos-tail --flightrec postmortems/
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.common import default


# ----------------------------------------------------------------------
# Experiment specs: (args) -> (scenario units, render function)
# ----------------------------------------------------------------------
def spec_table1(args):
    from repro.experiments import table1

    return table1.scenarios(), table1.render


def spec_table2(args):
    from repro.experiments import table2

    return table2.scenarios(n_objects=args.n_objects), table2.render


def spec_table3(args):
    from repro.experiments import table3

    return (table3.scenarios(args.workload, n_objects=args.n_objects),
            table3.render)


def spec_table4(args):
    from repro.experiments import table4

    return table4.scenarios(n_objects=args.n_objects), table4.render


def spec_table5(args):
    from repro.experiments import table5

    return table5.scenarios(n_objects=args.n_objects), table5.render


def spec_fig2(args):
    from repro.experiments import fig2

    return fig2.scenarios(), fig2.render


def spec_fig4(args):
    from repro.experiments import calibration, fig4

    units = fig4.scenarios() + calibration.scenarios()

    def render(results):
        by = {r.name.rsplit("/", 1)[-1]: r for r in results}
        return (fig4.render([by["chunk-size"]]) + "\n\n"
                + calibration.render([by["calibration"]]))

    return units, render


def spec_fig7(args):
    from repro.experiments import fig7

    return fig7.scenarios(n_objects=args.n_objects), fig7.render


def spec_fig9(args):
    from repro.experiments import tradeoff

    return (tradeoff.scenarios("W1", n_objects=args.n_objects,
                               n_requests=default(args.n_requests, 20)),
            tradeoff.render)


def spec_fig10(args):
    from repro.experiments import tradeoff

    return (tradeoff.scenarios("W2", n_objects=args.n_objects,
                               n_requests=default(args.n_requests, 20)),
            tradeoff.render)


def spec_fig11(args):
    from repro.experiments import fig11_fig12

    return (fig11_fig12.scenarios("W1", n_objects=args.n_objects),
            fig11_fig12.render)


def spec_fig12(args):
    from repro.experiments import fig11_fig12

    return (fig11_fig12.scenarios("W2", n_objects=args.n_objects),
            fig11_fig12.render)


def spec_fig13(args):
    from repro.experiments import fig13

    return fig13.scenarios(n_objects=args.n_objects), fig13.render


def spec_fig14(args):
    from repro.experiments import fig14

    return (fig14.scenarios(args.workload, n_objects=args.n_objects),
            fig14.render)


def spec_breakdown(args):
    from repro.experiments import breakdown

    return (breakdown.scenarios(args.workload, n_objects=args.n_objects),
            breakdown.render)


def spec_range(args):
    from repro.experiments import range_access

    return (range_access.scenarios(n_objects=args.n_objects),
            range_access.render)


def spec_headline(args):
    from repro.experiments import headline

    n_w2 = args.n_objects * 10 if args.n_objects is not None else None
    return (headline.scenarios(n_objects_w1=args.n_objects,
                               n_objects_w2=n_w2),
            headline.render)


def spec_durability(args):
    from repro.experiments import durability

    return durability.scenarios(n_objects=args.n_objects), durability.render


def spec_ablations(args):
    from repro.experiments import ablations

    return (ablations.scenarios(args.workload, n_objects=args.n_objects),
            ablations.render)


def _fault_doc(args):
    """The fault plan named by ``--faults``, as a JSON-safe doc."""
    if args.faults is None:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(args.faults).to_doc()


def spec_chaos_tail(args):
    from repro.experiments import chaos

    factors = (args.straggler,) if args.straggler is not None else None
    return (chaos.tail_scenarios(args.workload, n_objects=args.n_objects,
                                 n_requests=args.n_requests,
                                 factors=factors, faults=_fault_doc(args)),
            chaos.render_tail)


def spec_chaos_recovery(args):
    from repro.experiments import chaos

    return (chaos.second_failure_scenarios(args.workload,
                                           n_objects=args.n_objects,
                                           faults=_fault_doc(args)),
            chaos.render_second_failure)


def spec_placement_matrix(args):
    from repro.experiments import placement_matrix

    policies = (tuple(p for p in args.policies.split(",") if p)
                if args.policies else None)
    return (placement_matrix.scenarios(args.workload,
                                       n_objects=args.n_objects,
                                       n_requests=args.n_requests,
                                       policies=policies),
            placement_matrix.render)


def spec_durability_frontier(args):
    from repro.experiments import durability_frontier

    policies = (tuple(p for p in args.policies.split(",") if p)
                if args.policies else None)
    return (durability_frontier.scenarios(
        n_objects=args.n_objects, policies=policies,
        n_disks=args.fleet_disks, years=args.fleet_years,
        reps=args.reps, n_trials=args.trials),
        durability_frontier.render)


def spec_traffic_frontier(args):
    from repro.experiments import traffic_frontier

    rates = (tuple(float(r) for r in args.arrival_rate.split(",") if r)
             if args.arrival_rate else None)
    return (traffic_frontier.scenarios(
        n_objects=args.n_objects, rates=rates, n_tenants=args.tenants,
        hedge_ms=args.hedge_ms),
        traffic_frontier.render)


SPECS = {
    "table1": spec_table1, "table2": spec_table2, "table3": spec_table3,
    "table4": spec_table4, "table5": spec_table5,
    "fig2": spec_fig2, "fig4": spec_fig4, "fig7": spec_fig7,
    "fig9": spec_fig9, "fig10": spec_fig10, "fig11": spec_fig11,
    "fig12": spec_fig12, "fig13": spec_fig13, "fig14": spec_fig14,
    "breakdown": spec_breakdown, "range": spec_range,
    "headline": spec_headline, "ablations": spec_ablations,
    "durability": spec_durability,
    "chaos-tail": spec_chaos_tail, "chaos-recovery": spec_chaos_recovery,
    "placement-matrix": spec_placement_matrix,
    "durability-frontier": spec_durability_frontier,
    "traffic-frontier": spec_traffic_frontier,
}

#: Experiments beyond the paper's own tables and figures.  ``all`` is the
#: paper artifact set, pinned byte-for-byte by
#: ``results/expected_all_300.json.gz`` — extensions run only when named
#: explicitly.
EXTENSIONS = frozenset({"placement-matrix", "durability-frontier",
                        "traffic-frontier"})


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(SPECS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--n-objects", type=int, default=None,
                        help="workload scale (defaults are per-experiment)")
    parser.add_argument("--n-requests", type=int, default=None,
                        help="degraded-read sample size (fig9/fig10)")
    parser.add_argument("--workload", choices=["W1", "W2"], default="W1",
                        help="workload for workload-parametric experiments")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="inject a fault plan (repro.faults JSON) into "
                             "the chaos experiments instead of their "
                             "built-in plans")
    parser.add_argument("--straggler", type=float, default=None,
                        metavar="FACTOR",
                        help="chaos-tail: sweep only this straggler "
                             "slow-factor instead of the default grid")
    parser.add_argument("--policies", metavar="A,B,...", default=None,
                        help="placement-matrix / durability-frontier: "
                             "comma-separated placement policies to sweep "
                             "instead of the experiment's default set "
                             "(flat_random,rack_aware,copyset)")
    parser.add_argument("--fleet-disks", type=int, default=None,
                        help="durability-frontier: fleet size in disks "
                             "(default 10240; multiple of 8)")
    parser.add_argument("--fleet-years", type=float, default=None,
                        help="durability-frontier: simulated years per "
                             "Monte-Carlo trial (default 10)")
    parser.add_argument("--reps", type=int, default=None,
                        help="durability-frontier: seed-group repetitions "
                             "of the whole grid (default 3)")
    parser.add_argument("--trials", type=int, default=None,
                        help="durability-frontier: Monte-Carlo trials per "
                             "grid point and repair speed (default 2)")
    parser.add_argument("--arrival-rate", metavar="R1,R2,...", default=None,
                        help="traffic-frontier: comma-separated mean "
                             "arrival rates (requests/s) to sweep instead "
                             "of the default (40,160)")
    parser.add_argument("--tenants", type=int, default=None, metavar="N",
                        help="traffic-frontier: serve only the first N "
                             "tenant presets (shares renormalised; "
                             "default: all three)")
    parser.add_argument("--hedge-ms", type=float, default=None,
                        help="traffic-frontier: hedge timeout in ms for "
                             "hedged cells (default 200)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenario units on N worker processes "
                             "(identical rows for any N)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; per-unit seeds derive from it so "
                             "units never perturb each other's draws")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; do not read or write the "
                             "result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory "
                             "(default: results/cache/)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable results (rows + "
                             "provenance) instead of text tables")
    parser.add_argument("--bench-out", metavar="OUT.json", default=None,
                        help="write per-unit wall-clock / sim-time / "
                             "cache-status accounting as JSON")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome/Perfetto trace-event JSON of "
                             "every simulation the experiment runs")
    parser.add_argument("--metrics", action="store_true",
                        help="print the merged metrics summary "
                             "(utilization, queue waits) after the run")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run with the repro.analysis invariant checker "
                             "armed: monotonic sim clock, codec byte "
                             "conservation, end-of-run resource-leak audit")
    parser.add_argument("--timeline", metavar="OUT.json", nargs="?",
                        const="timeline.json", default=None,
                        help="sample every unit's metrics on a sim-time grid "
                             "and write the merged repro.timeline/1 doc "
                             "(default file: timeline.json); exact for any "
                             "--jobs value")
    parser.add_argument("--sample-interval", type=float, default=None,
                        metavar="S",
                        help="timeline sample pitch in sim seconds "
                             "(default: auto-scale per measurement)")
    parser.add_argument("--profile", action="store_true",
                        help="attribute wall-clock time per process site "
                             "(engine dispatch loop profiler); implies a "
                             "live run, never cached")
    parser.add_argument("--flightrec", metavar="DIR", default=None,
                        help="arm a per-unit flight recorder; postmortem "
                             "bundles land in DIR when a unit raises or "
                             "logs incidents (abandoned repairs, invariant "
                             "violations)")
    parser.add_argument("--report", metavar="OUT.html", default=None,
                        help="write a self-contained HTML run report "
                             "(timelines, span waterfall, percentile "
                             "tables, profile); implies --timeline-style "
                             "sampling and trace capture")
    return parser


def _result_doc(result) -> dict:
    """One experiment result as JSON, without bulky trace payloads."""
    doc = result.to_doc()
    obs = doc.get("obs")
    if obs and "trace_events" in obs:
        doc["obs"] = {k: v for k, v in obs.items() if k != "trace_events"}
    return doc


def _progress_printer():
    """A single-line live progress callback for interactive fan-out runs."""
    def progress(done: int, total: int, status: str, name: str) -> None:
        line = f"[{done}/{total}] {status:<5} {name}"
        print(f"\r{line[:100]:<100}", end="", file=sys.stderr, flush=True)
        if done == total:
            print(file=sys.stderr)
    return progress


def main(argv: list[str] | None = None) -> int:
    """Entry point of the CLI runner."""
    args = _parser().parse_args(argv)

    from repro.runner import Capture, RunOptions, run_scenarios

    names = (sorted(n for n in SPECS if n not in EXTENSIONS)
             if args.experiment == "all" else [args.experiment])
    units = []
    sections = []  # (name, first unit index, one-past-last, render)
    for name in names:
        scenarios, render = SPECS[name](args)
        scenarios = [s.prefixed(name) for s in scenarios]
        sections.append((name, len(units), len(units) + len(scenarios),
                         render))
        units.extend(scenarios)

    # --report needs trace events (the span waterfall) and a timeline;
    # asking for either arms the live-run capture path for every unit.
    want_timeline = args.timeline is not None or args.report is not None
    want_trace = args.trace is not None or args.report is not None
    progress = _progress_printer() if sys.stderr.isatty() else None
    options = RunOptions(
        jobs=args.jobs, seed=args.seed, cache=not args.no_cache,
        cache_dir=args.cache_dir,
        capture=Capture(trace=want_trace, metrics=args.metrics,
                        invariants=args.check_invariants,
                        timeline=want_timeline,
                        sample_interval=args.sample_interval,
                        profile=args.profile,
                        flightrec=args.flightrec),
        progress=progress)
    t0 = time.time()
    report = run_scenarios(units, options)
    wall = time.time() - t0

    if args.json:
        print(json.dumps({
            "schema": 1,
            "sim_version": report.sim_version,
            "root_seed": report.root_seed,
            "experiments": {
                name: [_result_doc(r) for r in report.results[lo:hi]]
                for name, lo, hi, _render in sections},
        }, indent=2, sort_keys=True))
    else:
        for name, lo, hi, render in sections:
            outcomes = report.outcomes[lo:hi]
            served = sum(1 for o in outcomes if o.status != "miss")
            print(f"===== {name} =====")
            print(render(report.results[lo:hi]))
            print(f"[{sum(o.wall_s for o in outcomes):.1f}s, "
                  f"{served}/{len(outcomes)} units cached]\n")

    if args.metrics and not args.json:
        from repro.obs import summarize

        print(summarize(report.merged_obs()))
    if args.profile and not args.json:
        from repro.obs import summarize_profile

        print(summarize_profile(report.merged_profile()))
    if args.check_invariants:
        inv_report = report.merged_invariants_report()
        if inv_report:
            print(inv_report)
    if args.timeline is not None:
        with open(args.timeline, "w", encoding="utf-8") as fh:
            json.dump(report.merged_timeline(), fh, indent=2, sort_keys=True)
    if args.report is not None:
        from repro.obs import write_report

        doc = {
            "title": f"repro: {args.experiment}",
            "sim_version": report.sim_version,
            "root_seed": report.root_seed,
            "sections": [{"name": name,
                          "text": render(report.results[lo:hi])}
                         for name, lo, hi, render in sections],
            "obs": report.merged_obs(),
            "timeline": report.merged_timeline(),
            "trace_events": report.trace_events(),
            "bench": report.bench_doc(jobs=args.jobs),
        }
        if args.profile:
            doc["profile"] = report.merged_profile()
        write_report(doc, args.report)
    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": report.trace_events(),
                       "displayTimeUnit": "ms"}, fh)
    if args.bench_out:
        doc = report.bench_doc(jobs=args.jobs,
                               groups=[(name, lo, hi)
                                       for name, lo, hi, _render in sections])
        doc["totals"]["elapsed_s"] = round(wall, 6)
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figures 11 and 12 — degraded read latency percentiles by object size.

For each target object size (8/32/128 MB on W1; 256 KB/1 MB on W2) a batch
of equal-sized probe objects is ingested alongside the workload, and their
degraded reads are measured per scheme; we report the 5th/median/95th
percentiles as the paper's error bars do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    WorkloadSetting,
    W1_SETTING,
    build_system,
    cluster_config,
    format_table,
    sample_workload,
    setting_by_name,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)

KB = 1 << 10
MB = 1 << 20

W1_TARGET_SIZES = (8 * MB, 32 * MB, 128 * MB)
W2_TARGET_SIZES = (256 * KB, 1 * MB)


@dataclass(frozen=True)
class LatencyRow:
    scheme: str
    object_size: int
    p5_ms: float
    p50_ms: float
    p95_ms: float


def default_schemes(setting: WorkloadSetting) -> list[str]:
    """The scheme labels this experiment compares."""
    geo = [f"Geo-{s}" for s in ([ "1M", "16M"] if setting.name == "W1"
                                else ["128K", "256K"])]
    con = [f"Con-{c // MB}M" if c >= MB else f"Con-{c // KB}K"
           for c in setting.contiguous_variants]
    return geo + con + ["Stripe", "Stripe-Max"]


def run(setting: WorkloadSetting = W1_SETTING,
        target_sizes: tuple[int, ...] | None = None,
        schemes: list[str] | None = None,
        n_objects: int = 1500, n_probes: int = 24, busy: bool = False,
        seed: int = 0) -> list[LatencyRow]:
    """Run the experiment; returns its result rows."""
    if target_sizes is None:
        target_sizes = (W1_TARGET_SIZES if setting.name == "W1"
                        else W2_TARGET_SIZES)
    schemes = schemes or default_schemes(setting)
    background = sample_workload(setting, n_objects, seed)
    config = cluster_config(setting, n_objects)
    rows: list[LatencyRow] = []
    for scheme in schemes:
        system = build_system(scheme, setting, config)
        system.ingest(background)
        probes_by_size = {}
        for size in target_sizes:
            probes_by_size[size] = system.ingest([size] * n_probes)
        for size, probes in probes_by_size.items():
            results = system.measure_degraded_reads(probes, None, busy=busy,
                                                    seed=seed + 1)
            times = np.array([r.total_time for r in results]) * 1000
            rows.append(LatencyRow(scheme, size,
                                   float(np.percentile(times, 5)),
                                   float(np.percentile(times, 50)),
                                   float(np.percentile(times, 95))))
    return rows


def to_text(rows: list[LatencyRow]) -> str:
    """Render the result as a paper-style text table."""
    def fmt_size(x):
        return f"{x // MB}MB" if x >= MB else f"{x // KB}KB"

    return format_table(
        ["Scheme", "Object size", "p5 (ms)", "p50 (ms)", "p95 (ms)"],
        [[r.scheme, fmt_size(r.object_size), round(r.p5_ms, 2),
          round(r.p50_ms, 2), round(r.p95_ms, 2)] for r in rows])


def compute_scheme(setting: str, scheme: str, n_objects: int = 1500,
                   n_probes: int = 24, busy: bool = False,
                   seed: int = 0) -> dict:
    """Scenario compute: one scheme's latency rows (all target sizes)."""
    rows = run(setting_by_name(setting), schemes=[scheme],
               n_objects=n_objects, n_probes=n_probes, busy=busy, seed=seed)
    return {"rows": rows_of(rows)}


def scenarios(setting: str, n_objects: int | None = None,
              schemes: list[str] | None = None) -> list[Scenario]:
    """One unit per scheme; each measures every target object size."""
    st = setting_by_name(setting)
    names = schemes or default_schemes(st)
    if n_objects is None:
        n_objects = 1500 if st.name == "W1" else 8000
    group = canonical_json(["fig11_fig12", setting, n_objects])
    return [scenario(compute_scheme, name=s, seed_group=group,
                     setting=setting, scheme=s, n_objects=n_objects)
            for s in names]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, LatencyRow))

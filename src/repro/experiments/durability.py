"""Durability analysis: the §2.1 motivation, quantified.

Combines measured recovery times (rescaled to the paper's per-disk
capacity) with the reliability model: faster recovery shrinks the window
in which additional failures can accumulate, raising MTTDL by roughly
``speedup^r`` — and LRC's missing MDS property costs durability even where
its recovery is quick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import ClayCode, LRCCode, RSCode
from repro.experiments import tradeoff
from repro.experiments.common import W1_SETTING, WorkloadSetting, format_table
from repro.experiments.tradeoff import TradeoffResult, run as run_tradeoff
from repro.runner import ExperimentResult, Scenario
from repro.reliability import (
    ReliabilityParams,
    fatal_probabilities_for_code,
    system_mttdl,
)
from repro.reliability.markov import durability_nines

#: Disk annualised failure rate used for the analysis (Schroeder & Gibson
#: report 2-4% in the field; we take 2%).
AFR = 0.02


@dataclass(frozen=True)
class DurabilityRow:
    scheme: str
    recovery_hours_paper_scale: float
    mttdl_hours: float
    nines: float


def run(setting: WorkloadSetting = W1_SETTING, n_objects: int = 2000,
        n_groups: int = 10_000, seed: int = 0,
        tradeoff_result: TradeoffResult | None = None) -> list[DurabilityRow]:
    """Run the experiment; returns its result rows."""
    schemes = {"Geo-4M": ClayCode(10, 4), "RS": RSCode(10, 4),
               "LRC": LRCCode(10, 2, 2)}
    result = tradeoff_result or run_tradeoff(
        setting, n_objects=n_objects, n_requests=4,
        schemes=list(schemes), include_busy=False, seed=seed)
    rows = []
    for scheme, code in schemes.items():
        r = result.by_scheme(scheme)
        repair_hours = r.recovery_time_paper_scale / 3600.0
        q = tuple(fatal_probabilities_for_code(code))
        params = ReliabilityParams(
            n_disks=14, afr=AFR, repair_hours=repair_hours,
            fatal_probabilities=q)
        mttdl = system_mttdl(params, n_groups)
        rows.append(DurabilityRow(scheme, repair_hours, mttdl,
                                  durability_nines(mttdl)))
    return rows


def to_text(rows: list[DurabilityRow]) -> str:
    """Render the result as a paper-style text table."""
    table = format_table(
        ["Scheme", "Recovery (h, paper scale)", "System MTTDL (h)",
         "Annual durability (nines)"],
        [[r.scheme, round(r.recovery_hours_paper_scale, 3),
          f"{r.mttdl_hours:.3g}", round(r.nines, 1)] for r in rows])
    return (table + "\n\nFaster recovery multiplies MTTDL by ~speedup^r; "
            "LRC additionally pays for its unrecoverable 4-failure patterns.")


def scenarios(n_objects: int | None = None) -> list[Scenario]:
    """The three recovery measurements the reliability model feeds on."""
    return tradeoff.scenarios(
        "W1", n_objects=n_objects if n_objects is not None else 2000,
        n_requests=4, schemes=["Geo-4M", "RS", "LRC"], include_busy=False)


def render(results: list[ExperimentResult]) -> str:
    """Apply the (deterministic) Markov model to the measured recoveries."""
    return to_text(run(tradeoff_result=tradeoff.from_results(results)))

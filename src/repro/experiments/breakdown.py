"""§6.3 performance breakdown: small-size-bucket shares and chunk sizes.

Paper values:

* small-size-buckets occupy 1.7% / 3.7% / 9.4% of W1 capacity at
  s0 = 1/4/16 MB, and 26.7% / 35.4% of W2 capacity at s0 = 128/256 KB;
* average chunk sizes on W1: 14.8 MB (Geo-1M), 25.0 MB (Geo-4M),
  56.4 MB (Geo-16M), versus only 10.3 MB for Stripe-Max.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import GeometricPartitioner
from repro.experiments.common import (
    W1_SETTING,
    WorkloadSetting,
    format_table,
    sample_workload,
    setting_by_name,
)
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows

KB = 1 << 10
MB = 1 << 20


@dataclass(frozen=True)
class BreakdownRow:
    scheme: str
    small_bucket_share: float
    average_chunk_size: float


def run(setting: WorkloadSetting = W1_SETTING, n_objects: int = 20_000,
        seed: int = 0) -> list[BreakdownRow]:
    """Run the experiment; returns its result rows."""
    sizes = sample_workload(setting, n_objects, seed)
    rows: list[BreakdownRow] = []
    total = float(sizes.sum())
    for s0 in setting.geo_s0_variants:
        partitioner = GeometricPartitioner(s0, 2, setting.max_chunk_size)
        front = chunk_bytes = chunks = 0
        for size in sizes:
            part = partitioner.partition(int(size))
            front += part.front
            chunk_bytes += part.partitioned_bytes
            chunks += part.n_chunks
        label = f"Geo-{s0 // MB}M" if s0 >= MB else f"Geo-{s0 // KB}K"
        rows.append(BreakdownRow(label, front / total,
                                 chunk_bytes / chunks if chunks else 0.0))
    # Stripe-Max: one strip of size/k per disk; no small-size-buckets.
    k = 10
    strip_chunks = sum(min(k, int(size)) for size in sizes)
    rows.append(BreakdownRow("Stripe-Max", 0.0, total / strip_chunks))
    return rows


def to_text(rows: list[BreakdownRow], setting: WorkloadSetting = W1_SETTING) -> str:
    """Render the result as a paper-style text table."""
    unit, label = (MB, "MB") if setting.name == "W1" else (KB, "KB")
    return format_table(
        ["Scheme", "Small-size-bucket share", f"Avg chunk size ({label})"],
        [[r.scheme, f"{r.small_bucket_share * 100:.1f}%",
          round(r.average_chunk_size / unit, 1)] for r in rows])


def compute(setting: str = "W1", n_objects: int = 20_000,
            seed: int = 0) -> dict:
    """Scenario compute: all s0 variants' breakdown rows (analytic pass)."""
    rows = run(setting_by_name(setting), n_objects=n_objects, seed=seed)
    return {"rows": rows_of(rows), "meta": {"setting": setting}}


def scenarios(setting: str = "W1",
              n_objects: int | None = None) -> list[Scenario]:
    return [scenario(compute, name="buckets", setting=setting,
                     n_objects=n_objects if n_objects is not None else 12_000)]


def render(results: list[ExperimentResult]) -> str:
    setting = setting_by_name(results[0].meta["setting"])
    return to_text(typed_rows(results, BreakdownRow), setting)

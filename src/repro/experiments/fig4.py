"""Figure 4 — the chunk-size dilemma (analytic).

For Clay(10,4) on one HDD and a 1 Gbps client:

* *recovery bandwidth*: harmonic mean, over the four Figure 2 repair cases,
  of the effective per-disk read bandwidth of repairing chunks of size C;
* *degraded read time*: average time to read a 64 MB object when the store
  encodes at chunk size C — pipelined repair/transfer (Figure 3), with the
  whole trailing chunk repaired (read amplification) when C > 64 MB.

Paper anchors: ~700 ms and ~40 MB/s at 4 MB chunks; >1300 ms and ~170 MB/s
at 256 MB chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import DEFAULT_CODEC, HDD, ProfileCache
from repro.cluster.disk import DiskModel
from repro.codes import ClayCode
from repro.core.pipeline import PipelineStep, degraded_read_time
from repro.experiments.common import format_table
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows

MB = 1 << 20
CLIENT_BW = 125 * MB  # 1 Gbps


@dataclass(frozen=True)
class ChunkSizePoint:
    chunk_size: int
    recovery_bandwidth: float       # bytes/s per disk (harmonic mean of cases)
    degraded_read_time: float       # seconds, 64 MB object, 1 Gbps client


def _case_nodes(code: ClayCode) -> list[int]:
    """One failed node per Figure 2 case (column of the grid)."""
    return [next(n for n in range(code.n) if code.slot_xy(n)[1] == y)
            for y in range(code.t)]


def recovery_bandwidth(chunk_size: int, code: ClayCode | None = None,
                       disk: DiskModel = HDD) -> float:
    """Harmonic-mean effective disk read bandwidth over the repair cases."""
    code = code or ClayCode(10, 4)
    cache = ProfileCache(code)
    inv_sum = 0.0
    cases = _case_nodes(code)
    for failed in cases:
        helper = cache.get(failed, chunk_size).helpers[0]
        time = disk.read_time(helper.n_ios, helper.nbytes, span=helper.span)
        inv_sum += time / helper.nbytes
    return len(cases) / inv_sum * 1.0 if inv_sum else 0.0


#: Per-chunk-repair software overhead (fan-out, sync; matches
#: ClusterConfig.repair_rpc_overhead).
RPC_OVERHEAD = 0.002
#: Datacenter NIC goodput used for the repair gather step.
NIC_BW = 50 * 125 * MB


def chunk_repair_time(chunk_size: int, failed: int, code: ClayCode,
                      cache: ProfileCache, disk: DiskModel) -> float:
    """Repair latency of one chunk: parallel helper reads, gather over the
    server NIC, regeneration, and the fixed per-repair software cost."""
    profile = cache.get(failed, chunk_size)
    read = max(disk.read_time(h.n_ios, h.nbytes, span=h.span)
               for h in profile.helpers)
    gather = profile.total_read_bytes / NIC_BW
    return (read + gather + DEFAULT_CODEC.regenerate_time(profile.output_bytes)
            + RPC_OVERHEAD)


def degraded_read_64mb(chunk_size: int, code: ClayCode | None = None,
                       disk: DiskModel = HDD,
                       object_size: int = 64 * MB,
                       client_bw: float = CLIENT_BW) -> float:
    """Mean (over the repair cases) pipelined degraded read time."""
    code = code or ClayCode(10, 4)
    cache = ProfileCache(code)
    times = []
    for failed in _case_nodes(code):
        steps = []
        remaining = object_size
        while remaining > 0:
            data = min(chunk_size, remaining)
            # The whole chunk is always repaired; only `data` is sent.
            repair = chunk_repair_time(chunk_size, failed, code, cache, disk)
            steps.append(PipelineStep(repair, data / client_bw))
            remaining -= data
        times.append(degraded_read_time(steps))
    return sum(times) / len(times)


def run(chunk_sizes: tuple[int, ...] = (4 * MB, 8 * MB, 16 * MB, 32 * MB,
                                        64 * MB, 128 * MB, 256 * MB),
        ) -> list[ChunkSizePoint]:
    """Run the experiment; returns its result rows."""
    code = ClayCode(10, 4)
    return [ChunkSizePoint(c, recovery_bandwidth(c, code),
                           degraded_read_64mb(c, code))
            for c in chunk_sizes]


def to_text(points: list[ChunkSizePoint]) -> str:
    """Render the result as a paper-style text table."""
    return format_table(
        ["Chunk size", "Degraded read (ms)", "Recovery disk bw (MB/s)"],
        [[f"{p.chunk_size // MB}MB", round(p.degraded_read_time * 1000),
          round(p.recovery_bandwidth / MB, 1)] for p in points])


def compute() -> dict:
    """Scenario compute: the analytic chunk-size dilemma curve."""
    return {"rows": rows_of(run())}


def scenarios() -> list[Scenario]:
    return [scenario(compute, name="chunk-size", seeded=False)]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, ChunkSizePoint))

"""Shared experiment infrastructure: scheme registry, scaling, sampling.

The paper's evaluation compares *schemes* — a (layout, code) pair with the
§6.1 parameter settings.  This module maps the paper's scheme labels
("Geo-4M", "Con-256M", "Stripe-Max", "RS", ...) to configured
:class:`~repro.cluster.RCStor` systems for either workload, and handles the
capacity scaling: experiments ingest a configurable number of objects and
report both simulated times and times rescaled to the paper's per-disk
capacity (recovery time is linear in per-disk bytes at fixed concurrency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterConfig, HDD, SSD, RCStor
from repro.cluster.disk import DiskModel
from repro.codes import ClayCode, HitchhikerCode, LRCCode, RSCode
from repro.core import (
    ContiguousLayout,
    GeometricLayout,
    StripeLayout,
    StripeMaxLayout,
)
from repro.trace import W1, W2, RequestSampler, Workload

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class WorkloadSetting:
    """Everything §6.1 fixes per workload."""

    name: str
    workload: Workload
    disk_model: DiskModel
    disks_per_node: int
    geo_s0_variants: tuple[int, ...]
    geo_default_s0: int
    contiguous_variants: tuple[int, ...]
    strip_size: int
    max_chunk_size: int
    paper_capacity_per_disk: float  # bytes (Table 2)

    @property
    def scheme_names(self) -> list[str]:
        """All paper scheme labels for this workload."""
        names = [f"Geo-{_label(s)}" for s in self.geo_s0_variants]
        names += [f"Con-{_label(c)}" for c in self.contiguous_variants]
        names += ["Stripe", "Stripe-Max", "RS", "LRC", "HH", "ECPipe"]
        return names


def _label(nbytes: int) -> str:
    if nbytes >= MB:
        return f"{nbytes // MB}M"
    return f"{nbytes // KB}K"


#: W1: large objects on 16 nodes x 6 HDDs (Table 2).
W1_SETTING = WorkloadSetting(
    name="W1", workload=W1, disk_model=HDD, disks_per_node=6,
    geo_s0_variants=(1 * MB, 4 * MB, 16 * MB), geo_default_s0=4 * MB,
    contiguous_variants=(16 * MB, 64 * MB, 256 * MB), strip_size=256 * KB,
    max_chunk_size=256 * MB, paper_capacity_per_disk=255 * GB)

#: W2: small objects on 16 nodes x 1 SSD (Table 2).
W2_SETTING = WorkloadSetting(
    name="W2", workload=W2, disk_model=SSD, disks_per_node=1,
    geo_s0_variants=(128 * KB, 256 * KB), geo_default_s0=128 * KB,
    contiguous_variants=(128 * KB, 512 * KB), strip_size=32 * KB,
    max_chunk_size=256 * MB, paper_capacity_per_disk=4.4 * GB)

#: Settings by name, for scenario parameters (which must be JSON-safe).
SETTINGS: dict[str, WorkloadSetting] = {"W1": W1_SETTING, "W2": W2_SETTING}


def setting_by_name(name: str) -> WorkloadSetting:
    """The §6.1 workload setting for a scenario-parameter name."""
    try:
        return SETTINGS[name]
    except KeyError:
        raise ValueError(f"unknown workload setting {name!r}") from None


def default(value, fallback):
    """``value`` unless it is ``None`` — never treats 0/""/[] as unset."""
    return fallback if value is None else value


@dataclass(frozen=True)
class ExperimentOptions:
    """CLI-level knobs shared by every experiment's ``scenarios()``.

    ``None`` means "use the experiment's own default"; explicit values —
    including falsy ones — always win (resolved with :func:`default`).
    """

    n_objects: int | None = None
    n_requests: int | None = None
    workload: str = "W1"

    @property
    def setting(self) -> WorkloadSetting:
        return setting_by_name(self.workload)


def cluster_config(setting: WorkloadSetting, n_objects: int,
                   client_gbps: float = 1.0) -> ClusterConfig:
    """A cluster scaled so buckets hold a realistic number of chunks while
    a failed disk still spans enough PGs for parallel recovery."""
    n_pgs = int(np.clip(n_objects // 25, 32, 160))
    return ClusterConfig(
        n_nodes=16, disks_per_node=setting.disks_per_node,
        disk_model=setting.disk_model, n_pgs=n_pgs, client_gbps=client_gbps,
        foreground_read_bytes=min(int(setting.workload.mean_request_size),
                                  32 * MB))


def build_system(scheme: str, setting: WorkloadSetting,
                 config: ClusterConfig) -> RCStor:
    """Instantiate the named scheme exactly as §6.1 configures it."""
    k, r = config.k, config.r
    clay = ClayCode(k, r)
    if scheme.startswith("Geo-"):
        s0 = _parse_size(scheme[4:])
        layout = GeometricLayout(s0, 2, max_chunk_size=setting.max_chunk_size)
        return RCStor(config, layout, clay, name=scheme)
    if scheme.startswith("Con-"):
        chunk = _parse_size(scheme[4:])
        return RCStor(config, ContiguousLayout(chunk), clay, name=scheme)
    if scheme == "Stripe":
        return RCStor(config, StripeLayout(setting.strip_size, k), clay,
                      name=scheme)
    if scheme == "Stripe-Max":
        return RCStor(config, StripeMaxLayout(k), clay, name=scheme)
    if scheme == "RS":
        return RCStor(config, StripeLayout(setting.strip_size, k),
                      RSCode(k, r), name=scheme)
    if scheme == "LRC":
        return RCStor(config, StripeLayout(setting.strip_size, k),
                      LRCCode(k, 2, r - 2), name=scheme)
    if scheme == "HH":
        layout = GeometricLayout(setting.geo_default_s0, 2,
                                 max_chunk_size=setting.max_chunk_size)
        return RCStor(config, layout, HitchhikerCode(k, r), name=scheme)
    if scheme == "ECPipe":
        return RCStor(config, StripeLayout(setting.strip_size, k),
                      RSCode(k, r), ecpipe=True, name=scheme)
    raise ValueError(f"unknown scheme {scheme!r}")


def _parse_size(label: str) -> int:
    if label.endswith("M"):
        return int(label[:-1]) * MB
    if label.endswith("K"):
        return int(label[:-1]) * KB
    raise ValueError(f"bad size label {label!r}")


def sample_workload(setting: WorkloadSetting, n_objects: int,
                    seed: int = 0) -> np.ndarray:
    """Draw the workload's object sizes for an experiment."""
    return setting.workload.sample_sizes(np.random.default_rng(seed), n_objects)


def sample_requests(objects, setting: WorkloadSetting, n_requests: int,
                    seed: int = 0) -> list:
    """Pick request targets from candidate objects following the workload's
    size-biased request distribution (Figure 7b / Table 2)."""
    if not objects:
        raise ValueError("no candidate objects")
    sizes = np.array([o.size for o in objects], dtype=np.float64)
    try:
        sampler = RequestSampler(sizes, setting.workload.mean_request_size)
    except ValueError:
        # The candidate subset cannot reach the global mean; keep its shape.
        theta = 0.25 if setting.workload.mean_request_size \
            >= setting.workload.mean_object_size else -0.25
        sampler = RequestSampler(sizes, theta=theta)
    rng = np.random.default_rng(seed)
    return [objects[i] for i in sampler.sample_indices(rng, n_requests)]


def request_size_targets(setting: WorkloadSetting, all_sizes: np.ndarray,
                         n_requests: int, seed: int = 0) -> np.ndarray:
    """Request sizes drawn once from the workload's request distribution,
    shared by every scheme so degraded-read means are comparable."""
    sampler = RequestSampler(all_sizes.astype(np.float64),
                             setting.workload.mean_request_size)
    return sampler.sample_sizes(np.random.default_rng(seed), n_requests)


def nearest_candidates(candidates, target_sizes: np.ndarray) -> list:
    """For each target request size, the candidate object closest in size."""
    if not candidates:
        raise ValueError("no candidate objects")
    sizes = np.array([o.size for o in candidates], dtype=np.float64)
    order = np.argsort(sizes)
    sorted_sizes = sizes[order]
    out = []
    for target in target_sizes:
        pos = int(np.searchsorted(sorted_sizes, target))
        best = min((p for p in (pos - 1, pos) if 0 <= p < len(candidates)),
                   key=lambda p: abs(sorted_sizes[p] - target))
        out.append(candidates[int(order[best])])
    return out


def scale_to_paper(time: float, setting: WorkloadSetting,
                   bytes_per_disk: float) -> float:
    """Rescale a recovery time to the paper's per-disk capacity."""
    if bytes_per_disk <= 0:
        return 0.0
    return time * setting.paper_capacity_per_disk / bytes_per_disk


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table (paper-style row rendering for the benches)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.3g}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

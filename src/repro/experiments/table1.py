"""Table 1 — Codes Comparison.

Derived exactly from the code implementations: MDS property, average
single-failure read-traffic ratio, storage overhead, and sub-packetization.
Paper values: RS(10,4) 10 / 140% / 1; LRC(10,2,2) 5.71 / 140% / 1;
Clay(10,4) 3.25 / 140% / 256.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import ClayCode, LRCCode, RSCode
from repro.experiments.common import format_table
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows


@dataclass(frozen=True)
class CodeRow:
    name: str
    is_mds: bool
    read_traffic: float
    storage_percent: float
    sub_packetization: int


def run(k: int = 10, r: int = 4, lrc_locals: int = 2) -> list[CodeRow]:
    """Run the experiment; returns its result rows."""
    codes = [RSCode(k, r), LRCCode(k, lrc_locals, r - lrc_locals), ClayCode(k, r)]
    rows = []
    for code in codes:
        rows.append(CodeRow(
            name=code.name,
            is_mds=code.is_mds,
            read_traffic=code.average_repair_read_ratio(code.alpha * 4),
            storage_percent=100.0 * code.storage_overhead,
            sub_packetization=code.alpha,
        ))
    return rows


def to_text(rows: list[CodeRow]) -> str:
    """Render the result as a paper-style text table."""
    return format_table(
        ["Code", "MDS", "Read traffic", "Storage", "Sub-packetization"],
        [[r.name, "Yes" if r.is_mds else "No", round(r.read_traffic, 2),
          f"{r.storage_percent:.0f}%", r.sub_packetization] for r in rows])


def compute(k: int = 10, r: int = 4, lrc_locals: int = 2) -> dict:
    """Scenario compute: the code-comparison rows (deterministic)."""
    return {"rows": rows_of(run(k=k, r=r, lrc_locals=lrc_locals))}


def scenarios(k: int = 10, r: int = 4, lrc_locals: int = 2) -> list[Scenario]:
    return [scenario(compute, name="codes", seeded=False,
                     k=k, r=r, lrc_locals=lrc_locals)]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, CodeRow))

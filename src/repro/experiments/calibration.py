"""Calibration of the disk model against the paper's own Figure 4.

Figure 4 is the paper's microbenchmark of Clay(10,4) repair on a single
HDD; it pins this simulator's two free HDD constants (positioning cost and
sequential bandwidth).  :func:`check` verifies the anchors and is run by
the test-suite so that future model changes cannot silently drift away
from the published curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import fig4
from repro.runner import ExperimentResult, Scenario, rows_of, scenario, typed_rows

MB = 1 << 20


@dataclass(frozen=True)
class Anchor:
    name: str
    measured: float
    paper: float
    rel_tolerance: float

    @property
    def ok(self) -> bool:
        return abs(self.measured - self.paper) <= self.rel_tolerance * self.paper


def anchors() -> list[Anchor]:
    """Compute the calibration anchors against Figure 4."""
    bw_4mb = fig4.recovery_bandwidth(4 * MB) / MB
    bw_256mb = fig4.recovery_bandwidth(256 * MB) / MB
    t_4mb = fig4.degraded_read_64mb(4 * MB) * 1000
    t_256mb = fig4.degraded_read_64mb(256 * MB) * 1000
    return [
        Anchor("recovery bandwidth @4MB chunks (MB/s)", bw_4mb, 40.0, 0.35),
        Anchor("recovery bandwidth @256MB chunks (MB/s)", bw_256mb, 172.0, 0.15),
        Anchor("degraded read 64MB @4MB chunks (ms)", t_4mb, 700.0, 0.25),
        Anchor("degraded read 64MB @256MB chunks (ms)", t_256mb, 1320.0, 0.3),
    ]


def check() -> list[Anchor]:
    """All anchors; raises AssertionError naming the first violated one."""
    result = anchors()
    for anchor in result:
        assert anchor.ok, (f"calibration drift: {anchor.name} = "
                           f"{anchor.measured:.1f}, paper {anchor.paper:.1f}")
    return result


def to_text(result: list[Anchor]) -> str:
    """Render the result as a paper-style text table."""
    from repro.experiments.common import format_table

    return format_table(
        ["Anchor", "Measured", "Paper", "Within tolerance"],
        [[a.name, round(a.measured, 1), a.paper, "yes" if a.ok else "NO"]
         for a in result])


def compute() -> dict:
    """Scenario compute: the Figure 4 calibration anchors."""
    return {"rows": rows_of(anchors())}


def scenarios() -> list[Scenario]:
    return [scenario(compute, name="calibration", seeded=False)]


def render(results: list[ExperimentResult]) -> str:
    return to_text(typed_rows(results, Anchor))

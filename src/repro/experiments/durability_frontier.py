"""durability-frontier: P(data loss) vs repair speed, Monte-Carlo at fleet
scale.

The paper shows geometric partitioning repairs faster (Table 3) and the
``durability`` experiment converts that into an analytic MTTDL — under
independence assumptions a fleet never satisfies.  This experiment runs
the :mod:`repro.reliability.fleet` Monte-Carlo engine instead: 10k+
disks over ten simulated years per trial, with latent sector errors
raced by scrubbing against repair reads, whole-rack failure bursts and
ToR outages routed through the rack map, and a risk-aware repair queue
bounded by finite rebuild streams.

Each grid point is one ``(scheme, policy, repetition)``: the cluster
simulator first *calibrates* the scheme's repair time (a real recovery
run, rescaled to the paper's per-disk capacity and then to fleet-class
disks), and the fleet engine then sweeps that repair time across
speed-up factors — the frontier's x-axis.  Schemes and policies inside
one repetition share a seed group, so they face literally the same
failure history; repetitions differ, feeding the confidence intervals.

The stochastic regime is deliberately *accelerated* (AFR, latent-error
and burst rates well above field values) so a tractable number of trials
observes losses for every scheme; the comparison between schemes,
policies and repair speeds is the result, not the absolute rates.  Two
stories the analytic chain cannot tell: ``rack_aware``'s dense per-rack
packing aligns stripes with the burst blast radius (a whole-rack burst
puts many PGs at their fatal boundary at once), and the latent-error
loss floor is set by scrub staleness, not repair speed — the regime
where faster repair stops buying durability.

Not part of ``python -m repro.experiments all`` (that set is pinned
byte-for-byte by ``results/expected_all_300.json.gz``); run it as
``python -m repro.experiments durability-frontier [--policies a,b]
[--fleet-disks N] [--fleet-years Y] [--reps R] [--trials T]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterConfig
from repro.experiments.common import (
    build_system,
    cluster_config,
    format_table,
    sample_workload,
    scale_to_paper,
    setting_by_name,
)
from repro.obs import get_default_observer
from repro.reliability import (
    FleetParams,
    FleetSim,
    estimate_mttdl,
    fatal_probabilities_for_code,
    loss_probability,
)
from repro.runner import (
    ExperimentResult,
    Scenario,
    canonical_json,
    rows_of,
    scenario,
    typed_rows,
)

#: Geometric partitioning vs the baselines ("Stripe" = striped Clay).
SCHEMES = ("Geo-4M", "Stripe", "RS", "LRC")

POLICIES = ("flat_random", "rack_aware")

#: Repair-time multipliers swept per grid point (1.0 = calibrated speed;
#: 0.25 = 4x slower, 4.0 = 4x faster) — the frontier's x-axis.
SPEEDUPS = (0.25, 1.0, 4.0)

#: Fleet disks hold ~64x the paper testbed's 255 GB per-disk capacity
#: (16 TB class); repair time scales linearly with capacity at fixed
#: rebuild concurrency.
CAPACITY_SCALE = 64.0

#: The accelerated stress regime (see module docstring): annualised
#: rates far above field values so every scheme shows observable losses.
FLEET_AFR = 0.15
FLEET_NODE_AFR = 0.05
FLEET_LSE_RATE = 0.2           # hidden errors per disk-year
FLEET_SCRUB_HOURS = 336.0      # two-week scrub cycle
FLEET_REPAIR_STREAMS = 192
FLEET_BURST_RATE = 0.5         # whole-rack bursts per fleet-year
FLEET_TOR_RATE = 2.0           # ToR outages per fleet-year
FLEET_TOR_HOURS = 24.0
FLEET_TOR_FACTOR = 4.0

DEFAULT_DISKS = 10_240
DEFAULT_YEARS = 10.0
DEFAULT_REPS = 3
DEFAULT_TRIALS = 3


@dataclass(frozen=True)
class FrontierRow:
    """One Monte-Carlo trial at one grid point."""

    scheme: str
    policy: str
    rep: int
    trial: int
    repair_speedup: float
    repair_hours: float
    years: float
    n_disks: int
    n_pgs: int
    n_losses: int
    first_loss_years: float | None
    disk_failures: int
    node_failures: int
    rack_bursts: int
    tor_outages: int
    lse_scrubbed: int
    lse_surfaced: int
    repairs_completed: int
    repair_wait_hours: float
    peak_damaged_pgs: int


def fleet_config(n_disks: int, policy: str, pg_seed: int) -> ClusterConfig:
    """A fleet-shaped cluster: 8-disk nodes in ~40-node racks, PGs sized
    so every disk serves ~7 groups."""
    if n_disks % 8:
        raise ValueError("fleet size must be a multiple of 8 disks")
    n_nodes = n_disks // 8
    n_racks = max(2, n_nodes // 40)
    nodes_per_rack = -(-n_nodes // n_racks)
    return ClusterConfig(
        n_nodes=n_nodes, disks_per_node=8, n_racks=n_racks,
        nodes_per_rack=nodes_per_rack, n_pgs=n_disks // 2,
        placement=policy, pg_seed=pg_seed)


def calibrate_repair_hours(scheme: str, n_objects: int, seed: int) -> float:
    """Measured recovery time of one fleet-class disk for ``scheme``.

    A real cluster-simulator recovery run, rescaled first to the paper's
    per-disk capacity (recovery time is linear in per-disk bytes at
    fixed concurrency) and then to fleet-class disk capacity.
    """
    ws = setting_by_name("W1")
    system = build_system(scheme, ws, cluster_config(ws, n_objects))
    system.ingest(sample_workload(ws, n_objects, seed))
    report = system.run_recovery(0, seed=seed + 1)
    paper_s = scale_to_paper(report.makespan, ws, report.repaired_bytes)
    return paper_s / 3600.0 * CAPACITY_SCALE


def compute_frontier(scheme: str, policy: str, rep: int,
                     n_disks: int = DEFAULT_DISKS,
                     years: float = DEFAULT_YEARS,
                     n_trials: int = DEFAULT_TRIALS,
                     speedups=SPEEDUPS, n_objects: int = 600,
                     seed: int = 0) -> dict:
    """Scenario compute: calibrate one scheme, then sweep repair speed."""
    base_hours = calibrate_repair_hours(scheme, n_objects, seed)
    ws = setting_by_name("W1")
    code = build_system(scheme, ws, cluster_config(ws, n_objects)).code
    q = tuple(fatal_probabilities_for_code(code))
    sim = FleetSim.from_cluster(fleet_config(n_disks, policy, rep + 1),
                                obs=get_default_observer())
    children = np.random.SeedSequence(seed).spawn(len(speedups) * n_trials)
    rows = []
    for i, speedup in enumerate(speedups):
        params = FleetParams(
            fatal_probabilities=q, years=years, afr=FLEET_AFR,
            node_afr=FLEET_NODE_AFR, lse_rate=FLEET_LSE_RATE,
            scrub_interval_hours=FLEET_SCRUB_HOURS,
            repair_hours=base_hours / speedup,
            repair_streams=FLEET_REPAIR_STREAMS, risk_aware=True,
            rack_burst_rate=FLEET_BURST_RATE, burst_node_fraction=1.0,
            tor_outage_rate=FLEET_TOR_RATE,
            tor_outage_hours=FLEET_TOR_HOURS,
            tor_repair_factor=FLEET_TOR_FACTOR)
        for t in range(n_trials):
            r = sim.run_trial(params, children[i * n_trials + t])
            rows.append(FrontierRow(
                scheme=scheme, policy=policy, rep=rep, trial=t,
                repair_speedup=float(speedup),
                repair_hours=params.repair_hours, years=r.years,
                n_disks=r.n_disks, n_pgs=r.n_pgs, n_losses=r.n_losses,
                first_loss_years=r.first_loss_years,
                disk_failures=r.disk_failures,
                node_failures=r.node_failures, rack_bursts=r.rack_bursts,
                tor_outages=r.tor_outages, lse_scrubbed=r.lse_scrubbed,
                lse_surfaced=r.lse_surfaced,
                repairs_completed=r.repairs_completed,
                repair_wait_hours=r.repair_wait_hours,
                peak_damaged_pgs=r.peak_damaged_pgs))
    return {"rows": rows_of(rows),
            "meta": {"base_repair_hours": base_hours,
                     "fatal_probabilities": list(q)}}


def scenarios(n_objects: int | None = None,
              policies: tuple[str, ...] | None = None,
              n_disks: int | None = None, years: float | None = None,
              reps: int | None = None,
              n_trials: int | None = None) -> list[Scenario]:
    n = n_objects if n_objects is not None else 600
    nd = n_disks if n_disks is not None else DEFAULT_DISKS
    yr = years if years is not None else DEFAULT_YEARS
    rp = reps if reps is not None else DEFAULT_REPS
    nt = n_trials if n_trials is not None else DEFAULT_TRIALS
    pols = tuple(policies) if policies else POLICIES
    units = []
    for rep in range(rp):
        # One seed group per repetition: every scheme and policy inside
        # it faces the same failure history; repetitions vary the draws.
        group = canonical_json(["durability-frontier", rep, nd, yr, nt, n])
        units.extend(
            scenario(compute_frontier, name=f"{s}/{p}/rep{rep}",
                     seed_group=group, scheme=s, policy=p, rep=rep,
                     n_disks=nd, years=yr, n_trials=nt, n_objects=n)
            for s in SCHEMES for p in pols)
    return units


def _fmt_hours(hours: float) -> str:
    return "inf" if hours == float("inf") else f"{hours:.3g}"


def render(results: list[ExperimentResult]) -> str:
    rows = typed_rows(results, FrontierRow)
    grid: dict[tuple[str, str, float], list[FrontierRow]] = {}
    for r in rows:
        grid.setdefault((r.scheme, r.policy, r.repair_speedup), []).append(r)
    out = []
    for (s, p, speedup) in sorted(
            grid, key=lambda k: (SCHEMES.index(k[0]) if k[0] in SCHEMES
                                 else len(SCHEMES), k[1], -k[2])):
        cell = grid[(s, p, speedup)]
        est = estimate_mttdl([r.n_losses for r in cell],
                             [r.years for r in cell])
        lp = loss_probability([r.first_loss_years for r in cell],
                              horizon_years=cell[0].years)
        out.append([
            s, p, f"{cell[0].repair_hours:.1f}",
            len(cell), est.n_losses,
            f"{_fmt_hours(est.mttdl_hours)} "
            f"[{_fmt_hours(est.lo_hours)}, {_fmt_hours(est.hi_hours)}]",
            f"{lp.p:.2f} [{lp.lo:.2f}, {lp.hi:.2f}]"])
    table = format_table(
        ["Scheme", "Policy", "Repair (h)", "Trials", "Losses",
         "MTTDL (h) [95% CI]", "P(loss, horizon) [95% CI]"],
        out)
    return (table + "\n\nAccelerated stress regime (rates above field "
            "values); compare across rows, not against production "
            "absolutes.  Faster repair shrinks the overlap-failure "
            "window; the scrub-staleness loss floor it cannot touch.")

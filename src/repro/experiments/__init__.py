"""Reproduction of every table and figure in the paper's evaluation.

One module per experiment (see DESIGN.md §4 for the index).  Each module
exposes three layers:

* ``run(...)`` — the typed in-process API (dataclass rows), used by the
  benches under ``benchmarks/`` and the test-suite;
* ``scenarios(...)`` — the same work declared as
  :class:`~repro.runner.Scenario` units (one per scheme/grid point where
  the experiment fans out), for the parallel, cached runner;
* ``render(results)`` — a pure function from the runner's
  :class:`~repro.runner.ExperimentResult` rows back to the paper-style
  text table.

``python -m repro.experiments`` wires these into the CLI.
"""

from repro.experiments.common import (
    SETTINGS,
    W1_SETTING,
    W2_SETTING,
    ExperimentOptions,
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    sample_requests,
    setting_by_name,
)

__all__ = [
    "SETTINGS",
    "W1_SETTING",
    "W2_SETTING",
    "ExperimentOptions",
    "WorkloadSetting",
    "build_system",
    "cluster_config",
    "format_table",
    "sample_requests",
    "setting_by_name",
]

"""Reproduction of every table and figure in the paper's evaluation.

One module per experiment (see DESIGN.md §4 for the index); each exposes a
``run(...)`` returning a result object with the numbers, plus ``to_text()``
for a paper-style rendering.  The per-experiment benches under
``benchmarks/`` call these and print the rows.
"""

from repro.experiments.common import (
    W1_SETTING,
    W2_SETTING,
    WorkloadSetting,
    build_system,
    cluster_config,
    format_table,
    sample_requests,
)

__all__ = [
    "W1_SETTING",
    "W2_SETTING",
    "WorkloadSetting",
    "build_system",
    "cluster_config",
    "format_table",
    "sample_requests",
]

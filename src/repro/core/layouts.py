"""Data layouts compared by the paper (§3.2, §4, Table 5).

A :class:`Layout` maps an object to :class:`ObjectPlacement` — the ordered
list of :class:`PlacedChunk` the degraded-read pipeline walks, plus where
each chunk lives relative to the object's disks:

* **Geometric** (the paper's contribution): front cut to an RS-coded
  small-size-bucket, then chunks of geometrically growing size, all on one
  disk.
* **Contiguous** (Facebook f4 style): objects packed unaligned into a fixed
  chunk grid; degraded reads repair every *touched* chunk (read
  amplification).
* **Stripe** (HDFS-3/QFS style): object split into fixed strips round-robin
  over ``k`` disks; a failure leaves 1/k of strips to repair, with repair
  granularity equal to the strip size.
* **Stripe-Max**: one strip per disk of size ``object/k`` — the largest
  chunk size stripe admits without read amplification.

``stored_bytes`` is each chunk's repair granularity: the bytes that must be
regenerated to produce the chunk, which exceeds ``data_bytes`` exactly when
the layout suffers read amplification.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.partitioning import GeometricPartitioner

RS_KIND = "rs"
REGENERATING_KIND = "regenerating"


class PlacedChunk:
    """One unit of degraded-read pipelining.

    A plain slotted class rather than a frozen dataclass: placements are
    recomputed per degraded read, so hundreds of thousands of chunks are
    built per experiment and the frozen-dataclass ``object.__setattr__``
    per field dominates layout time.  Treat instances as immutable.
    """

    __slots__ = ("data_bytes", "stored_bytes", "code_kind", "level",
                 "disk_index", "needs_repair")

    def __init__(self, data_bytes: int, stored_bytes: int,
                 code_kind: str = REGENERATING_KIND,
                 level: int | None = None, disk_index: int = 0,
                 needs_repair: bool = True):
        if data_bytes <= 0 or stored_bytes < data_bytes:
            raise ValueError(
                f"need 0 < data_bytes <= stored_bytes, got {data_bytes}/{stored_bytes}")
        if code_kind is not REGENERATING_KIND \
                and code_kind not in (RS_KIND, REGENERATING_KIND):
            raise ValueError(f"unknown code kind {code_kind}")
        self.data_bytes = data_bytes
        self.stored_bytes = stored_bytes
        self.code_kind = code_kind
        self.level = level
        self.disk_index = disk_index
        self.needs_repair = needs_repair

    def __repr__(self) -> str:
        return (f"PlacedChunk(data_bytes={self.data_bytes}, "
                f"stored_bytes={self.stored_bytes}, "
                f"code_kind={self.code_kind!r}, level={self.level}, "
                f"disk_index={self.disk_index}, "
                f"needs_repair={self.needs_repair})")


@dataclass(slots=True)
class ObjectPlacement:
    """How one object is cut up and spread over its disk(s)."""

    layout_name: str
    object_size: int
    chunks: list[PlacedChunk]
    spans_disks: bool = False

    def __post_init__(self):
        total = sum(c.data_bytes for c in self.chunks)
        if total != self.object_size:
            raise ValueError(
                f"chunks carry {total} bytes, object is {self.object_size}")

    @property
    def repaired_bytes(self) -> int:
        """Bytes regenerated during a full degraded read."""
        return sum(c.stored_bytes for c in self.chunks if c.needs_repair)

    @property
    def read_amplification(self) -> float:
        """Repaired bytes per unavailable object byte (1.0 = none)."""
        unavailable = sum(c.data_bytes for c in self.chunks if c.needs_repair)
        if unavailable == 0:
            return 1.0
        return self.repaired_bytes / unavailable

    def chunks_on_disk(self, disk_index: int) -> list[PlacedChunk]:
        """Chunks placed on the given relative disk index."""
        return [c for c in self.chunks if c.disk_index == disk_index]

    @property
    def n_chunks(self) -> int:
        """Number of chunks currently held."""
        return len(self.chunks)

    @property
    def average_stored_chunk(self) -> float:
        """Mean stored size of the regenerating-code chunks."""
        regen = [c.stored_bytes for c in self.chunks if c.code_kind == REGENERATING_KIND]
        return sum(regen) / len(regen) if regen else 0.0


class Layout(ABC):
    """Maps object sizes to placements."""

    name: str = "abstract"
    spans_disks: bool = False

    @abstractmethod
    def place(self, object_size: int) -> ObjectPlacement:
        """Placement of a single object (deterministic)."""


class GeometricLayout(Layout):
    """Geometric Partitioning: front cut + geometric chunks on one disk.

    ``front_cut=False`` is the §4.1 ablation: the front is *padded* into a
    regenerating-code chunk of size s0 instead of going to an RS-coded
    small-size-bucket, reintroducing read amplification on the front.
    """

    spans_disks = False

    def __init__(self, s0: int, q: int = 2, max_chunk_size: int | None = None,
                 front_cut: bool = True):
        self.partitioner = GeometricPartitioner(s0, q, max_chunk_size)
        self.front_cut = front_cut
        self.name = f"Geo-{_fmt_size(s0)}" if q == 2 else f"Geo-{_fmt_size(s0)}-q{q}"
        if not front_cut:
            self.name += "-nocut"

    @property
    def s0(self) -> int:
        """The smallest (initial) chunk size."""
        return self.partitioner.s0

    @property
    def q(self) -> int:
        """The geometric common ratio."""
        return self.partitioner.q

    def place(self, object_size: int) -> ObjectPlacement:
        part = self.partitioner.partition(object_size)
        chunks: list[PlacedChunk] = []
        if part.front:
            if self.front_cut:
                chunks.append(PlacedChunk(part.front, part.front, RS_KIND))
            else:
                # Ablation: pad the front into a full s0 chunk.
                chunks.append(PlacedChunk(part.front, self.partitioner.s0,
                                          REGENERATING_KIND, level=1))
        for spec in part.chunks():
            chunks.append(PlacedChunk(spec.size, spec.size, REGENERATING_KIND,
                                      level=spec.level))
        return ObjectPlacement(self.name, object_size, chunks)


class ContiguousLayout(Layout):
    """Unaligned packing into a fixed chunk grid (read amplification)."""

    spans_disks = False

    def __init__(self, chunk_size: int):
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        self.chunk_size = chunk_size
        self.name = f"Con-{_fmt_size(chunk_size)}"

    def place(self, object_size: int, start_offset: int = 0) -> ObjectPlacement:
        """``start_offset`` is the object's packing offset within the grid;
        objects are packed back-to-back, so offsets are arbitrary."""
        if object_size <= 0:
            raise ValueError("object size must be positive")
        chunks: list[PlacedChunk] = []
        pos = start_offset % self.chunk_size
        remaining = object_size
        while remaining > 0:
            in_chunk = min(self.chunk_size - pos, remaining)
            chunks.append(PlacedChunk(in_chunk, self.chunk_size, REGENERATING_KIND))
            remaining -= in_chunk
            pos = 0
        return ObjectPlacement(self.name, object_size, chunks)


class StripeLayout(Layout):
    """Fixed-strip striping across the k data disks."""

    spans_disks = True

    def __init__(self, strip_size: int, k: int = 10):
        if strip_size <= 0 or k <= 0:
            raise ValueError("invalid stripe parameters")
        self.strip_size = strip_size
        self.k = k
        self.name = f"Stripe-{_fmt_size(strip_size)}"

    def place(self, object_size: int, failed_disk: int = 0,
              start_role: int = 0) -> ObjectPlacement:
        """``failed_disk`` selects which of the k round-robin positions is
        unavailable (only those strips need repair in a degraded read).
        ``start_role`` rotates the first strip's disk, as block-group
        placement does in real striped stores — without it, sub-strip-count
        objects would pile onto the first few disks."""
        if object_size <= 0:
            raise ValueError("object size must be positive")
        chunks: list[PlacedChunk] = []
        append = chunks.append
        strip = self.strip_size
        k = self.k
        failed = failed_disk % k
        remaining = object_size
        i = start_role
        while remaining > 0:
            size = strip if strip < remaining else remaining
            disk = i % k
            append(PlacedChunk(size, size, REGENERATING_KIND,
                               disk_index=disk,
                               needs_repair=disk == failed))
            remaining -= size
            i += 1
        return ObjectPlacement(self.name, object_size, chunks, spans_disks=True)


class StripeMaxLayout(Layout):
    """One strip per data disk: strip size = object size / k."""

    spans_disks = True
    name = "Stripe-Max"

    def __init__(self, k: int = 10):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def place(self, object_size: int, failed_disk: int = 0) -> ObjectPlacement:
        if object_size <= 0:
            raise ValueError("object size must be positive")
        base = object_size // self.k
        extra = object_size % self.k
        chunks: list[PlacedChunk] = []
        for disk in range(self.k):
            size = base + (1 if disk < extra else 0)
            if size == 0:
                continue
            chunks.append(PlacedChunk(size, size, REGENERATING_KIND,
                                      disk_index=disk,
                                      needs_repair=(disk == failed_disk % self.k)))
        return ObjectPlacement(self.name, object_size, chunks, spans_disks=True)


def _fmt_size(n: int) -> str:
    """4194304 -> '4M', 131072 -> '128K' (paper's scheme labels)."""
    for unit, label in ((1 << 30, "G"), (1 << 20, "M"), (1 << 10, "K")):
        if n >= unit and n % unit == 0:
            return f"{n // unit}{label}"
        if n >= unit:
            return f"{n / unit:.1f}{label}"
    return str(n)

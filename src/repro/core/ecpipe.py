"""ECPipe-style repair pipelining (Li et al., ATC'17) — analytic model.

The paper evaluates ECPipe as a baseline: instead of ``k`` helpers each
sending a full strip to one aggregator (whose ingress link serialises
``k x strip`` bytes), ECPipe chains the helpers and streams *partial sums*
packet by packet, so repair time approaches a single strip transfer:

    star:    k * S / B
    ecpipe:  S / B + (k - 1) * p / B      (p = packet size)

With ``p = S`` the chain degenerates to the star (no pipelining); smaller
packets shrink the pipeline-fill term at the cost of per-packet overhead.
ECPipe requires addition-associative codes, which is why the paper cannot
apply it to Clay (§7 "Network Pipelining").
"""

from __future__ import annotations

import math


def star_repair_time(strip_size: int, k: int, link_bandwidth: float) -> float:
    """Conventional aggregation: k full strips through one ingress link."""
    if strip_size <= 0 or k <= 0 or link_bandwidth <= 0:
        raise ValueError("arguments must be positive")
    return k * strip_size / link_bandwidth


def ecpipe_repair_time(strip_size: int, k: int, link_bandwidth: float,
                       packet_size: int,
                       per_packet_overhead: float = 0.0) -> float:
    """Chained pipelined repair with the given packet size."""
    if packet_size <= 0:
        raise ValueError("packet size must be positive")
    if strip_size <= 0 or k <= 0 or link_bandwidth <= 0:
        raise ValueError("arguments must be positive")
    packet = min(packet_size, strip_size)
    n_packets = math.ceil(strip_size / packet)
    stream = strip_size / link_bandwidth
    fill = (k - 1) * packet / link_bandwidth
    return stream + fill + (n_packets + k - 1) * per_packet_overhead


def speedup(strip_size: int, k: int, link_bandwidth: float,
            packet_size: int, per_packet_overhead: float = 0.0) -> float:
    """Star-over-ECPipe repair-time ratio (approaches k for small packets)."""
    return (star_repair_time(strip_size, k, link_bandwidth)
            / ecpipe_repair_time(strip_size, k, link_bandwidth, packet_size,
                                 per_packet_overhead))


def optimal_packet_size(strip_size: int, k: int, link_bandwidth: float,
                        per_packet_overhead: float) -> int:
    """Packet size minimising repair time: balances the (k-1)·p/B pipeline
    fill against per-packet overhead S/p·c — the classic sqrt trade-off."""
    if per_packet_overhead <= 0:
        return 1
    p = math.sqrt(strip_size * per_packet_overhead * link_bandwidth / (k - 1)) \
        if k > 1 else strip_size
    return max(1, min(strip_size, int(p)))

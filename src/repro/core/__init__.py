"""The paper's primary contribution: Geometric Partitioning.

* :mod:`repro.core.partitioning` — Algorithm 1 (two-pass scan) and the
  front cut.
* :mod:`repro.core.buckets` — fixed-chunk-size buckets and RS-coded
  small-size-buckets.
* :mod:`repro.core.layouts` — Geometric / Contiguous / Stripe / Stripe-Max
  data layouts (§3.2, §4), the objects the evaluation compares.
* :mod:`repro.core.pipeline` — the repair/transfer pipelining model of
  Figures 3 and 8.
* :mod:`repro.core.tuning` — (s0, q) parameter grid search (§4.4).
"""

from repro.core.buckets import Bucket, SmallSizeBucket
from repro.core.partitioning import ChunkSpec, GeometricPartitioner, Partition
from repro.core.layouts import (
    ContiguousLayout,
    GeometricLayout,
    Layout,
    ObjectPlacement,
    PlacedChunk,
    StripeLayout,
    StripeMaxLayout,
)
from repro.core.pipeline import PipelineStep, degraded_read_time, pipeline_timeline

__all__ = [
    "Bucket",
    "SmallSizeBucket",
    "ChunkSpec",
    "GeometricPartitioner",
    "Partition",
    "ContiguousLayout",
    "GeometricLayout",
    "Layout",
    "ObjectPlacement",
    "PlacedChunk",
    "StripeLayout",
    "StripeMaxLayout",
    "PipelineStep",
    "degraded_read_time",
    "pipeline_timeline",
]

"""Geometric Partitioning — Algorithm 1 of the paper.

An object of size ``S`` is represented as

    S = R + sum_i a_i * s0 * q**(i-1)

where ``R = S mod s0`` is the *front cut* (stored in an RS-coded
small-size-bucket) and ``a_i`` counts the chunks of level ``i`` (stored in
regenerating-code buckets of chunk size ``s0 * q**(i-1)``).  The two-pass
scan guarantees every coefficient up to the top level is non-zero, bounding
the ratio of adjacent chunk sizes so repair of chunk ``i+1`` can overlap the
transfer of chunk ``i`` (Figure 8).

Chunks are laid out in ascending size order after the front, which is also
the degraded-read transfer order: the pipeline starts on the smallest chunk.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChunkSpec:
    """One chunk of a partitioned object.

    ``level`` is 1-based; the chunk lives in the bucket whose chunk size is
    ``size``.  ``offset`` is the byte offset within the (front-cut) object.
    """

    level: int
    size: int
    offset: int


@dataclass(frozen=True)
class Partition:
    """Result of partitioning one object."""

    object_size: int
    s0: int
    q: int
    front: int
    counts: tuple[int, ...]

    def __post_init__(self):
        total = self.front + sum(
            a * self.s0 * self.q ** i for i, a in enumerate(self.counts))
        if total != self.object_size:
            raise ValueError(
                f"partition does not cover object: {total} != {self.object_size}")

    @property
    def n_levels(self) -> int:
        """Number of geometric levels used by this partition."""
        return len(self.counts)

    def level_size(self, level: int) -> int:
        """Chunk size of a 1-based level."""
        return self.s0 * self.q ** (level - 1)

    def chunks(self) -> list[ChunkSpec]:
        """All chunks in object byte order (ascending level)."""
        out: list[ChunkSpec] = []
        offset = self.front
        for level0, count in enumerate(self.counts):
            size = self.s0 * self.q ** level0
            for _ in range(count):
                out.append(ChunkSpec(level0 + 1, size, offset))
                offset += size
        return out

    @property
    def n_chunks(self) -> int:
        """Number of chunks currently held."""
        return sum(self.counts)

    @property
    def partitioned_bytes(self) -> int:
        """Bytes in regenerating-code buckets (everything but the front)."""
        return self.object_size - self.front

    @property
    def average_chunk_size(self) -> float:
        """Mean chunk size weighted by nothing — the §6.3 metric divides
        partitioned bytes by chunk count."""
        if self.n_chunks == 0:
            return 0.0
        return self.partitioned_bytes / self.n_chunks

    @property
    def max_adjacent_ratio(self) -> float:
        """Largest size ratio between consecutive chunks (pipelining bound)."""
        sizes = [c.size for c in self.chunks()]
        if len(sizes) < 2:
            return 1.0
        return max(b / a for a, b in zip(sizes, sizes[1:]))


class GeometricPartitioner:
    """Algorithm 1: two-pass scan with optional top chunk-size cap.

    ``max_chunk_size`` reproduces RCStor's memory-pool rule of never
    allocating chunks above 256 MB (§5.2); levels stop growing there and the
    top level absorbs the remainder with a larger count.
    """

    def __init__(self, s0: int, q: int = 2, max_chunk_size: int | None = None):
        if s0 <= 0:
            raise ValueError("s0 must be positive")
        if q < 1:
            raise ValueError("q must be at least 1")
        if max_chunk_size is not None and max_chunk_size < s0:
            raise ValueError("max_chunk_size must be >= s0")
        self.s0 = s0
        self.q = q
        self.max_chunk_size = max_chunk_size

    def level_size(self, level: int) -> int:
        """Chunk size of a 1-based level."""
        return self.s0 * self.q ** (level - 1)

    @property
    def max_level(self) -> int | None:
        """Largest level allowed by max_chunk_size (None = unbounded)."""
        if self.max_chunk_size is None:
            return None
        if self.q == 1:
            # A constant sequence: every level is s0; cap at one level.
            return 1
        level = 1
        while self.level_size(level + 1) <= self.max_chunk_size:
            level += 1
        return level

    def partition(self, size: int) -> Partition:
        """Apply Algorithm 1 to an object size."""
        if size < 0:
            raise ValueError("object size must be non-negative")
        remaining = size
        counts: list[int] = []
        cap = self.max_level
        # Pass 1: walk up the sequence, taking one chunk per level.
        level = 1
        while remaining >= self.level_size(level) and (cap is None or level <= cap):
            counts.append(1)
            remaining -= self.level_size(level)
            level += 1
        # Pass 2: greedily re-fill from the largest level downward.
        for level in range(len(counts), 0, -1):
            chunk = self.level_size(level)
            while remaining >= chunk:
                remaining -= chunk
                counts[level - 1] += 1
        return Partition(size, self.s0, self.q, remaining, tuple(counts))


def greedy_partition(size: int, s0: int, q: int = 2,
                     max_chunk_size: int | None = None) -> Partition:
    """The naive single-pass alternative to Algorithm 1 (§4.3's foil).

    Repeatedly takes the largest chunk that fits.  A 20 MB object becomes
    16 MB + 4 MB — a size gap of q² between adjacent chunks, so the repair
    of the big chunk cannot hide behind the transfer of the small one.
    Exists for the ablation benchmarks; production code uses
    :class:`GeometricPartitioner`.
    """
    if size < 0:
        raise ValueError("object size must be non-negative")
    helper = GeometricPartitioner(s0, q, max_chunk_size)
    cap = 1 if q == 1 else helper.max_level
    counts: list[int] = []
    remaining = size
    while remaining >= s0:
        level = 1
        while ((cap is None or level < cap)
               and helper.level_size(level + 1) <= remaining):
            level += 1
        while len(counts) < level:
            counts.append(0)
        counts[level - 1] += 1
        remaining -= helper.level_size(level)
    return Partition(size, s0, q, remaining, tuple(counts))

"""The degraded-read pipelining model (Figures 3 and 8).

A degraded read walks the object's chunks in transfer order.  Repairs of
successive chunks serialize (they compete for the same helper disks), while
each repaired chunk's transfer to the client overlaps the next repair:

    repair_done[i]   = repair_done[i-1] + repair[i]
    transfer_done[i] = max(transfer_done[i-1], repair_done[i]) + transfer[i]

Degraded read time is ``transfer_done[n]``.  Chunks that need no repair
(available strips of a striped layout, cached data) carry ``repair == 0``.

The model makes the paper's core claims computable: with chunk sizes in a
geometric sequence of ratio q, each repair can *predate* the transfer of
the previous chunk whenever per-byte repair is at most q/(q-1) times slower
than per-byte transfer of the previous (q-times-smaller) chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PipelineStep:
    """One chunk's timing contribution."""

    repair_time: float
    transfer_time: float
    label: str = ""

    def __post_init__(self):
        if self.repair_time < 0 or self.transfer_time < 0:
            raise ValueError("times must be non-negative")


@dataclass(frozen=True)
class StepTimeline:
    label: str
    repair_start: float
    repair_end: float
    transfer_start: float
    transfer_end: float


def pipeline_timeline(steps: Sequence[PipelineStep]) -> list[StepTimeline]:
    """Full schedule of the repair/transfer pipeline."""
    out: list[StepTimeline] = []
    repair_done = 0.0
    transfer_done = 0.0
    for step in steps:
        repair_start = repair_done
        repair_done += step.repair_time
        transfer_start = max(transfer_done, repair_done)
        transfer_done = transfer_start + step.transfer_time
        out.append(StepTimeline(step.label, repair_start, repair_done,
                                transfer_start, transfer_done))
    return out


def degraded_read_time(steps: Iterable[PipelineStep]) -> float:
    """Completion time of the pipelined degraded read."""
    repair_done = 0.0
    transfer_done = 0.0
    for step in steps:
        repair_done += step.repair_time
        transfer_done = max(transfer_done, repair_done) + step.transfer_time
    return transfer_done


def unpipelined_read_time(steps: Iterable[PipelineStep]) -> float:
    """Repair everything, then transfer everything (no overlap) — the
    baseline pipelining is compared against in Figure 13."""
    steps = list(steps)
    return (sum(s.repair_time for s in steps)
            + sum(s.transfer_time for s in steps))


def transfer_time(steps: Iterable[PipelineStep]) -> float:
    """Serialisation time of nbytes through this pipe."""
    return sum(s.transfer_time for s in steps)


def repair_time(steps: Iterable[PipelineStep]) -> float:
    return sum(s.repair_time for s in steps)


def pipeline_efficiency(steps: Sequence[PipelineStep]) -> float:
    """Fraction of the non-overlapped time saved by pipelining (0..1)."""
    plain = unpipelined_read_time(steps)
    if plain == 0:
        return 0.0
    return 1.0 - degraded_read_time(steps) / plain

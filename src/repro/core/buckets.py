"""Buckets: the on-disk unit of encoding (Figure 6).

Each bucket is a large append-only file on one disk holding equal-sized
chunks from different objects; buckets of the same level from ``k + r``
disks of a placement group are encoded together with the regenerating code.
Small-size-buckets hold the variable-sized front cuts (and whole objects
smaller than ``s0``) and are RS-coded, which eliminates read amplification
for them (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BucketSlot:
    """Position of one object chunk inside a bucket."""

    object_id: int
    chunk_index: int
    offset: int
    length: int


@dataclass
class Bucket:
    """A fixed-chunk-size bucket (regenerating-code encoded)."""

    level: int
    chunk_size: int
    slots: list[BucketSlot] = field(default_factory=list)

    def __post_init__(self):
        if self.chunk_size <= 0 or self.level <= 0:
            raise ValueError("bucket needs positive level and chunk size")

    @property
    def size_bytes(self) -> int:
        """Current size of this bucket/file in bytes."""
        return len(self.slots) * self.chunk_size

    @property
    def n_chunks(self) -> int:
        """Number of chunks currently held."""
        return len(self.slots)

    def append(self, object_id: int, chunk_index: int) -> BucketSlot:
        """Allocate the next aligned slot for a chunk of an object."""
        slot = BucketSlot(object_id, chunk_index,
                          offset=self.size_bytes, length=self.chunk_size)
        self.slots.append(slot)
        return slot

    def locate(self, object_id: int, chunk_index: int) -> BucketSlot:
        """Find the slot of a stored item; raises KeyError if absent."""
        for slot in self.slots:
            if slot.object_id == object_id and slot.chunk_index == chunk_index:
                return slot
        raise KeyError(f"chunk {chunk_index} of object {object_id} not in bucket")


@dataclass
class SmallSizeBucket:
    """A variable-item-size bucket for object fronts (RS-coded)."""

    slots: list[BucketSlot] = field(default_factory=list)
    _size: int = 0

    @property
    def size_bytes(self) -> int:
        """Current size of this bucket/file in bytes."""
        return self._size

    @property
    def n_items(self) -> int:
        """Number of items currently held."""
        return len(self.slots)

    def append(self, object_id: int, length: int) -> BucketSlot:
        """Append an item; returns its allocated slot."""
        if length <= 0:
            raise ValueError("small-size-bucket items must be non-empty")
        slot = BucketSlot(object_id, chunk_index=0, offset=self._size, length=length)
        self.slots.append(slot)
        self._size += length
        return slot

    def locate(self, object_id: int) -> BucketSlot:
        """Find the slot of a stored item; raises KeyError if absent."""
        for slot in self.slots:
            if slot.object_id == object_id:
                return slot
        raise KeyError(f"object {object_id} not in small-size-bucket")

"""Parameter tuning for Geometric Partitioning (§4.4).

The paper tunes ``s0`` and ``q`` by sampling the target workload and grid
searching: larger ``s0`` raises average chunk size (recovery throughput) but
grows the RS-coded small-size-bucket share and the unpipelined first chunk;
larger ``q`` reduces chunk count but strains pipelining.  This module
computes the workload-structural metrics exactly and accepts an optional
evaluator (e.g. the analytic degraded-read model or the full simulator) for
time-based metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.layouts import GeometricLayout


@dataclass(frozen=True)
class TuningPoint:
    """Metrics of one (s0, q) candidate over a workload sample."""

    s0: int
    q: int
    average_chunk_size: float
    small_bucket_share: float
    average_chunk_count: float
    mean_degraded_read_time: float | None = None


def evaluate_candidate(sizes: Sequence[int], s0: int, q: int,
                       max_chunk_size: int | None = None,
                       evaluator: Callable[[GeometricLayout, int], float] | None = None,
                       ) -> TuningPoint:
    """Structural (and optionally timed) metrics for one candidate."""
    layout = GeometricLayout(s0, q, max_chunk_size)
    total_bytes = 0
    front_bytes = 0
    total_chunks = 0
    partitioned_bytes = 0
    times: list[float] = []
    for size in sizes:
        part = layout.partitioner.partition(size)
        total_bytes += size
        front_bytes += part.front
        total_chunks += part.n_chunks
        partitioned_bytes += part.partitioned_bytes
        if evaluator is not None:
            times.append(evaluator(layout, size))
    if total_bytes == 0:
        raise ValueError("workload sample is empty")
    return TuningPoint(
        s0=s0,
        q=q,
        average_chunk_size=(partitioned_bytes / total_chunks) if total_chunks else 0.0,
        small_bucket_share=front_bytes / total_bytes,
        average_chunk_count=total_chunks / len(sizes),
        mean_degraded_read_time=(sum(times) / len(times)) if times else None,
    )


def grid_search(sizes: Sequence[int], s0_candidates: Iterable[int],
                q_candidates: Iterable[int],
                max_chunk_size: int | None = None,
                evaluator: Callable[[GeometricLayout, int], float] | None = None,
                ) -> list[TuningPoint]:
    """Evaluate the full (s0, q) grid; rows in grid order."""
    return [evaluate_candidate(sizes, s0, q, max_chunk_size, evaluator)
            for s0 in s0_candidates for q in q_candidates]


def pareto_front(points: Sequence[TuningPoint]) -> list[TuningPoint]:
    """Candidates not dominated on (higher chunk size, lower degraded read).

    Requires timed points; with no evaluator the trade-off axis degenerates
    to small-bucket share instead of read time.
    """
    def key(p: TuningPoint) -> tuple[float, float]:
        cost = (p.mean_degraded_read_time if p.mean_degraded_read_time is not None
                else p.small_bucket_share)
        return (-p.average_chunk_size, cost)

    front: list[TuningPoint] = []
    for p in sorted(points, key=key):
        chunk, cost = -key(p)[0], key(p)[1]
        if all(not (f.average_chunk_size >= chunk and key(f)[1] <= cost
                    and (f.average_chunk_size > chunk or key(f)[1] < cost))
               for f in front):
            front.append(p)
    return front

"""Fabric benchmarks: the rack/switch interconnect's hot paths.

The hierarchical :class:`~repro.cluster.network.Fabric` put link-chain
resolution and multi-hop transfers on the repair hot path, so both get
their own gate:

* ``fabric.route_resolution`` — pure chain lookups (no simulation), the
  per-transfer overhead every tiered gather pays.
* ``fabric.intra_rack_transfers`` — two-hop (NIC -> NIC) transfers inside
  one rack.
* ``fabric.cross_rack_gather`` — many-helper gathers whose legs contend
  on ToR uplinks and the shared aggregation link — the placement-matrix
  regime.
"""

from __future__ import annotations

from repro.bench.harness import BenchSpec
from repro.cluster.network import Fabric
from repro.cluster.topology import ClusterConfig
from repro.sim.engine import Environment

_MB = 1 << 20

_CONFIG = ClusterConfig(n_nodes=32, n_racks=8, nodes_per_rack=4,
                        tor_gbps=10.0, oversubscription=4.0)

_N_ROUTES = 50_000
_N_TRANSFERS = 2_000
_N_GATHERS = 400


def _route_resolution() -> int:
    fabric = Fabric(Environment(), _CONFIG)
    hops = 0
    for i in range(_N_ROUTES):
        hops += len(fabric.route(i % 32, src_node=(i * 7 + 1) % 32))
    return hops


def _intra_rack_transfers() -> float:
    env = Environment()
    fabric = Fabric(env, _CONFIG)

    def driver():
        for i in range(_N_TRANSFERS):
            src = i % 4
            dst = (i + 1) % 4  # same rack (nodes 0-3), never src == dst
            yield env.process(fabric.transfer(_MB, dst, src_node=src))

    env.run(env.process(driver()))
    return env.now


def _cross_rack_gather() -> float:
    env = Environment()
    fabric = Fabric(env, _CONFIG)
    # 13 helpers spread over all racks, gathering into node 0.
    sources = [((5 * h + 3) % 32, _MB) for h in range(13)]

    def driver():
        for _ in range(_N_GATHERS):
            yield env.process(fabric.gather(0, 13 * _MB, sources))

    env.run(env.process(driver()))
    return env.now


def specs() -> list[BenchSpec]:
    """The fabric suite."""
    return [
        BenchSpec("fabric.route_resolution", "fabric", _route_resolution,
                  units=_N_ROUTES),
        BenchSpec("fabric.intra_rack_transfers", "fabric",
                  _intra_rack_transfers, units=_N_TRANSFERS),
        BenchSpec("fabric.cross_rack_gather", "fabric", _cross_rack_gather,
                  units=_N_GATHERS),
    ]

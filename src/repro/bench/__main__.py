"""CLI for the benchmark suite.

Examples::

    python -m repro.bench                         # run + print the table
    python -m repro.bench --out BENCH_engine.json # also write the document
    python -m repro.bench --only engine           # substring filter
    python -m repro.bench --baseline benchmarks/baseline.json --gate 0.20

With ``--baseline`` the exit status is 1 when any benchmark's normalized
time regresses past the gate tolerance — that is the CI perf gate.  The
calibration benchmark always runs (it is the normalization denominator),
even under ``--only``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import all_specs, compare, render, run_specs
from repro.bench.harness import CALIBRATION_GROUP


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the engine/GF/scenario benchmark suite.")
    parser.add_argument("--out", metavar="OUT.json", default=None,
                        help="write the bench document (repro.bench/1)")
    parser.add_argument("--baseline", metavar="BASE.json", default=None,
                        help="gate against a committed baseline document")
    parser.add_argument("--gate", type=float, default=0.20, metavar="FRAC",
                        help="allowed fractional slowdown vs the baseline "
                             "(default 0.20)")
    parser.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="override each spec's repeat count")
    parser.add_argument("--only", metavar="SUBSTR", default=None,
                        help="run only benchmarks whose name contains this "
                             "substring (calibration always runs)")
    parser.add_argument("--list", action="store_true",
                        help="list benchmark names and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = _parser().parse_args(argv)
    specs = all_specs()
    if args.list:
        for spec in specs:
            print(f"{spec.name:<34} [{spec.group}]")
        return 0
    if args.only is not None:
        specs = [s for s in specs
                 if args.only in s.name or s.group == CALIBRATION_GROUP]
    doc = run_specs(specs, repeats=args.repeats,
                    progress=lambda name: print(f"  running {name} ...",
                                                file=sys.stderr))
    print(render(doc))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regressions = compare(doc, baseline, tolerance=args.gate)
        if regressions:
            print(f"\nPERF GATE FAILED ({len(regressions)} regression(s) "
                  f"beyond {args.gate:.0%}):")
            for reg in regressions:
                print(f"  {reg}")
            print("\nIf the slowdown is intentional, refresh "
                  "benchmarks/baseline.json and include [bench-reset] in "
                  "the commit message.")
            return 1
        print(f"\nperf gate OK (tolerance {args.gate:.0%} vs "
              f"{args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Macro benchmarks: full experiment scenarios through the runner.

Micro benchmarks localize regressions; these catch the interactions the
micros cannot — layout math, catalog ingest, degraded-read pipelines and
the recovery scheduler all running together.  Both run the real
:func:`repro.runner.run_scenarios` path with the cache disabled (a cached
macro benchmark would time JSON deserialization) at a reduced scale, so a
bench run stays in CI budget while exercising the same code as
``python -m repro.experiments``.
"""

from __future__ import annotations

from repro.bench.harness import BenchSpec

#: reduced scale for the fig13 recovery-bandwidth sweep
_FIG13_OBJECTS = 1000

#: reduced scale for the fig9 latency/recovery trade-off sweep — the
#: degraded-read pipeline is the event-heaviest path the simulator has,
#: so this is the macro that moves when the DES engine regresses
_TRADEOFF_OBJECTS = 300
_TRADEOFF_REQUESTS = 3


def _run(units) -> int:
    from repro.runner import RunOptions, run_scenarios

    report = run_scenarios(units, RunOptions(jobs=1, seed=0, cache=False))
    return sum(len(r.rows) for r in report.results)


def _fig4() -> int:
    from repro.experiments import fig4

    return _run(fig4.scenarios())


def _fig13() -> int:
    from repro.experiments import fig13

    return _run(fig13.scenarios(n_objects=_FIG13_OBJECTS))


def _tradeoff() -> int:
    from repro.experiments import tradeoff

    return _run(tradeoff.scenarios("W1", n_objects=_TRADEOFF_OBJECTS,
                                   n_requests=_TRADEOFF_REQUESTS))


def specs() -> list[BenchSpec]:
    """The macro suite (scenario wall-clock, cache off)."""
    return [
        BenchSpec("scenario.fig4", "macro", _fig4, repeats=2),
        BenchSpec("scenario.fig13", "macro", _fig13, repeats=2),
        BenchSpec("scenario.tradeoff", "macro", _tradeoff, repeats=2),
    ]

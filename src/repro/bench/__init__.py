"""``repro.bench`` — the performance benchmark harness.

Run it as a module::

    python -m repro.bench --out BENCH_engine.json
    python -m repro.bench --baseline benchmarks/baseline.json --gate 0.20

The suite times the simulator's hot paths (micro) and two full experiment
scenarios (macro), emits a stable JSON document, and — given a baseline —
fails when any benchmark regresses beyond the gate tolerance.  CI runs it
on every push; see ``benchmarks/baseline.json`` and the README's
Performance section.
"""

from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchResult,
    BenchSpec,
    Regression,
    compare,
    render,
    run_spec,
    run_specs,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "BenchSpec",
    "Regression",
    "all_specs",
    "compare",
    "render",
    "run_spec",
    "run_specs",
]


def all_specs() -> list["BenchSpec"]:
    """Every benchmark in the suite: calibration, micro, fabric,
    reliability, traffic, lint, macro."""
    from repro.bench import fabric, lint, macro, micro, reliability, traffic

    return (micro.specs() + fabric.specs() + reliability.specs()
            + traffic.specs() + lint.specs() + macro.specs())

"""Micro benchmarks: the simulator's hot paths, timed in isolation.

Each benchmark targets one of the paths the profile-guided optimization
pass touched, so a regression in the gate points at a subsystem, not at
"the simulator got slower":

* ``calibrate.spin`` — fixed pure-Python workload; the normalization
  denominator (see :mod:`repro.bench.harness`).
* ``engine.event_throughput`` — one process draining N future timeouts
  through the heap.
* ``engine.ready_lane`` — N zero-delay timeouts through the ready deque
  (the fast lane added by the dual-queue engine).
* ``engine.process_churn`` — spawning and finishing N short processes.
* ``resource.contention`` — processes contending on a small-capacity
  resource (grant/release/waiter-heap path).
* ``gf.constructions`` — vectorized Vandermonde + Cauchy builds.
* ``gf.matrix_solve`` — Gauss-Jordan inversion and the symbolic
  :class:`~repro.gf.solve.GFLinearSystem` solve.
* ``codec.decode_cold`` / ``codec.decode_cached`` — RS decode with the
  solution-matrix LRU cleared vs. warm (the erasure-pattern cache win).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import BenchSpec
from repro.cluster.codec import DecodeMatrixCache
from repro.codes.rs import RSCode
from repro.gf.matrix import cauchy_matrix, mat_inv, mat_mul, vandermonde
from repro.gf.solve import GFLinearSystem
from repro.sim.engine import Environment
from repro.sim.resources import Resource


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
_SPIN_N = 400_000


def _spin() -> int:
    acc = 0
    for i in range(_SPIN_N):
        acc += i * i & 0xFFFF
    return acc


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
_N_EVENTS = 100_000


def _event_throughput() -> float:
    env = Environment()

    def ticker():
        for _ in range(_N_EVENTS):
            yield env.timeout(1.0)

    env.process(ticker())
    env.run()
    return env.now


def _ready_lane() -> float:
    env = Environment()

    def ticker():
        for _ in range(_N_EVENTS):
            yield env.timeout(0.0)

    env.process(ticker())
    env.run()
    return env.now


_N_PROCS = 20_000


def _process_churn() -> float:
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    def spawner():
        for _ in range(_N_PROCS):
            yield env.process(worker())

    env.process(spawner())
    env.run()
    return env.now


# ----------------------------------------------------------------------
# resources
# ----------------------------------------------------------------------
_N_CONTENDERS = 2_000


def _contention() -> float:
    env = Environment()
    res = Resource(env, capacity=4)

    def client(i):
        yield env.timeout(float(i % 7))
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for i in range(_N_CONTENDERS):
        env.process(client(i))
    env.run()
    return res.utilization()


# ----------------------------------------------------------------------
# GF kernels
# ----------------------------------------------------------------------
def _constructions() -> int:
    total = 0
    for _ in range(200):
        v = vandermonde(14, list(range(1, 15)))
        c = cauchy_matrix(list(range(10, 14)), list(range(10)))
        total += int(v[1, 0]) + int(c[0, 0])
    return total


def _matrix_solve() -> int:
    c = cauchy_matrix(list(range(64, 128)), list(range(64)))
    inv = mat_inv(c)
    prod = mat_mul(c, inv)
    system = GFLinearSystem(10, 10)
    rows = cauchy_matrix(list(range(16, 26)), list(range(10)))
    for i in range(10):
        system.add_equation(
            {j: int(rows[i, j]) for j in range(10) if rows[i, j]}, {i: 1})
    system.solve()
    return int(prod[0, 0])


# ----------------------------------------------------------------------
# codec decode (solution-matrix LRU)
# ----------------------------------------------------------------------
_CHUNK = 1 << 14
_DECODES = 30


def _decode_chunks(code: RSCode) -> dict[int, np.ndarray]:
    rng = np.random.default_rng(7)
    data = [rng.integers(0, 256, _CHUNK, dtype=np.uint8)
            for _ in range(code.k)]
    return dict(enumerate(code.encode_stripe(data)))


_RS = RSCode(10, 4)
_STRIPE = _decode_chunks(_RS)
_ERASED = [0, 5]
_AVAILABLE = {n: c for n, c in _STRIPE.items() if n not in _ERASED}


def _decode_cold() -> int:
    out = 0
    for _ in range(_DECODES):
        _RS._solution_cache.clear()  # force the Gauss-Jordan solve each time
        decoded = _RS.decode(_AVAILABLE, _ERASED, _CHUNK)
        out ^= int(decoded[0][0])
    return out


_DECODE_CACHE = DecodeMatrixCache()


def _decode_cached() -> int:
    out = 0
    for _ in range(_DECODES):
        decoded = _DECODE_CACHE.decode(_RS, _AVAILABLE, _ERASED, _CHUNK)
        out ^= int(decoded[0][0])
    return out


def specs() -> list[BenchSpec]:
    """The micro suite (calibration first)."""
    return [
        BenchSpec("calibrate.spin", "calibration", _spin, units=_SPIN_N),
        BenchSpec("engine.event_throughput", "micro", _event_throughput,
                  units=_N_EVENTS),
        BenchSpec("engine.ready_lane", "micro", _ready_lane, units=_N_EVENTS),
        BenchSpec("engine.process_churn", "micro", _process_churn,
                  units=_N_PROCS),
        BenchSpec("resource.contention", "micro", _contention,
                  units=_N_CONTENDERS),
        BenchSpec("gf.constructions", "micro", _constructions, units=200),
        BenchSpec("gf.matrix_solve", "micro", _matrix_solve),
        BenchSpec("codec.decode_cold", "micro", _decode_cold,
                  units=_DECODES),
        BenchSpec("codec.decode_cached", "micro", _decode_cached,
                  units=_DECODES),
    ]

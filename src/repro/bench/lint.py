"""simlint benchmarks: whole-program analysis of ``src/repro``.

Two points on the incremental-cache curve:

* ``simlint.whole_program_cold`` — full analysis from scratch (cache
  off): parse + per-file rules + call graph + the three interprocedural
  passes over the whole tree.  This is what a CI cold run pays.
* ``simlint.whole_program_warm`` — the same run against a fully warmed
  cache: content-hash every file, hit the run cache, replay findings.
  This is what the edit/lint loop pays, and the gate keeps the gap
  honest — a warm run drifting toward the cold time means the cache
  broke.

The warm benchmark primes its cache inside the first repeat; the
harness reports the min over repeats, so the primed repeats are the
measurement.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bench.harness import BenchSpec

#: the tree the analysis benchmarks lint: the installed ``repro`` package
_SRC = str(Path(__file__).resolve().parents[1])

_warm_cache: str | None = None


def _cold() -> int:
    from repro.analysis.wholeprogram import run_whole_program

    result = run_whole_program([_SRC], use_cache=False)
    return result.stats.files_total


def _warm() -> int:
    global _warm_cache
    from repro.analysis.wholeprogram import run_whole_program

    if _warm_cache is None:
        _warm_cache = tempfile.mkdtemp(prefix="simlint-bench-")
        run_whole_program([_SRC], cache_dir=_warm_cache)
    result = run_whole_program([_SRC], cache_dir=_warm_cache)
    return result.stats.files_total


def specs() -> list[BenchSpec]:
    """The simlint suite (whole-program analysis, cold vs warm cache)."""
    return [
        BenchSpec("simlint.whole_program_cold", "lint", _cold, repeats=2),
        BenchSpec("simlint.whole_program_warm", "lint", _warm, repeats=5),
    ]

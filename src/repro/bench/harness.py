"""Benchmark harness: timed specs, a stable JSON schema, and the gate.

A :class:`BenchSpec` names one benchmark — a zero-argument callable timed
with ``time.perf_counter`` over ``repeats`` runs, reporting the *minimum*
(the least-noise estimator for CPU-bound work).  :func:`run_specs` turns a
list of specs into the ``BENCH_engine.json`` document; its layout is a
stable schema (``repro.bench/1``) so CI diffs and the regression gate keep
working as benchmarks are added.

Machine-speed normalization
---------------------------
Raw seconds are incomparable across runners (CI machines differ run to
run), so the document carries a *calibration* benchmark — a fixed
pure-Python workload — and every benchmark's ``normalized`` field is its
time divided by the calibration time on the same machine.
:func:`compare` gates on the normalized values whenever both documents
carry a calibration, falling back to raw seconds otherwise; benchmarks
absent from the baseline never gate (new benchmarks land without a
``[bench-reset]``).
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: Stable schema tag of the emitted document.
BENCH_SCHEMA = "repro.bench/1"

#: The group name whose (single) benchmark provides the normalization
#: denominator.
CALIBRATION_GROUP = "calibration"


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark: a named, repeatable, timed callable."""

    name: str
    group: str  # "calibration" | "micro" | "macro"
    fn: Callable[[], Any]
    #: work items one ``fn()`` call performs, for the per-unit rate
    units: int = 1
    repeats: int = 3


@dataclass
class BenchResult:
    """Timing of one spec (seconds is the min over repeats)."""

    spec: BenchSpec
    seconds: float
    all_seconds: list[float] = field(default_factory=list)

    @property
    def per_unit_us(self) -> float:
        """Microseconds per work unit of the best run."""
        return self.seconds / self.spec.units * 1e6


def run_spec(spec: BenchSpec, repeats: int | None = None) -> BenchResult:
    """Time one spec: ``repeats`` runs, min wins; one untimed warmup run."""
    n = repeats if repeats is not None else spec.repeats
    if n < 1:
        raise ValueError("repeats must be >= 1")
    spec.fn()  # warmup: imports, table builds, allocator steady-state
    times = []
    for _ in range(n):
        t0 = time.perf_counter()
        spec.fn()
        times.append(time.perf_counter() - t0)
    return BenchResult(spec, min(times), times)


def run_specs(specs: list[BenchSpec], repeats: int | None = None,
              progress: Callable[[str], None] | None = None
              ) -> dict[str, Any]:
    """Run every spec and assemble the ``repro.bench/1`` document."""
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError("benchmark names must be unique")
    results: list[BenchResult] = []
    for spec in specs:
        if progress is not None:
            progress(spec.name)
        results.append(run_spec(spec, repeats))
    calibration = [r for r in results if r.spec.group == CALIBRATION_GROUP]
    cal_s = min(r.seconds for r in calibration) if calibration else None
    benchmarks: dict[str, Any] = {}
    for r in results:
        entry = {
            "group": r.spec.group,
            "units": r.spec.units,
            "repeats": len(r.all_seconds),
            "seconds": round(r.seconds, 6),
            "per_unit_us": round(r.per_unit_us, 4),
        }
        if cal_s:
            entry["normalized"] = round(r.seconds / cal_s, 4)
        benchmarks[r.spec.name] = entry
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "calibration_s": round(cal_s, 6) if cal_s else None,
        "benchmarks": benchmarks,
    }
    return doc


@dataclass(frozen=True)
class Regression:
    """One benchmark exceeding the gate tolerance."""

    name: str
    metric: str  # "normalized" or "seconds"
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (f"{self.name}: {self.metric} {self.baseline:g} -> "
                f"{self.current:g} ({self.ratio:.2f}x)")


def compare(current: dict[str, Any], baseline: dict[str, Any],
            tolerance: float = 0.20) -> list[Regression]:
    """Benchmarks slower than ``baseline`` by more than ``tolerance``.

    Gates on ``normalized`` when both documents carry it (machine-speed
    independent), else on raw ``seconds``.  Benchmarks present only in one
    document are ignored.  The calibration benchmark itself never gates —
    its normalized value is 1.0 by construction.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    out: list[Regression] = []
    base_marks = baseline.get("benchmarks", {})
    for name, entry in sorted(current.get("benchmarks", {}).items()):
        if entry.get("group") == CALIBRATION_GROUP:
            continue
        base = base_marks.get(name)
        if base is None:
            continue
        if "normalized" in entry and "normalized" in base:
            metric = "normalized"
        else:
            metric = "seconds"
        cur_v, base_v = entry[metric], base[metric]
        if base_v > 0 and cur_v > base_v * (1.0 + tolerance):
            out.append(Regression(name, metric, base_v, cur_v))
    return out


def render(doc: dict[str, Any]) -> str:
    """Human-readable table of one bench document."""
    lines = [f"{'benchmark':<34} {'group':<12} {'seconds':>10} "
             f"{'per-unit':>12} {'norm':>8}"]
    for name, e in sorted(doc["benchmarks"].items(),
                          key=lambda kv: (kv[1]["group"], kv[0])):
        norm = f"{e['normalized']:.2f}" if "normalized" in e else "-"
        lines.append(f"{name:<34} {e['group']:<12} {e['seconds']:>10.4f} "
                     f"{e['per_unit_us']:>10.2f}us {norm:>8}")
    return "\n".join(lines)

"""Traffic benchmarks: schedule generation and open-loop serving.

The open-loop engine sits on the serving hot path of the
``traffic-frontier`` experiment, so its three stages get their own gate:

* ``traffic.schedule_build`` — materialise a merged multi-tenant arrival
  stream (Poisson sampling, Zipf draws, stable lexsort merge), measured
  in arrivals per second of wall clock.
* ``traffic.zipf_sample`` — the popularity sampler alone (cumulative
  table inversion), the per-request cost of every schedule build.
* ``traffic.open_loop_serve`` — one small end-to-end serving run with a
  failed disk, hedged degraded reads, and §5.1 recovery underneath: the
  whole DES round trip the frontier experiment repeats per grid cell.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import BenchSpec
from repro.traffic import DEFAULT_TENANTS, ZipfPopularity, build_schedule

_RATE = 2_000.0
_DURATION = 30.0
_N_OBJECTS = 10_000

_N_ZIPF = 1_000_000

_SERVE_OBJECTS = 120
_SERVE_RATE = 60.0
_SERVE_DURATION = 4.0


def _schedule_build() -> int:
    schedule = build_schedule(DEFAULT_TENANTS, rate=_RATE,
                              duration=_DURATION, n_objects=_N_OBJECTS,
                              seed=11)
    return schedule.n_requests


def _zipf_sample() -> int:
    pop = ZipfPopularity(_N_OBJECTS, 0.9, np.random.default_rng(12))
    return int(pop.sample(np.random.default_rng(13), _N_ZIPF)[-1])


_SERVE_STATE = None


def _open_loop_serve() -> float:
    from repro.cluster.qos import serve_open_loop
    from repro.experiments.common import (
        build_system,
        cluster_config,
        sample_workload,
        setting_by_name,
    )
    from repro.experiments.traffic_frontier import busiest_disk

    global _SERVE_STATE
    if _SERVE_STATE is None:    # ingest once; the spec times serving
        ws = setting_by_name("W1")
        system = build_system("RS", ws, cluster_config(ws, _SERVE_OBJECTS,
                                                       client_gbps=10.0))
        objects = system.ingest(sample_workload(ws, _SERVE_OBJECTS, 0))
        schedule = build_schedule(DEFAULT_TENANTS, rate=_SERVE_RATE,
                                  duration=_SERVE_DURATION,
                                  n_objects=len(objects), seed=14)
        _SERVE_STATE = (system, objects, schedule, busiest_disk(system))
    system, objects, schedule, failed = _SERVE_STATE
    report = serve_open_loop(
        system, objects, schedule.times, schedule.tenant_ids,
        schedule.object_ids,
        tuple((t.name, t.lane, t.hedge) for t in DEFAULT_TENANTS),
        failed_disk=failed, weight_limit=8, hedge_s=0.05, seed=15)
    return report.drain_time


def specs() -> list[BenchSpec]:
    """The traffic suite."""
    return [
        BenchSpec("traffic.schedule_build", "traffic", _schedule_build,
                  units=int(_RATE * _DURATION)),
        BenchSpec("traffic.zipf_sample", "traffic", _zipf_sample,
                  units=_N_ZIPF),
        BenchSpec("traffic.open_loop_serve", "traffic", _open_loop_serve,
                  units=1, repeats=4),
    ]

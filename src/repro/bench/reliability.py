"""Reliability benchmarks: fleet-sim throughput and the analytic chain.

The durability engine's unit of work is the simulated disk-year, so its
gate is expressed as disk-years per second:

* ``reliability.fleet_trial`` — one full Monte-Carlo trial (lifetimes,
  latent errors + scrubbing, rack bursts, risk-aware queue) on a
  2.5k-disk fleet over two simulated years.
* ``reliability.fleet_topology`` — fleet-scale PG enumeration through
  the placement registry plus the per-disk rack-span precomputation.
* ``reliability.markov_sweep`` — the analytic MTTDL chain across a
  repair-time sweep (the ``durability`` experiment's inner loop).
"""

from __future__ import annotations

from repro.bench.harness import BenchSpec
from repro.cluster.topology import ClusterConfig
from repro.reliability import (
    FleetParams,
    FleetSim,
    ReliabilityParams,
    mds_fatal_probabilities,
    mttdl_group,
)

_CONFIG = ClusterConfig(n_nodes=320, disks_per_node=8, n_racks=8,
                        nodes_per_rack=40, n_pgs=1280, placement="rack_aware",
                        pg_seed=1)

_PARAMS = FleetParams(
    fatal_probabilities=mds_fatal_probabilities(4), years=2.0, afr=0.1,
    node_afr=0.05, lse_rate=0.2, scrub_interval_hours=336.0,
    repair_hours=12.0, repair_streams=64, risk_aware=True,
    rack_burst_rate=1.0, burst_node_fraction=1.0, tor_outage_rate=2.0,
    tor_outage_hours=24.0, tor_repair_factor=4.0)

_N_MARKOV = 2_000


def _fleet_sim() -> FleetSim:
    return FleetSim.from_cluster(_CONFIG)


_SIM = None


def _fleet_trial() -> int:
    global _SIM
    if _SIM is None:        # topology built once; the spec times trials
        _SIM = _fleet_sim()
    return _SIM.run_trial(_PARAMS, 7).disk_failures


def _fleet_topology() -> int:
    return _fleet_sim().n_pgs


def _markov_sweep() -> float:
    q = mds_fatal_probabilities(4)
    total = 0.0
    for i in range(_N_MARKOV):
        params = ReliabilityParams(14, 0.02, 1.0 + i * 0.05, q)
        total += mttdl_group(params)
    return total


def specs() -> list[BenchSpec]:
    """The reliability suite."""
    disk_years = int(_PARAMS.years * _CONFIG.n_disks)
    return [
        BenchSpec("reliability.fleet_trial", "reliability", _fleet_trial,
                  units=disk_years),
        BenchSpec("reliability.fleet_topology", "reliability",
                  _fleet_topology, units=_CONFIG.n_pgs),
        BenchSpec("reliability.markov_sweep", "reliability", _markov_sweep,
                  units=_N_MARKOV),
    ]

"""A small discrete-event simulation kernel (simpy-style).

The RCStor cluster model (:mod:`repro.cluster`) is built on this engine:
generator-coroutine processes, timeouts, composite events, and FIFO /
priority resources with utilization accounting.  Simulated time is in
seconds; the engine is deterministic given deterministic processes.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import PriorityResource, Request, Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupted",
    "Environment",
    "Event",
    "Process",
    "SimulationError",
    "Timeout",
    "PriorityResource",
    "Request",
    "Resource",
]
